#!/usr/bin/env python3
"""CAN-level attack deployment: tamper with the 0xE4 steering frame.

The paper's Fig. 4 shows the attack's last stage: corrupt the CAN message
that carries the steering command and recompute its checksum so the frame
still passes integrity checks.  This example demonstrates that path
directly on the CAN substrate, without running a full simulation:

1. encode a legitimate STEERING_CONTROL frame the way the ADAS would,
2. tamper with the ``STEER_ANGLE_CMD`` signal (checksum fixed up),
3. show that the tampered frame still verifies,
4. run both frames through the Panda safety model to show which injected
   values would be blocked on a real car and which would slip through.

Run with::

    python examples/can_tampering.py
"""

from repro.adas.panda import PandaSafetyModel
from repro.can.checksum import verify_checksum
from repro.can.honda import HONDA_DBC
from repro.core.can_tamper import tamper_signal


def describe(label, frame):
    decoded = HONDA_DBC.decode(frame, check=False)
    print(
        f"{label:28s} addr=0x{frame.address:X} data={frame.hex()} "
        f"angle={decoded['STEER_ANGLE_CMD']:+.2f} deg "
        f"checksum_ok={verify_checksum(frame.address, frame.data)}"
    )


def main() -> None:
    # 1. The ADAS sends a small corrective steering command.
    legitimate = HONDA_DBC.encode(
        "STEERING_CONTROL", {"STEER_ANGLE_CMD": 0.6, "STEER_REQUEST": 1.0}, counter=2
    )
    describe("legitimate frame", legitimate)

    # 2./3. The attacker rewrites the steering angle and fixes the checksum.
    stealthy = tamper_signal(legitimate, HONDA_DBC, {"STEER_ANGLE_CMD": 0.25})
    describe("tampered (strategic value)", stealthy)

    aggressive = tamper_signal(legitimate, HONDA_DBC, {"STEER_ANGLE_CMD": 45.0})
    describe("tampered (out of range)", aggressive)

    # 4. Panda's safety model: the strategic value passes, the aggressive
    #    per-frame jump is rejected.
    panda = PandaSafetyModel()
    panda.check_frame(legitimate, time=0.0)
    stealth_violations = panda.check_frame(stealthy, time=0.01)
    aggressive_violations = panda.check_frame(aggressive, time=0.02)
    print()
    print(f"Panda verdict on the strategic frame:  "
          f"{[v.rule for v in stealth_violations] or 'accepted'}")
    print(f"Panda verdict on the aggressive frame: "
          f"{[v.rule for v in aggressive_violations] or 'accepted'}")
    print()
    print("A strategically bounded corruption survives both the CAN checksum and "
          "the Panda rate checks — which is why the paper's attack constrains its "
          "values to the safety limits instead of bombarding the bus.")


if __name__ == "__main__":
    main()

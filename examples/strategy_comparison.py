#!/usr/bin/env python3
"""Strategy comparison: regenerate a scaled-down Table IV.

Compares the Context-Aware attack strategy against the three random
baselines (Random-ST+DUR, Random-ST, Random-DUR) and the attack-free
baseline on a reduced experiment grid, and prints the same columns the
paper's Table IV reports.

Run with::

    python examples/strategy_comparison.py            # reduced grid (minutes)
    REPRO_FULL_SCALE=1 python examples/strategy_comparison.py   # paper-sized grid
"""

import time

from repro.experiments import ExperimentScale, run_table4


def main() -> None:
    scale = ExperimentScale.from_environment(
        ExperimentScale(
            scenarios=("S1", "S2"),
            initial_distances=(50.0, 70.0),
            repetitions=2,
            random_st_dur_repetitions=4,
        )
    )
    total = (
        len(scale.scenarios) * len(scale.initial_distances) * 6
        * (3 * scale.repetitions + scale.random_st_dur_repetitions)
    )
    print(f"Running the Table IV grid (~{total} attack simulations); this takes a few minutes...")
    start = time.time()
    result = run_table4(scale)
    print(f"Done in {time.time() - start:.0f} s.\n")
    print(result.format())
    print()

    context_aware = result.summary_for("Context-Aware")
    best_random = max(
        (s for s in result.summaries if s.strategy.startswith("Random")),
        key=lambda s: s.hazard_rate,
    )
    print(
        f"Context-Aware hazard rate: {100 * context_aware.hazard_rate:.1f}% "
        f"({100 * context_aware.hazards_without_alerts_rate:.1f}% without any alert); "
        f"best random baseline: {100 * best_random.hazard_rate:.1f}%."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Scenario catalog tour: named scenarios, parametric variants, campaigns.

Walks the three layers of the scenario subsystem:

1. the catalog of named scenarios (the paper's S1–S4 plus multi-actor and
   road-geometry scenarios), each run attack-free,
2. the seeded :class:`ScenarioSampler` drawing reproducible parametric
   variants from scenario families, and
3. a campaign over a mixed grid of catalog names and sampled variants,
   run through the (optionally parallel) campaign executor.

Run with::

    python examples/scenario_catalog.py
"""

from repro.injection.campaign import Campaign, CampaignConfig
from repro.injection.engine import SimulationConfig, run_simulation
from repro.scenarios import CATALOG, ScenarioSampler


def main() -> None:
    print(f"Scenario catalog ({len(CATALOG)} scenarios)")
    print(f"{'name':24s} {'actors':28s} road")
    for name, actors, _description, road in CATALOG.table_rows():
        print(f"{name:24s} {actors:28s} {road}")

    print("\nAttack-free spot checks (catalog gap, seed 0):")
    for name in ("cut-in-short-gap", "cut-out-reveal", "traffic-jam-approach"):
        result = run_simulation(
            SimulationConfig(scenario=name, initial_distance=None, seed=0)
        )
        print(
            f"  {name:24s} duration={result.duration:5.1f} s "
            f"hazards={sorted(result.hazards) or 'none'} "
            f"lane invasions={result.lane_invasions}"
        )

    sampler = ScenarioSampler(master_seed=2022)
    variants = sampler.take(4)
    print("\nSampled parametric variants (master_seed=2022):")
    for spec in variants:
        print(f"  {spec.name:24s} {spec.description}")

    config = CampaignConfig(
        strategy_name="No-Attack",
        scenarios=("S1", "lead-hard-brake") + tuple(variants),
        initial_distances=(None,),
        attack_types=(),
        repetitions=1,
        max_steps=1500,
    )
    results = Campaign(config).run()
    hazard_free = sum(1 for result in results if not result.hazards)
    print(
        f"\nMixed campaign: {len(results)} runs "
        f"({hazard_free} hazard-free) over "
        f"{', '.join(result.scenario for result in results)}"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: run one Context-Aware attack against the simulated ADAS.

The script builds the paper's S1 driving scenario (ego at 60 mph
approaching a lead vehicle cruising at 35 mph, 70 m ahead), arms a
Context-Aware Acceleration attack, runs the 50-second simulation with an
alert driver in the loop, and prints what happened: when the attack fired,
which hazard it caused, how long the Time-To-Hazard budget was, and
whether the ADAS raised any alert.

Run with::

    python examples/quickstart.py
"""

from repro.core.attack_types import AttackType
from repro.core.context_table import default_context_table
from repro.core.strategies import ContextAwareStrategy
from repro.injection import SimulationConfig, run_simulation


def main() -> None:
    print("Safety context table (Table I of the paper):")
    print(default_context_table().format())
    print()

    config = SimulationConfig(
        scenario="S1",
        initial_distance=70.0,
        seed=1,
        attack_type=AttackType.ACCELERATION,
        driver_enabled=True,
    )
    print(
        f"Running scenario {config.scenario} with a Context-Aware "
        f"{config.attack_type.value} attack..."
    )
    result = run_simulation(config, ContextAwareStrategy())

    print(f"  attack activated: {result.attack_activated}")
    if result.attack_activated:
        print(f"  activation time:  {result.attack_activation_time:.2f} s "
              f"(trigger: {result.attack_reason})")
        if result.attack_duration is not None:
            print(f"  attack duration:  {result.attack_duration:.2f} s")
    print(f"  hazards:          {result.hazards or 'none'}")
    print(f"  accidents:        {result.accidents or 'none'}")
    if result.time_to_hazard is not None:
        print(f"  time to hazard:   {result.time_to_hazard:.2f} s "
              "(the budget for detection and mitigation)")
    print(f"  ADAS alerts:      {len(result.alerts)}")
    print(f"  driver perceived: {result.driver_perception_reason or 'nothing'}")
    print(f"  lane invasions/s: {result.lane_invasions_per_second:.2f}")

    if result.hazard_without_alert:
        print("\nThe attack caused a hazard without a single ADAS warning — "
              "the headline result of the paper.")


if __name__ == "__main__":
    main()

"""Attack-parameter search quickstart.

Runs a small budgeted search for a hazard-inducing Deceleration attack
on S1 with each optimizer, then prints the strategic-vs-exhaustive
comparison table (evaluations to the first hazard per method).

Usage::

    PYTHONPATH=src python examples/search_attack.py
"""

from repro.core.attack_types import AttackType
from repro.experiments.search_attack import run_search_attack
from repro.search import (
    HazardObjective,
    SearchConfig,
    SearchDriver,
    attack_search_space,
    make_optimizer,
)


def single_search() -> None:
    """One search, spelled out: space -> optimizer -> batched driver."""
    space = attack_search_space(
        scenario="S1",
        attack_types=(AttackType.DECELERATION,),
        max_steps=2500,          # 25 s per simulation
    )
    config = SearchConfig(
        budget=24,               # unique attack points to simulate
        master_seed=2022,        # the whole trajectory derives from this
        batch_size=8,            # each generation runs as one lockstep batch
    )
    driver = SearchDriver(
        space,
        HazardObjective(),
        lambda s: make_optimizer("cem", s, seed=2022, generation_size=6),
        config,
    )
    result = driver.run()

    print(f"search space: {result.space_name} ({space.ndim} dimensions)")
    print(f"evaluations: {result.evaluations_used} "
          f"(simulations: {result.simulations_run})")
    print(f"first hazard at evaluation: {result.first_hazard_evaluation}")
    best = result.best
    if best is not None:
        print(f"best score: {best.score:.3f}")
        print("best attack point:")
        for key, value in space.values(best.point).items():
            print(f"  {key} = {value:.3f}" if isinstance(value, float)
                  else f"  {key} = {value}")


def comparison() -> None:
    """Strategic optimizers vs the exhaustive grid, one case."""
    result = run_search_attack(
        scenarios=("S1",),
        attack_types=(AttackType.DECELERATION,),
        budget=40,
    )
    print(result.format())


if __name__ == "__main__":
    single_search()
    print()
    comparison()

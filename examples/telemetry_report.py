#!/usr/bin/env python3
"""Observability demo: campaign metrics, Prometheus export and tracing.

Runs a reduced attack campaign with a :class:`repro.telemetry.Telemetry`
handle attached, then shows every export surface of the observability
layer:

* the human-readable ``summary()`` table (run/hazard/CAN counters plus
  sampled per-stage latency histograms),
* a Prometheus text-format export (``telemetry_metrics.prom``),
* a JSON snapshot (``telemetry_metrics.json``) — the same mergeable
  structure pool workers ship back to the parent,
* a Chrome-trace JSONL span log (``telemetry_trace.jsonl``) — drag it
  into https://ui.perfetto.dev or chrome://tracing to see the campaign,
  per-run and search spans on a timeline.

Telemetry is observe-only: the campaign results here are bit-identical
to a run without the handle (the golden suite pins this at sampling
rates 1 and 7).

Run with::

    PYTHONPATH=src python examples/telemetry_report.py
"""

from repro.core.attack_types import AttackType
from repro.injection.campaign import Campaign, CampaignConfig
from repro.telemetry import Telemetry, TelemetryConfig


def main() -> None:
    config = CampaignConfig(
        strategy_name="Context-Aware",
        scenarios=("S1", "S2"),
        initial_distances=(50.0, 70.0),
        attack_types=(AttackType.DECELERATION, AttackType.STEERING_LEFT),
        repetitions=2,
        max_steps=2000,
    )
    telemetry = Telemetry(TelemetryConfig(sample_every=1, trace=True))

    print(f"running {config.total_runs} simulations with telemetry attached...")
    results = Campaign(config).run(telemetry=telemetry)
    hazards = sum(1 for result in results if result.hazard_occurred)
    print(f"done: {len(results)} runs, {hazards} with a hazard\n")

    print(telemetry.summary(title="campaign telemetry"))

    telemetry.write_prometheus("telemetry_metrics.prom")
    telemetry.write_json("telemetry_metrics.json", extra={"runs": len(results)})
    spans = telemetry.write_trace_jsonl("telemetry_trace.jsonl")
    print("\nwrote telemetry_metrics.prom (Prometheus text format)")
    print("wrote telemetry_metrics.json (mergeable snapshot)")
    print(f"wrote telemetry_trace.jsonl ({spans} spans; open in ui.perfetto.dev)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Attack parameter space (Figure 8): start time × duration for the
Acceleration attack.

Sweeps the attack start time and duration for fixed-value Acceleration
attacks, marks which combinations cause hazards, overlays the points the
Context-Aware strategy chose on its own, and prints the critical
start-time window.

Run with::

    python examples/parameter_space.py
"""

import numpy as np

from repro.experiments import run_figure8


def ascii_grid(result) -> str:
    """Render the (start time, duration) plane as an ASCII grid."""
    starts = sorted({p.start_time for p in result.random_points()})
    durations = sorted({p.duration for p in result.random_points()}, reverse=True)
    index = {(p.start_time, p.duration): p for p in result.random_points()}
    lines = ["duration \\ start-time " + " ".join(f"{s:4.0f}" for s in starts)]
    for duration in durations:
        cells = []
        for start in starts:
            point = index.get((start, duration))
            cells.append("  ● " if point and point.hazard else "  ○ ")
        lines.append(f"{duration:20.1f}s " + "".join(cells))
    lines.append("● = hazard, ○ = no hazard")
    return "\n".join(lines)


def main() -> None:
    print("Sweeping Acceleration-attack start times and durations (S1, 50 m gap)...")
    result = run_figure8(
        scenario="S1",
        initial_distance=50.0,
        start_times=np.arange(5.0, 36.0, 3.0),
        durations=np.arange(0.5, 2.6, 0.5),
        context_aware_seeds=[1, 2, 3, 4],
    )
    print()
    print(ascii_grid(result))
    print()
    print(result.format())
    print()
    ca_points = result.context_aware_points()
    if ca_points:
        times = ", ".join(f"{p.start_time:.1f}s" for p in ca_points)
        print(f"Context-Aware activations (all inside the critical window): {times}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Attack-free trajectory (Figure 7): lane keeping without any attack.

Runs an attack-free simulation with trajectory recording, prints the
lane-invasion statistics behind Observation 1 ("lane invasions can happen
even without any attacks") and renders an ASCII strip chart of the
lateral position against the lane boundaries.

Run with::

    python examples/attack_free_trajectory.py
"""

from repro.experiments import run_figure7
from repro.sim.road import Road


def ascii_strip_chart(samples, road, width: int = 61, every: float = 1.0) -> str:
    """Render lateral offset vs time as an ASCII chart."""
    half = road.left_road_edge
    lines = []
    last_time = -every
    for sample in samples:
        if sample.time - last_time < every:
            continue
        last_time = sample.time
        position = int((sample.d + half) / (2 * half) * (width - 1))
        position = max(0, min(width - 1, position))
        row = [" "] * width
        for boundary in (road.right_guardrail, road.right_lane_line, road.left_lane_line, road.left_road_edge):
            index = int((boundary + half) / (2 * half) * (width - 1))
            if 0 <= index < width:
                row[index] = "|"
        row[position] = "#"
        lines.append(f"{sample.time:5.1f}s " + "".join(row))
    return "\n".join(lines)


def main() -> None:
    result = run_figure7(scenario="S1", initial_distance=70.0, seeds=[0])
    print(result.format())
    print()
    road = Road(result.road_spec)
    print("Lateral position over time ('#' = vehicle centre, '|' = lane lines / road edges):")
    print(ascii_strip_chart(result.trajectory, road))
    print()
    run = result.runs[0]
    print(
        f"Lane invasions: {run.lane_invasions} over {run.duration:.0f} s "
        f"({run.lane_invasions_per_second:.2f} per second) — "
        "no hazards, no accidents, but the vehicle does not stay centred (Observation 1)."
    )


if __name__ == "__main__":
    main()

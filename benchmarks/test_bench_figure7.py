"""Benchmark: regenerate Figure 7 (attack-free ego trajectory).

Paper reference: during an attack-free 50 s simulation the ALC does not
keep the ego vehicle centred; lane invasions occur at ~0.46 events/s
(Observation 1), yet no hazards or accidents happen.
"""

from conftest import run_once

from repro.experiments.figure7 import run_figure7


def test_figure7_attack_free_trajectory(benchmark):
    result = run_once(benchmark, run_figure7, "S1", 70.0, [0, 1, 2])

    print("\n" + result.format())

    # A full-length trajectory was recorded.
    assert len(result.trajectory) >= 400
    assert result.runs[0].duration >= 45.0

    # Observation 1: lane invasions happen without any attack...
    assert result.lane_invasions_per_second > 0.0
    # ... the vehicle visibly deviates from the lane centre ...
    assert result.max_abs_lateral_offset > 0.5
    # ... but never produces a hazard or an accident.
    assert all(run.hazards == {} for run in result.runs)
    assert all(run.accidents == {} for run in result.runs)
    # And the ACC has settled behind the slower lead by the end of the run.
    assert result.trajectory[-1].speed < 20.0

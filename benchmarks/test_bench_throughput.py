"""Throughput micro-benchmarks with a machine-readable trail.

Measures the two numbers the performance layer optimises — single-run
step throughput (the compiled CAN codec + step-loop fast paths) and
campaign run throughput (the parallel executor) — and writes them to
``BENCH_throughput.json`` at the repository root, so future PRs can
detect regressions against the recorded trajectory.

The seed-revision baseline stored in the JSON was measured on the same
container that produced this file; speedup factors are only meaningful
when the benchmark machine is comparable.
"""

import json
import os
import time

import pytest

from repro.injection.campaign import Campaign, CampaignConfig
from repro.injection.engine import SimulationConfig, run_simulation

_BENCH_JSON = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_throughput.json")
)

#: Wall-clock numbers of the seed revision (sequential runner, reference
#: codec), measured on the container that generated BENCH_throughput.json.
SEED_BASELINE = {
    "single_run_steps_per_second": 5105.0,
    "campaign_runs_per_second": 5.10,
}

#: PR 4's lockstep batch executor (fused CAN codec, scalar planner and
#: physics) measured 19.2k steps/s per core on the same attack-free S1
#: grid used by test_bench_dense_batch_scaling — the reference the SoA
#: dense-column path is gated against (>= 1.5x at batch >= 64).
DENSE_BATCH_BASELINE_STEPS_PER_S = 19179.0

_results = {}


def _campaign_config(max_steps: int = 5000) -> CampaignConfig:
    """The reduced benchmark grid (matches benchmarks/conftest.py scale)."""
    return CampaignConfig(
        strategy_name="Context-Aware",
        scenarios=("S1", "S2"),
        initial_distances=(50.0, 70.0),
        repetitions=1,
        max_steps=max_steps,
    )


def _write_results() -> None:
    # Merge with the measurements already on disk so partial benchmark
    # selections (e.g. CI's perf-smoke subset, or the multi-core scaling
    # case run on a different host) update their rows without dropping
    # the others.
    measurements = {}
    try:
        with open(_BENCH_JSON) as handle:
            measurements = json.load(handle).get("measurements", {})
    except (OSError, ValueError):
        pass
    measurements.update(_results)
    payload = {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "cpu_count": os.cpu_count(),
        "seed_baseline": SEED_BASELINE,
        "measurements": measurements,
    }
    if "single_run_steps_per_second" in measurements:
        payload["speedup_single_run_vs_seed"] = round(
            measurements["single_run_steps_per_second"]
            / SEED_BASELINE["single_run_steps_per_second"],
            2,
        )
    best_campaign = max(
        (
            measurements.get("campaign_sequential_runs_per_second", 0.0),
            measurements.get("campaign_parallel_runs_per_second", 0.0),
            measurements.get("batched_campaign_runs_per_second", 0.0),
        )
    )
    if best_campaign:
        payload["speedup_campaign_vs_seed"] = round(
            best_campaign / SEED_BASELINE["campaign_runs_per_second"], 2
        )
    with open(_BENCH_JSON, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def test_bench_single_run_step_throughput(benchmark):
    """Steps/second of one attack-free 50 s simulation (best of 3)."""

    def one_run():
        return run_simulation(
            SimulationConfig(scenario="S1", initial_distance=70.0, seed=0)
        )

    best = float("inf")
    steps = 0
    for _ in range(2):  # warm-up-free best-of pre-runs
        start = time.perf_counter()
        result = one_run()
        best = min(best, time.perf_counter() - start)
        steps = round(result.duration / 0.01)
    start = time.perf_counter()
    result = benchmark.pedantic(one_run, rounds=1, iterations=1)
    best = min(best, time.perf_counter() - start)

    assert result.duration >= 45.0
    _results["single_run_steps_per_second"] = round(steps / best, 1)
    _write_results()
    print(f"\nsingle-run throughput: {steps / best:.0f} steps/s (seed: "
          f"{SEED_BASELINE['single_run_steps_per_second']:.0f})")


def test_bench_campaign_throughput(benchmark):
    """Runs/second of the reduced campaign, sequential and with 4 workers.

    Sequential and parallel results must agree exactly (the executor's
    core guarantee); both rates are recorded.  On single-core containers
    the parallel rate will not exceed the sequential one.
    """
    config = _campaign_config()
    total = config.total_runs

    start = time.perf_counter()
    sequential = Campaign(config).run()
    sequential_elapsed = time.perf_counter() - start

    def parallel_run():
        return Campaign(config).run(workers=4)

    start = time.perf_counter()
    parallel = benchmark.pedantic(parallel_run, rounds=1, iterations=1)
    parallel_elapsed = time.perf_counter() - start

    assert len(sequential) == len(parallel) == total
    assert sequential == parallel

    _results["campaign_total_runs"] = total
    _results["campaign_sequential_runs_per_second"] = round(total / sequential_elapsed, 2)
    _results["campaign_parallel_runs_per_second"] = round(total / parallel_elapsed, 2)
    _results["campaign_parallel_workers"] = 4
    _write_results()
    print(
        f"\ncampaign throughput: {total / sequential_elapsed:.2f} runs/s sequential, "
        f"{total / parallel_elapsed:.2f} runs/s with 4 workers "
        f"(seed: {SEED_BASELINE['campaign_runs_per_second']:.2f})"
    )


def test_bench_batched_campaign(benchmark):
    """Lockstep-batched campaign throughput vs sequential, same workload.

    Measures the reduced grid at two repetitions (48 runs — enough
    pending work that retirement keeps the lockstep batch dense) twice
    each way, interleaved, and records the best-of passes plus their
    ratio.  Batched results must equal sequential results exactly (the
    batch executor's core guarantee).  On the 1-CPU container the batch
    amortises per-step Python dispatch through the vectorised CAN codec;
    the recorded speedup is per-core and composes with ``workers=N``.
    """
    config = _campaign_config()
    config = CampaignConfig(
        strategy_name=config.strategy_name,
        scenarios=config.scenarios,
        initial_distances=config.initial_distances,
        repetitions=2,
        max_steps=config.max_steps,
    )
    total = config.total_runs
    batch_size = 24

    sequential_best = float("inf")
    batched_best = float("inf")
    reference = None
    for _ in range(2):
        start = time.perf_counter()
        sequential = Campaign(config).run()
        sequential_best = min(sequential_best, time.perf_counter() - start)
        start = time.perf_counter()
        batched = Campaign(config).run(batch_size=batch_size)
        batched_best = min(batched_best, time.perf_counter() - start)
        if reference is None:
            reference = sequential
        assert sequential == reference
        assert batched == reference

    def batched_run():
        return Campaign(config).run(batch_size=batch_size)

    # The pytest-benchmark pass is excluded from the recorded comparison so
    # both modes contribute exactly two interleaved samples.
    final = benchmark.pedantic(batched_run, rounds=1, iterations=1)
    assert final == reference

    _results["batched_campaign_total_runs"] = total
    _results["batched_campaign_batch_size"] = batch_size
    _results["batched_campaign_runs_per_second"] = round(total / batched_best, 2)
    _results["batched_campaign_sequential_runs_per_second"] = round(
        total / sequential_best, 2
    )
    _results["batched_campaign_speedup_vs_sequential"] = round(
        sequential_best / batched_best, 2
    )
    _write_results()
    print(
        f"\nbatched campaign: {total / batched_best:.2f} runs/s at batch_size={batch_size} "
        f"vs {total / sequential_best:.2f} runs/s sequential "
        f"({sequential_best / batched_best:.2f}x, same {total}-run workload)"
    )


def test_bench_dense_batch_scaling(benchmark):
    """Dense SoA batch kernel: per-core steps/s at batch 8/64/256.

    Runs attack-free S1 workloads (one run per batch row, 1500 steps
    each) through :func:`repro.kernel.run_batched` so every row rides
    the dense column path end to end, and records the scaling curve as
    ``dense_batch_steps_per_s_{8,64,256}`` rows.  The acceptance bar is
    relative to the PR 4 batched-campaign *per-core* step throughput
    (the fused-codec lockstep without SoA residency): batch >= 64 must
    show >= 1.5x.  Bit-for-bit equivalence of the dense path is pinned
    separately by tests/integration/test_batch_equivalence.py; this
    case only spot-checks one width against the sequential runner.
    """
    from repro.kernel import run_batched

    def tasks_for(width):
        return [
            (
                SimulationConfig(
                    scenario="S1", initial_distance=70.0, seed=i, max_steps=1500
                ),
                None,
            )
            for i in range(width)
        ]

    rates = {}
    for width in (8, 64, 256):
        best = float("inf")
        results = None
        for _ in range(2):
            batch = tasks_for(width)
            start = time.perf_counter()
            results = run_batched(batch, batch_size=width)
            best = min(best, time.perf_counter() - start)
        rates[width] = (1500 * len(results)) / best
        if width == 8:
            sequential = [run_simulation(config) for config, _ in tasks_for(width)]
            assert results == sequential

    def final_pass():
        return run_batched(tasks_for(256), batch_size=256)

    start = time.perf_counter()
    final = benchmark.pedantic(final_pass, rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    rates[256] = max(rates[256], (1500 * len(final)) / elapsed)

    baseline = DENSE_BATCH_BASELINE_STEPS_PER_S
    for width, rate in rates.items():
        _results[f"dense_batch_steps_per_s_{width}"] = round(rate, 1)
    _results["dense_batch_speedup_vs_pr4_lockstep"] = round(rates[256] / baseline, 2)
    _write_results()
    print(
        "\ndense batch scaling: "
        + ", ".join(f"{rate:,.0f} steps/s @ {width}" for width, rate in rates.items())
        + f" (PR 4 lockstep per-core: {baseline:,.0f}; "
        f"best speedup {rates[256] / baseline:.2f}x)"
    )


def test_bench_search_throughput(benchmark):
    """Attack-search evaluations/second through the batched kernel.

    Runs a fixed-budget random search (the repro.search subsystem's
    workload: decode → lockstep batch → objective) on the pinned S1 +
    Deceleration case and records unique-point evaluations per second.
    The search trajectory is deterministic, so the workload is identical
    across revisions; the rate tracks simulator throughput plus the
    search layer's own overhead (decode, memo, audit trail).
    """
    from repro.core.attack_types import AttackType
    from repro.search import (
        HazardObjective,
        SearchConfig,
        SearchDriver,
        attack_search_space,
        make_optimizer,
    )

    budget = 12

    def one_search():
        space = attack_search_space(
            scenario="S1", attack_types=(AttackType.DECELERATION,), max_steps=2500
        )
        config = SearchConfig(budget=budget, master_seed=2022, batch_size=8)
        driver = SearchDriver(
            space,
            HazardObjective(),
            lambda s: make_optimizer("random", s, seed=2022, generation_size=6),
            config,
        )
        return driver.run()

    best = float("inf")
    start = time.perf_counter()
    result = one_search()
    best = min(best, time.perf_counter() - start)
    assert result.evaluations_used == budget
    assert result.best is not None

    start = time.perf_counter()
    final = benchmark.pedantic(one_search, rounds=1, iterations=1)
    best = min(best, time.perf_counter() - start)
    assert [e.score for e in final.evaluations] == [e.score for e in result.evaluations]

    _results["search_budget"] = budget
    _results["search_evals_per_s"] = round(budget / best, 2)
    _write_results()
    print(f"\nattack search: {budget / best:.2f} evals/s (budget {budget}, batch_size=8)")


def test_bench_resilient_campaign(benchmark):
    """Supervised-executor overhead on the clean (fault-free) path.

    Runs the reduced campaign plain and under the supervised executor
    (same workload, interleaved best-of-2 each way) and records both
    rates plus the overhead percentage.  The supervision layer's chunk
    bookkeeping must stay within a few percent of the plain executor —
    ``benchmarks/check_regression.py`` gates the recorded overhead — and
    the results must be bit-identical (the resilience layer's core
    guarantee).
    """
    config = _campaign_config(max_steps=2500)
    total = config.total_runs

    plain_best = float("inf")
    resilient_best = float("inf")
    reference = None
    for _ in range(2):
        start = time.perf_counter()
        plain = Campaign(config).run()
        plain_best = min(plain_best, time.perf_counter() - start)
        start = time.perf_counter()
        outcome = Campaign(config).run_resilient(workers=1)
        resilient_best = min(resilient_best, time.perf_counter() - start)
        if reference is None:
            reference = plain
        assert plain == reference
        assert outcome.completed_results == reference
        assert not outcome.report.quarantine

    def resilient_run():
        return Campaign(config).run_resilient(workers=1)

    final = benchmark.pedantic(resilient_run, rounds=1, iterations=1)
    assert final.completed_results == reference

    overhead_pct = 100.0 * (resilient_best - plain_best) / plain_best
    _results["resilient_campaign_total_runs"] = total
    _results["resilient_campaign_runs_per_s"] = round(total / resilient_best, 2)
    _results["resilient_plain_runs_per_s"] = round(total / plain_best, 2)
    _results["resilient_supervision_overhead_pct"] = round(overhead_pct, 2)
    _write_results()
    print(
        f"\nresilient campaign: {total / resilient_best:.2f} runs/s supervised vs "
        f"{total / plain_best:.2f} runs/s plain ({overhead_pct:+.1f}% overhead)"
    )


def test_bench_telemetry_overhead(benchmark):
    """Full-rate telemetry cost on a single run (the "<5% when on" bound).

    Runs one attack-free 50 s simulation plain and with a
    :class:`repro.telemetry.Telemetry` probing every cycle (sampling=1,
    the most expensive setting) and records both rates plus the overhead
    percentage — ``benchmarks/check_regression.py`` gates the recorded
    row at 5%.  Shared CI runners drift by more than the bound within a
    single test, so the overhead is the *median of paired ratios*
    (probed/plain back to back, nine pairs): each ratio sees the same
    machine state, the pair order alternates so a monotonic slowdown
    cannot systematically penalise one arm, and the median discards
    throttling outliers.  The probed result must be bit-identical to the
    plain one (the telemetry layer's core guarantee: observe, never
    perturb).
    """
    import statistics

    from repro.telemetry import Telemetry, TelemetryConfig

    config = SimulationConfig(scenario="S1", initial_distance=70.0, seed=0)

    def plain_run():
        return run_simulation(config)

    def probed_run():
        return run_simulation(
            config, telemetry=Telemetry(TelemetryConfig(sample_every=1))
        )

    def timed(runner):
        start = time.perf_counter()
        result = runner()
        return result, time.perf_counter() - start

    plain_best = float("inf")
    probed_best = float("inf")
    ratios = []
    reference = None
    steps = 0
    for pair in range(9):
        if pair % 2 == 0:
            plain, plain_elapsed = timed(plain_run)
            probed, probed_elapsed = timed(probed_run)
        else:
            probed, probed_elapsed = timed(probed_run)
            plain, plain_elapsed = timed(plain_run)
        plain_best = min(plain_best, plain_elapsed)
        probed_best = min(probed_best, probed_elapsed)
        ratios.append(probed_elapsed / plain_elapsed)
        if reference is None:
            reference = plain
            steps = round(plain.duration / 0.01)
        assert plain == reference
        assert probed == reference

    final = benchmark.pedantic(probed_run, rounds=1, iterations=1)
    assert final == reference

    overhead_pct = 100.0 * (statistics.median(ratios) - 1.0)
    _results["telemetry_single_run_steps_per_second"] = round(steps / probed_best, 1)
    _results["telemetry_plain_steps_per_second"] = round(steps / plain_best, 1)
    _results["telemetry_overhead_pct"] = round(overhead_pct, 2)
    _write_results()
    print(
        f"\ntelemetry overhead: {steps / probed_best:.0f} steps/s probed (sampling=1) vs "
        f"{steps / plain_best:.0f} steps/s plain ({overhead_pct:+.1f}%)"
    )


def test_bench_flight_recorder_overhead(benchmark):
    """Full-rate flight-recorder cost on a single run (the "<3%" bound).

    Runs one attack-free 50 s simulation plain and with the flight
    recorder capturing every cycle into its ring (the most expensive
    setting; the run is boring, so nothing flushes and the measured cost
    is pure capture).  Methodology follows the telemetry bench above:
    nine order-alternating plain/tapped pairs on the same machine state,
    overhead is the *median of paired ratios* so runner drift and
    throttling outliers cannot fake a regression —
    ``benchmarks/check_regression.py`` gates the recorded row at 3%.
    The tapped result must be bit-identical to the plain one (the
    recorder's core guarantee: observe, never perturb).
    """
    import statistics
    import tempfile

    from repro.obs.recorder import FlightRecorderConfig

    config = SimulationConfig(scenario="S1", initial_distance=70.0, seed=0)
    recorder = FlightRecorderConfig(
        output_dir=tempfile.mkdtemp(prefix="bench-flight-"),
        capacity=300,
        capture_every=1,
    )

    def plain_run():
        return run_simulation(config)

    def tapped_run():
        return run_simulation(config, recorder=recorder)

    def timed(runner):
        start = time.perf_counter()
        result = runner()
        return result, time.perf_counter() - start

    plain_best = float("inf")
    tapped_best = float("inf")
    ratios = []
    reference = None
    steps = 0
    for pair in range(9):
        if pair % 2 == 0:
            plain, plain_elapsed = timed(plain_run)
            tapped, tapped_elapsed = timed(tapped_run)
        else:
            tapped, tapped_elapsed = timed(tapped_run)
            plain, plain_elapsed = timed(plain_run)
        plain_best = min(plain_best, plain_elapsed)
        tapped_best = min(tapped_best, tapped_elapsed)
        ratios.append(tapped_elapsed / plain_elapsed)
        if reference is None:
            reference = plain
            steps = round(plain.duration / 0.01)
        assert plain == reference
        assert tapped == reference

    final = benchmark.pedantic(tapped_run, rounds=1, iterations=1)
    assert final == reference

    overhead_pct = 100.0 * (statistics.median(ratios) - 1.0)
    _results["flight_recorder_steps_per_second"] = round(steps / tapped_best, 1)
    _results["flight_recorder_plain_steps_per_second"] = round(steps / plain_best, 1)
    _results["flight_recorder_overhead_pct"] = round(overhead_pct, 2)
    _write_results()
    print(
        f"\nflight recorder overhead: {steps / tapped_best:.0f} steps/s tapped (full rate) vs "
        f"{steps / plain_best:.0f} steps/s plain ({overhead_pct:+.1f}%)"
    )


def test_bench_campaign_scaling(benchmark):
    """Parallel executor scaling curve: campaign runs/s at workers = 1/2/4.

    Records the curve into ``BENCH_throughput.json`` (the open ROADMAP
    item); single-core containers cannot show parallel scaling, so the
    case skips there rather than recording a misleading flat curve.
    Results for every worker count must be bit-identical.
    """
    if (os.cpu_count() or 1) < 2:
        pytest.skip("scaling curve needs a multi-core machine")

    config = _campaign_config(max_steps=2500)
    total = config.total_runs
    scaling = {}
    baseline = None
    for workers in (1, 2, 4):
        def run_with_workers(w=workers):
            return Campaign(config).run(workers=w, parallel=w > 1)

        if workers == 4:
            start = time.perf_counter()
            results = benchmark.pedantic(run_with_workers, rounds=1, iterations=1)
            elapsed = time.perf_counter() - start
        else:
            start = time.perf_counter()
            results = run_with_workers()
            elapsed = time.perf_counter() - start
        if baseline is None:
            baseline = results
        assert results == baseline
        scaling[str(workers)] = round(total / elapsed, 2)

    _results["campaign_scaling_total_runs"] = total
    _results["campaign_scaling_runs_per_second"] = scaling
    _write_results()
    print(f"\ncampaign scaling (runs/s by workers): {scaling}")


def test_bench_cached_campaign(benchmark, tmp_path):
    """Run-cache reuse: warm campaign runs/s served from blobs, zero paid.

    Cold pass populates a fresh content-addressed cache, warm passes
    answer the same grid from disk through a *fresh* ``RunCache`` handle
    (so counters describe each pass alone).  Records the warm serving
    rate and the warm hit rate; the warm pass must pay zero simulations
    and return results bit-identical to the uncached campaign.
    """
    from repro.service import RunCache

    config = _campaign_config(max_steps=2500)
    total = config.total_runs
    cache_dir = str(tmp_path / "run-cache")

    reference = Campaign(config).run()
    cold_cache = RunCache(cache_dir)
    start = time.perf_counter()
    cold = Campaign(config).run(cache=cold_cache)
    cold_elapsed = time.perf_counter() - start
    assert cold == reference
    assert cold_cache.stats.writes == total

    warm_best = float("inf")
    warm_stats = None
    for _ in range(2):
        warm_cache = RunCache(cache_dir)
        start = time.perf_counter()
        warm = Campaign(config).run(cache=warm_cache)
        warm_best = min(warm_best, time.perf_counter() - start)
        assert warm == reference
        assert warm_cache.stats.misses == 0, warm_cache.stats.as_dict()
        assert warm_cache.stats.hits == total
        warm_stats = warm_cache.stats

    def warm_run():
        return Campaign(config).run(cache=RunCache(cache_dir))

    final = benchmark.pedantic(warm_run, rounds=1, iterations=1)
    assert final == reference

    _results["cached_campaign_total_runs"] = total
    _results["cached_campaign_cold_runs_per_s"] = round(total / cold_elapsed, 2)
    _results["cached_campaign_warm_runs_per_s"] = round(total / warm_best, 2)
    _results["cache_hit_rate"] = round(warm_stats.hit_rate, 4)
    _write_results()
    print(
        f"\ncached campaign: {total / warm_best:.2f} runs/s warm "
        f"(hit rate {warm_stats.hit_rate:.0%}) vs {total / cold_elapsed:.2f} runs/s cold "
        f"({cold_elapsed / warm_best:.1f}x, {total}-run grid, zero simulations paid warm)"
    )

"""Benchmark: regenerate Table V (strategic value corruption and the driver).

Paper reference (Context-Aware attacks, per attack type):

* Without strategic value corruption the injected maxima are perceptible:
  the alert driver prevents a large share of Acceleration (83.3%),
  Deceleration (58.8%) and Deceleration-Steering (70.8%) hazards.
* Steering attacks are never prevented (TTH ≈ 1.1–1.6 s < 2.5 s reaction).
* With strategic value corruption the total number of ADAS alerts drops to
  almost zero and the driver prevents (almost) nothing, while the overall
  hazard rate stays high (83.4%).
"""

from conftest import run_once

from repro.experiments.table5 import run_table5


def test_table5_strategic_value_corruption(benchmark, bench_scale):
    result = run_once(benchmark, run_table5, bench_scale)

    print("\n" + result.format())

    fixed = result.without_corruption
    strategic = result.with_corruption

    steering_types = ("Steering-Left", "Steering-Right", "Acceleration-Steering")
    longitudinal_types = ("Acceleration", "Deceleration", "Deceleration-Steering")

    # Observation 4: with fixed (maximum) values, the driver prevents a
    # substantial number of longitudinal-attack hazards.
    prevented_fixed = sum(fixed[name].prevented_hazards for name in longitudinal_types)
    assert prevented_fixed > 0

    # Observation 5: steering attacks are effective and essentially never
    # prevented by the driver, in either mode.
    for summaries in (fixed, strategic):
        steering_hazards = sum(summaries[name].hazards for name in steering_types)
        steering_prevented = sum(summaries[name].prevented_hazards for name in steering_types)
        steering_runs = sum(summaries[name].runs for name in steering_types)
        assert steering_hazards >= 0.5 * steering_runs
        assert steering_prevented <= 0.2 * max(steering_hazards, 1)

    # Observation 6: strategic corruption evades detection — alerts stay
    # rare (the paper: 4 alerts in 1,440 runs) and the driver prevents no
    # more hazards than with fixed values.
    alerts_fixed = sum(summary.alerts for summary in fixed.values())
    alerts_strategic = sum(summary.alerts for summary in strategic.values())
    runs_strategic = sum(summary.runs for summary in strategic.values())
    prevented_strategic = sum(summary.prevented_hazards for summary in strategic.values())
    prevented_fixed_all = sum(summary.prevented_hazards for summary in fixed.values())
    assert alerts_strategic <= max(alerts_fixed, 0.15 * runs_strategic)
    assert prevented_strategic <= prevented_fixed_all

    # Overall hazard coverage with corruption stays high.
    total_runs = sum(summary.runs for summary in strategic.values())
    total_hazards = sum(summary.hazards for summary in strategic.values())
    assert total_hazards >= 0.7 * total_runs

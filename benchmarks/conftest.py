"""Benchmark harness configuration.

Each benchmark regenerates one table or figure of the paper on a reduced
grid (set ``REPRO_FULL_SCALE=1`` for the paper-sized grid), prints the
regenerated rows/series, and asserts the qualitative shape of the paper's
result.  ``pytest-benchmark`` measures the wall-clock cost of one full
regeneration (``rounds=1``) rather than micro-benchmarking.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, os.path.abspath(_SRC))

import pytest  # noqa: E402

from repro.experiments.scale import ExperimentScale  # noqa: E402


@pytest.fixture(scope="session")
def bench_scale() -> ExperimentScale:
    """Grid used by the benchmark harness (reduced unless REPRO_FULL_SCALE)."""
    return ExperimentScale.from_environment(
        ExperimentScale(
            scenarios=("S1", "S2"),
            initial_distances=(50.0, 70.0),
            repetitions=1,
            random_st_dur_repetitions=2,
        )
    )


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

"""Benchmark: regenerate Table IV (attack strategy comparison).

Paper reference (Table IV, alert driver in the loop):

    Strategy        Alerts   Hazards  Accidents  Hazards&noAlerts  TTH
    Random-ST+DUR   22.6%    39.8%    22.9%      21.4%             1.61 s
    Random-ST       24.0%    53.5%    35.8%      32.9%             1.49 s
    Random-DUR      14.6%    26.9%    23.1%      15.9%             1.92 s
    Context-Aware    0.3%    83.4%    44.5%      83.1%             2.43 s

The benchmark asserts the *shape*: Context-Aware achieves the highest
hazard rate, with (almost) no alerts, and almost all of its hazards occur
without any warning; random baselines are substantially less effective.
"""

from conftest import run_once

from repro.experiments.table4 import run_table4


def test_table4_strategy_comparison(benchmark, bench_scale):
    result = run_once(benchmark, run_table4, bench_scale)

    print("\n" + result.format())

    context_aware = result.summary_for("Context-Aware")
    no_attack = result.summary_for("No-Attack")
    random_rates = [
        summary.hazard_rate for summary in result.summaries if summary.strategy.startswith("Random")
    ]

    # Attack-free baseline: no hazards, no accidents, but lane invasions occur.
    assert no_attack.hazards == 0
    assert no_attack.accidents == 0
    assert no_attack.lane_invasions_per_second > 0.0

    # Context-Aware dominates every random baseline in hazard coverage.
    assert context_aware.hazard_rate > max(random_rates)
    assert context_aware.hazard_rate >= 0.7

    # ... while raising (almost) no alerts: hazards occur without warnings.
    assert context_aware.alert_rate <= 0.1
    assert context_aware.hazards_without_alerts_rate >= 0.9 * context_aware.hazard_rate

    # Time-to-hazard stays in the paper's ballpark of a few seconds.
    assert 0.5 <= context_aware.tth_mean <= 6.0

"""Perf-regression gate for CI.

Compares a freshly measured ``BENCH_throughput.json`` against the
baseline committed in the repository and fails (exit code 1) when the
single-run step throughput regressed more than the allowed fraction::

    PYTHONPATH=src python benchmarks/check_regression.py \
        --baseline /tmp/bench_baseline.json \
        --current BENCH_throughput.json \
        --max-regression 0.20

CI runners are noisy, so the gate only guards the single-run steps/s
number (the campaign rate divides out the same way) with a generous
threshold: it exists to catch order-of-magnitude mistakes (an accidental
de-optimisation of the hot loop), not 5 % jitter.
"""

import argparse
import json
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, help="committed BENCH_throughput.json")
    parser.add_argument("--current", required=True, help="freshly measured BENCH_throughput.json")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.20,
        help="maximum allowed fractional drop in single-run steps/s (default 0.20)",
    )
    args = parser.parse_args(argv)

    try:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
    except (OSError, ValueError) as error:
        print(f"cannot read baseline {args.baseline}: {error}")
        return 1
    try:
        with open(args.current) as handle:
            current = json.load(handle)
    except (OSError, ValueError) as error:
        print(f"cannot read current measurement {args.current}: {error}")
        return 1
    if not isinstance(baseline, dict) or not isinstance(current, dict):
        print("benchmark files must contain a JSON object")
        return 1

    key = "single_run_steps_per_second"
    try:
        baseline_rate = float(baseline["measurements"][key])
    except (KeyError, TypeError, ValueError):
        print(f"baseline has no {key} measurement; nothing to compare against")
        return 0
    try:
        current_rate = float(current["measurements"][key])
    except (KeyError, TypeError, ValueError):
        print(f"current run produced no {key} measurement")
        return 1

    change = (current_rate - baseline_rate) / baseline_rate
    print(
        f"single-run throughput: baseline {baseline_rate:.0f} steps/s, "
        f"current {current_rate:.0f} steps/s ({change:+.1%})"
    )
    if change < -args.max_regression:
        print(
            f"FAIL: regression beyond the allowed {args.max_regression:.0%} "
            "(see benchmarks/test_bench_throughput.py)"
        )
        return 1
    print("OK: within the allowed envelope")
    return 0


if __name__ == "__main__":
    sys.exit(main())

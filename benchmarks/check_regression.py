"""Perf-regression gate for CI.

Compares a freshly measured ``BENCH_throughput.json`` against the
baseline committed in the repository and fails (exit code 1) when the
single-run step throughput regressed more than the allowed fraction::

    PYTHONPATH=src python benchmarks/check_regression.py \
        --baseline /tmp/bench_baseline.json \
        --current BENCH_throughput.json \
        --max-regression 0.20

CI runners are noisy, so the gate only guards the single-run steps/s
number (the campaign rate divides out the same way) with a generous
threshold: it exists to catch order-of-magnitude mistakes (an accidental
de-optimisation of the hot loop), not 5 % jitter.

The search-throughput row (``search_evals_per_s``) and the supervised
campaign row (``resilient_campaign_runs_per_s``) are gated the same way
*when both files carry them* — a baseline predating those subsystems
passes trivially, but once a row is in the committed baseline a current
run may not silently drop or regress it.

The supervised executor additionally carries an absolute bound: the
clean-path overhead it records (``resilient_supervision_overhead_pct``,
supervised vs plain executor on the same workload) may not exceed
``--max-overhead`` (default 5%) — supervision must stay an invisible
wrapper when nothing fails.
"""

import argparse
import json
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, help="committed BENCH_throughput.json")
    parser.add_argument("--current", required=True, help="freshly measured BENCH_throughput.json")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.20,
        help="maximum allowed fractional drop in single-run steps/s (default 0.20)",
    )
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=5.0,
        help="maximum allowed supervision overhead on the clean path, "
        "percent (default 5.0)",
    )
    args = parser.parse_args(argv)

    try:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
    except (OSError, ValueError) as error:
        print(f"cannot read baseline {args.baseline}: {error}")
        return 1
    try:
        with open(args.current) as handle:
            current = json.load(handle)
    except (OSError, ValueError) as error:
        print(f"cannot read current measurement {args.current}: {error}")
        return 1
    if not isinstance(baseline, dict) or not isinstance(current, dict):
        print("benchmark files must contain a JSON object")
        return 1

    exit_code = 0
    for key, label, unit, precision in (
        ("single_run_steps_per_second", "single-run throughput", "steps/s", 0),
        ("search_evals_per_s", "attack-search throughput", "evals/s", 2),
        ("resilient_campaign_runs_per_s", "supervised-campaign throughput", "runs/s", 2),
    ):
        exit_code = max(
            exit_code,
            _check_key(baseline, current, key, label, unit, precision, args.max_regression),
        )
    exit_code = max(exit_code, _check_overhead(current, args.max_overhead))
    if exit_code == 0:
        print("OK: within the allowed envelope")
    return exit_code


def _check_key(
    baseline: dict,
    current: dict,
    key: str,
    label: str,
    unit: str,
    precision: int,
    max_regression: float,
) -> int:
    """Gate one measurement key; a baseline without the key gates nothing."""
    try:
        baseline_rate = float(baseline["measurements"][key])
    except (KeyError, TypeError, ValueError):
        print(f"baseline has no {key} measurement; nothing to compare against")
        return 0
    try:
        current_rate = float(current["measurements"][key])
    except (KeyError, TypeError, ValueError):
        print(f"current run produced no {key} measurement")
        return 1

    change = (current_rate - baseline_rate) / baseline_rate
    print(
        f"{label}: baseline {baseline_rate:.{precision}f} {unit}, "
        f"current {current_rate:.{precision}f} {unit} ({change:+.1%})"
    )
    if change < -max_regression:
        print(
            f"FAIL: {key} regression beyond the allowed {max_regression:.0%} "
            "(see benchmarks/test_bench_throughput.py)"
        )
        return 1
    return 0


def _check_overhead(current: dict, max_overhead: float) -> int:
    """Bound the supervised executor's clean-path overhead (absolute %).

    Unlike the rate gates this compares two rows of the *same* measured
    run (supervised vs plain executor on the same workload, same
    machine), so it is immune to runner-speed drift between baseline
    and current.  A run without the row gates nothing.
    """
    try:
        overhead = float(current["measurements"]["resilient_supervision_overhead_pct"])
    except (KeyError, TypeError, ValueError):
        print("current run carries no supervision-overhead measurement; skipping bound")
        return 0
    print(
        f"supervision overhead (clean path): {overhead:+.1f}% "
        f"(bound {max_overhead:.1f}%)"
    )
    if overhead > max_overhead:
        print(
            f"FAIL: supervised executor costs {overhead:.1f}% on the clean path, "
            f"above the allowed {max_overhead:.1f}% "
            "(see benchmarks/test_bench_throughput.py::test_bench_resilient_campaign)"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Perf-regression gate for CI.

Compares a freshly measured ``BENCH_throughput.json`` against the
baseline committed in the repository and fails (exit code 1) when the
single-run step throughput regressed more than the allowed fraction::

    PYTHONPATH=src python benchmarks/check_regression.py \
        --baseline /tmp/bench_baseline.json \
        --current BENCH_throughput.json \
        --max-regression 0.20

CI runners are noisy, so the gate only guards the single-run steps/s
number (the campaign rate divides out the same way) with a generous
threshold: it exists to catch order-of-magnitude mistakes (an accidental
de-optimisation of the hot loop), not 5 % jitter.

The search-throughput row (``search_evals_per_s``) and the supervised
campaign row (``resilient_campaign_runs_per_s``) are gated the same way
*when both files carry them* — a baseline predating those subsystems
passes trivially, but once a row is in the committed baseline a current
run may not silently drop or regress it.

Two rows additionally carry absolute bounds, compared within the *same*
measured run (so they are immune to runner-speed drift between baseline
and current):

- ``resilient_supervision_overhead_pct`` (supervised vs plain executor
  on the same workload) may not exceed ``--max-overhead`` (default 5%)
  — supervision must stay an invisible wrapper when nothing fails.
- ``telemetry_overhead_pct`` (probed-at-full-rate vs unprobed single
  run) may not exceed ``--max-telemetry-overhead`` (default 5%) — the
  observability layer's contract is "cheap when on, free when off".
- ``flight_recorder_overhead_pct`` (full-rate ring capture vs untapped
  single run) may not exceed ``--max-flight-recorder-overhead``
  (default 3%) — the black box must stay cheap enough to leave on for
  whole campaigns.

Every gate is evaluated even after one fails, so a red CI run reports
the full set of regressions at once instead of one per push.
"""

import argparse
import json
import sys
from typing import List, Optional

#: Relative gates: (measurement key, human label, unit, display precision).
RATE_GATES = (
    ("single_run_steps_per_second", "single-run throughput", "steps/s", 0),
    ("search_evals_per_s", "attack-search throughput", "evals/s", 2),
    ("resilient_campaign_runs_per_s", "supervised-campaign throughput", "runs/s", 2),
    ("dense_batch_steps_per_s_64", "dense-batch throughput (batch 64)", "steps/s", 0),
    ("dense_batch_steps_per_s_256", "dense-batch throughput (batch 256)", "steps/s", 0),
    ("cached_campaign_warm_runs_per_s", "warm cache serving rate", "runs/s", 2),
    ("cache_hit_rate", "warm cache hit rate", "", 4),
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, help="committed BENCH_throughput.json")
    parser.add_argument("--current", required=True, help="freshly measured BENCH_throughput.json")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.20,
        help="maximum allowed fractional drop in single-run steps/s (default 0.20)",
    )
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=5.0,
        help="maximum allowed supervision overhead on the clean path, "
        "percent (default 5.0)",
    )
    parser.add_argument(
        "--max-telemetry-overhead",
        type=float,
        default=5.0,
        help="maximum allowed full-rate telemetry overhead on a single run, "
        "percent (default 5.0)",
    )
    parser.add_argument(
        "--max-flight-recorder-overhead",
        type=float,
        default=3.0,
        help="maximum allowed full-rate flight-recorder overhead on a single "
        "run, percent (default 3.0)",
    )
    args = parser.parse_args(argv)

    try:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
    except (OSError, ValueError) as error:
        print(f"cannot read baseline {args.baseline}: {error}")
        return 1
    try:
        with open(args.current) as handle:
            current = json.load(handle)
    except (OSError, ValueError) as error:
        print(f"cannot read current measurement {args.current}: {error}")
        return 1
    if not isinstance(baseline, dict) or not isinstance(current, dict):
        print("benchmark files must contain a JSON object")
        return 1

    failing: List[str] = []

    def gate(key: str, failed: bool) -> None:
        if failed:
            failing.append(key)

    for key, label, unit, precision in RATE_GATES:
        gate(key, _check_key(baseline, current, key, label, unit, precision, args.max_regression))
    gate(
        "resilient_supervision_overhead_pct",
        _check_overhead(
            current,
            key="resilient_supervision_overhead_pct",
            label="supervision overhead (clean path)",
            bound=args.max_overhead,
            hint="benchmarks/test_bench_throughput.py::test_bench_resilient_campaign",
        ),
    )
    gate(
        "telemetry_overhead_pct",
        _check_overhead(
            current,
            key="telemetry_overhead_pct",
            label="telemetry overhead (sampling every cycle)",
            bound=args.max_telemetry_overhead,
            hint="benchmarks/test_bench_throughput.py::test_bench_telemetry_overhead",
        ),
    )
    gate(
        "flight_recorder_overhead_pct",
        _check_overhead(
            current,
            key="flight_recorder_overhead_pct",
            label="flight-recorder overhead (capture every cycle)",
            bound=args.max_flight_recorder_overhead,
            hint="benchmarks/test_bench_throughput.py::test_bench_flight_recorder_overhead",
        ),
    )

    if failing:
        print(f"FAIL: {len(failing)} gate(s) failed: {', '.join(failing)}")
        return 1
    print("OK: within the allowed envelope")
    return 0


def _check_key(
    baseline: dict,
    current: dict,
    key: str,
    label: str,
    unit: str,
    precision: int,
    max_regression: float,
) -> bool:
    """Gate one measurement key; a baseline without the key gates nothing.

    Returns ``True`` when the gate failed.
    """
    baseline_rate = _measurement(baseline, key)
    if baseline_rate is None:
        print(f"baseline has no {key} measurement; nothing to compare against")
        return False
    current_rate = _measurement(current, key)
    if current_rate is None:
        print(f"FAIL: current run produced no {key} measurement")
        return True

    change = (current_rate - baseline_rate) / baseline_rate
    print(
        f"{label}: baseline {baseline_rate:.{precision}f} {unit}, "
        f"current {current_rate:.{precision}f} {unit} ({change:+.1%})"
    )
    if change < -max_regression:
        print(
            f"FAIL: {key} regression beyond the allowed {max_regression:.0%} "
            "(see benchmarks/test_bench_throughput.py)"
        )
        return True
    return False


def _check_overhead(current: dict, key: str, label: str, bound: float, hint: str) -> bool:
    """Bound an overhead row of the current run (absolute %).

    Unlike the rate gates this compares two rows of the *same* measured
    run (instrumented vs plain on the same workload, same machine), so
    it is immune to runner-speed drift between baseline and current.  A
    run without the row gates nothing.  Returns ``True`` on failure.
    """
    overhead = _measurement(current, key)
    if overhead is None:
        print(f"current run carries no {key} measurement; skipping bound")
        return False
    print(f"{label}: {overhead:+.1f}% (bound {bound:.1f}%)")
    if overhead > bound:
        print(f"FAIL: {key} is {overhead:.1f}%, above the allowed {bound:.1f}% (see {hint})")
        return True
    return False


def _measurement(data: dict, key: str) -> Optional[float]:
    try:
        return float(data["measurements"][key])
    except (KeyError, TypeError, ValueError):
        return None


if __name__ == "__main__":
    sys.exit(main())

"""Benchmark: regenerate Figure 8 (attack start time × duration space).

Paper reference: for Acceleration attacks there is a critical start-time
window outside of which no attack causes a hazard regardless of duration;
inside the window a minimum duration is needed; the Context-Aware points
all land inside the window and all result in hazards.
"""

import numpy as np
from conftest import run_once

from repro.experiments.figure8 import run_figure8


def _run():
    # The ego closes on the 50 m lead almost immediately, so the critical
    # window sits early in the run; the sweep therefore starts at 1 s.
    return run_figure8(
        scenario="S1",
        initial_distance=50.0,
        start_times=np.arange(1.0, 32.0, 5.0),
        durations=np.arange(0.5, 2.6, 0.5),
        context_aware_seeds=[1, 2, 3, 4],
    )


def test_figure8_parameter_space(benchmark):
    result = run_once(benchmark, _run)

    print("\n" + result.format())

    random_points = result.random_points()
    hazardous = [point for point in random_points if point.hazard]
    non_hazardous = [point for point in random_points if not point.hazard]

    # Both outcomes exist: the random sweep wastes many injections.
    assert hazardous and non_hazardous

    # A critical start-time window exists: late attacks never cause hazards.
    window = result.critical_window()
    assert window is not None
    latest_start = max(point.start_time for point in random_points)
    assert window[1] < latest_start

    # Context-Aware activations all fall inside the window and all succeed.
    ca_points = result.context_aware_points()
    assert ca_points
    assert result.context_aware_hazard_rate() == 1.0
    assert all(window[0] - 1.0 <= point.start_time <= window[1] + 1.0 for point in ca_points)

"""cProfile helper: where does a simulation run spend its time?

Profiles one attack-free and one attacked run through the kernel step
pipeline and prints the top cumulative functions of each, so the next
performance PR starts from data instead of guesses::

    PYTHONPATH=src python benchmarks/profile_run.py
    PYTHONPATH=src python benchmarks/profile_run.py --steps 2000 --top 30

With ``--json`` the cProfile pass is replaced by a telemetry probe run
(sampling every cycle) and the per-stage wall-time histograms are
emitted as machine-readable JSON — same data the observability layer
collects in production runs, so the two views never drift::

    PYTHONPATH=src python benchmarks/profile_run.py --json | python -m json.tool

The attacked run uses the paper's S1/70 m with a Context-Aware
Deceleration attack (driver engagement, corruption and the eavesdropper
all on the profile).

With ``--batch N`` the workload becomes N attack-free runs through the
lockstep batch executor instead of the two sequential runs, so the
dense SoA column path is what lands on the profile; combined with
``--json`` the per-stage shares come from the batch runner's own
``perf.stage.*`` histograms (one timing sample per stage column per
sampled cycle) — the before/after view for stage vectorisation work::

    PYTHONPATH=src python benchmarks/profile_run.py --batch 64 --json
"""

import argparse
import cProfile
import json
import pstats
import time
from typing import Any, Dict, Optional

from repro.core.attack_types import AttackType
from repro.core.strategies import strategy_by_name
from repro.injection.engine import SimulationConfig, run_simulation
from repro.telemetry import STAGE_METRIC, Telemetry, TelemetryConfig


def profile_once(label: str, config: SimulationConfig, strategy_name=None, top: int = 20) -> None:
    strategy = strategy_by_name(strategy_name) if strategy_name else None
    profiler = cProfile.Profile()
    profiler.enable()
    result = run_simulation(config, strategy)
    profiler.disable()
    print(f"\n=== {label} ===")
    print(
        f"duration {result.duration:.1f} s, hazards {sorted(result.hazards)}, "
        f"accidents {sorted(result.accidents)}, driver engaged: {result.driver_engaged}"
    )
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative").print_stats(top)


def probe_once(label: str, config: SimulationConfig, strategy_name=None) -> Dict[str, Any]:
    """One probed run → per-stage timing summary (the ``--json`` payload).

    Reuses the telemetry layer's per-stage histograms instead of a
    separate ad-hoc timer, so this benchmark reports exactly what
    :class:`repro.telemetry.PipelineProbe` measures.  The probe times
    one stage per cycle round-robin, so ``samples`` is ~steps / stage
    count per stage and ``share`` compares equally-sampled estimates.
    """
    strategy = strategy_by_name(strategy_name) if strategy_name else None
    telemetry = Telemetry(TelemetryConfig(sample_every=1))
    start = time.perf_counter()
    result = run_simulation(config, strategy, telemetry=telemetry)
    wall_s = time.perf_counter() - start

    snapshot = telemetry.snapshot()
    stage_rows = _stage_rows(snapshot)
    steps = int(snapshot["counters"].get("runs.steps", 0))
    return {
        "label": label,
        "scenario": str(config.scenario),
        "seed": config.seed,
        "attack_type": config.attack_type.value if config.attack_type else None,
        "steps": steps,
        "wall_seconds": wall_s,
        "steps_per_second": steps / wall_s if wall_s > 0 else 0.0,
        "duration_s": result.duration,
        "hazards": sorted(result.hazards),
        "accidents": sorted(result.accidents),
        "stages": dict(sorted(stage_rows.items(), key=lambda kv: -kv[1]["total_ns"])),
    }


def _stage_rows(snapshot: Dict[str, Any]) -> Dict[str, Any]:
    """Per-stage timing summary rows from a telemetry snapshot."""
    prefix, suffix = STAGE_METRIC.split("{name}")
    stage_rows: Dict[str, Any] = {}
    total_stage_ns = 0
    for name, data in snapshot["histograms"].items():
        if not (name.startswith(prefix) and name.endswith(suffix)):
            continue
        total_stage_ns += data["sum"]
    for name, data in snapshot["histograms"].items():
        if not (name.startswith(prefix) and name.endswith(suffix)):
            continue
        stage = name[len(prefix):-len(suffix)]
        count = data["count"]
        stage_rows[stage] = {
            "samples": count,
            "total_ns": data["sum"],
            "mean_ns": data["sum"] / count if count else 0.0,
            "max_ns": data["max"],
            "share": data["sum"] / total_stage_ns if total_stage_ns else 0.0,
        }
    return stage_rows


def _batch_tasks(args) -> list:
    distance: Optional[float] = 70.0 if args.scenario in ("S1", "S2", "S3", "S4") else None
    return [
        (
            SimulationConfig(
                scenario=args.scenario,
                initial_distance=distance,
                seed=args.seed + i,
                max_steps=args.steps,
            ),
            None,
        )
        for i in range(args.batch)
    ]


def probe_batch(args) -> Dict[str, Any]:
    """One probed lockstep-batched workload → per-stage column timings.

    The batch runner times each stage *column* (all rows of one stage)
    per sampled cycle into the same ``perf.stage.*`` histograms the
    scalar pipeline probe uses, plus whole-cycle ``perf.batch.cycle_ns``
    rows, so scalar and batched profiles stay directly comparable.
    """
    from repro.kernel import run_batched

    telemetry = Telemetry(TelemetryConfig(sample_every=1))
    start = time.perf_counter()
    results = run_batched(_batch_tasks(args), batch_size=args.batch, telemetry=telemetry)
    wall_s = time.perf_counter() - start

    snapshot = telemetry.snapshot()
    steps = int(snapshot["counters"].get("runs.steps", 0))
    cycle = snapshot["histograms"].get("perf.batch.cycle_ns", {})
    return {
        "label": f"batched attack-free {args.scenario} x{args.batch}",
        "scenario": args.scenario,
        "batch_size": args.batch,
        "runs": len(results),
        "steps": steps,
        "wall_seconds": wall_s,
        "steps_per_second": steps / wall_s if wall_s > 0 else 0.0,
        "cycles_sampled": int(cycle.get("count", 0)),
        "mean_cycle_ns": (cycle["sum"] / cycle["count"]) if cycle.get("count") else 0.0,
        "stages": dict(
            sorted(_stage_rows(snapshot).items(), key=lambda kv: -kv[1]["total_ns"])
        ),
    }


def profile_batch(args, top: int = 20) -> None:
    """cProfile pass over the same lockstep-batched workload."""
    from repro.kernel import run_batched

    tasks = _batch_tasks(args)
    profiler = cProfile.Profile()
    profiler.enable()
    results = run_batched(tasks, batch_size=args.batch)
    profiler.disable()
    print(f"\n=== batched attack-free {args.scenario} x{args.batch} ===")
    print(f"{len(results)} runs, batch_size={args.batch}")
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative").print_stats(top)


def _configs(args) -> list:
    distance: Optional[float] = 70.0 if args.scenario in ("S1", "S2", "S3", "S4") else None
    return [
        (
            f"attack-free {args.scenario}",
            SimulationConfig(
                scenario=args.scenario,
                initial_distance=distance,
                seed=args.seed,
                max_steps=args.steps,
            ),
            None,
        ),
        (
            f"attacked {args.scenario} (Context-Aware Deceleration)",
            SimulationConfig(
                scenario=args.scenario,
                initial_distance=distance,
                seed=args.seed,
                attack_type=AttackType.DECELERATION,
                max_steps=args.steps,
            ),
            "Context-Aware",
        ),
    ]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--steps", type=int, default=5000, help="control steps per run")
    parser.add_argument("--top", type=int, default=20, help="rows of profile output per run")
    parser.add_argument("--scenario", default="S1", help="scenario name (catalog)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit per-stage telemetry histograms as JSON instead of cProfile text",
    )
    parser.add_argument(
        "--batch",
        type=int,
        default=0,
        metavar="N",
        help="profile N attack-free runs through the lockstep batch executor "
        "(dense SoA column path) instead of the two sequential runs",
    )
    args = parser.parse_args()

    if args.batch:
        if args.json:
            print(json.dumps({"runs": [probe_batch(args)]}, indent=2))
        else:
            profile_batch(args, top=args.top)
        return
    if args.json:
        payload = [probe_once(label, config, name) for label, config, name in _configs(args)]
        print(json.dumps({"runs": payload}, indent=2))
        return
    for label, config, name in _configs(args):
        profile_once(label, config, name, top=args.top)


if __name__ == "__main__":
    main()

"""cProfile helper: where does a simulation run spend its time?

Profiles one attack-free and one attacked run through the kernel step
pipeline and prints the top cumulative functions of each, so the next
performance PR starts from data instead of guesses::

    PYTHONPATH=src python benchmarks/profile_run.py
    PYTHONPATH=src python benchmarks/profile_run.py --steps 2000 --top 30

The attacked run uses the paper's S1/70 m with a Context-Aware
Deceleration attack (driver engagement, corruption and the eavesdropper
all on the profile).
"""

import argparse
import cProfile
import pstats

from repro.core.attack_types import AttackType
from repro.core.strategies import strategy_by_name
from repro.injection.engine import SimulationConfig, run_simulation


def profile_once(label: str, config: SimulationConfig, strategy_name=None, top: int = 20) -> None:
    strategy = strategy_by_name(strategy_name) if strategy_name else None
    profiler = cProfile.Profile()
    profiler.enable()
    result = run_simulation(config, strategy)
    profiler.disable()
    print(f"\n=== {label} ===")
    print(
        f"duration {result.duration:.1f} s, hazards {sorted(result.hazards)}, "
        f"accidents {sorted(result.accidents)}, driver engaged: {result.driver_engaged}"
    )
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative").print_stats(top)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--steps", type=int, default=5000, help="control steps per run")
    parser.add_argument("--top", type=int, default=20, help="rows of profile output per run")
    parser.add_argument("--scenario", default="S1", help="scenario name (catalog)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    profile_once(
        f"attack-free {args.scenario}",
        SimulationConfig(
            scenario=args.scenario,
            initial_distance=70.0 if args.scenario in ("S1", "S2", "S3", "S4") else None,
            seed=args.seed,
            max_steps=args.steps,
        ),
        top=args.top,
    )
    profile_once(
        f"attacked {args.scenario} (Context-Aware Deceleration)",
        SimulationConfig(
            scenario=args.scenario,
            initial_distance=70.0 if args.scenario in ("S1", "S2", "S3", "S4") else None,
            seed=args.seed,
            attack_type=AttackType.DECELERATION,
            max_steps=args.steps,
        ),
        strategy_name="Context-Aware",
        top=args.top,
    )


if __name__ == "__main__":
    main()

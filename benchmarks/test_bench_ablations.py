"""Ablation benchmarks for the design choices called out in DESIGN.md.

These go beyond the paper's tables: they quantify how much each ingredient
of the Context-Aware attack contributes (driver reaction time, sensor
noise robustness, and the simulation throughput that makes the paper-scale
campaigns feasible).
"""

import os
import statistics

from conftest import run_once

from repro.core.attack_types import AttackType
from repro.core.strategies import ContextAwareStrategy
from repro.experiments.table5 import ContextAwareFixedValueStrategy
from repro.injection import SimulationConfig, run_simulation, run_simulations
from repro.sim.sensors import SensorNoise


GRID = [("S1", 50.0, 1), ("S1", 70.0, 2), ("S2", 50.0, 3)]

#: Worker processes used to fan out the ablation grids (results are
#: identical to a sequential sweep; see repro.injection.executor).  On a
#: single-CPU benchmark machine this resolves to 1, which short-circuits
#: to the in-process path so the timings don't absorb pool overhead.
WORKERS = min(2, os.cpu_count() or 1)


def _hazard_rate(strategy_factory, attack_type, **config_overrides):
    tasks = [
        (
            SimulationConfig(
                scenario=scenario, initial_distance=distance, seed=seed,
                attack_type=attack_type, max_steps=3500, **config_overrides,
            ),
            strategy_factory(),
        )
        for scenario, distance, seed in GRID
    ]
    results = run_simulations(tasks, workers=WORKERS)
    return sum(bool(result.hazards) for result in results) / len(GRID)


def test_ablation_driver_reaction_time(benchmark):
    """Observation 4 ablation: a faster driver prevents more fixed-value
    Acceleration attacks; a slower driver prevents none."""

    def sweep():
        rates = {}
        for reaction_time in (1.0, 2.5, 4.0):
            rates[reaction_time] = _hazard_rate(
                ContextAwareFixedValueStrategy,
                AttackType.ACCELERATION,
                driver_reaction_time=reaction_time,
            )
        return rates

    rates = run_once(benchmark, sweep)
    print(f"\nhazard rate vs driver reaction time: {rates}")
    assert rates[1.0] <= rates[4.0]
    assert rates[4.0] >= 0.5


def test_ablation_sensor_noise_robustness(benchmark):
    """Threats-to-validity ablation: the Context-Aware attack still works
    when the eavesdropped sensor data is noisier than nominal."""

    def sweep():
        rates = {}
        for label, scale in (("noiseless", 0.0), ("nominal", 1.0), ("noisy", 5.0)):
            noise = SensorNoise(
                gps_speed_std=0.05 * scale,
                radar_distance_std=0.15 * scale,
                radar_speed_std=0.05 * scale,
                lane_position_std=0.03 * scale,
                heading_std=0.002 * scale,
            )
            rates[label] = _hazard_rate(
                ContextAwareStrategy, AttackType.STEERING_RIGHT, noise=noise
            )
        return rates

    rates = run_once(benchmark, sweep)
    print(f"\nContext-Aware Steering-Right hazard rate vs sensor noise: {rates}")
    assert rates["nominal"] >= 0.5
    assert rates["noisy"] >= 0.3


def test_ablation_simulation_throughput(benchmark):
    """Throughput of a single attack-free 50 s simulation (5000 control
    steps through sensors, messaging, ADAS, CAN and dynamics)."""

    def one_run():
        result = run_simulation(SimulationConfig(scenario="S1", initial_distance=70.0, seed=0))
        assert result.duration >= 45.0
        return result

    result = benchmark(one_run)
    assert result.hazards == {}


def test_ablation_time_to_hazard_by_attack_type(benchmark):
    """TTH per attack type: steering attacks leave the least mitigation
    budget (Observation 5), deceleration/acceleration the most."""

    def sweep():
        tths = {}
        for attack_type in (AttackType.STEERING_RIGHT, AttackType.ACCELERATION,
                            AttackType.DECELERATION):
            values = []
            for scenario, distance, seed in GRID:
                config = SimulationConfig(
                    scenario=scenario, initial_distance=distance, seed=seed,
                    attack_type=attack_type, max_steps=4000,
                )
                result = run_simulation(config, ContextAwareStrategy())
                if result.time_to_hazard is not None:
                    values.append(result.time_to_hazard)
            tths[attack_type.value] = statistics.mean(values) if values else float("nan")
        return tths

    tths = run_once(benchmark, sweep)
    print(f"\nmean TTH by attack type: {tths}")
    assert tths["Steering-Right"] < 2.5
    assert tths["Deceleration"] > tths["Steering-Right"]

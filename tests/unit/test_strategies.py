"""Tests for the attack strategies (Table III) and attack types (Table II)."""

import numpy as np
import pytest

from repro.core.attack_types import ATTACK_TYPES, AttackType, ControlAction, spec_for
from repro.core.context_matcher import ContextMatch
from repro.core.context_table import default_context_table
from repro.core.corruption import CorruptionMode
from repro.core.strategies import (
    ContextAwareStrategy,
    NoAttackStrategy,
    RandomDurationStrategy,
    RandomStartDurationStrategy,
    RandomStartStrategy,
    strategy_by_name,
)


def match_for(action):
    table = default_context_table()
    rule = table.rules_for_action(action)[0]
    return ContextMatch(rule=rule, time=1.0)


class TestAttackTypes:
    def test_six_attack_types_like_table2(self):
        assert len(ATTACK_TYPES) == 6

    def test_acceleration_spec(self):
        spec = spec_for(AttackType.ACCELERATION)
        assert spec.corrupt_accel and not spec.corrupt_brake
        assert spec.actions == (ControlAction.ACCELERATION,)

    def test_steering_specs_have_directions(self):
        assert spec_for(AttackType.STEERING_LEFT).steer_direction == +1
        assert spec_for(AttackType.STEERING_RIGHT).steer_direction == -1

    def test_combined_specs_cover_multiple_actions(self):
        spec = spec_for(AttackType.DECELERATION_STEERING)
        assert spec.corrupt_brake
        assert ControlAction.STEER_LEFT in spec.actions
        assert spec.corrupts_steering


class TestRandomStrategies:
    def test_random_st_dur_samples_within_paper_ranges(self):
        strategy = RandomStartDurationStrategy()
        strategy.prepare(np.random.default_rng(0))
        assert 5.0 <= strategy.start_time <= 40.0
        assert 0.5 <= strategy.duration <= 2.5

    def test_random_st_has_fixed_driver_reaction_duration(self):
        strategy = RandomStartStrategy()
        strategy.prepare(np.random.default_rng(0))
        assert strategy.duration == pytest.approx(2.5)

    def test_activation_only_after_start_time(self):
        strategy = RandomStartDurationStrategy(start_range=(10.0, 10.0))
        strategy.prepare(np.random.default_rng(0))
        spec = spec_for(AttackType.ACCELERATION)
        assert not strategy.should_activate(9.0, spec, []).activate
        assert strategy.should_activate(10.5, spec, []).activate

    def test_deactivation_after_duration(self):
        strategy = RandomStartDurationStrategy(duration_range=(1.0, 1.0))
        strategy.prepare(np.random.default_rng(0))
        assert not strategy.should_deactivate(10.5, 10.0, hazard_occurred=False)
        assert strategy.should_deactivate(11.1, 10.0, hazard_occurred=False)

    def test_unprepared_strategy_raises(self):
        with pytest.raises(RuntimeError):
            RandomStartDurationStrategy().should_activate(1.0, spec_for(AttackType.ACCELERATION), [])

    def test_random_strategies_use_fixed_values(self):
        assert RandomStartDurationStrategy.corruption_mode is CorruptionMode.FIXED
        assert RandomStartStrategy.corruption_mode is CorruptionMode.FIXED
        assert RandomDurationStrategy.corruption_mode is CorruptionMode.FIXED

    def test_random_dur_requires_context(self):
        strategy = RandomDurationStrategy()
        strategy.prepare(np.random.default_rng(0))
        spec = spec_for(AttackType.ACCELERATION)
        assert not strategy.should_activate(5.0, spec, []).activate
        decision = strategy.should_activate(5.0, spec, [match_for(ControlAction.ACCELERATION)])
        assert decision.activate


class TestContextAwareStrategy:
    def test_uses_strategic_values(self):
        assert ContextAwareStrategy.corruption_mode is CorruptionMode.STRATEGIC
        assert ContextAwareStrategy.context_triggered

    def test_activates_only_on_relevant_context(self):
        strategy = ContextAwareStrategy()
        strategy.prepare(np.random.default_rng(0))
        spec = spec_for(AttackType.DECELERATION)
        wrong = [match_for(ControlAction.ACCELERATION)]
        right = [match_for(ControlAction.DECELERATION)]
        assert not strategy.should_activate(1.0, spec, wrong).activate
        decision = strategy.should_activate(1.0, spec, right)
        assert decision.activate
        assert decision.reason == "rule2"

    def test_steering_direction_from_matched_rule(self):
        strategy = ContextAwareStrategy()
        strategy.prepare(np.random.default_rng(0))
        spec = spec_for(AttackType.ACCELERATION_STEERING)
        decision = strategy.should_activate(1.0, spec, [match_for(ControlAction.STEER_RIGHT)])
        assert decision.activate
        assert decision.steer_direction == -1

    def test_stops_on_hazard(self):
        strategy = ContextAwareStrategy()
        assert strategy.should_deactivate(5.0, 3.0, hazard_occurred=True)
        assert not strategy.should_deactivate(5.0, 3.0, hazard_occurred=False)

    def test_stops_at_max_duration(self):
        strategy = ContextAwareStrategy(max_duration=4.0)
        assert strategy.should_deactivate(7.5, 3.0, hazard_occurred=False)


class TestStrategyRegistry:
    def test_all_table3_strategies_constructible_by_name(self):
        for name in ("No-Attack", "Random-ST+DUR", "Random-ST", "Random-DUR", "Context-Aware"):
            assert strategy_by_name(name).name == name

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            strategy_by_name("Quantum")

    def test_no_attack_strategy_never_activates(self):
        strategy = NoAttackStrategy()
        spec = spec_for(AttackType.ACCELERATION)
        assert not strategy.should_activate(10.0, spec, [match_for(ControlAction.ACCELERATION)]).activate

"""Unit tests for the CI perf-regression gate (``benchmarks/check_regression.py``).

The gate decides whether CI goes red, so it needs the same test coverage
as the code it guards: regressions beyond the threshold must fail,
improvements and small jitter must pass, and malformed or missing inputs
must error cleanly (exit 1 with a message, not a traceback).
"""

import importlib.util
import json
import os
import sys


_CHECK_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    os.pardir,
    os.pardir,
    "benchmarks",
    "check_regression.py",
)

_spec = importlib.util.spec_from_file_location("check_regression", _CHECK_PATH)
check_regression = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("check_regression", check_regression)
_spec.loader.exec_module(check_regression)


def _bench_file(tmp_path, name, steps_per_second):
    path = tmp_path / name
    path.write_text(
        json.dumps({"measurements": {"single_run_steps_per_second": steps_per_second}})
    )
    return str(path)


def _run(tmp_path, baseline, current, max_regression=0.20):
    argv = ["--baseline", baseline, "--current", current]
    if max_regression is not None:
        argv += ["--max-regression", str(max_regression)]
    return check_regression.main(argv)


class TestRegressionVerdicts:
    def test_regression_beyond_threshold_fails(self, tmp_path):
        baseline = _bench_file(tmp_path, "base.json", 10000.0)
        current = _bench_file(tmp_path, "cur.json", 7000.0)  # -30%
        assert _run(tmp_path, baseline, current) == 1

    def test_regression_within_threshold_passes(self, tmp_path):
        baseline = _bench_file(tmp_path, "base.json", 10000.0)
        current = _bench_file(tmp_path, "cur.json", 9000.0)  # -10%
        assert _run(tmp_path, baseline, current) == 0

    def test_improvement_passes(self, tmp_path):
        baseline = _bench_file(tmp_path, "base.json", 10000.0)
        current = _bench_file(tmp_path, "cur.json", 14000.0)
        assert _run(tmp_path, baseline, current) == 0

    def test_exact_threshold_passes(self, tmp_path):
        # The gate fails only *beyond* the allowed fraction.
        baseline = _bench_file(tmp_path, "base.json", 10000.0)
        current = _bench_file(tmp_path, "cur.json", 8000.0)  # exactly -20%
        assert _run(tmp_path, baseline, current) == 0

    def test_tighter_threshold_is_respected(self, tmp_path):
        baseline = _bench_file(tmp_path, "base.json", 10000.0)
        current = _bench_file(tmp_path, "cur.json", 9000.0)  # -10%
        assert _run(tmp_path, baseline, current, max_regression=0.05) == 1


class TestDegenerateInputs:
    def test_missing_baseline_file_errors_cleanly(self, tmp_path):
        current = _bench_file(tmp_path, "cur.json", 9000.0)
        assert _run(tmp_path, str(tmp_path / "absent.json"), current) == 1

    def test_missing_current_file_errors_cleanly(self, tmp_path):
        baseline = _bench_file(tmp_path, "base.json", 9000.0)
        assert _run(tmp_path, baseline, str(tmp_path / "absent.json")) == 1

    def test_malformed_baseline_json_errors_cleanly(self, tmp_path):
        path = tmp_path / "base.json"
        path.write_text("{not json")
        current = _bench_file(tmp_path, "cur.json", 9000.0)
        assert _run(tmp_path, str(path), current) == 1

    def test_non_object_json_errors_cleanly(self, tmp_path):
        path = tmp_path / "base.json"
        path.write_text("[1, 2, 3]")
        current = _bench_file(tmp_path, "cur.json", 9000.0)
        assert _run(tmp_path, str(path), current) == 1

    def test_baseline_without_measurement_is_a_pass(self, tmp_path):
        # A baseline predating the measurement can't gate anything.
        path = tmp_path / "base.json"
        path.write_text(json.dumps({"measurements": {}}))
        current = _bench_file(tmp_path, "cur.json", 9000.0)
        assert _run(tmp_path, str(path), current) == 0

    def test_current_without_measurement_fails(self, tmp_path):
        baseline = _bench_file(tmp_path, "base.json", 9000.0)
        path = tmp_path / "cur.json"
        path.write_text(json.dumps({"measurements": {}}))
        assert _run(tmp_path, baseline, str(path)) == 1

    def test_non_numeric_measurement_is_handled(self, tmp_path):
        baseline = _bench_file(tmp_path, "base.json", 9000.0)
        path = tmp_path / "cur.json"
        path.write_text(
            json.dumps({"measurements": {"single_run_steps_per_second": "fast"}})
        )
        assert _run(tmp_path, baseline, str(path)) == 1


def _bench_file_with_search(tmp_path, name, steps_per_second, search_evals):
    path = tmp_path / name
    measurements = {"single_run_steps_per_second": steps_per_second}
    if search_evals is not None:
        measurements["search_evals_per_s"] = search_evals
    path.write_text(json.dumps({"measurements": measurements}))
    return str(path)


class TestSearchThroughputGate:
    def test_search_regression_beyond_threshold_fails(self, tmp_path):
        baseline = _bench_file_with_search(tmp_path, "base.json", 10000.0, 5.0)
        current = _bench_file_with_search(tmp_path, "cur.json", 10000.0, 3.0)  # -40%
        assert _run(tmp_path, baseline, current) == 1

    def test_search_within_threshold_passes(self, tmp_path):
        baseline = _bench_file_with_search(tmp_path, "base.json", 10000.0, 5.0)
        current = _bench_file_with_search(tmp_path, "cur.json", 10000.0, 4.5)  # -10%
        assert _run(tmp_path, baseline, current) == 0

    def test_baseline_without_search_row_passes(self, tmp_path):
        # Baselines predating the search subsystem gate nothing.
        baseline = _bench_file_with_search(tmp_path, "base.json", 10000.0, None)
        current = _bench_file_with_search(tmp_path, "cur.json", 10000.0, 5.0)
        assert _run(tmp_path, baseline, current) == 0

    def test_current_dropping_the_search_row_fails(self, tmp_path):
        baseline = _bench_file_with_search(tmp_path, "base.json", 10000.0, 5.0)
        current = _bench_file_with_search(tmp_path, "cur.json", 10000.0, None)
        assert _run(tmp_path, baseline, current) == 1


def _bench_file_resilient(tmp_path, name, steps=10000.0, resilient=None, overhead=None):
    path = tmp_path / name
    measurements = {"single_run_steps_per_second": steps}
    if resilient is not None:
        measurements["resilient_campaign_runs_per_s"] = resilient
    if overhead is not None:
        measurements["resilient_supervision_overhead_pct"] = overhead
    path.write_text(json.dumps({"measurements": measurements}))
    return str(path)


def _run_with_overhead(baseline, current, max_overhead=None):
    argv = ["--baseline", baseline, "--current", current]
    if max_overhead is not None:
        argv += ["--max-overhead", str(max_overhead)]
    return check_regression.main(argv)


class TestResilientGate:
    def test_resilient_regression_beyond_threshold_fails(self, tmp_path):
        baseline = _bench_file_resilient(tmp_path, "base.json", resilient=8.0)
        current = _bench_file_resilient(tmp_path, "cur.json", resilient=5.0)  # -37%
        assert _run_with_overhead(baseline, current) == 1

    def test_resilient_within_threshold_passes(self, tmp_path):
        baseline = _bench_file_resilient(tmp_path, "base.json", resilient=8.0)
        current = _bench_file_resilient(tmp_path, "cur.json", resilient=7.5)
        assert _run_with_overhead(baseline, current) == 0

    def test_baseline_without_resilient_row_passes(self, tmp_path):
        baseline = _bench_file_resilient(tmp_path, "base.json")
        current = _bench_file_resilient(tmp_path, "cur.json", resilient=8.0)
        assert _run_with_overhead(baseline, current) == 0

    def test_current_dropping_the_resilient_row_fails(self, tmp_path):
        baseline = _bench_file_resilient(tmp_path, "base.json", resilient=8.0)
        current = _bench_file_resilient(tmp_path, "cur.json")
        assert _run_with_overhead(baseline, current) == 1


class TestSupervisionOverheadBound:
    def test_overhead_above_bound_fails(self, tmp_path):
        baseline = _bench_file_resilient(tmp_path, "base.json")
        current = _bench_file_resilient(tmp_path, "cur.json", overhead=7.5)
        assert _run_with_overhead(baseline, current) == 1

    def test_overhead_within_bound_passes(self, tmp_path):
        baseline = _bench_file_resilient(tmp_path, "base.json")
        current = _bench_file_resilient(tmp_path, "cur.json", overhead=2.1)
        assert _run_with_overhead(baseline, current) == 0

    def test_negative_overhead_passes(self, tmp_path):
        # Measurement noise can make the supervised run come out faster.
        baseline = _bench_file_resilient(tmp_path, "base.json")
        current = _bench_file_resilient(tmp_path, "cur.json", overhead=-1.3)
        assert _run_with_overhead(baseline, current) == 0

    def test_missing_overhead_row_gates_nothing(self, tmp_path):
        baseline = _bench_file_resilient(tmp_path, "base.json")
        current = _bench_file_resilient(tmp_path, "cur.json")
        assert _run_with_overhead(baseline, current) == 0

    def test_custom_bound_is_respected(self, tmp_path):
        baseline = _bench_file_resilient(tmp_path, "base.json")
        current = _bench_file_resilient(tmp_path, "cur.json", overhead=2.1)
        assert _run_with_overhead(baseline, current, max_overhead=1.0) == 1


def _bench_file_telemetry(tmp_path, name, steps=10000.0, telemetry_overhead=None):
    path = tmp_path / name
    measurements = {"single_run_steps_per_second": steps}
    if telemetry_overhead is not None:
        measurements["telemetry_overhead_pct"] = telemetry_overhead
    path.write_text(json.dumps({"measurements": measurements}))
    return str(path)


class TestTelemetryOverheadBound:
    def test_overhead_above_bound_fails(self, tmp_path):
        baseline = _bench_file_telemetry(tmp_path, "base.json")
        current = _bench_file_telemetry(tmp_path, "cur.json", telemetry_overhead=8.2)
        assert _run(tmp_path, baseline, current) == 1

    def test_overhead_within_bound_passes(self, tmp_path):
        baseline = _bench_file_telemetry(tmp_path, "base.json")
        current = _bench_file_telemetry(tmp_path, "cur.json", telemetry_overhead=2.4)
        assert _run(tmp_path, baseline, current) == 0

    def test_negative_overhead_passes(self, tmp_path):
        baseline = _bench_file_telemetry(tmp_path, "base.json")
        current = _bench_file_telemetry(tmp_path, "cur.json", telemetry_overhead=-0.8)
        assert _run(tmp_path, baseline, current) == 0

    def test_missing_row_gates_nothing(self, tmp_path):
        baseline = _bench_file_telemetry(tmp_path, "base.json")
        current = _bench_file_telemetry(tmp_path, "cur.json")
        assert _run(tmp_path, baseline, current) == 0

    def test_custom_bound_is_respected(self, tmp_path):
        baseline = _bench_file_telemetry(tmp_path, "base.json")
        current = _bench_file_telemetry(tmp_path, "cur.json", telemetry_overhead=2.4)
        argv = ["--baseline", baseline, "--current", current, "--max-telemetry-overhead", "1.0"]
        assert check_regression.main(argv) == 1


class TestAllFailuresReported:
    def test_every_failing_gate_is_listed_in_one_run(self, tmp_path, capsys):
        # Two independent regressions → one run must name both keys.
        base = tmp_path / "base.json"
        base.write_text(
            json.dumps(
                {
                    "measurements": {
                        "single_run_steps_per_second": 10000.0,
                        "search_evals_per_s": 5.0,
                    }
                }
            )
        )
        cur = tmp_path / "cur.json"
        cur.write_text(
            json.dumps(
                {
                    "measurements": {
                        "single_run_steps_per_second": 5000.0,  # -50%
                        "search_evals_per_s": 2.0,  # -60%
                        "telemetry_overhead_pct": 9.9,  # above 5% bound
                    }
                }
            )
        )
        assert _run(tmp_path, str(base), str(cur)) == 1
        out = capsys.readouterr().out
        summary = [line for line in out.splitlines() if line.startswith("FAIL: 3 gate(s)")]
        assert len(summary) == 1
        assert "single_run_steps_per_second" in summary[0]
        assert "search_evals_per_s" in summary[0]
        assert "telemetry_overhead_pct" in summary[0]

    def test_later_gates_still_run_after_early_failure(self, tmp_path, capsys):
        # The first gate failing must not mask the overhead check's output.
        baseline = _bench_file(tmp_path, "base.json", 10000.0)
        cur = tmp_path / "cur.json"
        cur.write_text(
            json.dumps(
                {
                    "measurements": {
                        "single_run_steps_per_second": 1000.0,  # -90%
                        "telemetry_overhead_pct": 1.2,  # fine
                    }
                }
            )
        )
        assert _run(tmp_path, baseline, str(cur)) == 1
        out = capsys.readouterr().out
        assert "telemetry overhead" in out
        assert "FAIL: 1 gate(s) failed: single_run_steps_per_second" in out

"""Tests for the ADAS alert manager."""


from repro.adas.alerts import AlertManager, AlertThresholds
from repro.adas.lateral import LateralPlan
from repro.adas.longitudinal import LongitudinalPlan


def long_plan(has_lead=True, ttc=2.0):
    return LongitudinalPlan(
        desired_accel=-2.0, v_target=10.0, has_lead=has_lead,
        lead_distance=20.0, lead_speed=10.0, time_to_collision=ttc, required_decel=3.0,
    )


def lat_plan(saturated=False):
    return LateralPlan(
        desired_curvature=0.0, desired_steering_deg=0.0, output_steering_deg=0.0,
        saturated=saturated,
    )


class TestForwardCollisionWarning:
    def test_fires_on_hard_brake_with_close_lead(self):
        manager = AlertManager()
        alerts = manager.update(1.0, 20.0, output_brake=4.5, long_plan=long_plan(), lat_plan=lat_plan())
        assert [a.name for a in alerts] == ["fcw"]
        assert alerts[0].severity == "critical"

    def test_not_fired_below_brake_threshold(self):
        manager = AlertManager()
        alerts = manager.update(1.0, 20.0, output_brake=3.5, long_plan=long_plan(), lat_plan=lat_plan())
        assert alerts == []

    def test_not_fired_without_lead(self):
        manager = AlertManager()
        alerts = manager.update(1.0, 20.0, output_brake=4.5,
                                long_plan=long_plan(has_lead=False), lat_plan=lat_plan())
        assert alerts == []

    def test_not_fired_when_ttc_large(self):
        manager = AlertManager()
        alerts = manager.update(1.0, 20.0, output_brake=4.5,
                                long_plan=long_plan(ttc=10.0), lat_plan=lat_plan())
        assert alerts == []

    def test_not_fired_at_crawling_speed(self):
        manager = AlertManager()
        alerts = manager.update(1.0, 1.0, output_brake=4.5, long_plan=long_plan(), lat_plan=lat_plan())
        assert alerts == []

    def test_rearm_time_prevents_duplicates(self):
        manager = AlertManager(AlertThresholds(fcw_rearm_time=5.0))
        manager.update(1.0, 20.0, 4.5, long_plan(), lat_plan())
        again = manager.update(2.0, 20.0, 4.5, long_plan(), lat_plan())
        assert again == []
        later = manager.update(7.0, 20.0, 4.5, long_plan(), lat_plan())
        assert [a.name for a in later] == ["fcw"]


class TestSteerSaturated:
    def test_fires_when_lateral_plan_saturated(self):
        manager = AlertManager()
        alerts = manager.update(1.0, 20.0, 0.0, long_plan(), lat_plan(saturated=True))
        assert [a.name for a in alerts] == ["steerSaturated"]
        assert alerts[0].severity == "warning"

    def test_rearm_time(self):
        manager = AlertManager(AlertThresholds(steer_saturated_rearm_time=3.0))
        manager.update(1.0, 20.0, 0.0, long_plan(), lat_plan(saturated=True))
        assert manager.update(2.0, 20.0, 0.0, long_plan(), lat_plan(saturated=True)) == []
        assert manager.update(4.5, 20.0, 0.0, long_plan(), lat_plan(saturated=True)) != []


class TestBookkeeping:
    def test_raised_alerts_accumulate(self):
        manager = AlertManager()
        manager.update(1.0, 20.0, 4.5, long_plan(), lat_plan(saturated=True))
        assert manager.alert_count == 2
        assert len(manager.alerts_named("fcw")) == 1
        assert len(manager.alerts_named("steerSaturated")) == 1

    def test_alert_event_conversion(self):
        manager = AlertManager()
        alerts = manager.update(1.0, 20.0, 4.5, long_plan(), lat_plan())
        event = alerts[0].to_event()
        assert event.name == "fcw"
        assert event.severity == "critical"

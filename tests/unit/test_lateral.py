"""Tests for the ALC lateral planner / steering controller."""

import pytest

from repro.adas.lateral import LateralParams, LateralPlanner
from repro.messaging.messages import CarState, LaneLine, ModelV2


def model(lateral_offset=0.0, heading_error=0.0, curvature=0.0, lane_width=3.6):
    half = lane_width / 2.0
    return ModelV2(
        lane_lines=(
            LaneLine(offset=half - lateral_offset),
            LaneLine(offset=-half - lateral_offset),
        ),
        lane_width=lane_width,
        lateral_offset=lateral_offset,
        heading_error=heading_error,
        curvature=curvature,
    )


def car_state(steering=0.0, v_ego=20.0):
    return CarState(v_ego=v_ego, steering_angle_deg=steering)


class TestSteeringDirection:
    def test_steers_left_when_right_of_centre(self):
        plan = LateralPlanner().update(car_state(), model(lateral_offset=-0.5))
        assert plan.desired_steering_deg > 0.0

    def test_steers_right_when_left_of_centre(self):
        plan = LateralPlanner().update(car_state(), model(lateral_offset=+0.5))
        assert plan.desired_steering_deg < 0.0

    def test_counters_heading_error(self):
        plan = LateralPlanner().update(car_state(), model(heading_error=0.05))
        assert plan.desired_steering_deg < 0.0

    def test_centred_and_aligned_needs_no_steering(self):
        plan = LateralPlanner().update(car_state(), model())
        assert plan.desired_steering_deg == pytest.approx(0.0, abs=0.2)

    def test_curvature_feedforward_steers_into_curve(self):
        plan = LateralPlanner().update(car_state(), model(curvature=0.002))
        assert plan.desired_steering_deg > 1.0

    def test_larger_error_larger_command(self):
        planner = LateralPlanner()
        small = planner.update(car_state(), model(lateral_offset=-0.2))
        large = planner.update(car_state(), model(lateral_offset=-1.0))
        assert abs(large.desired_steering_deg) > abs(small.desired_steering_deg)


class TestSaturation:
    def test_not_saturated_in_normal_operation(self):
        planner = LateralPlanner()
        for _ in range(300):
            plan = planner.update(car_state(steering=0.0), model(lateral_offset=-0.2))
        assert not plan.saturated

    def test_saturated_after_sustained_large_mismatch(self):
        params = LateralParams()
        planner = LateralPlanner(params)
        # Car far out of position and the measured steering not responding.
        for _ in range(params.saturation_frames + 5):
            plan = planner.update(car_state(steering=0.0), model(lateral_offset=-3.0, heading_error=-0.1))
        assert plan.saturated

    def test_saturation_counter_resets_when_mismatch_clears(self):
        params = LateralParams()
        planner = LateralPlanner(params)
        for _ in range(params.saturation_frames - 10):
            planner.update(car_state(steering=0.0), model(lateral_offset=-3.0, heading_error=-0.1))
        planner.update(car_state(steering=0.0), model(lateral_offset=0.0))
        for _ in range(20):
            plan = planner.update(car_state(steering=0.0), model(lateral_offset=-3.0, heading_error=-0.1))
        assert not plan.saturated

    def test_desired_steering_clamped_to_vehicle_maximum(self):
        plan = LateralPlanner().update(car_state(), model(lateral_offset=-50.0, heading_error=-1.0))
        assert abs(plan.desired_steering_deg) <= 450.0 + 1e-6

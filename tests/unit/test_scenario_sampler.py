"""Tests for the parametric scenario families and the seeded sampler."""

import pickle

import pytest

from repro.scenarios import DEFAULT_FAMILIES, ParamRange, ScenarioSampler
from repro.sim.units import mph_to_ms


class TestFamilies:
    def test_at_least_two_families(self):
        assert len(DEFAULT_FAMILIES) >= 2

    def test_family_names_unique(self):
        names = [family.name for family in DEFAULT_FAMILIES]
        assert len(set(names)) == len(names)

    def test_param_range_validation(self):
        with pytest.raises(ValueError):
            ParamRange(2.0, 1.0)


class TestSamplerDeterminism:
    def test_same_seed_same_index_is_identical(self):
        a = ScenarioSampler(master_seed=2022)
        b = ScenarioSampler(master_seed=2022)
        for index in range(16):
            assert a.sample(index) == b.sample(index)

    def test_sampling_is_independent_of_call_order(self):
        sampler = ScenarioSampler(master_seed=5)
        forward = [sampler.sample(i) for i in range(8)]
        backward = [sampler.sample(i) for i in reversed(range(8))]
        assert forward == list(reversed(backward))

    def test_different_seed_changes_variants(self):
        a = ScenarioSampler(master_seed=1).sample(0)
        b = ScenarioSampler(master_seed=2).sample(0)
        assert a != b

    def test_different_indices_differ(self):
        sampler = ScenarioSampler(master_seed=2022)
        specs = sampler.take(12)
        assert len({spec.name for spec in specs}) == 12
        # Same family every len(families) indices, but different parameters.
        stride = len(sampler.families)
        assert specs[0].family == specs[stride].family
        assert specs[0] != specs[stride]

    def test_sampled_specs_survive_pickling(self):
        # Parallel campaign workers receive sampled specs by pickling.
        sampler = ScenarioSampler(master_seed=2022)
        for spec in sampler.take(8):
            assert pickle.loads(pickle.dumps(spec)) == spec


class TestSampledParameters:
    def test_parameters_respect_ranges(self):
        sampler = ScenarioSampler(master_seed=11)
        hard_brakes = [s for s in sampler.take(40) if s.family == "hard-brake"]
        assert hard_brakes
        family = next(f for f in DEFAULT_FAMILIES if f.name == "hard-brake")
        gap = family.parameters["gap"]
        rate = family.parameters["rate"]
        for spec in hard_brakes:
            assert gap.low <= spec.initial_distance <= gap.high
            (phase,) = spec.lead_profile
            assert rate.low <= phase.rate <= rate.high
            assert 0.0 <= phase.target_speed <= mph_to_ms(12.0)

    def test_cut_in_variants_script_a_lane_change(self):
        sampler = ScenarioSampler(master_seed=11)
        cut_ins = [s for s in sampler.take(40) if s.family == "cut-in"]
        assert cut_ins
        for spec in cut_ins:
            (actor,) = spec.actors
            assert actor.kind == "cut_in"
            assert actor.lane == 1
            assert actor.lane_change is not None
            assert actor.lane_change.target_d == 0.0

    def test_take_with_start_offset(self):
        sampler = ScenarioSampler(master_seed=3)
        assert sampler.take(3, start=5) == [sampler.sample(i) for i in (5, 6, 7)]

    def test_iteration_matches_sample(self):
        sampler = ScenarioSampler(master_seed=3)
        iterator = iter(sampler)
        assert [next(iterator) for _ in range(4)] == sampler.take(4)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            ScenarioSampler(families=())
        with pytest.raises(ValueError):
            ScenarioSampler().sample(-1)


class TestStopAndGoWaveFamilies:
    def test_wave_variants_respect_ranges_and_duty_cycle(self):
        sampler = ScenarioSampler(master_seed=17)
        waves = [s for s in sampler.take(36) if s.family == "stop-and-go-wave"]
        assert waves
        family = next(f for f in DEFAULT_FAMILIES if f.name == "stop-and-go-wave")
        period = family.parameters["period"]
        for spec in waves:
            # Three crawl/recover cycles, alternating targets.
            assert len(spec.lead_profile) == 6
            crawl_phases = spec.lead_profile[0::2]
            recover_phases = spec.lead_profile[1::2]
            assert all(p.target_speed < r.target_speed
                       for p, r in zip(crawl_phases, recover_phases))
            cycle = spec.lead_profile[2].start_time - spec.lead_profile[0].start_time
            assert period.low <= cycle <= period.high
            # The duty cycle places the recovery inside the period.
            duty = (spec.lead_profile[1].start_time - spec.lead_profile[0].start_time) / cycle
            assert 0.25 <= duty <= 0.55

    def test_idm_dense_variant_scripts_idm_followers(self):
        sampler = ScenarioSampler(master_seed=17)
        dense = [s for s in sampler.take(36) if s.family == "stop-and-go-wave-idm"]
        assert dense
        for spec in dense:
            assert len(spec.actors) == 2
            assert all(actor.idm is not None for actor in spec.actors)
            assert all(actor.lane == 0 for actor in spec.actors)
            # The scripted wave runs on the furthest vehicle.
            assert spec.initial_distance > max(a.initial_gap for a in spec.actors)

    def test_wave_variants_are_deterministic(self):
        a = ScenarioSampler(master_seed=23)
        b = ScenarioSampler(master_seed=23)
        for index in range(4, 24, 6):
            assert a.sample(index) == b.sample(index)

"""Tests for the safety context table, state inference and matcher."""

import pytest

from repro.core.attack_types import ControlAction
from repro.core.context_matcher import ContextMatcher
from repro.core.context_table import ContextTable, default_context_table
from repro.core.eavesdropper import EavesdroppedData
from repro.core.state_inference import InferredContext, StateInference
from repro.sim.units import mph_to_ms


def context(**kwargs):
    defaults = dict(
        time=1.0, valid=True, v_ego=20.0, has_lead=True, lead_distance=60.0,
        lead_speed=15.0, relative_speed=5.0, headway_time=3.0,
        d_left=1.0, d_right=1.0, lateral_offset=0.0,
    )
    defaults.update(kwargs)
    return InferredContext(**defaults)


class TestContextTable:
    def test_has_four_rules_like_table1(self):
        assert len(default_context_table()) == 4

    def test_rule1_acceleration_when_close_and_closing(self):
        table = default_context_table(t_safe=2.0)
        rule1 = table.rules_for_action(ControlAction.ACCELERATION)[0]
        assert rule1.condition(context(headway_time=1.5, relative_speed=3.0))
        assert not rule1.condition(context(headway_time=2.5, relative_speed=3.0))
        assert not rule1.condition(context(headway_time=1.5, relative_speed=-1.0))
        assert rule1.hazard == "H1"

    def test_rule2_deceleration_when_no_closing_lead_and_fast(self):
        table = default_context_table(t_safe=2.0, beta1=mph_to_ms(25.0))
        rule2 = table.rules_for_action(ControlAction.DECELERATION)[0]
        assert rule2.condition(context(headway_time=3.0, relative_speed=-0.5))
        assert rule2.condition(context(has_lead=False, headway_time=float("inf")))
        assert not rule2.condition(context(headway_time=1.5, relative_speed=-0.5))
        assert not rule2.condition(context(headway_time=3.0, relative_speed=-0.5, v_ego=5.0))
        assert rule2.hazard == "H2"

    def test_rule3_rule4_steering_near_lane_edges(self):
        table = default_context_table(beta2=mph_to_ms(25.0), edge_threshold=0.1)
        rule3 = table.rules_for_action(ControlAction.STEER_LEFT)[0]
        rule4 = table.rules_for_action(ControlAction.STEER_RIGHT)[0]
        assert rule3.condition(context(d_left=0.05))
        assert not rule3.condition(context(d_left=0.5))
        assert rule4.condition(context(d_right=0.05))
        assert not rule4.condition(context(d_right=0.05, v_ego=5.0))
        assert rule3.hazard == rule4.hazard == "H3"

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            ContextTable([])

    def test_format_renders_all_rows(self):
        text = default_context_table().format()
        assert "ACCELERATION" in text and "STEER_RIGHT" in text
        assert text.count("\n") >= 5


class TestStateInference:
    def test_incomplete_data_yields_invalid_context(self):
        inference = StateInference()
        ctx = inference.infer(EavesdroppedData(time=1.0))
        assert not ctx.valid

    def test_headway_and_relative_speed(self):
        inference = StateInference()
        data = EavesdroppedData(
            time=1.0, v_ego=20.0, lateral_offset=0.0, left_line_offset=1.8,
            right_line_offset=-1.8, lane_width=3.6, has_lead=True,
            lead_distance=40.0, lead_relative_speed=-5.0,
        )
        ctx = inference.infer(data)
        assert ctx.valid
        assert ctx.headway_time == pytest.approx(2.0)
        # radar v_rel = lead - ego = -5 -> paper's RS = ego - lead = +5
        assert ctx.relative_speed == pytest.approx(5.0)
        assert ctx.lead_speed == pytest.approx(15.0)

    def test_lane_edge_distances_subtract_vehicle_width(self):
        inference = StateInference(vehicle_width=1.8)
        data = EavesdroppedData(
            time=1.0, v_ego=20.0, lateral_offset=-0.5, left_line_offset=2.3,
            right_line_offset=-1.3, lane_width=3.6,
        )
        ctx = inference.infer(data)
        assert ctx.d_left == pytest.approx(2.3 - 0.9)
        assert ctx.d_right == pytest.approx(1.3 - 0.9)

    def test_no_lead_gives_infinite_headway(self):
        inference = StateInference()
        data = EavesdroppedData(
            time=1.0, v_ego=20.0, lateral_offset=0.0, left_line_offset=1.8,
            right_line_offset=-1.8, has_lead=False,
        )
        ctx = inference.infer(data)
        assert ctx.headway_time == float("inf")
        assert not ctx.has_lead

    def test_standstill_headway_infinite(self):
        inference = StateInference()
        data = EavesdroppedData(
            time=1.0, v_ego=0.0, lateral_offset=0.0, left_line_offset=1.8,
            right_line_offset=-1.8, has_lead=True, lead_distance=10.0,
            lead_relative_speed=0.0,
        )
        assert inference.infer(data).headway_time == float("inf")


class TestContextMatcher:
    def test_matches_applicable_rules(self):
        matcher = ContextMatcher(default_context_table(t_safe=2.0))
        matches = matcher.match(context(headway_time=1.5, relative_speed=3.0, d_right=0.05))
        actions = {match.action for match in matches}
        assert ControlAction.ACCELERATION in actions
        assert ControlAction.STEER_RIGHT in actions

    def test_no_match_for_benign_context(self):
        matcher = ContextMatcher(default_context_table(t_safe=2.0))
        assert matcher.match(context(headway_time=2.2, relative_speed=3.0)) == []

    def test_invalid_context_never_matches(self):
        matcher = ContextMatcher(default_context_table())
        assert matcher.match(InferredContext(time=0.0, valid=False)) == []

    def test_low_speed_never_matches(self):
        matcher = ContextMatcher(default_context_table(), min_speed=1.0)
        assert matcher.match(context(v_ego=0.5, headway_time=0.5, relative_speed=5.0)) == []

    def test_match_for_actions_filters(self):
        matcher = ContextMatcher(default_context_table(t_safe=2.0))
        ctx = context(headway_time=1.5, relative_speed=3.0)
        match = matcher.match_for_actions(ctx, [ControlAction.ACCELERATION])
        assert match is not None and match.action is ControlAction.ACCELERATION
        assert matcher.match_for_actions(ctx, [ControlAction.STEER_LEFT]) is None

    def test_match_history_accumulates(self):
        matcher = ContextMatcher(default_context_table(t_safe=2.0))
        matcher.match(context(headway_time=1.5, relative_speed=3.0))
        matcher.match(context(headway_time=1.4, relative_speed=3.0))
        assert len(matcher.match_history) == 2

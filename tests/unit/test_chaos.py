"""Unit tests for the deterministic fault-injection harness, the
supervision policy's seeded backoff, and the fingerprinted task errors."""

import pickle

import pytest

from repro.core.attack_types import AttackType
from repro.core.strategies import ContextAwareStrategy
from repro.injection.engine import SimulationConfig
from repro.resilience import (
    ChaosError,
    ChaosPolicy,
    FaultSpec,
    SupervisionPolicy,
    TaskExecutionError,
    chaos_policy,
    task_fingerprint,
)


class TestFaultSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="meltdown", task_index=0)

    @pytest.mark.parametrize("kind", ["error", "crash", "hang", "corrupt", "drop"])
    def test_accepts_known_kinds(self, kind):
        assert FaultSpec(kind=kind, task_index=0).kind == kind


class TestChaosLedger:
    def test_fault_fires_exactly_times(self, tmp_path):
        policy = ChaosPolicy(
            faults=(FaultSpec(kind="error", task_index=3, times=2),),
            state_dir=str(tmp_path),
        )
        with pytest.raises(ChaosError):
            policy.before_task(3)
        with pytest.raises(ChaosError):
            policy.before_task(3)
        policy.before_task(3)  # spent: third visit runs clean
        assert policy.firings(policy.faults[0]) == 2

    def test_ledger_survives_policy_reconstruction(self, tmp_path):
        """A respawned worker rebuilds the policy from the same state_dir
        and must see the fault as already fired."""
        spec = FaultSpec(kind="error", task_index=0, times=1)
        first = ChaosPolicy(faults=(spec,), state_dir=str(tmp_path))
        with pytest.raises(ChaosError):
            first.before_task(0)
        rebuilt = ChaosPolicy(faults=(spec,), state_dir=str(tmp_path))
        rebuilt.before_task(0)  # no raise: the firing was claimed on disk
        assert rebuilt.firings(spec) == 1

    def test_other_indices_unaffected(self, tmp_path):
        policy = ChaosPolicy(
            faults=(FaultSpec(kind="error", task_index=3),), state_dir=str(tmp_path)
        )
        policy.before_task(2)
        policy.before_task(4)

    def test_always_on_fault_never_goes_quiet(self, tmp_path):
        policy = ChaosPolicy(
            faults=(FaultSpec(kind="error", task_index=1, times=-1),),
            state_dir=str(tmp_path),
        )
        for _ in range(5):
            with pytest.raises(ChaosError):
                policy.before_task(1)
        with pytest.raises(ValueError, match="ledger"):
            policy.firings(policy.faults[0])

    def test_corrupt_replaces_payload_entry(self, tmp_path):
        policy = ChaosPolicy(
            faults=(FaultSpec(kind="corrupt", task_index=7),), state_dir=str(tmp_path)
        )
        mangled = policy.after_chunk([(6, "r6"), (7, "r7")])
        assert mangled[0] == (6, "r6")
        assert mangled[1][0] == 7 and mangled[1][1] != "r7"
        # Spent: the retry payload passes through untouched.
        assert policy.after_chunk([(6, "r6"), (7, "r7")]) == [(6, "r6"), (7, "r7")]

    def test_drop_shortens_payload(self, tmp_path):
        policy = ChaosPolicy(
            faults=(FaultSpec(kind="drop", task_index=6),), state_dir=str(tmp_path)
        )
        assert policy.after_chunk([(6, "r6"), (7, "r7")]) == [(7, "r7")]
        assert policy.after_chunk([(6, "r6"), (7, "r7")]) == [(6, "r6"), (7, "r7")]

    def test_builder_returns_none_for_no_faults(self, tmp_path):
        assert chaos_policy([], state_dir=str(tmp_path)) is None
        assert chaos_policy(
            [FaultSpec(kind="error", task_index=0)], state_dir=str(tmp_path)
        ) is not None


class TestBackoff:
    def test_backoff_is_deterministic(self):
        policy = SupervisionPolicy()
        assert policy.backoff_delay(5, 1) == policy.backoff_delay(5, 1)
        again = SupervisionPolicy()
        assert policy.backoff_delay(5, 2) == again.backoff_delay(5, 2)

    def test_backoff_grows_exponentially(self):
        policy = SupervisionPolicy(backoff_base=0.1, backoff_factor=2.0, backoff_jitter=0.0)
        assert policy.backoff_delay(0, 1) == pytest.approx(0.1)
        assert policy.backoff_delay(0, 2) == pytest.approx(0.2)
        assert policy.backoff_delay(0, 3) == pytest.approx(0.4)

    def test_jitter_is_bounded_and_anchor_dependent(self):
        policy = SupervisionPolicy(backoff_base=0.1, backoff_factor=1.0, backoff_jitter=0.5)
        delays = {policy.backoff_delay(anchor, 1) for anchor in range(20)}
        assert len(delays) > 1  # different chunks draw different jitter
        for delay in delays:
            assert 0.1 <= delay <= 0.1 * 1.5

    def test_different_seeds_draw_different_jitter(self):
        a = SupervisionPolicy(backoff_seed=1)
        b = SupervisionPolicy(backoff_seed=2)
        assert a.backoff_delay(0, 1) != b.backoff_delay(0, 1)

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            SupervisionPolicy(max_chunk_attempts=0)
        with pytest.raises(ValueError):
            SupervisionPolicy(max_pool_respawns=-1)


class TestTaskExecutionError:
    def _config(self) -> SimulationConfig:
        return SimulationConfig(
            scenario="S1",
            initial_distance=50.0,
            seed=42,
            attack_type=AttackType.ACCELERATION,
        )

    def test_fingerprint_names_the_task(self):
        fingerprint = task_fingerprint(self._config(), ContextAwareStrategy())
        assert "scenario=S1" in fingerprint
        assert "seed=42" in fingerprint
        assert "attack=Acceleration" in fingerprint
        assert "strategy=Context-Aware" in fingerprint

    def test_wrap_carries_fingerprint(self):
        error = TaskExecutionError.wrap(
            task_fingerprint(self._config(), None), ValueError("boom")
        )
        assert "scenario=S1" in str(error)
        assert "boom" in str(error)
        assert "scenario=S1" in error.fingerprint

    def test_survives_pickling(self):
        """The pool pickles exceptions back to the parent; the fingerprint
        must survive the round trip."""
        error = TaskExecutionError.wrap("scenario=S1 seed=42", ValueError("boom"))
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, TaskExecutionError)
        assert clone.fingerprint == error.fingerprint
        assert str(clone) == str(error)

    def test_wrap_batch_names_every_candidate(self):
        """Quarantine reports and the journal cross-reference the batch
        fingerprints, so the message lists all of them — no truncation."""
        fingerprints = [f"seed={i}" for i in range(10)]
        error = TaskExecutionError.wrap_batch(fingerprints, ValueError("boom"))
        for fingerprint in fingerprints:
            assert fingerprint in str(error)
        assert "more" not in str(error)
        assert error.fingerprints == tuple(fingerprints)

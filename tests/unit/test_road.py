"""Tests for road geometry."""


import pytest

from repro.sim.road import Road, RoadSpec


class TestRoadSpecValidation:
    def test_defaults_valid(self):
        RoadSpec()

    def test_invalid_lane_width(self):
        with pytest.raises(ValueError):
            RoadSpec(lane_width=0.0)

    def test_negative_left_lanes(self):
        with pytest.raises(ValueError):
            RoadSpec(num_left_lanes=-1)

    def test_invalid_transition(self):
        with pytest.raises(ValueError):
            RoadSpec(curve_transition=0.0)


class TestCurvature:
    def test_straight_before_curve_start(self):
        road = Road(RoadSpec(curve_start=150.0))
        assert road.curvature(0.0) == 0.0
        assert road.curvature(149.9) == 0.0

    def test_full_curvature_after_transition(self):
        spec = RoadSpec(curve_start=150.0, curve_transition=200.0, curvature_max=0.0025)
        road = Road(spec)
        assert road.curvature(1000.0) == pytest.approx(0.0025)

    def test_curvature_monotonic_in_transition(self):
        road = Road(RoadSpec())
        values = [road.curvature(s) for s in range(150, 351, 10)]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    def test_curve_turns_left(self):
        # Positive curvature = left turn, matching the paper's left-curved road.
        assert Road(RoadSpec()).curvature(500.0) > 0.0


class TestLateralLandmarks:
    def test_lane_lines_symmetric(self):
        road = Road(RoadSpec(lane_width=3.6))
        assert road.left_lane_line == pytest.approx(1.8)
        assert road.right_lane_line == pytest.approx(-1.8)

    def test_right_guardrail_beyond_lane_line(self):
        road = Road(RoadSpec())
        assert road.right_guardrail < road.right_lane_line

    def test_left_road_edge_accounts_for_adjacent_lane(self):
        spec = RoadSpec(lane_width=3.6, num_left_lanes=1, left_shoulder=0.6)
        road = Road(spec)
        assert road.left_road_edge == pytest.approx(1.8 + 3.6 + 0.6)


class TestHeadingAndCartesian:
    def test_heading_zero_on_straight(self):
        assert Road(RoadSpec()).heading(100.0) == 0.0

    def test_heading_increases_on_curve(self):
        road = Road(RoadSpec())
        assert road.heading(600.0) > road.heading(400.0) > 0.0

    def test_heading_matches_integrated_curvature_after_ramp(self):
        spec = RoadSpec(curve_start=100.0, curve_transition=100.0, curvature_max=0.002)
        road = Road(spec)
        # Past the ramp, heading grows linearly with slope curvature_max.
        h1, h2 = road.heading(300.0), road.heading(400.0)
        assert (h2 - h1) == pytest.approx(0.002 * 100.0, rel=1e-6)

    def test_cartesian_straight_section(self):
        road = Road(RoadSpec(curve_start=1000.0))
        x, y = road.to_cartesian(100.0, 0.0)
        assert x == pytest.approx(100.0, abs=0.01)
        assert y == pytest.approx(0.0, abs=0.01)

    def test_cartesian_lateral_offset_is_perpendicular(self):
        road = Road(RoadSpec(curve_start=1000.0))
        x, y = road.to_cartesian(50.0, 1.5)
        assert y == pytest.approx(1.5, abs=0.01)

    def test_cartesian_curve_bends_left(self):
        road = Road(RoadSpec(curve_start=50.0, curve_transition=50.0, curvature_max=0.01))
        __, y = road.to_cartesian(400.0, 0.0)
        assert y > 10.0

"""Tests for DBC signal packing and the Honda message database."""

import pytest

from repro.can.checksum import verify_checksum
from repro.can.dbc import DBC, MessageDef, Signal
from repro.can.frame import CANFrame
from repro.can.honda import ADDR, HONDA_DBC


class TestSignal:
    def test_unsigned_round_trip(self):
        signal = Signal("S", 0, 8, factor=0.5)
        assert signal.to_physical(signal.to_raw(10.0)) == pytest.approx(10.0)

    def test_signed_negative_round_trip(self):
        signal = Signal("S", 0, 16, factor=0.01, is_signed=True)
        assert signal.to_physical(signal.to_raw(-3.21)) == pytest.approx(-3.21, abs=0.01)

    def test_unsigned_clamps_negative_to_zero(self):
        signal = Signal("S", 0, 8)
        assert signal.to_raw(-5.0) == 0

    def test_saturation_at_field_width(self):
        signal = Signal("S", 0, 8)
        assert signal.to_raw(1000.0) == 255

    def test_signed_saturation(self):
        signal = Signal("S", 0, 8, is_signed=True)
        assert signal.to_physical(signal.to_raw(1000.0)) == 127
        assert signal.to_physical(signal.to_raw(-1000.0)) == -128

    def test_min_max_clamp(self):
        signal = Signal("S", 0, 16, factor=0.1, minimum=-5.0, maximum=5.0)
        assert signal.to_physical(signal.to_raw(100.0)) == pytest.approx(5.0)

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            Signal("S", 0, 0)
        with pytest.raises(ValueError):
            Signal("S", 0, 65)

    def test_zero_factor_rejected(self):
        with pytest.raises(ValueError):
            Signal("S", 0, 8, factor=0.0)


class TestMessageDef:
    def test_signal_must_fit_in_message(self):
        with pytest.raises(ValueError):
            MessageDef("M", 0x100, 1, {"S": Signal("S", 4, 8)})

    def test_invalid_length_rejected(self):
        with pytest.raises(ValueError):
            MessageDef("M", 0x100, 9)


class TestDBCEncodeDecode:
    def test_steering_round_trip(self):
        frame = HONDA_DBC.encode("STEERING_CONTROL", {"STEER_ANGLE_CMD": -12.34}, counter=1)
        decoded = HONDA_DBC.decode(frame)
        assert decoded["STEER_ANGLE_CMD"] == pytest.approx(-12.34, abs=0.01)
        assert decoded["COUNTER"] == 1

    def test_acc_round_trip(self):
        frame = HONDA_DBC.encode(
            "ACC_CONTROL", {"ACCEL_COMMAND": 1.5, "BRAKE_COMMAND": 0.0, "ACC_ON": 1.0}
        )
        decoded = HONDA_DBC.decode(frame)
        assert decoded["ACCEL_COMMAND"] == pytest.approx(1.5, abs=0.005)
        assert decoded["ACC_ON"] == 1.0

    def test_encoded_frame_has_valid_checksum(self):
        frame = HONDA_DBC.encode("STEERING_CONTROL", {"STEER_ANGLE_CMD": 3.0})
        assert verify_checksum(frame.address, frame.data)

    def test_decode_rejects_bad_checksum(self):
        frame = HONDA_DBC.encode("STEERING_CONTROL", {"STEER_ANGLE_CMD": 3.0})
        tampered = frame.with_data(bytes([frame.data[0] ^ 0xFF]) + frame.data[1:])
        with pytest.raises(ValueError):
            HONDA_DBC.decode(tampered)
        # but decoding without the check succeeds
        HONDA_DBC.decode(tampered, check=False)

    def test_unknown_signal_rejected(self):
        with pytest.raises(KeyError):
            HONDA_DBC.encode("STEERING_CONTROL", {"NOT_A_SIGNAL": 1.0})

    def test_unknown_signal_rejected_before_any_packing(self):
        """Unknown keys are reported up front — with the offending names in
        the message — before any signal value is even read."""
        reads = []

        class RecordingDict(dict):
            def __getitem__(self, key):
                reads.append(key)
                return dict.__getitem__(self, key)

        values = RecordingDict(
            {"STEER_ANGLE_CMD": 1.0, "BOGUS_A": 2.0, "BOGUS_B": 3.0}
        )
        with pytest.raises(KeyError) as excinfo:
            HONDA_DBC.encode("STEERING_CONTROL", values)
        assert "unknown signals for message 'STEERING_CONTROL'" in str(excinfo.value)
        assert "BOGUS_A" in str(excinfo.value) and "BOGUS_B" in str(excinfo.value)
        assert reads == []

    def test_unknown_message_rejected(self):
        with pytest.raises(KeyError):
            HONDA_DBC.encode("NOT_A_MESSAGE", {})
        with pytest.raises(KeyError):
            HONDA_DBC.message_by_address(0x7FF)

    def test_wrong_length_frame_rejected(self):
        with pytest.raises(ValueError):
            HONDA_DBC.decode(CANFrame(ADDR["STEERING_CONTROL"], b"\x00\x00"))

    def test_duplicate_address_rejected(self):
        msg = MessageDef("A", 0x100, 2, {})
        msg2 = MessageDef("B", 0x100, 2, {})
        with pytest.raises(ValueError):
            DBC("dup", [msg, msg2])


class TestHondaDatabase:
    def test_steering_control_address_matches_paper(self):
        # Fig. 4 of the paper: the steering output CAN message is 0xE4.
        assert ADDR["STEERING_CONTROL"] == 0xE4

    def test_all_messages_resolvable_by_address(self):
        for name, address in ADDR.items():
            assert HONDA_DBC.message_by_address(address).name == name

    def test_powertrain_speed_round_trip(self):
        frame = HONDA_DBC.encode("POWERTRAIN_DATA", {"XMISSION_SPEED": 26.82})
        assert HONDA_DBC.decode(frame)["XMISSION_SPEED"] == pytest.approx(26.82, abs=0.01)

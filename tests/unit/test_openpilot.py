"""Tests for the top-level ADAS control loop."""

import pytest

from repro.adas.openpilot import OpenPilot, OpenPilotConfig
from repro.can.honda import ADDR, HONDA_DBC
from repro.messaging.messages import CarState, LaneLine, ModelV2, RadarLead, RadarState
from repro.sim.vehicle import ActuatorCommand


@pytest.fixture
def openpilot(message_bus, can_bus):
    return OpenPilot(OpenPilotConfig(), message_bus, can_bus)


def publish_perception(message_bus, lateral_offset=0.0, lead=None):
    message_bus.publish(
        "modelV2",
        ModelV2(
            lane_lines=(LaneLine(offset=1.8 - lateral_offset), LaneLine(offset=-1.8 - lateral_offset)),
            lateral_offset=lateral_offset,
            lane_width=3.6,
        ),
    )
    message_bus.publish("radarState", RadarState(lead_one=lead))


def car_state(v_ego=20.0, cruise=26.82, steering=0.0):
    return CarState(v_ego=v_ego, cruise_speed=cruise, cruise_enabled=True,
                    steering_angle_deg=steering)


class TestControlCycle:
    def test_sends_can_frames_each_cycle(self, openpilot, message_bus, can_bus):
        publish_perception(message_bus)
        openpilot.step(0.0, car_state())
        assert can_bus.latest(ADDR["STEERING_CONTROL"]) is not None
        assert can_bus.latest(ADDR["ACC_CONTROL"]) is not None

    def test_accelerates_towards_cruise_speed(self, openpilot, message_bus, can_bus):
        publish_perception(message_bus)
        result = openpilot.step(0.0, car_state(v_ego=15.0))
        assert result.command.accel > 0.0
        assert result.command.brake == 0.0

    def test_brakes_for_close_lead(self, openpilot, message_bus):
        lead = RadarLead(d_rel=20.0, v_rel=-10.0, v_lead=10.0)
        publish_perception(message_bus, lead=lead)
        result = openpilot.step(0.0, car_state(v_ego=20.0))
        assert result.command.brake > 0.0

    def test_output_accel_respects_openpilot_limits(self, openpilot, message_bus):
        publish_perception(message_bus)
        result = openpilot.step(0.0, car_state(v_ego=0.5))
        assert result.command.accel <= openpilot.config.output_limits.accel_max + 1e-9

    def test_steering_rate_limited_per_frame(self, openpilot, message_bus):
        publish_perception(message_bus, lateral_offset=-1.5)
        previous = 0.0
        for step in range(5):
            result = openpilot.step(step * 0.01, car_state())
            delta = result.command.steering_angle_deg - previous
            assert abs(delta) <= openpilot.config.output_limits.steer_delta_max_deg + 1e-9
            previous = result.command.steering_angle_deg

    def test_publishes_car_control_and_controls_state(self, openpilot, message_bus):
        control_sub = message_bus.subscribe("carControl")
        state_sub = message_bus.subscribe("controlsState")
        publish_perception(message_bus)
        openpilot.step(0.0, car_state())
        assert control_sub.latest is not None
        assert state_sub.latest is not None
        assert state_sub.latest.data.enabled

    def test_runs_without_perception_messages(self, openpilot):
        result = openpilot.step(0.0, car_state(steering=1.0))
        assert result.command.steering_angle_deg == pytest.approx(1.0, abs=0.6)


class TestOutputHooks:
    def test_hook_can_corrupt_command(self, openpilot, message_bus, can_bus):
        publish_perception(message_bus)

        def hook(time, command, cs):
            return ActuatorCommand(accel=2.4, brake=0.0,
                                   steering_angle_deg=command.steering_angle_deg)

        openpilot.add_output_hook(hook)
        result = openpilot.step(0.0, car_state(v_ego=26.82))
        assert result.command.accel == pytest.approx(2.4)
        assert result.pre_hook_command.accel < 2.4
        decoded = HONDA_DBC.decode(can_bus.latest(ADDR["ACC_CONTROL"]))
        assert decoded["ACCEL_COMMAND"] == pytest.approx(2.4, abs=0.01)

    def test_hook_removal(self, openpilot, message_bus):
        publish_perception(message_bus)
        hook = lambda t, c, s: ActuatorCommand(accel=2.4)  # noqa: E731
        openpilot.add_output_hook(hook)
        openpilot.remove_output_hook(hook)
        result = openpilot.step(0.0, car_state(v_ego=26.82))
        assert result.command.accel < 2.0

    def test_disengaged_adas_does_not_run_hooks_or_send_can(self, openpilot, message_bus, can_bus):
        publish_perception(message_bus)
        calls = []
        openpilot.add_output_hook(lambda t, c, s: calls.append(t) or c)
        openpilot.disengage()
        openpilot.step(0.0, car_state())
        assert calls == []
        assert can_bus.latest(ADDR["ACC_CONTROL"]) is None

    def test_fcw_evaluated_on_post_hook_brake(self, openpilot, message_bus):
        # The attack keeps the brake output below the FCW threshold, so the
        # FCW never fires even when the planner wants to brake hard
        # (Observation 2 of the paper).
        lead = RadarLead(d_rel=10.0, v_rel=-12.0, v_lead=8.0)
        publish_perception(message_bus, lead=lead)
        openpilot.add_output_hook(lambda t, c, s: ActuatorCommand(accel=2.0, brake=0.0,
                                                                  steering_angle_deg=c.steering_angle_deg))
        result = openpilot.step(0.0, car_state(v_ego=20.0))
        assert all(alert.name != "fcw" for alert in result.new_alerts)

"""Tests for hazard detection, run metrics and result aggregation."""

import pytest

from repro.analysis.hazards import HazardMonitor, HazardParams, HazardType
from repro.analysis.metrics import RunResult
from repro.analysis.results import (
    format_table_iv,
    format_table_v,
    summarize_by_attack_type,
    summarize_strategy,
)
from repro.sim.collision import AccidentType, CollisionEvent
from repro.sim.vehicle import ActuatorCommand


class TestHazardMonitor:
    def test_no_hazard_in_nominal_state(self, world):
        monitor = HazardMonitor()
        world.step(ActuatorCommand())
        assert monitor.check(world) == []
        assert not monitor.any_hazard

    def test_h1_when_too_close_to_lead(self, world):
        monitor = HazardMonitor(HazardParams(h1_headway=1.0))
        world.lead.state.s = world.ego.front_s + 5.0 + world.lead.length / 2.0
        world.step(ActuatorCommand())
        events = monitor.check(world)
        assert [e.hazard for e in events] == [HazardType.UNSAFE_FOLLOWING_DISTANCE]

    def test_h1_not_triggered_when_lead_in_other_lane(self, world):
        monitor = HazardMonitor()
        world.lead.state.s = world.ego.front_s + 5.0
        world.lead.state.d = 3.6
        world.step(ActuatorCommand())
        assert monitor.check(world) == []

    def test_h2_when_stopped_with_no_lead_nearby(self, world):
        monitor = HazardMonitor(HazardParams(h2_speed_floor=8.0, h2_warmup=0.0))
        world.ego.state.speed = 2.0
        world.lead.state.s = world.ego.front_s + 200.0
        world.step(ActuatorCommand())
        events = monitor.check(world)
        assert [e.hazard for e in events] == [HazardType.UNNECESSARY_STOP]

    def test_h2_suppressed_when_lead_is_close(self, world):
        monitor = HazardMonitor(HazardParams(h2_warmup=0.0))
        world.ego.state.speed = 2.0
        world.lead.state.s = world.ego.front_s + 10.0
        world.step(ActuatorCommand())
        assert monitor.check(world) == []

    def test_h2_suppressed_during_warmup(self, world):
        monitor = HazardMonitor(HazardParams(h2_warmup=10.0))
        world.ego.state.speed = 2.0
        world.lead.state.s = world.ego.front_s + 200.0
        world.step(ActuatorCommand())
        assert monitor.check(world) == []

    def test_h3_when_out_of_lane(self, world):
        monitor = HazardMonitor(HazardParams(out_of_lane_margin=0.4))
        world.ego.state.d = world.road.left_lane_line + 0.5
        world.step(ActuatorCommand())
        events = monitor.check(world)
        assert [e.hazard for e in events] == [HazardType.OUT_OF_LANE]

    def test_each_hazard_recorded_once(self, world):
        monitor = HazardMonitor(HazardParams(out_of_lane_margin=0.0))
        world.ego.state.d = world.road.left_lane_line + 0.5
        world.step(ActuatorCommand())
        assert len(monitor.check(world)) == 1
        world.step(ActuatorCommand())
        assert monitor.check(world) == []
        assert monitor.first_event.hazard is HazardType.OUT_OF_LANE


def make_result(hazards=None, accidents=None, alerts=None, activation=10.0, **kwargs):
    defaults = dict(scenario="S1", initial_distance=70.0, attack_type="Acceleration",
                    strategy="Context-Aware", seed=0, driver_enabled=True, duration=50.0)
    defaults.update(kwargs)
    result = RunResult(**defaults)
    result.hazards = hazards or {}
    result.accidents = accidents or {}
    result.alerts = alerts or []
    result.attack_activation_time = activation
    result.attack_activated = activation is not None
    return result


class TestRunResultMetrics:
    def test_time_to_hazard(self):
        result = make_result(hazards={"H1": 13.5}, activation=10.0)
        assert result.time_to_hazard == pytest.approx(3.5)

    def test_time_to_hazard_none_without_attack(self):
        result = make_result(hazards={"H1": 13.5}, activation=None)
        assert result.time_to_hazard is None

    def test_hazard_without_alert(self):
        assert make_result(hazards={"H1": 13.5}).hazard_without_alert
        assert not make_result(hazards={"H1": 13.5}, alerts=[("fcw", 12.0)]).hazard_without_alert
        assert not make_result().hazard_without_alert

    def test_lane_invasion_rate(self):
        result = make_result()
        result.lane_invasions = 25
        assert result.lane_invasions_per_second == pytest.approx(0.5)

    def test_record_accident(self):
        result = make_result()
        result.record_accident(CollisionEvent(AccidentType.LEAD_COLLISION, 20.0, ""))
        assert result.accidents == {"A1": 20.0}

    def test_margin_fields_round_trip_and_stay_out_of_default_payloads(self):
        plain = make_result()
        assert "min_ttc" not in plain.to_dict()  # golden fixtures unchanged
        tracked = make_result()
        tracked.min_ttc = 1.25
        tracked.min_lead_gap = 8.0
        tracked.min_ego_speed = 3.5
        tracked.min_lane_margin = 0.2
        payload = tracked.to_dict()
        assert payload["min_ttc"] == 1.25
        from repro.analysis.metrics import RunResult

        rebuilt = RunResult.from_dict(payload)
        assert rebuilt == tracked
        assert RunResult.from_dict(plain.to_dict()) == plain

    def test_margin_tracking_records_minima(self):
        from repro.injection.engine import SimulationConfig, run_simulation

        config = SimulationConfig(
            scenario="S1", seed=0, max_steps=1500, track_safety_margin=True
        )
        result = run_simulation(config)
        assert result.min_ttc is not None and result.min_ttc > 0.0
        assert result.min_lead_gap is not None and result.min_lead_gap > 0.0
        assert result.min_ego_speed is not None
        assert result.min_lane_margin is not None
        # Off by default (the golden-pinned configuration).
        untracked = run_simulation(SimulationConfig(scenario="S1", seed=0, max_steps=200))
        assert untracked.min_ttc is None and untracked.min_lane_margin is None


class TestAggregation:
    def test_summarize_strategy_counts(self):
        results = [
            make_result(hazards={"H1": 12.0}),
            make_result(hazards={"H3": 15.0}, alerts=[("steerSaturated", 14.0)]),
            make_result(),
            make_result(accidents={"A1": 20.0}, hazards={"H1": 18.0}),
        ]
        summary = summarize_strategy("Context-Aware", results)
        assert summary.runs == 4
        assert summary.hazards == 3
        assert summary.accidents == 1
        assert summary.alerts == 1
        assert summary.hazards_without_alerts == 2
        assert summary.hazard_rate == pytest.approx(0.75)

    def test_summarize_strategy_empty_raises(self):
        with pytest.raises(ValueError):
            summarize_strategy("X", [])

    def test_summarize_by_attack_type_with_driver_pairing(self):
        with_driver = [make_result(seed=1, hazards={}), make_result(seed=2, hazards={"H1": 12.0})]
        without_driver = [
            make_result(seed=1, hazards={"H1": 11.0}, driver_enabled=False),
            make_result(seed=2, hazards={"H1": 12.0}, driver_enabled=False),
        ]
        with_driver[0].driver_engaged = True
        summaries = summarize_by_attack_type(with_driver, without_driver)
        summary = summaries["Acceleration"]
        assert summary.prevented_hazards == 1
        assert summary.new_hazards == 0
        assert summary.hazards == 1

    def test_new_hazards_detected(self):
        with_driver = [make_result(seed=1, hazards={"H2": 20.0})]
        without_driver = [make_result(seed=1, hazards={"H1": 12.0})]
        summaries = summarize_by_attack_type(with_driver, without_driver)
        assert summaries["Acceleration"].new_hazards == 1

    def test_table_formatting_contains_all_rows(self):
        summary = summarize_strategy("Context-Aware", [make_result(hazards={"H1": 12.0})])
        text = format_table_iv([summary])
        assert "Context-Aware" in text and "Hazards" in text

    def test_table_v_formatting(self):
        runs = [make_result(hazards={"H1": 12.0})]
        summaries = summarize_by_attack_type(runs)
        text = format_table_v(summaries, summaries)
        assert "No Strategic Value Corruption" in text
        assert "With Strategic Value Corruption" in text

"""Tests for the simulated sensors."""

import numpy as np
import pytest

from repro.sim.actors import LeadVehicle
from repro.sim.road import Road, RoadSpec
from repro.sim.sensors import CameraModel, GpsSensor, RadarSensor, SensorNoise
from repro.sim.vehicle import EgoVehicle


@pytest.fixture
def road():
    return Road(RoadSpec())


@pytest.fixture
def ego(road):
    return EgoVehicle(road, initial_speed=20.0, initial_d=-0.3)


@pytest.fixture
def lead():
    return LeadVehicle(initial_s=60.0, initial_speed=15.0)


def noiseless_rng():
    return SensorNoise.noiseless(), np.random.default_rng(0)


class TestPeriodicPublication:
    def test_due_respects_frequency(self):
        noise, rng = noiseless_rng()
        gps = GpsSensor(noise, rng, frequency_hz=10.0)
        assert gps.due(0.0)
        assert not gps.due(0.05)
        assert gps.due(0.1)

    def test_invalid_frequency_rejected(self):
        noise, rng = noiseless_rng()
        with pytest.raises(ValueError):
            GpsSensor(noise, rng, frequency_hz=0.0)


class TestGps:
    def test_reports_ego_speed(self, ego, road):
        noise, rng = noiseless_rng()
        gps = GpsSensor(noise, rng)
        assert gps.measure(ego, road).speed == pytest.approx(20.0)

    def test_speed_never_negative_with_noise(self, ego, road):
        gps = GpsSensor(SensorNoise(gps_speed_std=5.0), np.random.default_rng(1))
        ego.state.speed = 0.0
        for _ in range(50):
            assert gps.measure(ego, road).speed >= 0.0


class TestRadar:
    def test_reports_relative_distance_and_speed(self, ego, road, lead):
        noise, rng = noiseless_rng()
        radar = RadarSensor(noise, rng)
        state = radar.measure(ego, lead)
        expected_gap = lead.rear_s - ego.front_s
        assert state.lead_one.d_rel == pytest.approx(expected_gap, abs=0.01)
        assert state.lead_one.v_rel == pytest.approx(-5.0, abs=0.01)

    def test_no_lead_when_out_of_range(self, ego, road):
        noise, rng = noiseless_rng()
        radar = RadarSensor(noise, rng, max_range=50.0)
        far_lead = LeadVehicle(initial_s=500.0, initial_speed=15.0)
        assert radar.measure(ego, far_lead).lead_one is None

    def test_no_lead_when_none_present(self, ego):
        noise, rng = noiseless_rng()
        radar = RadarSensor(noise, rng)
        assert radar.measure(ego, None).lead_one is None


class TestCameraModel:
    def test_lane_lines_relative_to_vehicle(self, ego, road):
        noise, rng = noiseless_rng()
        camera = CameraModel(noise, rng)
        model = camera.measure(ego, road, None)
        # Vehicle is 0.3 m right of centre: left line farther, right line closer.
        assert model.lane_lines[0].offset == pytest.approx(road.left_lane_line + 0.3, abs=0.01)
        assert model.lane_lines[1].offset == pytest.approx(road.right_lane_line + 0.3, abs=0.01)
        assert model.lateral_offset == pytest.approx(-0.3, abs=0.01)

    def test_curvature_lookahead(self, road):
        noise, rng = noiseless_rng()
        camera = CameraModel(noise, rng, curvature_lookahead=20.0)
        ego = EgoVehicle(road, initial_speed=20.0)
        ego.state.s = road.spec.curve_start + road.spec.curve_transition + 100.0
        model = camera.measure(ego, road, None)
        assert model.curvature == pytest.approx(road.spec.curvature_max)

    def test_lead_probability_when_visible(self, ego, road, lead):
        noise, rng = noiseless_rng()
        camera = CameraModel(noise, rng)
        model = camera.measure(ego, road, lead)
        assert model.lead_probability > 0.5
        assert model.lead_distance > 0.0

    def test_lane_reanchoring_after_lane_change(self, road):
        # Once the vehicle is mostly in the adjacent (left) lane, the
        # perception reports its offset relative to that lane.
        noise, rng = noiseless_rng()
        camera = CameraModel(noise, rng)
        ego = EgoVehicle(road, initial_speed=20.0, initial_d=road.spec.lane_width + 0.2)
        model = camera.measure(ego, road, None)
        assert abs(model.lateral_offset) < road.spec.lane_width / 2.0

    def test_no_reanchor_to_nonexistent_right_lane(self, road):
        noise, rng = noiseless_rng()
        camera = CameraModel(noise, rng)
        ego = EgoVehicle(road, initial_speed=20.0, initial_d=-road.spec.lane_width)
        model = camera.measure(ego, road, None)
        assert model.lateral_offset == pytest.approx(-road.spec.lane_width, abs=0.01)

"""Tests for the publish/subscribe message bus."""

import pytest

from repro.messaging.messages import CarState, GpsLocationExternal, RadarState


class TestPublishSubscribe:
    def test_subscriber_receives_published_event(self, message_bus):
        sub = message_bus.subscribe("carState")
        message_bus.publish("carState", CarState(v_ego=10.0))
        assert sub.latest is not None
        assert sub.latest.data.v_ego == 10.0

    def test_multiple_subscribers_each_receive(self, message_bus):
        subs = [message_bus.subscribe("radarState") for _ in range(3)]
        message_bus.publish("radarState", RadarState())
        assert all(sub.latest is not None for sub in subs)

    def test_events_carry_increasing_sequence_numbers(self, message_bus):
        sub = message_bus.subscribe("carState")
        for _ in range(5):
            message_bus.publish("carState", CarState())
        events = sub.drain()
        assert [event.seq for event in events] == [0, 1, 2, 3, 4]

    def test_publish_wrong_payload_type_raises(self, message_bus):
        with pytest.raises(TypeError):
            message_bus.publish("carState", GpsLocationExternal())

    def test_publish_unknown_service_raises(self, message_bus):
        with pytest.raises(KeyError):
            message_bus.publish("noSuchService", CarState())

    def test_unsubscribed_service_gets_nothing(self, message_bus):
        sub = message_bus.subscribe("carState")
        message_bus.publish("radarState", RadarState())
        assert sub.latest is None

    def test_unsubscribe_stops_delivery(self, message_bus):
        sub = message_bus.subscribe("carState")
        message_bus.unsubscribe(sub)
        message_bus.publish("carState", CarState())
        assert sub.latest is None

    def test_publication_count(self, message_bus):
        assert message_bus.publication_count("carState") == 0
        message_bus.publish("carState", CarState())
        message_bus.publish("carState", CarState())
        assert message_bus.publication_count("carState") == 2


class TestConflation:
    def test_conflated_subscription_keeps_only_latest(self, message_bus):
        sub = message_bus.subscribe("carState", conflate=True)
        for speed in (1.0, 2.0, 3.0):
            message_bus.publish("carState", CarState(v_ego=speed))
        events = sub.drain()
        assert len(events) == 1
        assert events[0].data.v_ego == 3.0

    def test_non_conflated_subscription_keeps_all(self, message_bus):
        sub = message_bus.subscribe("carState")
        for speed in (1.0, 2.0, 3.0):
            message_bus.publish("carState", CarState(v_ego=speed))
        assert [event.data.v_ego for event in sub.drain()] == [1.0, 2.0, 3.0]

    def test_drain_clears_queue(self, message_bus):
        sub = message_bus.subscribe("carState")
        message_bus.publish("carState", CarState())
        assert len(sub.drain()) == 1
        assert sub.drain() == []


class TestClockAndTaps:
    def test_events_stamped_with_bus_time(self, message_bus):
        sub = message_bus.subscribe("carState")
        message_bus.set_time(1.23)
        message_bus.publish("carState", CarState())
        assert sub.latest.mono_time == pytest.approx(1.23)

    def test_clock_must_be_monotonic(self, message_bus):
        message_bus.set_time(5.0)
        with pytest.raises(ValueError):
            message_bus.set_time(4.0)

    def test_event_age(self, message_bus):
        message_bus.set_time(2.0)
        event = message_bus.publish("carState", CarState())
        assert event.age(3.5) == pytest.approx(1.5)

    def test_tap_sees_every_service(self, message_bus):
        seen = []
        message_bus.add_tap(lambda event: seen.append(event.service))
        message_bus.publish("carState", CarState())
        message_bus.publish("radarState", RadarState())
        assert seen == ["carState", "radarState"]

    def test_validity_flag_propagates(self, message_bus):
        sub = message_bus.subscribe("radarState")
        message_bus.publish("radarState", RadarState(), valid=False)
        assert sub.latest.valid is False

"""Unit tests for the span tracer and its Chrome-trace/JSONL exports."""

import io
import json

import pytest

from repro.telemetry import Tracer, write_chrome_trace, write_trace_jsonl


class TestTracer:
    def test_span_context_manager_records_complete_span(self):
        tracer = Tracer()
        with tracer.span("work", "test", detail=1) as span:
            span.annotate(more=2)
        spans = list(tracer)
        assert len(spans) == 1
        name, category, start_ns, duration_ns, args = spans[0]
        assert name == "work" and category == "test"
        assert start_ns > 0 and duration_ns >= 0
        assert args == {"detail": 1, "more": 2}

    def test_instant_records_zero_duration_marker(self):
        tracer = Tracer()
        tracer.instant("marker", task=3)
        ((name, _, _, duration_ns, args),) = list(tracer)
        assert name == "marker" and duration_ns == 0 and args == {"task": 3}

    def test_ring_buffer_bounds_memory_and_counts_drops(self):
        tracer = Tracer(capacity=4)
        for index in range(10):
            tracer.add_complete(f"s{index}", index, 1)
        assert len(tracer) == 4
        assert tracer.dropped == 6
        assert [span[0] for span in tracer] == ["s6", "s7", "s8", "s9"]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_merge_appends_spans_and_drop_counts(self):
        a, b = Tracer(), Tracer(capacity=2)
        a.add_complete("mine", 1, 1)
        for index in range(3):
            b.add_complete(f"other{index}", index, 1)
        a.merge(b)
        assert [span[0] for span in a] == ["mine", "other1", "other2"]
        assert a.dropped == 1


class TestChromeEvents:
    def test_complete_span_maps_to_x_event_in_microseconds(self):
        tracer = Tracer()
        tracer.add_complete("run", 2_000, 1_500, category="repro", args={"seed": 7})
        (event,) = tracer.chrome_events()
        assert event["ph"] == "X"
        assert event["name"] == "run" and event["cat"] == "repro"
        assert event["ts"] == 2.0 and event["dur"] == 1.5  # ns → µs
        assert event["args"] == {"seed": 7}
        assert event["pid"] == tracer.pid

    def test_zero_duration_span_becomes_instant_event(self):
        tracer = Tracer()
        tracer.instant("marker")
        (event,) = tracer.chrome_events()
        assert event["ph"] == "i"
        assert event["s"] == "t"
        assert "dur" not in event


class TestTraceFiles:
    def _tracer(self):
        tracer = Tracer()
        with tracer.span("outer", "test"):
            tracer.instant("inner-marker", step=1)
        return tracer

    def test_jsonl_lines_each_parse_as_an_event(self, tmp_path):
        tracer = self._tracer()
        path = tmp_path / "trace.jsonl"
        written = write_trace_jsonl(tracer, str(path))
        lines = path.read_text().splitlines()
        assert written == len(lines) == 2
        events = [json.loads(line) for line in lines]
        assert {event["name"] for event in events} == {"outer", "inner-marker"}
        assert all({"ph", "ts", "pid", "tid"} <= event.keys() for event in events)

    def test_jsonl_accepts_open_handles(self):
        buffer = io.StringIO()
        written = write_trace_jsonl(self._tracer(), buffer)
        assert written == 2
        assert len(buffer.getvalue().splitlines()) == 2

    def test_chrome_trace_envelope_parses(self, tmp_path):
        path = tmp_path / "trace.json"
        written = write_chrome_trace(self._tracer(), str(path))
        payload = json.loads(path.read_text())
        assert written == 2
        assert payload["displayTimeUnit"] == "ms"
        assert len(payload["traceEvents"]) == 2

"""Tests for collision detection and lane monitoring."""

import pytest

from repro.sim.actors import FollowerVehicle, LeadVehicle
from repro.sim.collision import AccidentType, CollisionDetector, LaneMonitor
from repro.sim.road import Road, RoadSpec
from repro.sim.vehicle import EgoVehicle


@pytest.fixture
def road():
    return Road(RoadSpec())


@pytest.fixture
def ego(road):
    return EgoVehicle(road, initial_speed=20.0)


class TestCollisionDetector:
    def test_no_collision_normally(self, road, ego):
        detector = CollisionDetector(road)
        lead = LeadVehicle(initial_s=60.0, initial_speed=15.0)
        assert detector.check(1.0, ego, lead) is None
        assert not detector.collided

    def test_lead_collision_detected(self, road, ego):
        detector = CollisionDetector(road)
        lead = LeadVehicle(initial_s=ego.front_s + 1.0, initial_speed=15.0)
        event = detector.check(1.0, ego, lead)
        assert event is not None
        assert event.accident is AccidentType.LEAD_COLLISION

    def test_no_lead_collision_when_different_lane(self, road, ego):
        detector = CollisionDetector(road)
        lead = LeadVehicle(initial_s=ego.front_s + 1.0, initial_speed=15.0)
        lead.state.d = 3.6  # adjacent lane
        assert detector.check(1.0, ego, lead) is None

    def test_right_guardrail_collision(self, road, ego):
        detector = CollisionDetector(road)
        ego.state.d = road.right_guardrail - 0.2
        event = detector.check(2.0, ego, None)
        assert event.accident is AccidentType.ROADSIDE_COLLISION

    def test_left_road_edge_collision(self, road, ego):
        detector = CollisionDetector(road)
        ego.state.d = road.left_road_edge + 0.2
        event = detector.check(2.0, ego, None)
        assert event.accident is AccidentType.ROADSIDE_COLLISION

    def test_rear_end_collision(self, road, ego):
        detector = CollisionDetector(road)
        follower = FollowerVehicle(initial_s=ego.rear_s - 1.0, initial_speed=25.0)
        event = detector.check(3.0, ego, None, follower)
        assert event.accident is AccidentType.REAR_END_COLLISION

    def test_first_event_is_earliest(self, road, ego):
        detector = CollisionDetector(road)
        ego.state.d = road.right_guardrail - 0.2
        detector.check(2.0, ego, None)
        detector.check(3.0, ego, None)
        assert detector.first_event().time == 2.0


class TestLaneMonitor:
    def test_centered_vehicle_no_invasion(self, road, ego):
        monitor = LaneMonitor(road)
        monitor.check(1.0, ego)
        assert monitor.report.invasion_events == []
        assert not monitor.report.out_of_lane

    def test_invasion_counted_once_per_crossing(self, road, ego):
        monitor = LaneMonitor(road)
        ego.state.d = road.right_lane_line + 0.3  # edge over the line
        monitor.check(1.0, ego)
        monitor.check(1.1, ego)
        assert len(monitor.report.invasion_events) == 1
        # Return to centre then cross again -> second event.
        ego.state.d = 0.0
        monitor.check(1.2, ego)
        ego.state.d = road.right_lane_line + 0.3
        monitor.check(1.3, ego)
        assert len(monitor.report.invasion_events) == 2

    def test_invasion_side_recorded(self, road, ego):
        monitor = LaneMonitor(road)
        ego.state.d = road.left_lane_line - 0.3
        monitor.check(1.0, ego)
        assert monitor.report.invasion_events[0].side == "left"

    def test_out_of_lane_when_centre_crosses(self, road, ego):
        monitor = LaneMonitor(road)
        ego.state.d = road.left_lane_line + 0.1
        monitor.check(2.5, ego)
        assert monitor.report.out_of_lane
        assert monitor.report.out_of_lane_time == 2.5

    def test_invasions_per_second(self, road, ego):
        monitor = LaneMonitor(road)
        ego.state.d = road.right_lane_line + 0.3
        monitor.check(1.0, ego)
        assert monitor.report.invasions_per_second(10.0) == pytest.approx(0.1)
        assert monitor.report.invasions_per_second(0.0) == 0.0

"""Edge cases of the executor's chunking rules and the crash-safe
checkpoint file format (atomicity, fingerprint validation)."""

import json
import os

import pytest

from repro.analysis.metrics import RunResult
from repro.injection.executor import ParallelCampaignRunner, _chunked, run_simulations
from repro.resilience.checkpoint import (
    CAMPAIGN_CHECKPOINT_VERSION,
    CampaignCheckpoint,
    CheckpointMismatch,
    atomic_write_json,
    checkpoint_slug,
    fingerprint_strings,
)


class TestChunked:
    def test_empty_list_yields_no_chunks(self):
        assert _chunked([], 4) == []

    def test_chunk_size_larger_than_total(self):
        assert _chunked([1, 2, 3], 10) == [[1, 2, 3]]

    def test_chunk_size_one(self):
        assert _chunked([1, 2, 3], 1) == [[1], [2], [3]]

    def test_exact_division(self):
        assert _chunked([1, 2, 3, 4], 2) == [[1, 2], [3, 4]]

    def test_remainder_chunk_is_short(self):
        assert _chunked([1, 2, 3, 4, 5], 2) == [[1, 2], [3, 4], [5]]


class TestResolveChunkSize:
    def _runner(self, workers, chunk_size=None):
        return ParallelCampaignRunner(campaign=None, workers=workers, chunk_size=chunk_size)

    def test_explicit_chunk_size_wins(self):
        assert self._runner(workers=4, chunk_size=7)._resolve_chunk_size(1000) == 7

    def test_explicit_chunk_size_clamped_to_one(self):
        assert self._runner(workers=4, chunk_size=0)._resolve_chunk_size(1000) == 1
        assert self._runner(workers=4, chunk_size=-3)._resolve_chunk_size(1000) == 1

    def test_default_targets_four_chunks_per_worker(self):
        # 1000 cells on 4 workers -> ceil(1000 / 16) = 63 cells per chunk.
        assert self._runner(workers=4)._resolve_chunk_size(1000) == 63

    def test_total_smaller_than_worker_fanout(self):
        # Never returns 0 even when the grid is tiny.
        assert self._runner(workers=8)._resolve_chunk_size(1) == 1
        assert self._runner(workers=8)._resolve_chunk_size(0) == 1


def test_run_simulations_empty_task_list():
    assert run_simulations([]) == []
    assert run_simulations([], workers=4) == []


class TestAtomicWriteJson:
    def test_writes_payload(self, tmp_path):
        path = str(tmp_path / "out.json")
        atomic_write_json(path, {"a": 1})
        with open(path) as handle:
            assert json.load(handle) == {"a": 1}

    def test_leaves_no_temp_file(self, tmp_path):
        path = str(tmp_path / "out.json")
        atomic_write_json(path, {"a": 1})
        assert os.listdir(tmp_path) == ["out.json"]

    def test_crash_between_write_and_rename_keeps_previous(self, tmp_path):
        """A temp file written but never renamed (the crash window) must
        not affect what a resumed process loads."""
        path = str(tmp_path / "ck.json")
        atomic_write_json(path, {"generation": 1})
        # Simulate the crash: the next write reached the temp file but
        # died before os.replace.
        with open(f"{path}.tmp", "w") as handle:
            handle.write('{"generation": 2, "truncat')
        with open(path) as handle:
            assert json.load(handle) == {"generation": 1}


def _result(seed: int) -> RunResult:
    return RunResult(
        scenario="S1",
        initial_distance=50.0,
        attack_type="Acceleration",
        strategy="Context-Aware",
        seed=seed,
        driver_enabled=True,
        duration=1.0,
    )


class TestCampaignCheckpoint:
    def _checkpoint(self, tmp_path, fingerprint="fp", total=3):
        return CampaignCheckpoint(str(tmp_path / "ck.json"), fingerprint, total)

    def test_load_missing_file_is_empty(self, tmp_path):
        assert self._checkpoint(tmp_path).load() == {}

    def test_roundtrip(self, tmp_path):
        checkpoint = self._checkpoint(tmp_path)
        checkpoint.record(0, _result(10))
        checkpoint.record(2, _result(12))
        checkpoint.flush()

        resumed = self._checkpoint(tmp_path)
        loaded = resumed.load()
        assert sorted(loaded) == [0, 2]
        assert loaded[0].to_dict() == _result(10).to_dict()
        assert loaded[2].to_dict() == _result(12).to_dict()
        assert resumed.loaded == 2

    def test_flush_is_noop_when_clean(self, tmp_path):
        checkpoint = self._checkpoint(tmp_path)
        checkpoint.flush()
        assert not os.path.exists(checkpoint.path)

    def test_fingerprint_mismatch_refuses_to_load(self, tmp_path):
        checkpoint = self._checkpoint(tmp_path, fingerprint="fp-a")
        checkpoint.record(0, _result(1))
        checkpoint.flush()
        with pytest.raises(CheckpointMismatch, match="fingerprint"):
            self._checkpoint(tmp_path, fingerprint="fp-b").load()

    def test_total_mismatch_refuses_to_load(self, tmp_path):
        checkpoint = self._checkpoint(tmp_path, total=3)
        checkpoint.record(0, _result(1))
        checkpoint.flush()
        with pytest.raises(CheckpointMismatch, match="tasks"):
            self._checkpoint(tmp_path, total=4).load()

    def test_version_mismatch_refuses_to_load(self, tmp_path):
        checkpoint = self._checkpoint(tmp_path)
        atomic_write_json(
            checkpoint.path,
            {
                "version": CAMPAIGN_CHECKPOINT_VERSION + 1,
                "fingerprint": "fp",
                "total": 3,
                "results": {},
            },
        )
        with pytest.raises(CheckpointMismatch, match="version"):
            checkpoint.load()

    def test_invalid_json_refuses_to_load(self, tmp_path):
        checkpoint = self._checkpoint(tmp_path)
        with open(checkpoint.path, "w") as handle:
            handle.write("not json")
        with pytest.raises(CheckpointMismatch, match="JSON"):
            checkpoint.load()

    def test_out_of_range_index_refuses_to_load(self, tmp_path):
        checkpoint = self._checkpoint(tmp_path, total=2)
        atomic_write_json(
            checkpoint.path,
            {
                "version": CAMPAIGN_CHECKPOINT_VERSION,
                "fingerprint": "fp",
                "total": 2,
                "results": {"5": _result(1).to_dict()},
            },
        )
        with pytest.raises(CheckpointMismatch, match="out of range"):
            checkpoint.load()

    def test_remove_is_idempotent(self, tmp_path):
        checkpoint = self._checkpoint(tmp_path)
        checkpoint.record(0, _result(1))
        checkpoint.flush()
        checkpoint.remove()
        assert not os.path.exists(checkpoint.path)
        checkpoint.remove()  # second remove must not raise


def test_fingerprint_strings_is_order_sensitive():
    assert fingerprint_strings(["a", "b"]) != fingerprint_strings(["b", "a"])
    assert fingerprint_strings(["a", "b"]) == fingerprint_strings(["a", "b"])
    # Concatenation ambiguity must not collide ("ab"+"c" vs "a"+"bc").
    assert fingerprint_strings(["ab", "c"]) != fingerprint_strings(["a", "bc"])


def test_checkpoint_slug():
    assert checkpoint_slug("Context-Aware (fixed values)") == "Context-Aware_fixed_values"
    assert checkpoint_slug("Random ST+DUR") == "Random_ST_DUR"
    assert checkpoint_slug("***") == "unnamed"

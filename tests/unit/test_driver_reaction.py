"""Tests for the driver-reaction simulator and anomaly detector."""

import pytest

from repro.driver.anomaly import AnomalyDetector
from repro.driver.reaction import (
    DriverParams,
    DriverPhase,
    DriverReactionSimulator,
    brake_response_curve,
)
from repro.messaging.messages import AlertEvent
from repro.sim.vehicle import ActuatorCommand


NORMAL = ActuatorCommand(accel=0.5, brake=0.0, steering_angle_deg=2.0)


class TestBrakeResponseCurve:
    def test_matches_paper_equation(self):
        # Eq. 4: brake = e^(10t-12) / (1 + e^(10t-12))
        import math
        for t in (0.0, 0.5, 1.0, 1.2, 1.5, 2.0):
            expected = math.exp(10 * t - 12) / (1 + math.exp(10 * t - 12))
            assert brake_response_curve(t) == pytest.approx(expected)

    def test_monotone_increasing_to_one(self):
        values = [brake_response_curve(t / 10) for t in range(0, 30)]
        assert all(b >= a for a, b in zip(values, values[1:]))
        assert brake_response_curve(3.0) > 0.99

    def test_no_overflow_for_long_times(self):
        assert brake_response_curve(1000.0) == 1.0


class TestAnomalyDetector:
    def test_normal_commands_not_anomalous(self):
        detector = AnomalyDetector()
        assert detector.detect(1.0, NORMAL, NORMAL, 20.0, 26.8) is None

    def test_hard_brake_detected(self):
        detector = AnomalyDetector()
        anomaly = detector.detect(1.0, ActuatorCommand(brake=4.0), NORMAL, 20.0, 26.8)
        assert anomaly.kind == "hard_brake"

    def test_excessive_acceleration_detected(self):
        detector = AnomalyDetector()
        anomaly = detector.detect(1.0, ActuatorCommand(accel=2.4), NORMAL, 20.0, 26.8)
        assert anomaly.kind == "acceleration"

    def test_strategic_values_not_detected(self):
        # Strategic corruption stays at the ISO limits, which the driver
        # does not perceive as anomalous.
        detector = AnomalyDetector()
        previous = ActuatorCommand(steering_angle_deg=2.0)
        strategic_accel = ActuatorCommand(accel=2.0, steering_angle_deg=2.0)
        strategic_brake = ActuatorCommand(brake=3.5, steering_angle_deg=2.0)
        assert detector.detect(1.0, strategic_accel, previous, 20.0, 26.8) is None
        assert detector.detect(1.0, strategic_brake, previous, 20.0, 26.8) is None

    def test_fast_steering_change_detected(self):
        detector = AnomalyDetector()
        previous = ActuatorCommand(steering_angle_deg=0.0)
        anomaly = detector.detect(1.0, ActuatorCommand(steering_angle_deg=2.0), previous, 20.0, 26.8)
        assert anomaly.kind == "steering"

    def test_overspeed_detected(self):
        detector = AnomalyDetector()
        anomaly = detector.detect(1.0, NORMAL, NORMAL, 30.0, 26.8)
        assert anomaly.kind == "overspeed"

    def test_lane_departure_detected(self):
        detector = AnomalyDetector()
        anomaly = detector.detect(1.0, NORMAL, NORMAL, 20.0, 26.8, lateral_offset=1.6)
        assert anomaly.kind == "lane_departure"


class TestDriverStateMachine:
    def test_never_engages_without_anomaly(self, message_bus):
        driver = DriverReactionSimulator(message_bus)
        for step in range(500):
            decision = driver.update(step * 0.01, NORMAL, 20.0, 26.8, 0.0, 0.0, 2.0)
        assert not driver.perceived
        assert not decision.engaged

    def test_reaction_delay_before_engagement(self, message_bus):
        driver = DriverReactionSimulator(message_bus, DriverParams(reaction_time=2.5))
        anomalous = ActuatorCommand(accel=2.4)
        decision = driver.update(0.0, anomalous, 20.0, 26.8, 0.0, 0.0, 0.0)
        assert driver.perceived and not decision.engaged
        decision = driver.update(2.0, anomalous, 20.0, 26.8, 0.0, 0.0, 0.0)
        assert not decision.engaged
        decision = driver.update(2.51, anomalous, 20.0, 26.8, 0.0, 0.0, 0.0)
        assert decision.engaged

    def test_alert_triggers_perception(self, message_bus):
        driver = DriverReactionSimulator(message_bus)
        message_bus.publish("alertEvent", AlertEvent(name="fcw", severity="critical"))
        driver.update(0.0, NORMAL, 20.0, 26.8, 0.0, 0.0, 0.0)
        assert driver.perceived
        assert driver.perceived_reason == "alert:fcw"

    def test_mitigation_brakes_hard_for_acceleration_anomaly(self, message_bus):
        driver = DriverReactionSimulator(message_bus, DriverParams(reaction_time=0.0))
        anomalous = ActuatorCommand(accel=2.4)
        driver.update(0.0, anomalous, 20.0, 26.8, 0.0, 0.0, 0.0)
        decision = driver.update(1.5, anomalous, 20.0, 26.8, 0.0, 0.0, 0.0)
        assert decision.phase is DriverPhase.MITIGATING
        assert decision.command.brake > 5.0
        assert decision.command.accel == 0.0

    def test_mitigation_releases_brake_for_hard_brake_anomaly(self, message_bus):
        driver = DriverReactionSimulator(message_bus, DriverParams(reaction_time=0.0))
        anomalous = ActuatorCommand(brake=4.0)
        driver.update(0.0, anomalous, 15.0, 26.8, 0.0, 0.0, 0.0)
        decision = driver.update(1.5, anomalous, 10.0, 26.8, 0.0, 0.0, 0.0)
        assert decision.command.brake == 0.0
        assert decision.command.accel > 0.0

    def test_manual_driving_after_mitigation(self, message_bus):
        driver = DriverReactionSimulator(
            message_bus, DriverParams(reaction_time=0.0, mitigation_time=1.0)
        )
        anomalous = ActuatorCommand(accel=2.4)
        driver.update(0.0, anomalous, 20.0, 26.8, 0.0, 0.0, 0.0)
        driver.update(0.5, anomalous, 20.0, 26.8, 0.0, 0.0, 0.0)
        decision = driver.update(2.0, NORMAL, 15.0, 26.8, 0.0, 0.0, 0.0, lead_gap=60.0, lead_speed=20.0)
        assert decision.phase is DriverPhase.MANUAL
        assert decision.command.accel > 0.0

    def test_disabled_driver_never_reacts(self, message_bus):
        driver = DriverReactionSimulator(message_bus, DriverParams(enabled=False))
        decision = driver.update(0.0, ActuatorCommand(accel=5.0), 20.0, 26.8, 0.0, 0.0, 0.0)
        assert not driver.perceived
        assert not decision.engaged

    def test_manual_car_following_slows_for_close_lead(self, message_bus):
        driver = DriverReactionSimulator(
            message_bus, DriverParams(reaction_time=0.0, mitigation_time=0.5)
        )
        anomalous = ActuatorCommand(accel=2.4)
        driver.update(0.0, anomalous, 20.0, 26.8, 0.0, 0.0, 0.0)
        decision = driver.update(1.0, NORMAL, 20.0, 26.8, 0.0, 0.0, 0.0, lead_gap=10.0, lead_speed=5.0)
        assert decision.command.brake > 0.0

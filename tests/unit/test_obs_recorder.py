"""Unit tests for the flight recorder (:mod:`repro.obs.recorder`)."""

import json

import pytest

from repro.core.attack_types import AttackType
from repro.injection.engine import SimulationConfig, run_simulation
from repro.core.strategies import strategy_by_name
from repro.obs.query import (
    hazard_view,
    iter_flight_records,
    load_flight_record,
    matches_trajectory_tail,
)
from repro.obs.recorder import (
    FLIGHT_RECORD_VERSION,
    FLIGHT_SAMPLE_FIELDS,
    FlightRecorder,
    FlightRecorderConfig,
)
from repro.resilience.errors import TaskExecutionError


def _recorder(tmp_path, **overrides) -> FlightRecorder:
    config = FlightRecorderConfig(output_dir=str(tmp_path), **overrides)
    return FlightRecorder(
        config, scenario="S1", attack="Deceleration", strategy="Context-Aware", seed=7
    )


class _FakeCommand:
    accel = 0.5
    brake = 0.0
    steering_angle_deg = 1.25


class _FakeContext:
    """Duck-typed StepContext carrying just what capture() reads."""

    def __init__(self, time):
        self.end_time = time
        self.ego_s = 10.0 * time
        self.ego_d = 0.1
        self.ego_speed = 20.0
        self.ego_heading_error = 0.0
        self.ego_steering_deg = 2.0
        self.lead_gap = 50.0
        self.lead_speed = 18.0
        self.adas_command = _FakeCommand()
        self.executed_command = _FakeCommand()
        self.driver_engaged = False
        self.collision = None
        self.new_hazards = ()
        self.lane_invasions = 0


class TestConfig:
    def test_rejects_non_positive_knobs(self, tmp_path):
        with pytest.raises(ValueError):
            FlightRecorderConfig(output_dir=str(tmp_path), capacity=0)
        with pytest.raises(ValueError):
            FlightRecorderConfig(output_dir=str(tmp_path), capture_every=0)


class TestRing:
    def test_ring_keeps_only_the_final_capacity_cycles(self, tmp_path):
        recorder = _recorder(tmp_path, capacity=5)
        for cycle in range(17):
            recorder.capture(_FakeContext(time=0.01 * cycle))
        path = recorder.dump("manual")
        record = load_flight_record(path)
        cycles = record.column("cycle")
        assert cycles == list(range(12, 17))
        assert record.meta["cycles"] == 17

    def test_capture_every_subsamples(self, tmp_path):
        recorder = _recorder(tmp_path, capacity=100, capture_every=4)
        for cycle in range(10):
            recorder.capture(_FakeContext(time=0.01 * cycle))
        record = load_flight_record(recorder.dump("manual"))
        assert record.column("cycle") == [0, 4, 8]

    def test_samples_carry_every_declared_field(self, tmp_path):
        recorder = _recorder(tmp_path)
        recorder.capture(_FakeContext(time=0.5))
        record = load_flight_record(recorder.dump("manual"))
        assert record.fields == list(FLIGHT_SAMPLE_FIELDS)
        final = record.final_sample
        assert final["time"] == 0.5 and final["adas_accel"] == 0.5
        assert final["collision"] is False and final["new_hazards"] == 0


class TestFlushDecisions:
    class _Result:
        def __init__(self, accidents=0, hazards=0, alerts=0):
            self.accidents = accidents
            self.hazards = hazards
            self.alerts = alerts

    def test_trigger_precedence(self, tmp_path):
        recorder = _recorder(tmp_path)
        assert recorder.trigger_for(self._Result()) is None
        assert recorder.trigger_for(self._Result(alerts=1)) == "alert"
        assert recorder.trigger_for(self._Result(hazards=1, alerts=1)) == "hazard"
        assert (
            recorder.trigger_for(self._Result(accidents=1, hazards=1)) == "collision"
        )

    def test_always_flushes_boring_runs(self, tmp_path):
        recorder = _recorder(tmp_path, flush_on=("always",))
        assert recorder.trigger_for(self._Result()) == "always"

    def test_finalize_writes_only_when_triggered(self, tmp_path):
        recorder = _recorder(tmp_path)
        recorder.capture(_FakeContext(time=0.0))
        assert recorder.finalize(self._Result()) is None
        assert recorder.flushed_path is None
        path = recorder.finalize(self._Result(hazards=2))
        assert path is not None and recorder.flushed_path == path
        assert load_flight_record(path).meta["trigger"] == "hazard"

    def test_abort_respects_flush_on_and_swallows_write_errors(self, tmp_path):
        silent = _recorder(tmp_path, flush_on=("hazard",))
        assert silent.abort() is None
        recorder = _recorder(tmp_path)
        recorder.capture(_FakeContext(time=0.0))
        path = recorder.abort()
        assert load_flight_record(path).meta["trigger"] == "failure"
        # An unwritable directory must not raise out of abort().
        broken = FlightRecorder(
            FlightRecorderConfig(output_dir=str(tmp_path / "file-not-dir")),
            scenario="S1",
            attack=None,
            strategy="none",
            seed=0,
        )
        (tmp_path / "file-not-dir").write_text("occupied")
        assert broken.abort() is None


class TestArtifacts:
    def test_artifact_parses_and_carries_identity(self, tmp_path):
        recorder = _recorder(tmp_path)
        recorder.capture(_FakeContext(time=0.0))
        path = recorder.dump("manual")
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["version"] == FLIGHT_RECORD_VERSION
        assert payload["scenario"] == "S1" and payload["seed"] == 7
        record = load_flight_record(path)
        assert record.meta["attack"] == "Deceleration"
        assert [r.path for r in iter_flight_records(str(tmp_path))] == [path]

    def test_hazard_view_renders(self, tmp_path):
        recorder = _recorder(tmp_path)
        for cycle in range(8):
            recorder.capture(_FakeContext(time=0.01 * cycle))
        view = hazard_view(load_flight_record(recorder.dump("manual")), final_cycles=3)
        assert "scenario=S1" in view and "trigger=manual" in view
        assert view.count("\n") >= 5  # header + table header + 3 rows


class TestTrajectoryTail:
    def test_real_run_tail_matches_bit_for_bit(self, tmp_path):
        config = SimulationConfig(
            scenario="S2",
            initial_distance=40.0,
            seed=11,
            attack_type=AttackType.DECELERATION,
            record_trajectory=True,
        )
        recorder = FlightRecorderConfig(output_dir=str(tmp_path), capacity=128)
        result = run_simulation(
            config, strategy_by_name("Context-Aware"), recorder=recorder
        )
        assert result.hazards or result.accidents or result.alerts
        (record,) = list(iter_flight_records(str(tmp_path)))
        assert matches_trajectory_tail(record, result.trajectory)

    def test_tampered_record_fails_the_tail_match(self, tmp_path):
        config = SimulationConfig(
            scenario="S2",
            initial_distance=40.0,
            seed=11,
            attack_type=AttackType.DECELERATION,
            record_trajectory=True,
        )
        recorder = FlightRecorderConfig(output_dir=str(tmp_path), capacity=128)
        result = run_simulation(
            config, strategy_by_name("Context-Aware"), recorder=recorder
        )
        (record,) = list(iter_flight_records(str(tmp_path)))
        speed_index = record.fields.index("ego_speed")
        for sample in record.samples:  # the trajectory subsamples cycles,
            sample[speed_index] += 1e-9  # so corrupt every candidate
        assert not matches_trajectory_tail(record, result.trajectory)


class TestQuarantineFingerprints:
    def test_batched_failures_name_every_candidate_task(self):
        fingerprints = [f"scenario=S1 seed={i}" for i in range(9)]
        error = TaskExecutionError.wrap_batch(fingerprints, RuntimeError("boom"))
        assert error.fingerprints == tuple(fingerprints)
        for fp in fingerprints:
            assert fp in str(error)  # no "+N more" truncation
        assert "more" not in str(error)

    def test_fingerprints_survive_pickling(self):
        import pickle

        error = TaskExecutionError.wrap_batch(["a", "b", "c"], RuntimeError("x"))
        clone = pickle.loads(pickle.dumps(error))
        assert clone.fingerprints == ("a", "b", "c")
        assert clone.fingerprint == "a"

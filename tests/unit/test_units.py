"""Tests for repro.sim.units."""

import math

import pytest

from repro.sim import units


class TestConversions:
    def test_mph_to_ms_60(self):
        assert units.mph_to_ms(60.0) == pytest.approx(26.82, abs=0.01)

    def test_mph_round_trip(self):
        assert units.ms_to_mph(units.mph_to_ms(35.0)) == pytest.approx(35.0)

    def test_zero_speed(self):
        assert units.mph_to_ms(0.0) == 0.0
        assert units.ms_to_mph(0.0) == 0.0

    def test_deg_to_rad_180(self):
        assert units.deg_to_rad(180.0) == pytest.approx(math.pi)

    def test_rad_to_deg_round_trip(self):
        assert units.rad_to_deg(units.deg_to_rad(33.3)) == pytest.approx(33.3)

    def test_negative_angle(self):
        assert units.deg_to_rad(-90.0) == pytest.approx(-math.pi / 2)


class TestSimulationConstants:
    def test_step_duration_matches_paper(self):
        # Paper: 5000 steps of ~10 ms each = 50 s.
        assert units.DT == pytest.approx(0.01)
        assert units.STEPS_PER_SIMULATION == 5000
        assert units.SIMULATION_DURATION == pytest.approx(50.0)


class TestClamp:
    def test_inside_interval(self):
        assert units.clamp(0.5, 0.0, 1.0) == 0.5

    def test_below(self):
        assert units.clamp(-2.0, 0.0, 1.0) == 0.0

    def test_above(self):
        assert units.clamp(7.0, 0.0, 1.0) == 1.0

    def test_at_bounds(self):
        assert units.clamp(0.0, 0.0, 1.0) == 0.0
        assert units.clamp(1.0, 0.0, 1.0) == 1.0

    def test_empty_interval_raises(self):
        with pytest.raises(ValueError):
            units.clamp(0.5, 1.0, 0.0)

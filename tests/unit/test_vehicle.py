"""Tests for the ego vehicle dynamics."""

import pytest

from repro.sim.road import Road, RoadSpec
from repro.sim.vehicle import ActuatorCommand, EgoVehicle, VehicleParams


@pytest.fixture
def straight_road():
    return Road(RoadSpec(curve_start=1e9))


@pytest.fixture
def ego(straight_road):
    return EgoVehicle(straight_road, initial_speed=20.0)


def run(ego, command, steps, dt=0.01, disturbance=0.0):
    for _ in range(steps):
        ego.step(command, dt, disturbance_curvature=disturbance)
    return ego.state


class TestLongitudinal:
    def test_coasting_holds_speed(self, ego):
        state = run(ego, ActuatorCommand(), 100)
        assert state.speed == pytest.approx(20.0, abs=0.01)
        assert state.s == pytest.approx(20.0, abs=0.3)

    def test_acceleration_increases_speed(self, ego):
        state = run(ego, ActuatorCommand(accel=2.0), 300)
        assert state.speed > 24.5

    def test_braking_decreases_speed(self, ego):
        state = run(ego, ActuatorCommand(brake=3.5), 300)
        assert state.speed < 10.5

    def test_speed_never_negative(self, ego):
        state = run(ego, ActuatorCommand(brake=8.0), 1000)
        assert state.speed == 0.0

    def test_actuator_lag_delays_response(self, ego):
        ego.step(ActuatorCommand(accel=2.0))
        assert ego.state.accel < 2.0 * 0.2

    def test_net_accel_combines_gas_and_brake(self):
        command = ActuatorCommand(accel=2.0, brake=0.5)
        assert command.net_accel == pytest.approx(1.5)

    def test_physical_acceleration_limit(self, ego):
        run(ego, ActuatorCommand(accel=50.0), 200)
        assert ego.state.accel <= ego.params.max_accel_physical + 1e-6


class TestLateral:
    def test_zero_steering_keeps_lane_position(self, ego):
        state = run(ego, ActuatorCommand(), 500)
        assert abs(state.d) < 1e-6

    def test_left_steering_moves_left(self, ego):
        state = run(ego, ActuatorCommand(steering_angle_deg=15.0), 300)
        assert state.d > 0.1

    def test_right_steering_moves_right(self, ego):
        state = run(ego, ActuatorCommand(steering_angle_deg=-15.0), 300)
        assert state.d < -0.1

    def test_steering_ratio_reduces_road_wheel_angle(self, straight_road):
        slow = EgoVehicle(straight_road, VehicleParams(steering_ratio=20.0), initial_speed=20.0)
        fast = EgoVehicle(straight_road, VehicleParams(steering_ratio=10.0), initial_speed=20.0)
        run(slow, ActuatorCommand(steering_angle_deg=20.0), 200)
        run(fast, ActuatorCommand(steering_angle_deg=20.0), 200)
        assert abs(fast.state.d) > abs(slow.state.d)

    def test_steering_command_clamped_to_max(self, ego):
        run(ego, ActuatorCommand(steering_angle_deg=10000.0), 500)
        assert ego.state.steering_wheel_deg <= ego.params.max_steering_wheel_deg + 1e-6

    def test_disturbance_curvature_pushes_vehicle(self, ego):
        state = run(ego, ActuatorCommand(), 300, disturbance=0.003)
        assert state.d > 0.2

    def test_heading_error_wrapped(self, ego):
        run(ego, ActuatorCommand(steering_angle_deg=400.0), 2000)
        assert -3.1416 <= ego.state.heading_error <= 3.1416


class TestGeometryHelpers:
    def test_bumper_positions(self, ego):
        assert ego.front_s - ego.rear_s == pytest.approx(ego.params.length)

    def test_edges(self, ego):
        assert ego.left_edge - ego.right_edge == pytest.approx(ego.params.width)

    def test_curved_road_frenet_consistency(self):
        # Travelling the curve with the exact matching steering keeps d ~ 0.
        road = Road(RoadSpec(curve_start=0.0, curve_transition=1.0, curvature_max=0.002))
        ego = EgoVehicle(road, initial_speed=20.0)
        import math
        wheel = math.degrees(math.atan(0.002 * ego.params.wheelbase)) * ego.params.steering_ratio
        run(ego, ActuatorCommand(steering_angle_deg=wheel), 1000)
        assert abs(ego.state.d) < 0.8

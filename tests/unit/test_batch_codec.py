"""Bit-for-bit equivalence of the vectorised batch CAN codec.

The lockstep batch executor replaces the four hot per-step scalar
``MessagePlan.encode`` calls with one :class:`BatchMessageCodec` pass per
message, and recovers decoder-visible physical values from the retained
raw arrays instead of re-decoding the bus.  Both shortcuts are only legal
because they are byte-identical / float-identical to the scalar paths —
which is what these tests pin, including the clamp edge cases and the
rounding-mode corners (round-half-to-even).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.can.batch_codec import BatchMessageCodec
from repro.can.frame import CANFrame
from repro.can.honda import ADDR, HONDA_DBC

#: The four messages the batch executor encodes, with the exact signal
#: sets their scalar call sites pass (absent signals encode as zero).
MESSAGE_SIGNALS = {
    "POWERTRAIN_DATA": (
        "XMISSION_SPEED",
        "ACCEL_MEASURED",
        "PEDAL_GAS",
        "BRAKE_PRESSED",
        "GAS_PRESSED",
    ),
    "STEERING_SENSORS": ("STEER_ANGLE", "STEER_ANGLE_RATE"),
    "STEERING_CONTROL": ("STEER_ANGLE_CMD", "STEER_TORQUE", "STEER_REQUEST"),
    "ACC_CONTROL": ("ACCEL_COMMAND", "BRAKE_COMMAND", "BRAKE_REQUEST", "ACC_ON"),
}

#: Values that stress clamps, signs, rounding ties and scaling.
EDGE_VALUES = (
    0.0,
    -0.0,
    1.0,
    -1.0,
    0.005,
    -0.005,
    0.0075,
    0.0025,
    0.015,
    -0.015,
    0.1,
    -3.75,
    29.17,
    123.456,
    -123.456,
    470.0,
    -470.0,
    1e6,
    -1e6,
    1e300,
    -1e300,
)


def _scalar_payload(plan, signals, column, counter):
    values = {name: column[i] for i, name in enumerate(signals)}
    return plan.encode(values, counter=counter)


@pytest.mark.parametrize("message_name", sorted(MESSAGE_SIGNALS))
def test_edge_value_sweep_matches_scalar_encoder(message_name):
    plan = HONDA_DBC.plan_by_name(message_name)
    signals = MESSAGE_SIGNALS[message_name]
    columns = [
        [EDGE_VALUES[(i + 3 * j) % len(EDGE_VALUES)] for j in range(len(signals))]
        for i in range(len(EDGE_VALUES))
    ]
    n = len(columns)
    codec = BatchMessageCodec(plan, signals, capacity=n)
    for j, name in enumerate(signals):
        codec.values[name][:n] = [column[j] for column in columns]
    codec.counters[:n] = [i & 0x3 for i in range(n)]
    payloads = codec.encode(n)
    assert len(payloads) == n
    for i, column in enumerate(columns):
        expected = _scalar_payload(plan, signals, column, i & 0x3)
        assert payloads[i] == expected, (
            f"{message_name} batch payload {i} diverged for values {column}"
        )


@pytest.mark.parametrize("message_name", sorted(MESSAGE_SIGNALS))
@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_random_batches_match_scalar_encoder_and_decoder(message_name, data):
    plan = HONDA_DBC.plan_by_name(message_name)
    signals = MESSAGE_SIGNALS[message_name]
    n = data.draw(st.integers(min_value=1, max_value=16), label="batch")
    value_strategy = st.floats(
        min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False
    )
    columns = [
        [data.draw(value_strategy) for _ in signals] for _ in range(n)
    ]
    counters = [data.draw(st.integers(min_value=0, max_value=3)) for _ in range(n)]

    codec = BatchMessageCodec(plan, signals, capacity=16)
    for j, name in enumerate(signals):
        codec.values[name][:n] = [column[j] for column in columns]
    codec.counters[:n] = counters
    payloads = codec.encode(n)

    address = ADDR[message_name]
    for i, column in enumerate(columns):
        expected = _scalar_payload(plan, signals, column, counters[i])
        assert payloads[i] == expected
        decoded = plan.decode(CANFrame(address, expected))
        for name in signals:
            assert codec.physical(name)[i] == decoded[name]


def test_physical_matches_decode_for_signed_and_unsigned_fields():
    plan = HONDA_DBC.plan_by_name("ACC_CONTROL")
    signals = MESSAGE_SIGNALS["ACC_CONTROL"]
    codec = BatchMessageCodec(plan, signals, capacity=4)
    codec.values["ACCEL_COMMAND"][:4] = (-3.5, 0.0, 2.0, -0.0025)
    codec.values["BRAKE_COMMAND"][:4] = (0.0, 4.0, 0.01, 327.675)
    codec.values["BRAKE_REQUEST"][:4] = (0.0, 1.0, 1.0, 0.0)
    codec.values["ACC_ON"][:4] = (1.0, 1.0, 1.0, 1.0)
    codec.counters[:4] = (0, 1, 2, 3)
    payloads = codec.encode(4)
    for i, payload in enumerate(payloads):
        decoded = plan.decode(CANFrame(ADDR["ACC_CONTROL"], payload))
        assert float(codec.physical("ACCEL_COMMAND")[i]) == decoded["ACCEL_COMMAND"]
        assert float(codec.physical("BRAKE_COMMAND")[i]) == decoded["BRAKE_COMMAND"]


def test_unknown_signals_and_implicit_fields_are_rejected():
    plan = HONDA_DBC.plan_by_name("ACC_CONTROL")
    with pytest.raises(KeyError):
        BatchMessageCodec(plan, ("NOT_A_SIGNAL",), capacity=2)
    with pytest.raises(ValueError):
        BatchMessageCodec(plan, ("ACCEL_COMMAND", "COUNTER"), capacity=2)


def test_counter_wraps_like_scalar_encoder():
    plan = HONDA_DBC.plan_by_name("STEERING_SENSORS")
    signals = MESSAGE_SIGNALS["STEERING_SENSORS"]
    codec = BatchMessageCodec(plan, signals, capacity=8)
    for name in signals:
        codec.values[name][:8] = 1.5
    codec.counters[:8] = np.arange(8)  # 4..7 wrap to 0..3 via the 2-bit mask
    payloads = codec.encode(8)
    for i in range(8):
        expected = _scalar_payload(plan, signals, [1.5, 1.5], i)
        assert payloads[i] == expected

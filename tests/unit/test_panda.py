"""Tests for the Panda safety model and driver monitoring."""

import pytest

from repro.adas.driver_monitoring import DriverMonitoring, DriverMonitoringParams
from repro.adas.panda import PandaSafetyModel
from repro.can.honda import HONDA_DBC
from repro.core.can_tamper import tamper_signal


class TestPandaAccelChecks:
    def test_accepts_in_range_accel(self):
        panda = PandaSafetyModel()
        frame = HONDA_DBC.encode("ACC_CONTROL", {"ACCEL_COMMAND": 2.0, "BRAKE_COMMAND": 0.0})
        assert panda.check_frame(frame) == []

    def test_rejects_excessive_accel(self):
        panda = PandaSafetyModel()
        frame = HONDA_DBC.encode("ACC_CONTROL", {"ACCEL_COMMAND": 3.5, "BRAKE_COMMAND": 0.0})
        violations = panda.check_frame(frame)
        assert [v.rule for v in violations] == ["accel_too_high"]

    def test_rejects_excessive_brake(self):
        panda = PandaSafetyModel()
        frame = HONDA_DBC.encode("ACC_CONTROL", {"ACCEL_COMMAND": 0.0, "BRAKE_COMMAND": 5.0})
        assert [v.rule for v in panda.check_frame(frame)] == ["brake_too_high"]

    def test_rejects_bad_checksum(self):
        panda = PandaSafetyModel()
        frame = HONDA_DBC.encode("ACC_CONTROL", {"ACCEL_COMMAND": 1.0, "BRAKE_COMMAND": 0.0})
        corrupted = frame.with_data(bytes([frame.data[0] ^ 0x10]) + frame.data[1:])
        assert [v.rule for v in panda.check_frame(corrupted)] == ["bad_checksum"]

    def test_tampered_frame_with_fixed_checksum_passes_integrity(self):
        panda = PandaSafetyModel()
        frame = HONDA_DBC.encode("ACC_CONTROL", {"ACCEL_COMMAND": 1.0, "BRAKE_COMMAND": 0.0})
        tampered = tamper_signal(frame, HONDA_DBC, {"ACCEL_COMMAND": 2.0})
        assert panda.check_frame(tampered) == []


class TestPandaSteerRate:
    def test_slow_steering_changes_accepted(self):
        panda = PandaSafetyModel()
        for angle in (0.0, 0.4, 0.8):
            frame = HONDA_DBC.encode("STEERING_CONTROL", {"STEER_ANGLE_CMD": angle})
            assert panda.check_frame(frame) == []

    def test_fast_steering_change_rejected(self):
        panda = PandaSafetyModel()
        panda.check_frame(HONDA_DBC.encode("STEERING_CONTROL", {"STEER_ANGLE_CMD": 0.0}))
        violations = panda.check_frame(
            HONDA_DBC.encode("STEERING_CONTROL", {"STEER_ANGLE_CMD": 5.0})
        )
        assert [v.rule for v in violations] == ["steer_rate_too_high"]

    def test_would_block_does_not_record(self):
        panda = PandaSafetyModel()
        frame = HONDA_DBC.encode("ACC_CONTROL", {"ACCEL_COMMAND": 3.5, "BRAKE_COMMAND": 0.0})
        assert panda.would_block(frame)
        assert panda.violation_count == 0

    def test_reset_clears_state(self):
        panda = PandaSafetyModel()
        panda.check_frame(HONDA_DBC.encode("ACC_CONTROL", {"ACCEL_COMMAND": 3.5, "BRAKE_COMMAND": 0.0}))
        panda.reset()
        assert panda.violation_count == 0

    def test_unrelated_addresses_ignored(self):
        panda = PandaSafetyModel()
        frame = HONDA_DBC.encode("POWERTRAIN_DATA", {"XMISSION_SPEED": 20.0})
        assert panda.check_frame(frame) == []


class TestDriverMonitoring:
    def test_attentive_driver_keeps_full_awareness(self):
        dm = DriverMonitoring()
        for step in range(100):
            state = dm.update(step * 0.01, 0.01)
        assert state.awareness == pytest.approx(1.0)
        assert not state.is_distracted
        assert not dm.warning_active

    def test_distraction_decays_awareness_and_warns(self):
        dm = DriverMonitoring(
            DriverMonitoringParams(decay_rate=1.0, warn_threshold=0.5),
            distraction_profile=lambda t: True,
        )
        for step in range(100):
            dm.update(step * 0.01, 0.01)
        assert dm.awareness < 0.5
        assert dm.warning_active

    def test_awareness_recovers_after_distraction(self):
        dm = DriverMonitoring(
            DriverMonitoringParams(decay_rate=1.0, recovery_rate=1.0),
            distraction_profile=lambda t: t < 0.5,
        )
        for step in range(200):
            dm.update(step * 0.01, 0.01)
        assert dm.awareness > 0.9

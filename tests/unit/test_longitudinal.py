"""Tests for the ACC longitudinal planner."""

import pytest

from repro.adas.longitudinal import LongitudinalParams, LongitudinalPlanner
from repro.messaging.messages import CarState, RadarLead, RadarState


def car_state(v_ego=20.0, cruise=26.82):
    return CarState(v_ego=v_ego, cruise_enabled=True, cruise_speed=cruise)


def radar(d_rel, v_rel, v_ego=20.0):
    return RadarState(lead_one=RadarLead(d_rel=d_rel, v_rel=v_rel, v_lead=v_ego + v_rel))


class TestCruiseControl:
    def test_accelerates_below_cruise_speed(self):
        plan = LongitudinalPlanner().update(car_state(v_ego=20.0), None)
        assert plan.desired_accel > 0.5
        assert not plan.has_lead

    def test_holds_at_cruise_speed(self):
        plan = LongitudinalPlanner().update(car_state(v_ego=26.82), None)
        assert plan.desired_accel == pytest.approx(0.0, abs=0.05)

    def test_slows_above_cruise_speed(self):
        plan = LongitudinalPlanner().update(car_state(v_ego=30.0), None)
        assert plan.desired_accel < 0.0

    def test_acceleration_bounded_by_planner_limits(self):
        params = LongitudinalParams()
        plan = LongitudinalPlanner(params).update(car_state(v_ego=1.0), None)
        assert plan.desired_accel <= params.planner_limits.accel_max + 1e-9

    def test_braking_bounded_by_planner_limits(self):
        params = LongitudinalParams()
        plan = LongitudinalPlanner(params).update(
            car_state(v_ego=26.0), radar(5.0, -15.0, v_ego=26.0)
        )
        assert plan.desired_accel >= params.planner_limits.brake_min - 1e-9


class TestLeadFollowing:
    def test_brakes_when_closing_fast(self):
        plan = LongitudinalPlanner().update(car_state(v_ego=26.82), radar(50.0, -11.0, 26.82))
        assert plan.has_lead
        assert plan.desired_accel < -1.0

    def test_ignores_invalid_lead_track(self):
        lead = RadarLead(d_rel=10.0, v_rel=-10.0, v_lead=10.0, status=False)
        plan = LongitudinalPlanner().update(car_state(), RadarState(lead_one=lead))
        assert not plan.has_lead

    def test_follows_at_desired_headway(self):
        params = LongitudinalParams()
        v = 15.6
        desired_gap = params.standstill_distance + params.follow_time_headway * v
        plan = LongitudinalPlanner(params).update(
            car_state(v_ego=v), radar(desired_gap, 0.0, v)
        )
        assert plan.desired_accel == pytest.approx(0.0, abs=0.1)

    def test_closes_gap_when_too_far_behind_slow_lead(self):
        plan = LongitudinalPlanner().update(car_state(v_ego=15.0), radar(150.0, 0.0, 15.0))
        assert plan.desired_accel > 0.3

    def test_time_to_collision_computed_when_closing(self):
        plan = LongitudinalPlanner().update(car_state(v_ego=25.0), radar(50.0, -10.0, 25.0))
        assert plan.time_to_collision == pytest.approx(5.0, rel=0.05)

    def test_time_to_collision_infinite_when_opening(self):
        plan = LongitudinalPlanner().update(car_state(v_ego=20.0), radar(50.0, +5.0, 20.0))
        assert plan.time_to_collision == float("inf")

    def test_required_decel_grows_as_gap_shrinks(self):
        planner = LongitudinalPlanner()
        far = planner.update(car_state(v_ego=25.0), radar(60.0, -10.0, 25.0))
        near = planner.update(car_state(v_ego=25.0), radar(20.0, -10.0, 25.0))
        assert near.required_decel > far.required_decel > 0.0

"""Tests for the simulated CAN bus (taps and man-in-the-middle transformers)."""

import pytest

from repro.can.frame import CANFrame


def frame(address=0xE4, data=b"\x01\x02"):
    return CANFrame(address, data)


class TestCANBusBasics:
    def test_latest_frame_per_address(self, can_bus):
        can_bus.send(frame(data=b"\x01"))
        can_bus.send(frame(data=b"\x02"))
        assert can_bus.latest(0xE4).data == b"\x02"

    def test_latest_none_for_unknown_address(self, can_bus):
        assert can_bus.latest(0x123) is None

    def test_sent_count(self, can_bus):
        for _ in range(3):
            can_bus.send(frame())
        assert can_bus.sent_count == 3

    def test_clear_drops_frames_keeps_counters(self, can_bus):
        can_bus.send(frame())
        can_bus.clear()
        assert can_bus.latest(0xE4) is None
        assert can_bus.sent_count == 1

    def test_tap_sees_every_frame(self, can_bus):
        seen = []
        can_bus.add_tap(seen.append)
        can_bus.send(frame())
        can_bus.send(frame(address=0x1FA))
        assert [f.address for f in seen] == [0xE4, 0x1FA]


class TestTransformers:
    def test_transformer_can_replace_frame(self, can_bus):
        can_bus.add_transformer(lambda f: f.with_data(b"\xff\xff"))
        stored = can_bus.send(frame())
        assert stored.data == b"\xff\xff"
        assert can_bus.latest(0xE4).data == b"\xff\xff"
        assert can_bus.tampered_count == 1

    def test_transformer_returning_none_passes_through(self, can_bus):
        can_bus.add_transformer(lambda f: None)
        stored = can_bus.send(frame())
        assert stored.data == b"\x01\x02"
        assert can_bus.tampered_count == 0

    def test_transformer_must_not_change_address(self, can_bus):
        can_bus.add_transformer(lambda f: CANFrame(0x99, f.data))
        with pytest.raises(ValueError):
            can_bus.send(frame())

    def test_taps_see_post_tamper_frame(self, can_bus):
        seen = []
        can_bus.add_transformer(lambda f: f.with_data(b"\xaa"))
        can_bus.add_tap(seen.append)
        can_bus.send(frame())
        assert seen[0].data == b"\xaa"

    def test_remove_transformer(self, can_bus):
        transformer = lambda f: f.with_data(b"\xaa")  # noqa: E731
        can_bus.add_transformer(transformer)
        can_bus.remove_transformer(transformer)
        assert can_bus.send(frame()).data == b"\x01\x02"

    def test_transformers_chain_in_order(self, can_bus):
        can_bus.add_transformer(lambda f: f.with_data(b"\x01"))
        can_bus.add_transformer(lambda f: f.with_data(bytes([f.data[0] + 1])))
        assert can_bus.send(frame()).data == b"\x02"

"""Tests for PubMaster / SubMaster."""

import pytest

from repro.messaging.messages import CarState, ModelV2, RadarState
from repro.messaging.pubsub import PubMaster, SubMaster


class TestPubMaster:
    def test_send_on_bound_service(self, message_bus):
        pm = PubMaster(message_bus, ["carState"])
        sub = message_bus.subscribe("carState")
        pm.send("carState", CarState(v_ego=5.0))
        assert sub.latest.data.v_ego == 5.0

    def test_send_on_unbound_service_raises(self, message_bus):
        pm = PubMaster(message_bus, ["carState"])
        with pytest.raises(KeyError):
            pm.send("radarState", RadarState())

    def test_unknown_service_rejected_at_construction(self, message_bus):
        with pytest.raises(KeyError):
            PubMaster(message_bus, ["bogusService"])


class TestSubMaster:
    def test_getitem_returns_latest_payload(self, message_bus):
        sm = SubMaster(message_bus, ["carState"])
        message_bus.publish("carState", CarState(v_ego=9.0))
        sm.update()
        assert sm["carState"].v_ego == 9.0

    def test_getitem_none_before_any_publication(self, message_bus):
        sm = SubMaster(message_bus, ["carState"])
        sm.update()
        assert sm["carState"] is None

    def test_updated_flag_set_once_per_new_message(self, message_bus):
        sm = SubMaster(message_bus, ["carState"])
        message_bus.publish("carState", CarState())
        sm.update()
        assert sm.updated["carState"] is True
        sm.update()
        assert sm.updated["carState"] is False

    def test_valid_mirrors_publisher_flag(self, message_bus):
        sm = SubMaster(message_bus, ["modelV2"])
        message_bus.publish("modelV2", ModelV2(), valid=False)
        sm.update()
        assert sm.valid["modelV2"] is False

    def test_all_alive(self, message_bus):
        sm = SubMaster(message_bus, ["carState", "radarState"])
        message_bus.publish("carState", CarState())
        assert not sm.all_alive()
        message_bus.publish("radarState", RadarState())
        assert sm.all_alive()

    def test_last_recv_time_tracks_bus_clock(self, message_bus):
        sm = SubMaster(message_bus, ["carState"])
        message_bus.set_time(7.5)
        message_bus.publish("carState", CarState())
        sm.update()
        assert sm.last_recv_time["carState"] == pytest.approx(7.5)

    def test_close_unsubscribes(self, message_bus):
        sm = SubMaster(message_bus, ["carState"])
        sm.close()
        message_bus.publish("carState", CarState(v_ego=4.0))
        sm.update()
        assert sm["carState"] is None

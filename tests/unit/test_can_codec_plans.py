"""Equivalence of the compiled codec plans against the reference codec.

The compiled :class:`~repro.can.dbc.MessagePlan` replaces the per-call
bit-twiddling of ``_pack_field``/``_unpack_field`` with precompiled
constants, a single int conversion and a decode memo.  These tests pin
the contract that made that optimisation safe: for every message kind the
plans must produce byte-identical frames and identical physical values to
the reference implementation.
"""

import numpy as np
import pytest

from repro.can.checksum import apply_checksum, honda_checksum, verify_checksum
from repro.can.dbc import DBC, MessageDef, Signal, _pack_field, _unpack_field
from repro.can.frame import CANFrame
from repro.can.honda import HONDA_DBC


def reference_encode(dbc: DBC, name: str, values, counter: int = 0) -> bytes:
    """The seed implementation of DBC.encode (loop of _pack_field calls)."""
    msg = dbc.message_by_name(name)
    data = bytearray(msg.length)
    for sig_name, sig in msg.signals.items():
        if sig_name == "CHECKSUM":
            continue
        if sig_name == "COUNTER":
            _pack_field(data, sig.msb_offset, sig.size, counter & ((1 << sig.size) - 1))
            continue
        if sig_name in values:
            _pack_field(data, sig.msb_offset, sig.size, sig.to_raw(values[sig_name]))
    if msg.checksummed:
        apply_checksum(msg.address, data)
    return bytes(data)


def reference_decode(dbc: DBC, frame: CANFrame) -> dict:
    """The seed implementation of DBC.decode (loop of _unpack_field calls)."""
    msg = dbc.message_by_address(frame.address)
    return {
        sig_name: sig.to_physical(_unpack_field(frame.data, sig.msb_offset, sig.size))
        for sig_name, sig in msg.signals.items()
    }


#: A DBC exercising every signal shape: signed, unsigned, clamped,
#: checksummed and checksum-free, sub-byte and multi-byte fields.
MIXED_DBC = DBC(
    "mixed",
    [
        MessageDef(
            "SIGNED_CHECKSUMMED",
            0x101,
            6,
            {
                "S16": Signal("S16", 0, 16, factor=0.01, is_signed=True),
                "S12": Signal("S12", 16, 12, factor=1.0 / 2047.0, is_signed=True),
                "FLAG": Signal("FLAG", 28, 1),
                "COUNTER": Signal("COUNTER", 32, 2),
                "CHECKSUM": Signal("CHECKSUM", 44, 4),
            },
        ),
        MessageDef(
            "CLAMPED_PLAIN",
            0x102,
            4,
            {
                "CLAMPED": Signal("CLAMPED", 0, 16, factor=0.1, minimum=-5.0, maximum=5.0),
                "U7": Signal("U7", 16, 7),
                "S9": Signal("S9", 23, 9, factor=0.5, offset=-10.0, is_signed=True),
            },
            checksummed=False,
        ),
    ],
)


def _random_values(msg: MessageDef, rng: np.random.Generator) -> dict:
    values = {}
    for name, sig in msg.signals.items():
        if name in ("COUNTER", "CHECKSUM"):
            continue
        span = (1 << sig.size) * abs(sig.factor)
        values[name] = float(rng.uniform(-1.5 * span, 1.5 * span)) + sig.offset
    return values


class TestEncodeEquivalence:
    @pytest.mark.parametrize("dbc", [HONDA_DBC, MIXED_DBC], ids=["honda", "mixed"])
    def test_random_values_byte_identical(self, dbc):
        rng = np.random.default_rng(1234)
        for msg in (dbc.message_by_address(addr) for addr in dbc.addresses()):
            for trial in range(200):
                values = _random_values(msg, rng)
                counter = trial & 0x3
                compiled = dbc.encode(msg.name, values, counter=counter)
                reference = reference_encode(dbc, msg.name, values, counter=counter)
                assert compiled.data == reference, (msg.name, values)

    def test_partial_value_dicts(self):
        for values in ({}, {"STEER_ANGLE_CMD": -12.3}, {"STEER_TORQUE": 0.4}):
            compiled = HONDA_DBC.encode("STEERING_CONTROL", values, counter=2)
            assert compiled.data == reference_encode(
                HONDA_DBC, "STEERING_CONTROL", values, counter=2
            )

    def test_saturating_values_byte_identical(self):
        for extreme in (-1e9, -1.0, 0.0, 1.0, 1e9):
            values = {"S16": extreme, "S12": extreme, "FLAG": extreme}
            compiled = MIXED_DBC.encode("SIGNED_CHECKSUMMED", values)
            assert compiled.data == reference_encode(MIXED_DBC, "SIGNED_CHECKSUMMED", values)

    def test_encoded_checksum_still_valid(self):
        frame = MIXED_DBC.encode("SIGNED_CHECKSUMMED", {"S16": -3.33, "S12": 0.25})
        assert verify_checksum(frame.address, frame.data)


class TestDecodeEquivalence:
    @pytest.mark.parametrize("dbc", [HONDA_DBC, MIXED_DBC], ids=["honda", "mixed"])
    def test_random_payload_round_trip(self, dbc):
        rng = np.random.default_rng(99)
        for msg in (dbc.message_by_address(addr) for addr in dbc.addresses()):
            for _ in range(200):
                payload = bytearray(rng.integers(0, 256, size=msg.length, dtype=np.uint8))
                if msg.checksummed:
                    apply_checksum(msg.address, payload)
                frame = CANFrame(msg.address, bytes(payload))
                assert dbc.decode(frame) == reference_decode(dbc, frame)

    def test_subset_decode_matches_full_decode(self):
        frame = HONDA_DBC.encode("ACC_CONTROL", {"ACCEL_COMMAND": 1.25, "BRAKE_COMMAND": 0.5})
        full = HONDA_DBC.decode(frame)
        subset = HONDA_DBC.decode(frame, signals=("ACCEL_COMMAND", "BRAKE_COMMAND"))
        assert subset == {
            "ACCEL_COMMAND": full["ACCEL_COMMAND"],
            "BRAKE_COMMAND": full["BRAKE_COMMAND"],
        }

    def test_decode_signal_matches_full_decode(self):
        frame = HONDA_DBC.encode("STEERING_CONTROL", {"STEER_ANGLE_CMD": -7.77}, counter=3)
        assert HONDA_DBC.decode_signal(frame, "STEER_ANGLE_CMD") == HONDA_DBC.decode(frame)[
            "STEER_ANGLE_CMD"
        ]

    def test_subset_decode_unknown_signal_raises(self):
        frame = HONDA_DBC.encode("STEERING_CONTROL", {})
        with pytest.raises(KeyError, match="no signal named"):
            HONDA_DBC.decode(frame, signals=("NOPE",))
        with pytest.raises(KeyError, match="no signal named"):
            HONDA_DBC.decode_signal(frame, "NOPE")

    def test_decode_returns_fresh_dict(self):
        """Callers mutate decode results (can_tamper does); the memo must
        never leak a shared dict."""
        frame = HONDA_DBC.encode("ACC_CONTROL", {"ACCEL_COMMAND": 1.0})
        first = HONDA_DBC.decode(frame)
        first["ACCEL_COMMAND"] = 999.0
        assert HONDA_DBC.decode(frame)["ACCEL_COMMAND"] != 999.0


class TestDecodeMemo:
    def test_memo_hit_does_not_skip_checksum_of_new_data(self):
        good = HONDA_DBC.encode("STEERING_CONTROL", {"STEER_ANGLE_CMD": 3.0})
        corrupted = good.with_data(bytes([good.data[0] ^ 0xFF]) + good.data[1:])
        with pytest.raises(ValueError, match="checksum mismatch"):
            HONDA_DBC.decode(corrupted)
        # And the good frame still decodes after the failed attempt.
        assert HONDA_DBC.decode(good)["STEER_ANGLE_CMD"] == pytest.approx(3.0, abs=0.01)

    def test_check_after_uncheck_verifies(self):
        """check=False then check=True on the same payload must verify."""
        good = HONDA_DBC.encode("STEERING_CONTROL", {"STEER_ANGLE_CMD": 3.0})
        bad = good.with_data(good.data[:-1] + bytes([good.data[-1] ^ 0x01]))
        assert HONDA_DBC.decode(bad, check=False)  # tolerated
        with pytest.raises(ValueError, match="checksum mismatch"):
            HONDA_DBC.decode(bad, check=True)

    def test_equal_payload_different_frame_object_hits_memo(self):
        frame_a = HONDA_DBC.encode("ACC_CONTROL", {"ACCEL_COMMAND": 1.0})
        frame_b = CANFrame(frame_a.address, bytes(frame_a.data))
        assert HONDA_DBC.decode(frame_a) == HONDA_DBC.decode(frame_b)

    def test_wrong_length_frame_rejected(self):
        frame = CANFrame(HONDA_DBC.message_by_name("ACC_CONTROL").address, b"\x00\x00")
        with pytest.raises(ValueError, match="expects 8 bytes"):
            HONDA_DBC.decode(frame)


class TestChecksumFastPath:
    def test_table_checksum_matches_definition(self):
        rng = np.random.default_rng(7)
        for _ in range(500):
            address = int(rng.integers(0, 0x800))
            data = bytes(rng.integers(0, 256, size=int(rng.integers(1, 9)), dtype=np.uint8))
            checksum = 0
            remainder = address
            while remainder > 0:
                checksum += remainder & 0xF
                remainder >>= 4
            for i, byte in enumerate(data):
                if i == len(data) - 1:
                    checksum += byte >> 4
                else:
                    checksum += (byte >> 4) + (byte & 0xF)
            assert honda_checksum(address, data) == (8 - checksum) & 0xF

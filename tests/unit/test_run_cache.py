"""Unit tests for the persistent run cache (repro.service.cache) and the
durability contract of the atomic write path it builds on.

Covers: hit/miss/bypass accounting, bit-exact round trips, LRU
eviction, corruption quarantine-and-recompute, concurrent writers via
unique-temp atomic rename, and the directory-fsync regression of
``atomic_write_bytes`` (a rename alone does not make the directory
entry durable).
"""

import json
import os
import stat
import threading

import pytest

from repro.core.attack_types import AttackType
from repro.core.strategies import ContextAwareStrategy, RandomStartStrategy
from repro.injection.engine import SimulationConfig, run_simulation
from repro.resilience.checkpoint import atomic_write_bytes, fsync_directory
from repro.service.cache import RunCache, partition_tasks, run_tasks_cached
from repro.telemetry import Telemetry, TelemetryConfig

EPOCH = "cache-test-epoch"


def _task(seed=42, **overrides):
    values = dict(
        scenario="S1",
        initial_distance=70.0,
        seed=seed,
        attack_type=AttackType.DECELERATION,
        max_steps=200,
    )
    values.update(overrides)
    return SimulationConfig(**values), ContextAwareStrategy()


def _result(config, strategy):
    return run_simulation(config, strategy)


class TestHitMiss:
    def test_miss_then_hit_round_trips_bit_exactly(self, tmp_path):
        cache = RunCache(str(tmp_path), code_epoch=EPOCH)
        config, strategy = _task()
        key = cache.fingerprint(config, strategy)
        assert cache.get(key) is None
        result = _result(config, strategy)
        cache.put(key, result)
        cached = cache.get(key)
        assert cached is not None
        assert cached.to_dict() == result.to_dict()
        assert (cache.stats.misses, cache.stats.hits, cache.stats.writes) == (1, 1, 1)

    def test_distinct_tasks_use_distinct_blobs(self, tmp_path):
        cache = RunCache(str(tmp_path), code_epoch=EPOCH)
        keys = {cache.fingerprint(*_task(seed=seed)) for seed in range(5)}
        assert len(keys) == 5

    def test_unregistered_strategy_bypasses(self, tmp_path):
        class Custom(RandomStartStrategy):
            pass

        cache = RunCache(str(tmp_path), code_epoch=EPOCH)
        config, _ = _task()
        assert cache.fingerprint(config, Custom()) is None
        assert cache.stats.bypasses == 1

    def test_telemetry_counters_track_traffic(self, tmp_path):
        telemetry = Telemetry(TelemetryConfig())
        cache = RunCache(str(tmp_path), telemetry=telemetry, code_epoch=EPOCH)
        config, strategy = _task()
        key = cache.fingerprint(config, strategy)
        cache.get(key)
        cache.put(key, _result(config, strategy))
        cache.get(key)
        counters = telemetry.snapshot()["counters"]
        assert counters["cache.misses"] == 1
        assert counters["cache.hits"] == 1
        assert counters["cache.writes"] == 1

    def test_code_epoch_namespaces_the_cache(self, tmp_path):
        config, strategy = _task()
        a = RunCache(str(tmp_path), code_epoch="epoch-a")
        b = RunCache(str(tmp_path), code_epoch="epoch-b")
        key_a = a.fingerprint(config, strategy)
        a.put(key_a, _result(config, strategy))
        assert b.get(b.fingerprint(config, strategy)) is None


class TestCorruption:
    def _populated(self, tmp_path):
        cache = RunCache(str(tmp_path), code_epoch=EPOCH)
        config, strategy = _task()
        key = cache.fingerprint(config, strategy)
        cache.put(key, _result(config, strategy))
        return cache, key, cache._blob_path(key)

    @pytest.mark.parametrize(
        "corrupt",
        [
            lambda raw: b"not json at all",
            lambda raw: raw[: len(raw) // 2],                       # truncated
            lambda raw: raw.replace(b'"payload"', b'"payloax"'),    # bad envelope
        ],
        ids=["garbage", "truncated", "missing-field"],
    )
    def test_corrupt_blob_is_quarantined_and_recomputed(self, tmp_path, corrupt):
        cache, key, path = self._populated(tmp_path)
        with open(path, "rb") as handle:
            raw = handle.read()
        with open(path, "wb") as handle:
            handle.write(corrupt(raw))
        assert cache.get(key) is None              # detected → miss
        assert cache.stats.corruptions == 1
        assert not os.path.exists(path)            # quarantined
        config, strategy = _task()
        cache.put(key, _result(config, strategy))  # recompute repairs it
        assert cache.get(key) is not None

    def test_payload_bitrot_fails_the_integrity_hash(self, tmp_path):
        cache, key, path = self._populated(tmp_path)
        with open(path) as handle:
            envelope = json.load(handle)
        payload = bytearray(bytes.fromhex(envelope["payload"]))
        payload[len(payload) // 2] ^= 0xFF
        envelope["payload"] = bytes(payload).hex()
        with open(path, "w") as handle:
            json.dump(envelope, handle)
        assert cache.get(key) is None
        assert cache.stats.corruptions == 1

    def test_blob_stored_under_the_wrong_key_is_rejected(self, tmp_path):
        cache, key, path = self._populated(tmp_path)
        other_key = cache.fingerprint(*_task(seed=43))
        other_path = cache._blob_path(other_key)
        os.makedirs(os.path.dirname(other_path), exist_ok=True)
        os.rename(path, other_path)
        assert cache.get(other_key) is None
        assert cache.stats.corruptions == 1


class TestEviction:
    def test_lru_cap_evicts_least_recently_used(self, tmp_path):
        cache = RunCache(str(tmp_path), max_entries=2, code_epoch=EPOCH)
        tasks = [_task(seed=seed) for seed in (1, 2, 3)]
        keys = [cache.fingerprint(config, strategy) for config, strategy in tasks]
        results = [_result(config, strategy) for config, strategy in tasks]
        cache.put(keys[0], results[0])
        cache.put(keys[1], results[1])
        # Pin explicit mtimes so the LRU order is unambiguous, then touch
        # key 0 via a hit — key 1 becomes the eviction victim.
        os.utime(cache._blob_path(keys[0]), (1_000, 1_000))
        os.utime(cache._blob_path(keys[1]), (2_000, 2_000))
        assert cache.get(keys[0]) is not None
        cache.put(keys[2], results[2])
        assert cache.stats.evictions == 1
        assert cache.get(keys[1]) is None          # evicted
        assert cache.get(keys[0]) is not None      # kept (recently used)
        assert cache.get(keys[2]) is not None      # kept (just written)
        assert len(cache) == 2

    def test_no_cap_means_no_eviction(self, tmp_path):
        cache = RunCache(str(tmp_path), code_epoch=EPOCH)
        for seed in range(4):
            config, strategy = _task(seed=seed)
            cache.put(cache.fingerprint(config, strategy), _result(config, strategy))
        assert cache.stats.evictions == 0
        assert len(cache) == 4

    def test_invalid_cap_is_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            RunCache(str(tmp_path), max_entries=0)


class TestConcurrency:
    def test_concurrent_writers_on_the_same_key_never_tear(self, tmp_path):
        cache = RunCache(str(tmp_path), code_epoch=EPOCH)
        config, strategy = _task()
        key = cache.fingerprint(config, strategy)
        result = _result(config, strategy)
        errors = []

        def writer():
            try:
                for _ in range(10):
                    cache.put(key, result)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        cached = cache.get(key)
        assert cached is not None and cached.to_dict() == result.to_dict()
        # No stray temp files left behind by the racing writers.
        blob_dir = os.path.dirname(cache._blob_path(key))
        assert [n for n in os.listdir(blob_dir) if n.endswith(".tmp")] == []


class TestTaskHelpers:
    def test_partition_and_cached_runner_round_trip(self, tmp_path):
        cache = RunCache(str(tmp_path), code_epoch=EPOCH)
        tasks = [_task(seed=seed) for seed in (1, 2, 3)]
        direct = [_result(config, strategy) for config, strategy in tasks]

        calls = []

        def runner(pending):
            calls.append(len(pending))
            return [_result(config, strategy) for config, strategy in pending]

        cold = run_tasks_cached(tasks, cache, runner)
        assert [r.to_dict() for r in cold] == [r.to_dict() for r in direct]
        assert calls == [3]
        warm = run_tasks_cached(tasks, cache, runner)
        assert [r.to_dict() for r in warm] == [r.to_dict() for r in direct]
        assert calls == [3]  # nothing new simulated
        cached, pending, keys = partition_tasks(tasks, cache)
        assert len(cached) == 3 and pending == [] and all(keys)


class TestAtomicWriteDurability:
    """Regression: the rename must be followed by a directory fsync."""

    def test_directory_is_fsynced_after_the_rename(self, tmp_path, monkeypatch):
        synced = []
        real_fsync = os.fsync

        def spy(fd):
            synced.append(stat.S_ISDIR(os.fstat(fd).st_mode))
            return real_fsync(fd)

        monkeypatch.setattr(os, "fsync", spy)
        atomic_write_bytes(str(tmp_path / "out.bin"), b"payload")
        assert synced[-1] is True, "no directory fsync after the rename"
        assert True in synced and False in synced  # file and directory both

    def test_platforms_rejecting_directory_fds_fall_back_to_noop(
        self, tmp_path, monkeypatch
    ):
        real_open = os.open

        def refusing_open(path, flags, *args, **kwargs):
            if os.path.isdir(path):
                raise OSError("directory fds not supported")
            return real_open(path, flags, *args, **kwargs)

        monkeypatch.setattr(os, "open", refusing_open)
        fsync_directory(str(tmp_path / "anything"))  # must not raise
        target = tmp_path / "out.bin"
        atomic_write_bytes(str(target), b"payload")  # full path still works
        assert target.read_bytes() == b"payload"

    def test_fsync_failure_on_the_directory_is_swallowed(self, tmp_path, monkeypatch):
        real_fsync = os.fsync

        def failing_fsync(fd):
            if stat.S_ISDIR(os.fstat(fd).st_mode):
                raise OSError("EINVAL")
            return real_fsync(fd)

        monkeypatch.setattr(os, "fsync", failing_fsync)
        target = tmp_path / "out.bin"
        atomic_write_bytes(str(target), b"payload")
        assert target.read_bytes() == b"payload"

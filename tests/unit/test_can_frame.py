"""Tests for CAN frames and checksums."""

import pytest

from repro.can.checksum import apply_checksum, honda_checksum, honda_counter, verify_checksum
from repro.can.frame import CANFrame


class TestCANFrame:
    def test_basic_frame(self):
        frame = CANFrame(0xE4, b"\x01\x02\x03")
        assert frame.address == 0xE4
        assert frame.hex() == "010203"
        assert not frame.is_extended

    def test_extended_address(self):
        assert CANFrame(0x18DAF110, b"").is_extended

    def test_invalid_address_rejected(self):
        with pytest.raises(ValueError):
            CANFrame(-1, b"")
        with pytest.raises(ValueError):
            CANFrame(0x20000000, b"")

    def test_payload_too_long_rejected(self):
        with pytest.raises(ValueError):
            CANFrame(0x100, bytes(9))

    def test_with_data_preserves_metadata(self):
        frame = CANFrame(0xE4, b"\x01", bus=2, timestamp=1.5)
        clone = frame.with_data(b"\x02")
        assert clone.address == 0xE4
        assert clone.bus == 2
        assert clone.timestamp == 1.5
        assert clone.data == b"\x02"


class TestHondaChecksum:
    def test_checksum_is_four_bits(self):
        assert 0 <= honda_checksum(0xE4, b"\x12\x34\x56\x78\x00") <= 0xF

    def test_apply_then_verify(self):
        data = bytearray(b"\xd0\x00\x55\xc0\x00")
        apply_checksum(0xE4, data)
        assert verify_checksum(0xE4, data)

    def test_corruption_without_fixup_fails_verification(self):
        data = bytearray(b"\xd0\x00\x55\xc0\x00")
        apply_checksum(0xE4, data)
        data[0] ^= 0xFF
        assert not verify_checksum(0xE4, data)

    def test_corruption_with_fixup_passes_verification(self):
        # The attack's key trick: tamper then recompute the checksum.
        data = bytearray(b"\xd0\x00\x55\xc0\x00")
        apply_checksum(0xE4, data)
        data[0] ^= 0xFF
        apply_checksum(0xE4, data)
        assert verify_checksum(0xE4, data)

    def test_checksum_depends_on_address(self):
        data = b"\x01\x02\x03\x00"
        assert honda_checksum(0xE4, data) != honda_checksum(0xE5, data)

    def test_empty_payload_rejected(self):
        with pytest.raises(ValueError):
            honda_checksum(0xE4, b"")
        assert verify_checksum(0xE4, b"") is False

    def test_counter_wraps_at_two_bits(self):
        values = []
        counter = 0
        for _ in range(6):
            counter = honda_counter(counter)
            values.append(counter)
        assert values == [1, 2, 3, 0, 1, 2]

"""Tests for the search objectives."""

import pytest

from repro.analysis.metrics import RunResult
from repro.search.objectives import (
    HazardObjective,
    StealthObjective,
    TimeToHazardObjective,
    first_hazard,
    margin_score,
    objective_by_name,
)


def _result(**overrides) -> RunResult:
    defaults = dict(
        scenario="S1",
        initial_distance=70.0,
        attack_type="Deceleration",
        strategy="Scheduled",
        seed=0,
        driver_enabled=True,
        duration=50.0,
    )
    defaults.update(overrides)
    return RunResult(**defaults)


class TestMarginScore:
    def test_no_margins_scores_zero(self):
        assert margin_score(_result()) == 0.0

    def test_closer_margins_score_higher(self):
        far = _result(min_ttc=20.0, min_ego_speed=25.0, min_lane_margin=1.5)
        near = _result(min_ttc=1.0, min_ego_speed=25.0, min_lane_margin=1.5)
        assert 0.0 < margin_score(far) < margin_score(near) < 1.0

    def test_any_axis_moving_changes_the_score(self):
        base = _result(min_ttc=10.0, min_ego_speed=20.0, min_lane_margin=1.5)
        for axis in ("min_ttc", "min_ego_speed", "min_lane_margin"):
            closer = _result(min_ttc=10.0, min_ego_speed=20.0, min_lane_margin=1.5)
            setattr(closer, axis, 0.1)
            assert margin_score(closer) > margin_score(base)

    def test_infinite_ttc_ignored(self):
        assert margin_score(_result(min_ttc=float("inf"))) == 0.0


class TestHazardObjective:
    def test_hazard_beats_any_margin(self):
        objective = HazardObjective()
        hazard = _result(hazards={"H1": 20.0}, attack_activation_time=18.0)
        near_miss = _result(min_ttc=0.01, min_ego_speed=0.01, min_lane_margin=0.0)
        assert objective.score_run(hazard) > 1.0 > objective.score_run(near_miss)

    def test_faster_hazard_scores_higher(self):
        objective = HazardObjective()
        fast = _result(hazards={"H1": 20.0}, attack_activation_time=19.0)
        slow = _result(hazards={"H1": 28.0}, attack_activation_time=19.0)
        assert objective.score_run(fast) > objective.score_run(slow)

    def test_falls_back_to_first_hazard_time_without_activation(self):
        objective = HazardObjective()
        hazard = _result(hazards={"H2": 12.0})
        assert objective.score_run(hazard) == pytest.approx(1.0 + 1.0 / 13.0)

    def test_aggregation_is_mean(self):
        objective = HazardObjective()
        hazard = _result(hazards={"H1": 20.0}, attack_activation_time=19.0)
        miss = _result(min_ttc=4.0, min_ego_speed=10.0, min_lane_margin=1.0)
        expected = (objective.score_run(hazard) + objective.score_run(miss)) / 2
        assert objective([hazard, miss]) == pytest.approx(expected)

    def test_empty_results_rejected(self):
        with pytest.raises(ValueError):
            HazardObjective()([])


class TestTimeToHazardObjective:
    def test_shorter_tth_scores_higher(self):
        objective = TimeToHazardObjective(horizon=10.0)
        fast = _result(hazards={"H1": 20.5}, attack_activation_time=20.0)
        slow = _result(hazards={"H1": 26.0}, attack_activation_time=20.0)
        assert objective.score_run(fast) > objective.score_run(slow) > 1.0

    def test_hazard_without_tth_scores_one(self):
        objective = TimeToHazardObjective()
        assert objective.score_run(_result(hazards={"H2": 12.0})) == 1.0

    def test_horizon_validation(self):
        with pytest.raises(ValueError):
            TimeToHazardObjective(horizon=0.0)


class TestStealthObjective:
    def test_unalerted_hazard_dominates(self):
        objective = StealthObjective()
        stealthy = _result(hazards={"H1": 20.0}, attack_activation_time=19.0)
        alerted = _result(
            hazards={"H1": 20.0}, attack_activation_time=19.0, alerts=[("fcw", 19.5)]
        )
        miss = _result(min_ttc=0.5, min_ego_speed=1.0, min_lane_margin=0.1)
        assert objective.score_run(stealthy) > 2.0
        assert objective.score_run(alerted) == 1.0
        assert 0.0 < objective.score_run(miss) < 0.5


class TestRegistryAndHelpers:
    def test_objective_by_name(self):
        for name in ("hazard", "time-to-hazard", "stealth"):
            assert objective_by_name(name).name == name
        with pytest.raises(KeyError):
            objective_by_name("nope")

    def test_first_hazard(self):
        miss = _result()
        hit = _result(hazards={"H1": 5.0})
        assert first_hazard([miss, hit]) is hit
        assert first_hazard([miss]) is None

"""Unit tests for the causal event journal (:mod:`repro.obs.journal`)."""

import os
import threading

import pytest

from repro.obs.journal import (
    EventJournal,
    JournalError,
    job_event_stream,
    read_journal,
    replay_jobs,
)
from repro.obs.query import job_summaries, timeline_lines


class TestEmit:
    def test_sequences_are_strictly_monotonic(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with EventJournal(path) as journal:
            seqs = [journal.emit("test.event", index=i) for i in range(20)]
        assert seqs == list(range(20))
        records = read_journal(path)
        assert [r["seq"] for r in records] == seqs

    def test_none_fields_are_dropped(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with EventJournal(path) as journal:
            journal.emit("test.event", kept=1, dropped=None)
        (record,) = read_journal(path)
        assert record["kept"] == 1 and "dropped" not in record

    def test_reopen_continues_the_sequence(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with EventJournal(path) as journal:
            journal.emit("test.one")
            journal.emit("test.two")
        with EventJournal(path) as journal:
            seq = journal.emit("test.three")
        assert seq == 2
        assert [r["seq"] for r in read_journal(path)] == [0, 1, 2]

    def test_concurrent_emitters_never_collide(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = EventJournal(path, fsync_every=64)

        def hammer(worker):
            for i in range(50):
                journal.emit("test.event", worker=worker, index=i)

        threads = [threading.Thread(target=hammer, args=(w,)) for w in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        journal.close()
        seqs = [r["seq"] for r in read_journal(path)]
        assert seqs == sorted(seqs) == list(range(200))

    def test_invalid_settings_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            EventJournal(str(tmp_path / "j"), fsync_every=0)
        with pytest.raises(ValueError):
            EventJournal(str(tmp_path / "j"), max_bytes=0)


class TestBind:
    def test_bound_fields_stamp_every_event_and_compose(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with EventJournal(path) as journal:
            chunk = journal.bind(job_id=3).bind(chunk_id=1)
            chunk.emit("test.event")
            chunk.emit("test.event", chunk_id=9)  # explicit field wins
        first, second = read_journal(path)
        assert first["job_id"] == 3 and first["chunk_id"] == 1
        assert second["job_id"] == 3 and second["chunk_id"] == 9


class TestDurability:
    def test_rotation_keeps_a_contiguous_recent_suffix(self, tmp_path):
        """One rotated generation is kept: rotated + live read as a
        contiguous, in-order suffix ending at the newest event."""
        path = str(tmp_path / "journal.jsonl")
        with EventJournal(path, max_bytes=256) as journal:
            for i in range(20):
                journal.emit("test.event", index=i)
        assert os.path.exists(path + ".1")
        indices = [r["index"] for r in read_journal(path)]
        assert indices == list(range(indices[0], 20))
        assert indices[-1] == 19

    def test_reopen_after_rotation_continues_sequence(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with EventJournal(path, max_bytes=128) as journal:
            for i in range(10):
                journal.emit("test.event", index=i)
        with EventJournal(path) as journal:
            assert journal.emit("test.event") == 10

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with EventJournal(path) as journal:
            journal.emit("test.one")
            journal.emit("test.two")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"v":1,"kind":"test.torn","se')  # crash mid-write
        records = read_journal(path)
        assert [r["kind"] for r in records] == ["test.one", "test.two"]

    def test_mid_file_corruption_raises(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with EventJournal(path) as journal:
            journal.emit("test.one")
            journal.emit("test.two")
        lines = open(path, encoding="utf-8").read().splitlines()
        lines[0] = "garbage not json"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        with pytest.raises(JournalError):
            read_journal(path)


class TestReplay:
    def _write(self, path, events):
        with EventJournal(path) as journal:
            for kind, fields in events:
                journal.emit(kind, **fields)

    def test_completed_job_replays_to_final_state(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        self._write(
            path,
            [
                ("job.queued", {"job_id": 0, "total": 4}),
                ("job.started", {"job_id": 0}),
                ("job.progress", {"job_id": 0, "completed": 2, "total": 4}),
                ("job.progress", {"job_id": 0, "completed": 4, "total": 4}),
                ("job.completed", {"job_id": 0}),
            ],
        )
        replay = replay_jobs(read_journal(path))[0]
        assert replay.status == "completed"
        assert (replay.completed, replay.total, replay.chunks) == (4, 4, 2)

    def test_interrupted_job_replays_to_in_flight_state(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        self._write(
            path,
            [
                ("job.queued", {"job_id": 1, "total": 6}),
                ("job.started", {"job_id": 1}),
                ("job.progress", {"job_id": 1, "completed": 2, "total": 6}),
            ],
        )
        replay = replay_jobs(read_journal(path))[1]
        assert replay.status == "running"
        assert (replay.completed, replay.total) == (2, 6)

    def test_failed_job_keeps_its_error(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        self._write(
            path,
            [
                ("job.queued", {"job_id": 0, "total": 2}),
                ("job.started", {"job_id": 0}),
                ("job.failed", {"job_id": 0, "error": "boom"}),
            ],
        )
        replay = replay_jobs(read_journal(path))[0]
        assert replay.status == "failed" and replay.error == "boom"

    def test_job_event_stream_strips_nondeterministic_fields(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        self._write(
            path,
            [
                ("job.queued", {"job_id": 0, "total": 2}),
                ("supervisor.retry", {"job_id": 0, "attempt": 1}),
                ("job.queued", {"job_id": 1, "total": 2}),
            ],
        )
        stream = job_event_stream(read_journal(path), job_id=0)
        assert len(stream) == 1  # only job.* of job 0
        assert "seq" not in stream[0] and "ts" not in stream[0]


class TestViews:
    def test_timeline_flags_non_info_levels(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with EventJournal(path) as journal:
            journal.emit("job.queued", job_id=0, total=2)
            journal.emit("supervisor.quarantine", level="warning", task=3)
        lines = timeline_lines(read_journal(path))
        assert len(lines) == 2
        assert "job.queued" in lines[0] and "!" not in lines[0]
        assert "supervisor.quarantine" in lines[1] and "!" in lines[1]

    def test_job_summaries_list_every_quarantined_fingerprint(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        fingerprints = [f"scenario=S1 seed={i}" for i in range(6)]
        with EventJournal(path) as journal:
            journal.emit("job.queued", job_id=0, total=6)
            journal.emit("job.started", job_id=0)
            for fp in fingerprints:
                journal.emit(
                    "supervisor.quarantine", level="warning", job_id=0, fingerprint=fp
                )
            journal.emit("job.completed", job_id=0)
        (line,) = job_summaries(read_journal(path))
        assert "6 quarantined" in line
        for fp in fingerprints:
            assert fp[:12] in line  # no truncation of the list itself

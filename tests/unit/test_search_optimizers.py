"""Tests for the seeded black-box optimizers (protocol and determinism)."""

import pytest

from repro.search.optimizers import (
    CrossEntropy,
    GridSearch,
    HillClimb,
    RandomSearch,
    Told,
    make_optimizer,
    optimizer_names,
)
from repro.search.space import Continuous, SearchSpace


def _space(ndim=3, resolution=64):
    return SearchSpace(
        tuple(Continuous(f"x{i}", 0.0, 1.0) for i in range(ndim)),
        lambda values, seed: (values, seed),
        resolution=resolution,
    )


def _drive(optimizer, space, generations=4):
    """Ask/tell a synthetic objective; return every proposed generation."""
    trail = []
    for _ in range(generations):
        generation = optimizer.ask()
        if not generation:
            break
        trail.append(generation)
        # Synthetic smooth objective: closeness to the all-0.75 corner.
        told = [
            Told(point=p, score=1.0 - sum(abs(c - 0.75) for c in p))
            for p in generation
        ]
        optimizer.tell(told)
    return trail


class TestDeterminism:
    @pytest.mark.parametrize("name", ["random", "hill-climb", "cem", "grid"])
    def test_same_seed_same_trajectory(self, name):
        space = _space()
        a = _drive(make_optimizer(name, space, seed=5, generation_size=6), space)
        b = _drive(make_optimizer(name, space, seed=5, generation_size=6), space)
        assert a == b

    @pytest.mark.parametrize("name", ["random", "hill-climb", "cem"])
    def test_different_seed_different_proposals(self, name):
        space = _space()
        a = _drive(make_optimizer(name, space, seed=1, generation_size=6), space)
        b = _drive(make_optimizer(name, space, seed=2, generation_size=6), space)
        assert a != b

    def test_proposals_are_on_grid(self):
        space = _space(resolution=16)
        for name in ("random", "hill-climb", "cem", "grid"):
            for generation in _drive(make_optimizer(name, space, seed=3), space):
                for point in generation:
                    assert space.quantize(point) == point


class TestGridSearch:
    def test_enumerates_whole_grid_then_stops(self):
        space = _space(ndim=2)
        optimizer = GridSearch(space, generation_size=7, steps=3)
        seen = []
        while True:
            generation = optimizer.ask()
            if not generation:
                break
            seen.extend(generation)
        assert len(seen) == space.grid_size(3) == 9
        assert len(set(seen)) == 9

    def test_ignores_tell(self):
        space = _space(ndim=2)
        optimizer = GridSearch(space, generation_size=4, steps=3)
        first = optimizer.ask()
        optimizer.tell([Told(point=p, score=123.0) for p in first])
        rest = optimizer.ask()
        assert first + rest == list(space.grid(3))[: len(first) + len(rest)]


class TestHillClimb:
    def test_first_generation_explores_uniformly(self):
        space = _space()
        optimizer = HillClimb(space, seed=9, generation_size=8)
        first = optimizer.ask()
        assert len(set(first)) > 1

    def test_climbs_towards_better_scores(self):
        space = _space()
        optimizer = HillClimb(space, seed=9, generation_size=8)
        trail = _drive(optimizer, space, generations=8)
        best_first = max(1.0 - sum(abs(c - 0.75) for c in p) for p in trail[0])
        best_last = max(1.0 - sum(abs(c - 0.75) for c in p) for p in trail[-1])
        assert best_last >= best_first

    def test_restart_resets_the_climb(self):
        space = _space()
        optimizer = HillClimb(space, seed=9, generation_size=4, patience=1)
        first = optimizer.ask()
        optimizer.tell([Told(point=p, score=1.0) for p in first])
        # Repeated non-improving generations force a restart.
        for _ in range(3):
            generation = optimizer.ask()
            optimizer.tell([Told(point=p, score=0.0) for p in generation])
        assert optimizer._current is None or optimizer._stale == 0


class TestCrossEntropy:
    def test_distribution_contracts_on_elites(self):
        space = _space()
        optimizer = CrossEntropy(space, seed=2, generation_size=12)
        before = optimizer._std.copy()
        _drive(optimizer, space, generations=6)
        assert (optimizer._std <= before).all()
        assert (optimizer._std >= optimizer.std_floor).all()

    def test_mean_moves_towards_the_good_corner(self):
        space = _space()
        optimizer = CrossEntropy(space, seed=2, generation_size=12)
        _drive(optimizer, space, generations=8)
        assert (abs(optimizer._mean - 0.75) < 0.25).all()

    def test_elite_fraction_validation(self):
        with pytest.raises(ValueError):
            CrossEntropy(_space(), elite_fraction=0.0)


class TestRegistry:
    def test_names_cover_all_optimizers(self):
        assert set(optimizer_names()) == {"random", "hill-climb", "cem", "grid"}

    def test_make_optimizer_unknown_name(self):
        with pytest.raises(KeyError):
            make_optimizer("simulated-annealing", _space())

    def test_generation_size_validation(self):
        with pytest.raises(ValueError):
            RandomSearch(_space(), generation_size=0)

"""Tests for the ADAS safety limit sets."""

import pytest

from repro.adas.limits import ISO_SAFETY_LIMITS, OPENPILOT_LIMITS, PANDA_LIMITS, SafetyLimits


class TestPaperValues:
    def test_openpilot_limits_match_table3_fixed(self):
        assert OPENPILOT_LIMITS.accel_max == pytest.approx(2.4)
        assert OPENPILOT_LIMITS.brake_min == pytest.approx(-4.0)
        assert OPENPILOT_LIMITS.steer_delta_max_deg == pytest.approx(0.5)

    def test_iso_limits_match_table3_strategic(self):
        assert ISO_SAFETY_LIMITS.accel_max == pytest.approx(2.0)
        assert ISO_SAFETY_LIMITS.brake_min == pytest.approx(-3.5)
        assert ISO_SAFETY_LIMITS.steer_delta_max_deg == pytest.approx(0.25)
        assert ISO_SAFETY_LIMITS.cruise_overspeed_factor == pytest.approx(1.1)

    def test_strategic_values_within_openpilot_limits(self):
        # The whole point of the strategic corruption: its values pass the
        # looser OpenPilot / Panda checks.
        assert not OPENPILOT_LIMITS.violates(
            ISO_SAFETY_LIMITS.accel_max, -ISO_SAFETY_LIMITS.brake_min,
            ISO_SAFETY_LIMITS.steer_delta_max_deg,
        )
        assert not PANDA_LIMITS.violates(
            ISO_SAFETY_LIMITS.accel_max, -ISO_SAFETY_LIMITS.brake_min,
            ISO_SAFETY_LIMITS.steer_delta_max_deg,
        )

    def test_fixed_values_violate_iso_limits(self):
        assert ISO_SAFETY_LIMITS.violates(
            OPENPILOT_LIMITS.accel_max, -OPENPILOT_LIMITS.brake_min,
            OPENPILOT_LIMITS.steer_delta_max_deg,
        )


class TestSafetyLimitsBehaviour:
    def test_clamp_accel(self):
        assert OPENPILOT_LIMITS.clamp_accel(10.0) == pytest.approx(2.4)
        assert OPENPILOT_LIMITS.clamp_accel(-10.0) == pytest.approx(-4.0)
        assert OPENPILOT_LIMITS.clamp_accel(1.0) == 1.0

    def test_clamp_steer_delta(self):
        assert OPENPILOT_LIMITS.clamp_steer_delta(3.0) == pytest.approx(0.5)
        assert OPENPILOT_LIMITS.clamp_steer_delta(-3.0) == pytest.approx(-0.5)

    def test_violates_per_channel(self):
        limits = SafetyLimits(accel_max=2.0, brake_min=-3.5, steer_delta_max_deg=0.25)
        assert limits.violates(2.1, 0.0, 0.0)
        assert limits.violates(0.0, 3.6, 0.0)
        assert limits.violates(0.0, 0.0, 0.3)
        assert not limits.violates(2.0, 3.5, 0.25)

    def test_invalid_limit_values_rejected(self):
        with pytest.raises(ValueError):
            SafetyLimits(accel_max=0.0, brake_min=-1.0, steer_delta_max_deg=0.1)
        with pytest.raises(ValueError):
            SafetyLimits(accel_max=1.0, brake_min=1.0, steer_delta_max_deg=0.1)
        with pytest.raises(ValueError):
            SafetyLimits(accel_max=1.0, brake_min=-1.0, steer_delta_max_deg=0.0)

"""Tests for the experiment scaling and observation-check helpers."""

import pytest

from repro.analysis.metrics import RunResult
from repro.analysis.observations import (
    ObservationCheck,
    check_observation_1,
    check_observation_3,
    check_observation_4,
    check_observation_6,
    format_observations,
)
from repro.analysis.results import AttackTypeSummary, StrategySummary
from repro.experiments.scale import ExperimentScale


class TestExperimentScale:
    def test_default_scale_covers_all_scenarios(self):
        scale = ExperimentScale()
        assert scale.scenarios == ("S1", "S2", "S3", "S4")
        assert scale.repetitions >= 1

    def test_full_scale_matches_paper_grid(self):
        full = ExperimentScale.full()
        # 4 scenarios x 3 distances x 6 attack types x 20 reps = 1,440 runs.
        assert len(full.scenarios) * len(full.initial_distances) * 6 * full.repetitions == 1440
        # Random-ST+DUR uses 10x the repetitions (14,400 runs).
        assert full.random_st_dur_repetitions == 10 * full.repetitions

    def test_smoke_scale_is_tiny(self):
        smoke = ExperimentScale.smoke()
        assert smoke.repetitions == 1
        assert len(smoke.scenarios) == 1

    def test_environment_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL_SCALE", "true")
        assert ExperimentScale.from_environment().repetitions == 20
        monkeypatch.setenv("REPRO_FULL_SCALE", "0")
        assert ExperimentScale.from_environment().repetitions == ExperimentScale().repetitions

    @pytest.mark.parametrize("value", ["", "0", "false", "no", "2", "banana", "full", " true "])
    def test_environment_unexpected_values_fall_back_to_default(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_FULL_SCALE", value)
        assert ExperimentScale.from_environment() == ExperimentScale()
        custom = ExperimentScale.smoke()
        assert ExperimentScale.from_environment(custom) is custom

    @pytest.mark.parametrize("value", ["1", "true", "yes", "TRUE", "Yes"])
    def test_environment_truthy_values_select_full_scale(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_FULL_SCALE", value)
        assert ExperimentScale.from_environment() == ExperimentScale.full()

    def test_environment_default_none_is_accepted(self, monkeypatch):
        # Regression: the parameter is Optional; passing/omitting None must
        # produce the laptop-sized grid, not a type error downstream.
        monkeypatch.delenv("REPRO_FULL_SCALE", raising=False)
        assert ExperimentScale.from_environment(None) == ExperimentScale()

    def test_extended_scale_covers_the_catalog(self):
        from repro.scenarios import CATALOG

        extended = ExperimentScale.extended()
        assert set(extended.scenarios) == set(CATALOG.names())
        assert extended.initial_distances == (None,)


def run_result(hazards=None, invasions=0, **kwargs):
    defaults = dict(scenario="S1", initial_distance=70.0, attack_type=None,
                    strategy="No-Attack", seed=0, driver_enabled=True, duration=50.0)
    defaults.update(kwargs)
    result = RunResult(**defaults)
    result.hazards = hazards or {}
    result.lane_invasions = invasions
    return result


def strategy_summary(name, hazard_rate, alert_rate, no_alert_rate):
    return StrategySummary(
        strategy=name, runs=100, alerts=int(alert_rate * 100), alert_rate=alert_rate,
        hazards=int(hazard_rate * 100), hazard_rate=hazard_rate,
        accidents=0, accident_rate=0.0,
        hazards_without_alerts=int(no_alert_rate * 100),
        hazards_without_alerts_rate=no_alert_rate,
        lane_invasions_per_second=0.3, tth_mean=2.0, tth_std=0.5,
    )


def attack_summary(name, hazards=10, prevented=0, alerts=0, runs=10):
    return AttackTypeSummary(
        attack_type=name, runs=runs, alerts=alerts, alert_rate=alerts / runs,
        hazards=hazards, hazard_rate=hazards / runs, accidents=0, accident_rate=0.0,
        tth_mean=2.0, tth_std=0.1, prevented_hazards=prevented,
    )


class TestObservationChecks:
    def test_observation_1_holds_with_invasions_and_no_hazards(self):
        runs = [run_result(invasions=10), run_result(invasions=5)]
        assert check_observation_1(runs).holds

    def test_observation_1_fails_with_hazards(self):
        runs = [run_result(invasions=10, hazards={"H3": 5.0})]
        assert not check_observation_1(runs).holds

    def test_observation_3(self):
        check = check_observation_3((10.0, 20.0), random_hazard_rate=0.4,
                                    context_aware_hazard_rate=0.9)
        assert check.holds
        assert not check_observation_3(None, 0.4, 0.9).holds

    def test_observation_4(self):
        summaries = {"Acceleration": attack_summary("Acceleration", prevented=5),
                     "Steering-Right": attack_summary("Steering-Right")}
        assert check_observation_4(summaries).holds
        assert not check_observation_4(
            {"Acceleration": attack_summary("Acceleration", prevented=0)}
        ).holds

    def test_observation_6(self):
        with_corruption = {"Acceleration": attack_summary("Acceleration", alerts=0, prevented=0)}
        without_corruption = {"Acceleration": attack_summary("Acceleration", alerts=5, prevented=3)}
        assert check_observation_6(with_corruption, without_corruption).holds
        assert not check_observation_6(without_corruption, with_corruption).holds

    def test_format_observations(self):
        checks = [ObservationCheck(1, "desc", True, "detail"),
                  ObservationCheck(2, "other", False)]
        text = format_observations(checks)
        assert "Observation 1: HOLDS" in text
        assert "Observation 2: DEVIATES" in text

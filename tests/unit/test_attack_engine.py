"""Tests for the attack engine, eavesdropper and CAN tampering."""

import pytest

from repro.can.honda import ADDR, HONDA_DBC
from repro.core.attack_engine import AttackEngine
from repro.core.attack_types import AttackType
from repro.core.can_tamper import CanAttackInterceptor, tamper_signal
from repro.core.eavesdropper import Eavesdropper
from repro.core.strategies import ContextAwareStrategy, RandomStartDurationStrategy
from repro.messaging.messages import (
    CarState,
    GpsLocationExternal,
    LaneLine,
    ModelV2,
    RadarLead,
    RadarState,
)
from repro.sim.vehicle import ActuatorCommand


def publish_state(message_bus, v_ego=20.0, lead_distance=30.0, v_rel=-5.0, lateral_offset=0.0):
    message_bus.publish("gpsLocationExternal", GpsLocationExternal(speed=v_ego))
    message_bus.publish(
        "modelV2",
        ModelV2(
            lane_lines=(LaneLine(offset=1.8 - lateral_offset), LaneLine(offset=-1.8 - lateral_offset)),
            lateral_offset=lateral_offset,
            lane_width=3.6,
        ),
    )
    message_bus.publish(
        "radarState",
        RadarState(lead_one=RadarLead(d_rel=lead_distance, v_rel=v_rel, v_lead=v_ego + v_rel)),
    )


CAR = CarState(v_ego=20.0, cruise_speed=26.82, cruise_enabled=True)


class TestEavesdropper:
    def test_snapshot_collects_all_three_services(self, message_bus):
        eavesdropper = Eavesdropper(message_bus)
        publish_state(message_bus)
        snapshot = eavesdropper.snapshot(1.0)
        assert snapshot.complete
        assert snapshot.v_ego == pytest.approx(20.0)
        assert snapshot.has_lead
        assert snapshot.lead_distance == pytest.approx(30.0)

    def test_snapshot_incomplete_before_messages(self, message_bus):
        eavesdropper = Eavesdropper(message_bus)
        assert not eavesdropper.snapshot(0.0).complete

    def test_eavesdropper_is_passive(self, message_bus):
        # Creating an eavesdropper publishes nothing on the bus.
        before = message_bus.publication_count("radarState")
        Eavesdropper(message_bus)
        assert message_bus.publication_count("radarState") == before


class TestAttackEngineActivation:
    def test_context_aware_activates_on_critical_context(self, message_bus):
        engine = AttackEngine(message_bus, AttackType.ACCELERATION, ContextAwareStrategy(), seed=1)
        # Critical: headway 30/20 = 1.5 s <= t_safe and closing (v_rel < 0).
        publish_state(message_bus, v_ego=20.0, lead_distance=30.0, v_rel=-5.0)
        command = engine.output_hook(1.0, ActuatorCommand(accel=0.5), CAR)
        assert engine.active
        assert engine.record.activated
        assert command.accel == pytest.approx(2.0)  # strategic limit

    def test_context_aware_waits_in_benign_context(self, message_bus):
        engine = AttackEngine(message_bus, AttackType.ACCELERATION, ContextAwareStrategy(), seed=1)
        publish_state(message_bus, v_ego=20.0, lead_distance=150.0, v_rel=-2.0)
        command = engine.output_hook(1.0, ActuatorCommand(accel=0.5), CAR)
        assert not engine.active
        assert command.accel == pytest.approx(0.5)

    def test_random_strategy_activates_on_timer_not_context(self, message_bus):
        strategy = RandomStartDurationStrategy(start_range=(2.0, 2.0), duration_range=(1.0, 1.0))
        engine = AttackEngine(message_bus, AttackType.DECELERATION, strategy, seed=1)
        publish_state(message_bus, v_ego=20.0, lead_distance=150.0, v_rel=-2.0)
        engine.output_hook(1.0, ActuatorCommand(), CAR)
        assert not engine.active
        publish_state(message_bus, v_ego=20.0, lead_distance=150.0, v_rel=-2.0)
        command = engine.output_hook(2.5, ActuatorCommand(), CAR)
        assert engine.active
        assert command.brake == pytest.approx(4.0)

    def test_attack_stops_after_hazard_notification(self, message_bus):
        engine = AttackEngine(message_bus, AttackType.ACCELERATION, ContextAwareStrategy(), seed=1)
        publish_state(message_bus, v_ego=20.0, lead_distance=30.0, v_rel=-5.0)
        engine.output_hook(1.0, ActuatorCommand(), CAR)
        engine.notify_hazard()
        publish_state(message_bus, v_ego=20.0, lead_distance=20.0, v_rel=-5.0)
        command = engine.output_hook(1.1, ActuatorCommand(accel=0.2), CAR)
        assert not engine.active
        assert command.accel == pytest.approx(0.2)
        assert engine.record.deactivation_time == pytest.approx(1.1)

    def test_attack_stops_when_driver_engages(self, message_bus):
        engine = AttackEngine(message_bus, AttackType.ACCELERATION, ContextAwareStrategy(), seed=1)
        publish_state(message_bus, v_ego=20.0, lead_distance=30.0, v_rel=-5.0)
        engine.output_hook(1.0, ActuatorCommand(), CAR)
        engine.notify_driver_engaged()
        publish_state(message_bus, v_ego=20.0, lead_distance=30.0, v_rel=-5.0)
        command = engine.output_hook(1.1, ActuatorCommand(accel=0.2), CAR)
        assert command.accel == pytest.approx(0.2)
        assert engine.record.stopped_by_driver

    def test_no_reactivation_after_deactivation(self, message_bus):
        strategy = RandomStartDurationStrategy(start_range=(1.0, 1.0), duration_range=(0.5, 0.5))
        engine = AttackEngine(message_bus, AttackType.ACCELERATION, strategy, seed=1)
        for time in (1.0, 1.2, 1.6, 2.0, 3.0):
            publish_state(message_bus, v_ego=20.0, lead_distance=30.0, v_rel=-5.0)
            engine.output_hook(time, ActuatorCommand(), CAR)
        assert not engine.active
        assert engine.record.injected_steps == 2

    def test_record_duration(self, message_bus):
        strategy = RandomStartDurationStrategy(start_range=(1.0, 1.0), duration_range=(0.5, 0.5))
        engine = AttackEngine(message_bus, AttackType.ACCELERATION, strategy, seed=1)
        for time in (1.0, 1.3, 1.6):
            publish_state(message_bus, v_ego=20.0, lead_distance=30.0, v_rel=-5.0)
            engine.output_hook(time, ActuatorCommand(), CAR)
        assert engine.record.duration == pytest.approx(0.6, abs=0.11)


class TestCanTampering:
    def test_tamper_signal_rewrites_and_fixes_checksum(self):
        frame = HONDA_DBC.encode("STEERING_CONTROL", {"STEER_ANGLE_CMD": 5.0}, counter=3)
        tampered = tamper_signal(frame, HONDA_DBC, {"STEER_ANGLE_CMD": 0.25})
        decoded = HONDA_DBC.decode(tampered)  # checksum verified here
        assert decoded["STEER_ANGLE_CMD"] == pytest.approx(0.25, abs=0.01)
        assert decoded["COUNTER"] == 3

    def test_interceptor_corrupts_acc_frames_when_attack_active(self, message_bus, can_bus):
        engine = AttackEngine(message_bus, AttackType.ACCELERATION, ContextAwareStrategy(), seed=1)
        interceptor = CanAttackInterceptor(engine).attach(can_bus)
        interceptor.observe_car_state(1.0, CAR)
        publish_state(message_bus, v_ego=20.0, lead_distance=30.0, v_rel=-5.0)
        frame = HONDA_DBC.encode(
            "ACC_CONTROL", {"ACCEL_COMMAND": 0.3, "BRAKE_COMMAND": 0.0}, timestamp=1.0
        )
        can_bus.send(frame)
        stored = can_bus.latest(ADDR["ACC_CONTROL"])
        assert HONDA_DBC.decode(stored)["ACCEL_COMMAND"] == pytest.approx(2.0, abs=0.01)
        assert can_bus.tampered_count == 1

    def test_interceptor_passes_frames_through_when_inactive(self, message_bus, can_bus):
        engine = AttackEngine(message_bus, AttackType.ACCELERATION, ContextAwareStrategy(), seed=1)
        CanAttackInterceptor(engine).attach(can_bus)
        publish_state(message_bus, v_ego=20.0, lead_distance=150.0, v_rel=-2.0)
        frame = HONDA_DBC.encode(
            "ACC_CONTROL", {"ACCEL_COMMAND": 0.3, "BRAKE_COMMAND": 0.0}, timestamp=1.0
        )
        can_bus.send(frame)
        assert can_bus.tampered_count == 0

"""Tests for the declarative attack search space."""

import pytest

from repro.adas.limits import ISO_SAFETY_LIMITS, OPENPILOT_LIMITS
from repro.core.attack_types import AttackType
from repro.core.strategies import ContextAwareStrategy, ScheduledAttackStrategy
from repro.scenarios.sampler import DEFAULT_FAMILIES
from repro.search.space import (
    Categorical,
    Continuous,
    SearchSpace,
    attack_search_space,
    with_safety_margin,
)


def _passthrough_decoder(values, seed):  # pragma: no cover - never simulated
    return values, seed


class TestDimensions:
    def test_continuous_value_unit_roundtrip(self):
        dim = Continuous("x", 2.0, 10.0)
        assert dim.value(0.0) == 2.0
        assert dim.value(1.0) == 10.0
        assert dim.unit(dim.value(0.25)) == pytest.approx(0.25)

    def test_continuous_requires_high_above_low(self):
        with pytest.raises(ValueError):
            Continuous("x", 1.0, 1.0)

    def test_categorical_buckets_cover_all_choices(self):
        dim = Categorical("t", ("a", "b", "c"))
        assert [dim.value(u) for u in (0.0, 0.34, 0.67, 1.0)] == ["a", "b", "c", "c"]
        for choice in dim.choices:
            assert dim.value(dim.unit(choice)) == choice

    def test_categorical_needs_two_choices(self):
        with pytest.raises(ValueError):
            Categorical("t", ("only",))


class TestSearchSpace:
    def _space(self, resolution=16):
        return SearchSpace(
            (Continuous("a", 0.0, 1.0), Continuous("b", 10.0, 20.0)),
            _passthrough_decoder,
            resolution=resolution,
        )

    def test_quantize_snaps_to_grid_and_clips(self):
        space = self._space(resolution=4)
        assert space.quantize((0.1, 0.9)) == (0.0, 1.0)
        assert space.quantize((0.13, -2.0)) == (0.25, 0.0)

    def test_key_roundtrip(self):
        space = self._space()
        point = space.quantize((0.33, 0.77))
        assert space.from_key(space.key(point)) == point

    def test_point_from_values_inverts_values(self):
        space = self._space(resolution=1024)
        point = space.quantize((0.5, 0.25))
        values = space.values(point)
        assert space.point_from_values(values) == point

    def test_point_from_values_missing_dimension_raises(self):
        with pytest.raises(KeyError):
            self._space().point_from_values({"a": 0.5})

    def test_duplicate_dimension_names_rejected(self):
        with pytest.raises(ValueError):
            SearchSpace(
                (Continuous("a", 0.0, 1.0), Continuous("a", 0.0, 2.0)),
                _passthrough_decoder,
            )

    def test_grid_enumerates_product(self):
        space = SearchSpace(
            (Continuous("a", 0.0, 1.0), Categorical("t", ("x", "y", "z"))),
            _passthrough_decoder,
        )
        points = list(space.grid(steps=4))
        assert len(points) == space.grid_size(4) == 12
        assert len(set(points)) == 12
        # Deterministic order.
        assert points == list(space.grid(steps=4))


class TestAttackSearchSpace:
    def test_scheduled_decode(self):
        space = attack_search_space(
            scenario="S2", attack_types=(AttackType.DECELERATION,), max_steps=1000
        )
        point = space.point_from_values({"start": 12.0, "duration": 3.0, "magnitude": 0.5})
        config, strategy = space.decode(point, seed=99)
        assert isinstance(strategy, ScheduledAttackStrategy)
        assert strategy.start_range[0] == pytest.approx(12.0, abs=0.05)
        assert strategy.duration_range[0] == pytest.approx(3.0, abs=0.01)
        assert config.scenario == "S2"
        assert config.seed == 99
        assert config.attack_type is AttackType.DECELERATION
        assert config.max_steps == 1000
        limits = config.attack_tuning.corruption_limits
        assert limits.fixed.accel_max == pytest.approx(0.5 * OPENPILOT_LIMITS.accel_max, rel=0.01)
        assert limits.strategic.brake_min == pytest.approx(
            0.5 * ISO_SAFETY_LIMITS.brake_min, rel=0.01
        )

    def test_decode_builds_fresh_strategies(self):
        space = attack_search_space()
        point = space.quantize((0.5, 0.5, 0.5))
        _, strategy_a = space.decode(point, seed=1)
        _, strategy_b = space.decode(point, seed=1)
        assert strategy_a is not strategy_b

    def test_context_aware_decode_carries_threshold(self):
        space = attack_search_space(
            attack_types=(AttackType.ACCELERATION,), context_aware=True
        )
        point = space.point_from_values({"t_safe": 2.5, "duration": 6.0, "magnitude": 1.0})
        config, strategy = space.decode(point, seed=0)
        assert isinstance(strategy, ContextAwareStrategy)
        assert strategy.max_duration == pytest.approx(6.0, abs=0.01)
        assert config.attack_tuning.t_safe == pytest.approx(2.5, abs=0.01)

    def test_multi_attack_type_dimension(self):
        types = (AttackType.DECELERATION, AttackType.STEERING_LEFT)
        space = attack_search_space(attack_types=types)
        assert space.dimensions[0].name == "attack_type"
        point = space.point_from_values(
            {"attack_type": AttackType.STEERING_LEFT, "start": 10.0,
             "duration": 2.0, "magnitude": 1.0}
        )
        config, _ = space.decode(point, seed=0)
        assert config.attack_type is AttackType.STEERING_LEFT

    def test_family_parameters_become_dimensions(self):
        family = next(f for f in DEFAULT_FAMILIES if f.name == "hard-brake")
        space = attack_search_space(family=family)
        names = [dim.name for dim in space.dimensions]
        for key in family.parameters:
            assert f"scenario:{key}" in names
        config, _ = space.decode(space.quantize([0.5] * space.ndim), seed=0)
        assert config.scenario.family == "hard-brake"

    def test_with_safety_margin_flips_only_tracking(self):
        space = attack_search_space()
        config, strategy = space.decode(space.quantize((0.5, 0.5, 0.5)), seed=4)
        assert config.track_safety_margin is False
        tracked_config, same_strategy = with_safety_margin((config, strategy))
        assert tracked_config.track_safety_margin is True
        assert same_strategy is strategy
        assert tracked_config.seed == config.seed

    def test_needs_attack_types(self):
        with pytest.raises(ValueError):
            attack_search_space(attack_types=())

"""Tests for the Kalman filter and the strategic value corruption."""

import pytest

from repro.adas.limits import ISO_SAFETY_LIMITS, OPENPILOT_LIMITS
from repro.core.attack_types import AttackType, spec_for
from repro.core.corruption import CorruptionMode, ValueCorruptor
from repro.core.kalman import ScalarKalmanFilter
from repro.sim.vehicle import ActuatorCommand


class TestScalarKalmanFilter:
    def test_first_update_initialises(self):
        kf = ScalarKalmanFilter()
        kf.update(20.0)
        assert kf.estimate == pytest.approx(20.0)
        assert kf.initialized

    def test_predict_uses_constant_acceleration_model(self):
        kf = ScalarKalmanFilter()
        kf.reset(20.0)
        assert kf.predict(2.0, 0.5) == pytest.approx(21.0)

    def test_predict_before_init_raises(self):
        with pytest.raises(RuntimeError):
            ScalarKalmanFilter().predict(1.0, 0.1)

    def test_update_moves_estimate_towards_measurement(self):
        kf = ScalarKalmanFilter()
        kf.reset(20.0, variance=1.0)
        kf.update(22.0)
        assert 20.0 < kf.estimate <= 22.0
        assert 0.0 < kf.gain <= 1.0

    def test_converges_to_constant_measurement(self):
        kf = ScalarKalmanFilter()
        kf.reset(0.0)
        for _ in range(100):
            kf.predict(0.0, 0.01)
            kf.update(15.0)
        assert kf.estimate == pytest.approx(15.0, abs=0.1)

    def test_variance_shrinks_on_update_grows_on_predict(self):
        kf = ScalarKalmanFilter()
        kf.reset(10.0, variance=1.0)
        kf.predict(0.0, 0.01)
        grown = kf.variance
        kf.update(10.0)
        assert kf.variance < grown

    def test_predicted_speed_does_not_mutate(self):
        kf = ScalarKalmanFilter()
        kf.reset(10.0)
        before = kf.estimate
        kf.predicted_speed(2.0, 0.5)
        assert kf.estimate == before


def corrupt(mode, attack_type, command=None, direction=0, prev_steer=0.0,
            cruise=26.82, speed=None):
    corruptor = ValueCorruptor(mode)
    if speed is not None:
        corruptor.observe_speed(speed)
    command = command or ActuatorCommand(accel=0.3, brake=0.0, steering_angle_deg=2.0)
    return corruptor.corrupt(command, spec_for(attack_type), direction, prev_steer, cruise)


class TestFixedCorruption:
    def test_acceleration_uses_openpilot_maximum(self):
        result = corrupt(CorruptionMode.FIXED, AttackType.ACCELERATION)
        assert result.accel == pytest.approx(OPENPILOT_LIMITS.accel_max)
        assert result.brake == 0.0

    def test_deceleration_uses_openpilot_maximum(self):
        result = corrupt(CorruptionMode.FIXED, AttackType.DECELERATION)
        assert result.brake == pytest.approx(-OPENPILOT_LIMITS.brake_min)
        assert result.accel == 0.0

    def test_steering_moves_towards_fixed_value(self):
        result = corrupt(CorruptionMode.FIXED, AttackType.STEERING_RIGHT,
                         direction=-1, prev_steer=2.0)
        assert result.steering_angle_deg == pytest.approx(1.5)

    def test_steering_change_within_rate_limit(self):
        result = corrupt(CorruptionMode.FIXED, AttackType.STEERING_LEFT,
                         direction=+1, prev_steer=-3.0)
        assert abs(result.steering_angle_deg - (-3.0)) <= OPENPILOT_LIMITS.steer_delta_max_deg + 1e-9

    def test_combined_attack_corrupts_both_channels(self):
        result = corrupt(CorruptionMode.FIXED, AttackType.ACCELERATION_STEERING,
                         direction=-1, prev_steer=0.0)
        assert result.accel == pytest.approx(OPENPILOT_LIMITS.accel_max)
        assert result.steering_angle_deg != 0.0


class TestStrategicCorruption:
    def test_acceleration_uses_iso_limit(self):
        result = corrupt(CorruptionMode.STRATEGIC, AttackType.ACCELERATION, speed=15.0)
        assert result.accel == pytest.approx(ISO_SAFETY_LIMITS.accel_max)

    def test_deceleration_uses_iso_limit(self):
        result = corrupt(CorruptionMode.STRATEGIC, AttackType.DECELERATION, speed=15.0)
        assert result.brake == pytest.approx(-ISO_SAFETY_LIMITS.brake_min)

    def test_acceleration_backs_off_near_speed_cap(self):
        # Predicted speed near 1.1 * v_cruise -> accel reduced (Eq. 1-3).
        cruise = 26.82
        result = corrupt(CorruptionMode.STRATEGIC, AttackType.ACCELERATION,
                         cruise=cruise, speed=1.1 * cruise - 0.2)
        assert result.accel < ISO_SAFETY_LIMITS.accel_max
        assert result.accel >= 0.0

    def test_acceleration_full_when_far_below_cap(self):
        result = corrupt(CorruptionMode.STRATEGIC, AttackType.ACCELERATION,
                         cruise=26.82, speed=16.0)
        assert result.accel == pytest.approx(ISO_SAFETY_LIMITS.accel_max)

    def test_strategic_values_pass_driver_anomaly_thresholds(self):
        from repro.driver.anomaly import AnomalyDetector
        detector = AnomalyDetector()
        for attack_type, direction in ((AttackType.ACCELERATION, 0),
                                       (AttackType.DECELERATION, 0),
                                       (AttackType.STEERING_RIGHT, -1)):
            command = ActuatorCommand(accel=0.3, brake=0.0, steering_angle_deg=0.0)
            previous = ActuatorCommand(steering_angle_deg=0.0)
            result = corrupt(CorruptionMode.STRATEGIC, attack_type, command=command,
                             direction=direction, speed=15.0)
            assert detector.detect(0.0, result, previous, 15.0, 26.82) is None

    def test_fixed_values_trip_driver_anomaly_thresholds(self):
        from repro.driver.anomaly import AnomalyDetector
        detector = AnomalyDetector()
        previous = ActuatorCommand()
        command = ActuatorCommand(accel=0.3, brake=0.0, steering_angle_deg=0.0)
        accel = corrupt(CorruptionMode.FIXED, AttackType.ACCELERATION, command=command)
        brake = corrupt(CorruptionMode.FIXED, AttackType.DECELERATION, command=command)
        assert detector.detect(0.0, accel, previous, 15.0, 26.82).kind == "acceleration"
        assert detector.detect(0.0, brake, previous, 15.0, 26.82).kind == "hard_brake"

    def test_untouched_channels_preserved(self):
        command = ActuatorCommand(accel=0.7, brake=0.0, steering_angle_deg=5.5)
        result = corrupt(CorruptionMode.STRATEGIC, AttackType.DECELERATION, command=command,
                         speed=15.0)
        assert result.steering_angle_deg == pytest.approx(5.5)

"""Tests for the scenario catalog (repro.scenarios.catalog)."""

import pickle

import pytest

from repro.scenarios import CATALOG, PAPER_SCENARIOS, ScenarioCatalog, ScenarioSpec
from repro.sim.scenarios import SCENARIOS, build_scenario
from repro.sim.units import mph_to_ms


class TestCatalogContents:
    def test_catalog_has_at_least_twelve_scenarios(self):
        assert len(CATALOG) >= 12

    def test_paper_scenarios_come_first_and_are_the_legacy_objects(self):
        names = CATALOG.names()
        assert names[:4] == PAPER_SCENARIOS == ("S1", "S2", "S3", "S4")
        for name in PAPER_SCENARIOS:
            # The very same objects: the legacy SCENARIOS table is the
            # source, so S1-S4 cannot drift from the paper's definitions.
            assert CATALOG.get(name) is SCENARIOS[name]

    def test_at_least_eight_non_paper_scenarios(self):
        extra = [spec for spec in CATALOG if spec.name not in PAPER_SCENARIOS]
        assert len(extra) >= 8

    def test_names_are_unique_and_match_spec_names(self):
        names = CATALOG.names()
        assert len(set(names)) == len(names)
        for spec in CATALOG:
            assert CATALOG.get(spec.name) is spec

    def test_catalog_covers_multi_actor_and_road_geometry(self):
        kinds = set()
        curved = 0
        for spec in CATALOG:
            kinds.update(actor.kind for actor in spec.actors)
            if spec.road.curvature_max != 0.0 and spec.road.curve_start < 150.0:
                curved += 1
        assert "cut_in" in kinds
        assert curved >= 1
        assert any(spec.lead_lane_change is not None for spec in CATALOG)
        assert any(not spec.with_lead for spec in CATALOG)
        assert any(len(spec.lead_phases()) >= 2 for spec in CATALOG)

    def test_specs_are_picklable(self):
        for spec in CATALOG:
            clone = pickle.loads(pickle.dumps(spec))
            assert clone == spec


class TestCatalogLookup:
    def test_get_unknown_raises_keyerror_with_known_names(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            CATALOG.get("S9")

    def test_build_applies_distance_override(self):
        spec = CATALOG.build("lead-hard-brake", initial_distance=95.0)
        assert spec.initial_distance == 95.0
        assert CATALOG.get("lead-hard-brake").initial_distance != 95.0

    def test_build_without_distance_keeps_catalog_gap(self):
        spec = CATALOG.build("traffic-jam-approach")
        assert spec is CATALOG.get("traffic-jam-approach")

    def test_legacy_build_scenario_resolves_catalog_names(self):
        spec = build_scenario("cut-in-short-gap", initial_distance=None)
        assert spec.name == "cut-in-short-gap"
        spec = build_scenario("oscillating-lead", 90.0)
        assert spec.initial_distance == 90.0

    def test_omitted_lead_speed_fails_loudly(self):
        with pytest.raises(ValueError, match="lead_initial_speed is required"):
            ScenarioSpec(
                name="missing-lead-speed",
                description="",
                ego_initial_speed=mph_to_ms(60.0),
                cruise_speed=mph_to_ms(60.0),
            )

    def test_register_rejects_duplicates(self):
        catalog = ScenarioCatalog()
        spec = ScenarioSpec(
            name="dup",
            description="",
            ego_initial_speed=mph_to_ms(60.0),
            cruise_speed=mph_to_ms(60.0),
            with_lead=False,
        )
        catalog.register(spec)
        with pytest.raises(ValueError, match="already registered"):
            catalog.register(spec)
        catalog.register(spec.variant(description="v2"), replace_existing=True)
        assert catalog.get("dup").description == "v2"


class TestCatalogTable:
    def test_table_rows_cover_every_scenario(self):
        rows = CATALOG.table_rows()
        assert len(rows) == len(CATALOG)
        names = [row[0] for row in rows]
        assert names == list(CATALOG.names())

    def test_table_reports_actors_and_geometry(self):
        rows = {row[0]: row for row in CATALOG.table_rows()}
        assert "cut_in" in rows["cut-in-short-gap"][1]
        # The paper's road curves left at s=150 m; the variant starts earlier.
        assert "s=150" in rows["S1"][3]
        assert "s=60" in rows["curved-road-cruise"][3]

"""Tests for the simulation world."""

import pytest

from repro.can.honda import HONDA_DBC
from repro.sim.vehicle import ActuatorCommand


class TestSensorsAndCan:
    def test_publish_sensors_reaches_bus(self, world, message_bus):
        sub_radar = message_bus.subscribe("radarState")
        sub_model = message_bus.subscribe("modelV2")
        sub_gps = message_bus.subscribe("gpsLocationExternal")
        world.publish_sensors()
        assert sub_radar.latest is not None
        assert sub_model.latest is not None
        assert sub_gps.latest is not None

    def test_sensor_rates_respected(self, world, message_bus):
        sub_gps = message_bus.subscribe("gpsLocationExternal")
        for _ in range(100):  # 1 second of 10 ms steps
            world.publish_sensors()
            world.step(ActuatorCommand())
        # GPS publishes at 10 Hz -> ~10 messages in 1 s.
        assert 9 <= len(sub_gps.drain()) <= 12

    def test_publish_car_can_and_read_back(self, world):
        world.publish_car_can()
        car_state = world.read_car_state()
        assert car_state.v_ego == pytest.approx(world.ego.state.speed, abs=0.02)
        assert car_state.cruise_enabled

    def test_car_state_without_can_uses_ground_truth(self, world):
        car_state = world.read_car_state()
        assert car_state.v_ego == pytest.approx(world.ego.state.speed)


class TestActuation:
    def test_decode_actuator_command_from_can(self, world):
        frame = HONDA_DBC.encode(
            "ACC_CONTROL", {"ACCEL_COMMAND": 1.2, "BRAKE_COMMAND": 0.0, "ACC_ON": 1.0}
        )
        world.can_bus.send(frame)
        steer = HONDA_DBC.encode("STEERING_CONTROL", {"STEER_ANGLE_CMD": 2.5})
        world.can_bus.send(steer)
        command = world.decode_actuator_command()
        assert command.accel == pytest.approx(1.2, abs=0.01)
        assert command.steering_angle_deg == pytest.approx(2.5, abs=0.01)

    def test_step_advances_time_and_actors(self, world):
        initial_lead_s = world.lead.state.s
        result = world.step(ActuatorCommand())
        assert world.time == pytest.approx(0.01)
        assert world.step_count == 1
        assert world.lead.state.s > initial_lead_s
        assert result.lead_gap is not None

    def test_step_without_command_uses_can(self, world):
        world.can_bus.send(
            HONDA_DBC.encode("ACC_CONTROL", {"ACCEL_COMMAND": 2.0, "BRAKE_COMMAND": 0.0})
        )
        for _ in range(200):
            world.step()
        assert world.ego.state.speed > world.config.scenario.ego_initial_speed + 0.5

    def test_initial_gap_matches_scenario(self, world):
        gap = world.lead.rear_s - world.ego.front_s
        assert gap == pytest.approx(world.config.scenario.initial_distance, abs=0.1)

    def test_follower_present_when_configured(self, world):
        assert world.follower is not None
        assert world.follower.front_s < world.ego.rear_s


class TestTrajectoryAndDisturbance:
    def test_trajectory_recorded_when_enabled(self, message_bus, can_bus):
        from repro.sim.scenarios import build_scenario
        from repro.sim.world import World, WorldConfig

        world = World(
            WorldConfig(scenario=build_scenario("S1", 70.0), record_trajectory=True,
                        trajectory_decimation=5),
            message_bus,
            can_bus,
        )
        for _ in range(50):
            world.step(ActuatorCommand())
        assert len(world.trajectory) == 10

    def test_disturbance_zero_when_disabled(self, world):
        assert world.disturbance_curvature(12.3) == 0.0

    def test_disturbance_bounded_by_amplitude(self, noisy_world):
        amplitude = noisy_world.config.disturbance_amplitude
        values = [abs(noisy_world.disturbance_curvature(t * 0.1)) for t in range(200)]
        assert max(values) <= amplitude + 1e-12
        assert max(values) > 0.0

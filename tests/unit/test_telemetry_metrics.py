"""Unit tests for the telemetry metrics primitives and exporters.

The metrics layer underpins the cross-mode determinism guarantee
(sequential == pooled == batched snapshots), so merge semantics —
especially histogram merge associativity and the counter/gauge rules —
are pinned with hypothesis alongside the plain behavioural cases.
"""

import json
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry import (
    NS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    prometheus_name,
    prometheus_text,
    summary,
    write_json_snapshot,
    write_prometheus,
)


class TestCounter:
    def test_starts_at_zero_and_adds(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_merge_adds(self):
        a, b = Counter("c", 3), Counter("c", 7)
        a.merge(b)
        assert a.value == 10


class TestGauge:
    def test_set_and_merge_other_wins_when_set(self):
        a, b = Gauge("g"), Gauge("g")
        a.set(1.0)
        b.set(2.0)
        a.merge(b)
        assert a.value == 2.0

    def test_merge_unset_other_keeps_mine(self):
        a, b = Gauge("g"), Gauge("g")
        a.set(1.0)
        a.merge(b)
        assert a.value == 1.0 and a.is_set


class TestHistogram:
    def test_bounds_must_be_strictly_increasing(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError):
            Histogram("h", bounds=())

    def test_record_tracks_sum_count_min_max(self):
        histogram = Histogram("h", bounds=(10.0, 100.0))
        for value in (5, 50, 500):
            histogram.record(value)
        assert histogram.count == 3
        assert histogram.sum == 555
        assert histogram.min == 5 and histogram.max == 500
        assert histogram.counts == [1, 1, 1]  # one per bucket + overflow

    def test_bucket_edges_are_inclusive_upper(self):
        histogram = Histogram("h", bounds=(10.0, 100.0))
        histogram.record(10.0)
        histogram.record(10.1)
        assert histogram.counts == [1, 1, 0]

    def test_quantile_is_bucket_resolution(self):
        histogram = Histogram("h", bounds=(10.0, 100.0))
        for _ in range(99):
            histogram.record(5)
        histogram.record(1000)
        assert histogram.quantile(0.5) == 10.0
        assert histogram.quantile(1.0) == 1000  # overflow bucket → max
        assert Histogram("h").quantile(0.5) == 0.0

    def test_merge_requires_equal_bounds(self):
        a = Histogram("h", bounds=(1.0, 2.0))
        b = Histogram("h", bounds=(1.0, 3.0))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_record_many_empty_is_noop(self):
        histogram = Histogram("h")
        histogram.record_many([])
        assert histogram.count == 0 and histogram.min is None

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=2 * 10**9), max_size=200))
    def test_record_many_equals_per_sample_record(self, values):
        one_shot = Histogram("h")
        one_shot.record_many(values)
        looped = Histogram("h")
        for value in values:
            looped.record(value)
        assert one_shot.to_dict() == looped.to_dict()

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=2 * 10**9), max_size=200))
    def test_record_many_numpy_fast_path_equals_record(self, values):
        numpy = pytest.importorskip("numpy")
        one_shot = Histogram("h")
        one_shot.record_many(numpy.asarray(values, dtype=numpy.int64))
        looped = Histogram("h")
        for value in values:
            looped.record(value)
        assert one_shot.to_dict() == looped.to_dict()

    def test_record_many_numpy_out_of_range_falls_back(self):
        numpy = pytest.importorskip("numpy")
        histogram = Histogram("h", bounds=(10.0, 100.0))
        histogram.record_many(numpy.asarray([5, 2**41], dtype=numpy.int64))
        assert histogram.count == 2
        assert histogram.counts == [1, 0, 1]
        assert histogram.min == 5 and histogram.max == 2**41

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.lists(st.floats(min_value=0, max_value=1e9, allow_nan=False), max_size=30),
            min_size=3,
            max_size=3,
        )
    )
    def test_merge_is_associative(self, groups):
        def build(values):
            histogram = Histogram("h")
            for value in values:
                histogram.record(value)
            return histogram

        a1, b1, c1 = (build(group) for group in groups)
        a2, b2, c2 = (build(group) for group in groups)
        # (a ⊕ b) ⊕ c
        a1.merge(b1)
        a1.merge(c1)
        # a ⊕ (b ⊕ c)
        b2.merge(c2)
        a2.merge(b2)
        assert a1.counts == a2.counts
        assert a1.count == a2.count
        assert a1.min == a2.min and a1.max == a2.max
        assert a1.sum == pytest.approx(a2.sum)


class TestMetricsRegistry:
    def test_create_on_first_use_and_kind_mismatch(self):
        registry = MetricsRegistry()
        counter = registry.counter("x")
        assert registry.counter("x") is counter
        with pytest.raises(TypeError):
            registry.gauge("x")
        with pytest.raises(TypeError):
            registry.histogram("x")

    def test_merge_register_and_snapshot_roundtrip(self):
        a = MetricsRegistry()
        a.counter("runs").inc(3)
        a.gauge("rate").set(1.5)
        a.histogram("lat").record(500)
        b = MetricsRegistry.from_snapshot(a.snapshot())
        assert b.snapshot() == a.snapshot()
        a.merge(b)
        assert a.counter("runs").value == 6
        assert a.histogram("lat").count == 2

    def test_merge_accepts_snapshot_dicts(self):
        a = MetricsRegistry()
        a.counter("runs").inc(1)
        b = MetricsRegistry()
        b.counter("runs").inc(2)
        a.merge(b.snapshot())
        assert a.counter("runs").value == 3

    def test_merge_kind_conflict_raises(self):
        a = MetricsRegistry()
        a.counter("x").inc()
        b = MetricsRegistry()
        b.gauge("x").set(1.0)
        with pytest.raises(TypeError):
            a.merge(b)

    def test_merge_in_task_order_is_deterministic(self):
        # Simulates the executor: chunk snapshots merged in chunk order
        # give the same view as sequential accumulation.
        sequential = MetricsRegistry()
        chunks = []
        for chunk_index in range(4):
            chunk = MetricsRegistry()
            for value in range(chunk_index + 1):
                sequential.counter("n").inc()
                sequential.histogram("h").record(value * 1000)
                chunk.counter("n").inc()
                chunk.histogram("h").record(value * 1000)
            chunks.append(chunk.snapshot())
        merged = MetricsRegistry()
        for snapshot in chunks:
            merged.merge(snapshot)
        assert merged.snapshot() == sequential.snapshot()

    def test_pickle_roundtrip(self):
        registry = MetricsRegistry()
        registry.counter("runs").inc(2)
        registry.histogram("lat").record(123)
        clone = pickle.loads(pickle.dumps(registry))
        assert clone.snapshot() == registry.snapshot()

    def test_deterministic_snapshot_drops_perf_namespace(self):
        registry = MetricsRegistry()
        registry.counter("runs.completed").inc()
        registry.counter("perf.run.busy_ns").inc(10)
        registry.gauge("perf.run.steps_per_s").set(1.0)
        registry.histogram("perf.stage.sense.ns").record(5)
        registry.histogram("run.duration_s", bounds=(1.0,)).record(0.5)
        deterministic = registry.deterministic_snapshot()
        assert list(deterministic["counters"]) == ["runs.completed"]
        assert deterministic["gauges"] == {}
        assert list(deterministic["histograms"]) == ["run.duration_s"]


class TestExports:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("runs.completed").inc(4)
        registry.gauge("perf.run.steps_per_s").set(123.4)
        histogram = registry.histogram("perf.stage.sense.ns")
        for value in (800, 1500, 3e6, 2e9):
            histogram.record(value)
        return registry

    def test_prometheus_name_sanitizes(self):
        assert prometheus_name("perf.stage.sense.ns") == "repro_perf_stage_sense_ns"

    def test_prometheus_text_format(self):
        text = prometheus_text(self._registry())
        assert "# TYPE repro_runs_completed counter" in text
        assert "repro_runs_completed 4" in text
        assert "# TYPE repro_perf_stage_sense_ns histogram" in text
        assert 'repro_perf_stage_sense_ns_bucket{le="+Inf"} 4' in text
        assert "repro_perf_stage_sense_ns_count 4" in text
        # Bucket counts are cumulative: every value ≤ +Inf.
        bucket_counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_perf_stage_sense_ns_bucket")
        ]
        assert bucket_counts == sorted(bucket_counts)

    def test_write_prometheus_and_json(self, tmp_path):
        registry = self._registry()
        prom = tmp_path / "m.prom"
        write_prometheus(registry, str(prom))
        assert prom.read_text() == prometheus_text(registry)
        snapshot = tmp_path / "m.json"
        write_json_snapshot(registry, str(snapshot), extra={"runs": 4})
        payload = json.loads(snapshot.read_text())
        assert payload["runs"] == 4
        assert payload["counters"]["runs.completed"] == 4

    def test_summary_table(self):
        text = summary(self._registry(), title="unit")
        assert text.startswith("=== unit ===")
        assert "runs.completed" in text
        assert "perf.stage.sense.ns" in text
        assert "us" in text  # ns histograms scale to µs
        assert summary(MetricsRegistry()).endswith("(nothing recorded)")

    def test_default_ns_buckets_cover_1us_to_1s(self):
        assert NS_BUCKETS[0] == 1e3
        assert NS_BUCKETS[-1] == 1e9
        assert list(NS_BUCKETS) == sorted(NS_BUCKETS)

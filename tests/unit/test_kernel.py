"""Unit tests for the kernel step pipeline (context + pipeline mechanics)."""

import pytest

from repro.injection.engine import Simulation, SimulationConfig
from repro.kernel import PipelineStage, StepContext, StepPipeline
from repro.messaging.messages import CarState
from repro.sim.vehicle import ActuatorCommand


class _Recorder:
    def __init__(self, name, log):
        self.name = name
        self._log = log

    def run(self, ctx):
        self._log.append(self.name)


class TestStepPipeline:
    def make(self, log):
        return StepPipeline([_Recorder(n, log) for n in ("a", "b", "c")])

    def test_runs_stages_in_order(self):
        log = []
        pipeline = self.make(log)
        ctx = StepContext()
        pipeline.run_cycle(ctx)
        pipeline.run_cycle(ctx)
        assert log == ["a", "b", "c", "a", "b", "c"]

    def test_stage_names_and_lookup(self):
        pipeline = self.make([])
        assert pipeline.stage_names == ("a", "b", "c")
        assert pipeline.stage("b").name == "b"
        with pytest.raises(KeyError):
            pipeline.stage("nope")

    def test_empty_and_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            StepPipeline([])
        log = []
        with pytest.raises(ValueError):
            StepPipeline([_Recorder("a", log), _Recorder("a", log)])

    def test_inserted_splices_after_named_stage(self):
        log = []
        pipeline = self.make(log).inserted("b", _Recorder("x", log))
        assert pipeline.stage_names == ("a", "b", "x", "c")
        pipeline.run_cycle(StepContext())
        assert log == ["a", "b", "x", "c"]

    def test_replaced_swaps_stage(self):
        log = []
        pipeline = self.make(log).replaced("b", _Recorder("y", log))
        assert pipeline.stage_names == ("a", "y", "c")

    def test_inserted_unknown_anchor_raises(self):
        with pytest.raises(KeyError):
            self.make([]).inserted("zz", _Recorder("x", []))


class TestStepContext:
    def test_is_slotted_and_preallocated(self):
        ctx = StepContext()
        assert not hasattr(ctx, "__dict__")
        with pytest.raises(AttributeError):
            ctx.not_a_field = 1
        assert isinstance(ctx.car_state, CarState)
        assert isinstance(ctx.executed_command, ActuatorCommand)

    def test_initial_state(self):
        ctx = StepContext(cruise_speed=27.0)
        assert ctx.cruise_speed == 27.0
        assert ctx.lead is None and ctx.lead_gap is None
        assert not ctx.driver_engaged and not ctx.stop


class TestSimulationPipelineAssembly:
    def test_simulation_builds_the_eight_canonical_stages(self):
        sim = Simulation(SimulationConfig(scenario="S1", max_steps=10))
        from repro.analysis.metrics import RunResult

        result = RunResult(
            scenario="S1", initial_distance=70.0, attack_type=None,
            strategy="No-Attack", seed=0, driver_enabled=True, duration=0.0,
        )
        ctx, pipeline = sim.build_pipeline(result)
        assert pipeline.stage_names == (
            "sense", "perceive", "plan", "inject", "drive", "actuate", "detect", "record",
        )
        # The context is seeded with the initial world observation.
        assert ctx.lead_gap == pytest.approx(70.0)
        assert ctx.ego_speed == sim.world.ego.state.speed

    def test_context_objects_are_reused_across_cycles(self):
        sim = Simulation(SimulationConfig(scenario="S1", max_steps=10))
        from repro.analysis.metrics import RunResult

        result = RunResult(
            scenario="S1", initial_distance=70.0, attack_type=None,
            strategy="No-Attack", seed=0, driver_enabled=True, duration=0.0,
        )
        ctx, pipeline = sim.build_pipeline(result)
        car_state = ctx.car_state
        long_plan = ctx.long_plan
        executed = ctx.executed_command
        for _ in range(5):
            pipeline.run_cycle(ctx)
        assert ctx.car_state is car_state
        assert ctx.long_plan is long_plan
        assert ctx.executed_command is executed
        assert ctx.end_time == pytest.approx(0.05)


class TestContextSliceEntryPoints:
    """PipelineStage.run_batch / StepPipeline.run_cycle_batch contract."""

    class _Recording(PipelineStage):
        """Toy stage: records (stage name, context id) in a shared log."""

        def __init__(self, name, log):
            self.name = name
            self.log = log

        def run(self, ctx):
            self.log.append((self.name, id(ctx)))

    def test_default_run_batch_loops_run_over_the_slice(self):
        from repro.kernel import PipelineStage

        log = []

        class Stage(PipelineStage):
            name = "s"

            def run(self, ctx):
                log.append(id(ctx))

        contexts = [StepContext(), StepContext(), StepContext()]
        Stage().run_batch(contexts)
        assert log == [id(ctx) for ctx in contexts]

    def test_run_cycle_batch_walks_stage_columns(self):
        # Every stage must process the whole slice before the next stage.
        log = []
        pipeline = StepPipeline(
            [self._Recording("a", log), self._Recording("b", log)]
        )
        contexts = [StepContext(), StepContext()]
        pipeline.run_cycle_batch(contexts)
        assert log == [
            ("a", id(contexts[0])),
            ("a", id(contexts[1])),
            ("b", id(contexts[0])),
            ("b", id(contexts[1])),
        ]

    def test_run_cycle_batch_of_one_equals_run_cycle(self):
        # On a real simulation pipeline, a slice of one is exactly one cycle.
        first = Simulation(SimulationConfig(scenario="S1", max_steps=20, seed=3))
        second = Simulation(SimulationConfig(scenario="S1", max_steps=20, seed=3))
        result_a, ctx_a, pipe_a = first.prepare()
        result_b, ctx_b, pipe_b = second.prepare()
        for _ in range(20):
            pipe_a.run_cycle(ctx_a)
            pipe_b.run_cycle_batch([ctx_b])
        assert first.finalize(result_a, ctx_a) == second.finalize(result_b, ctx_b)

"""Unit tests for the canonical task fingerprint (repro.service.fingerprint).

The fingerprint is the run cache's key contract: equal tasks must hash
identically however they were constructed (scenario name vs resolved
spec, repeated strategy instances), every behavior-relevant field must
change the hash, and anything the canonical model cannot describe must
refuse loudly (→ cache bypass) instead of colliding silently.
"""

import pytest

from repro.core.attack_types import AttackType
from repro.core.strategies import (
    ContextAwareStrategy,
    NoAttackStrategy,
    RandomDurationStrategy,
    RandomStartDurationStrategy,
    RandomStartStrategy,
)
from repro.injection.engine import SimulationConfig
from repro.service.fingerprint import (
    FingerprintUnavailable,
    canonical_json,
    canonical_task,
    compute_code_epoch,
    fingerprint_task,
    register_strategy_fingerprint,
)

EPOCH = "test-epoch"


def _config(**overrides) -> SimulationConfig:
    values = dict(
        scenario="S1",
        initial_distance=70.0,
        seed=42,
        attack_type=AttackType.DECELERATION,
    )
    values.update(overrides)
    return SimulationConfig(**values)


class TestStability:
    def test_equal_tasks_hash_identically(self):
        a = fingerprint_task(_config(), RandomStartDurationStrategy(), code_epoch=EPOCH)
        b = fingerprint_task(_config(), RandomStartDurationStrategy(), code_epoch=EPOCH)
        assert a == b

    def test_scenario_name_and_resolved_spec_hash_identically(self):
        by_name = _config()
        by_spec = _config(scenario=by_name.build_scenario())
        strategy = ContextAwareStrategy()
        assert fingerprint_task(by_name, strategy, code_epoch=EPOCH) == fingerprint_task(
            by_spec, strategy, code_epoch=EPOCH
        )

    def test_canonical_json_round_trip_is_byte_stable(self):
        import json

        payload = canonical_task(_config(), ContextAwareStrategy())
        dumped = canonical_json(payload)
        assert canonical_json(json.loads(dumped)) == dumped

    def test_canonical_json_is_key_order_independent(self):
        payload = canonical_task(_config(), ContextAwareStrategy())
        reversed_payload = dict(reversed(list(payload.items())))
        assert canonical_json(reversed_payload) == canonical_json(payload)


class TestInvalidation:
    def test_seed_changes_the_fingerprint(self):
        s = ContextAwareStrategy()
        assert fingerprint_task(_config(seed=1), s, code_epoch=EPOCH) != fingerprint_task(
            _config(seed=2), s, code_epoch=EPOCH
        )

    def test_every_grid_dimension_changes_the_fingerprint(self):
        s = ContextAwareStrategy()
        base = fingerprint_task(_config(), s, code_epoch=EPOCH)
        for overrides in (
            {"scenario": "S2"},
            {"initial_distance": 50.0},
            {"attack_type": AttackType.ACCELERATION},
            {"driver_enabled": False},
            {"max_steps": 100},
            {"track_safety_margin": True},
        ):
            assert fingerprint_task(_config(**overrides), s, code_epoch=EPOCH) != base

    def test_strategy_class_and_parameters_change_the_fingerprint(self):
        base = fingerprint_task(_config(), RandomStartDurationStrategy(), code_epoch=EPOCH)
        other_class = fingerprint_task(_config(), RandomDurationStrategy(), code_epoch=EPOCH)
        other_params = fingerprint_task(
            _config(),
            RandomStartDurationStrategy(start_range=(1.0, 2.0)),
            code_epoch=EPOCH,
        )
        assert other_class != base
        assert other_params != base

    def test_code_epoch_invalidates(self):
        s = ContextAwareStrategy()
        assert fingerprint_task(_config(), s, code_epoch="a") != fingerprint_task(
            _config(), s, code_epoch="b"
        )

    def test_env_var_overrides_the_computed_epoch(self, monkeypatch):
        monkeypatch.setenv("REPRO_CODE_EPOCH", "pinned")
        assert compute_code_epoch() == "env:pinned"

    def test_default_epoch_derives_from_the_golden_fixture(self, monkeypatch):
        monkeypatch.delenv("REPRO_CODE_EPOCH", raising=False)
        assert compute_code_epoch().startswith("golden:")


class TestInertStrategies:
    def test_attack_free_run_hashes_by_strategy_name_only(self):
        config = _config(attack_type=None)
        token_none = canonical_task(config, None)["strategy"]
        token_noattack = canonical_task(config, NoAttackStrategy())["strategy"]
        assert token_none == token_noattack == {"inert": True, "name": NoAttackStrategy.name}

    def test_inert_strategies_with_different_names_differ(self):
        config = _config(attack_type=None)
        a = fingerprint_task(config, NoAttackStrategy(), code_epoch=EPOCH)
        b = fingerprint_task(config, None, code_epoch=EPOCH)
        c = fingerprint_task(config, ContextAwareStrategy(), code_epoch=EPOCH)
        assert a == b        # same name reaches the result either way
        assert c != a        # the result records a different strategy name


class TestRefusal:
    def test_unregistered_strategy_class_is_refused(self):
        class Custom(RandomStartStrategy):
            pass

        with pytest.raises(FingerprintUnavailable):
            fingerprint_task(_config(), Custom(), code_epoch=EPOCH)

    def test_registration_opts_a_custom_strategy_in(self):
        class Registered(RandomStartStrategy):
            pass

        register_strategy_fingerprint(Registered, ("start_range", "duration_range"))
        fp = fingerprint_task(_config(), Registered(), code_epoch=EPOCH)
        parent = fingerprint_task(_config(), RandomStartStrategy(), code_epoch=EPOCH)
        assert fp != parent  # class identity is always part of the token

    def test_table5_fixed_value_strategy_is_registered(self):
        from repro.experiments.table5 import ContextAwareFixedValueStrategy

        fixed = fingerprint_task(
            _config(), ContextAwareFixedValueStrategy(), code_epoch=EPOCH
        )
        strategic = fingerprint_task(_config(), ContextAwareStrategy(), code_epoch=EPOCH)
        assert fixed != strategic

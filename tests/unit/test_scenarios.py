"""Tests for the driving scenarios S1-S4."""

import pytest

from repro.sim.actors import LeadBehavior
from repro.sim.scenarios import INITIAL_DISTANCES, SCENARIOS, build_scenario
from repro.sim.units import mph_to_ms


class TestScenarioDefinitions:
    def test_all_four_scenarios_exist(self):
        assert set(SCENARIOS) == {"S1", "S2", "S3", "S4"}

    def test_ego_cruises_at_60mph(self):
        for scenario in SCENARIOS.values():
            assert scenario.ego_initial_speed == pytest.approx(mph_to_ms(60.0))
            assert scenario.cruise_speed == pytest.approx(mph_to_ms(60.0))

    def test_s1_lead_cruises_at_35mph(self):
        s1 = SCENARIOS["S1"]
        assert s1.lead_behavior is LeadBehavior.CRUISE
        assert s1.lead_initial_speed == pytest.approx(mph_to_ms(35.0))

    def test_s2_lead_cruises_at_50mph(self):
        assert SCENARIOS["S2"].lead_initial_speed == pytest.approx(mph_to_ms(50.0))

    def test_s3_lead_decelerates_50_to_35(self):
        s3 = SCENARIOS["S3"]
        assert s3.lead_behavior is LeadBehavior.DECELERATE
        assert s3.lead_initial_speed == pytest.approx(mph_to_ms(50.0))
        assert s3.lead_target_speed == pytest.approx(mph_to_ms(35.0))

    def test_s4_lead_accelerates_35_to_50(self):
        s4 = SCENARIOS["S4"]
        assert s4.lead_behavior is LeadBehavior.ACCELERATE
        assert s4.lead_initial_speed == pytest.approx(mph_to_ms(35.0))
        assert s4.lead_target_speed == pytest.approx(mph_to_ms(50.0))

    def test_paper_initial_distances(self):
        assert INITIAL_DISTANCES == (50.0, 70.0, 100.0)

    def test_ego_starts_near_right_side(self):
        # The paper initialises the ego vehicle closer to the right guardrail.
        assert SCENARIOS["S1"].ego_initial_lane_offset < 0.0


class TestBuildScenario:
    def test_build_applies_initial_distance(self):
        scenario = build_scenario("S2", 100.0)
        assert scenario.initial_distance == 100.0
        assert scenario.name == "S2"

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError):
            build_scenario("S9")

    def test_invalid_distance_raises(self):
        with pytest.raises(ValueError):
            build_scenario("S1", -5.0)

    def test_with_initial_distance_returns_copy(self):
        base = SCENARIOS["S1"]
        modified = base.with_initial_distance(55.0)
        assert base.initial_distance != 55.0
        assert modified.initial_distance == 55.0

"""Tests for the service registry and message log."""

import pytest

from repro.messaging.log import MessageLog
from repro.messaging.messages import AlertEvent, CarState, GpsLocationExternal
from repro.messaging.services import SERVICE_LIST, service_for, validate_payload


class TestServiceRegistry:
    def test_paper_eavesdropping_services_exist(self):
        # The three services the attack subscribes to (Section III-C).
        for name in ("gpsLocationExternal", "modelV2", "radarState"):
            assert name in SERVICE_LIST

    def test_service_for_returns_spec(self):
        spec = service_for("gpsLocationExternal")
        assert spec.payload_type is GpsLocationExternal
        assert spec.frequency_hz > 0

    def test_service_for_unknown_raises_with_known_names(self):
        with pytest.raises(KeyError) as excinfo:
            service_for("bogus")
        assert "radarState" in str(excinfo.value)

    def test_validate_payload_accepts_correct_type(self):
        validate_payload("carState", CarState())

    def test_validate_payload_rejects_wrong_type(self):
        with pytest.raises(TypeError):
            validate_payload("carState", AlertEvent(name="fcw", severity="critical"))


class TestMessageLog:
    def test_records_all_events(self, message_bus):
        log = MessageLog().attach(message_bus)
        message_bus.publish("carState", CarState())
        message_bus.publish("carState", CarState())
        assert len(log) == 2
        assert log.count("carState") == 2

    def test_service_filter(self, message_bus):
        log = MessageLog(services=["alertEvent"]).attach(message_bus)
        message_bus.publish("carState", CarState())
        message_bus.publish("alertEvent", AlertEvent(name="fcw", severity="critical"))
        assert len(log) == 1
        assert log.by_service("carState") == []
        assert log.count("alertEvent") == 1

    def test_last_returns_most_recent(self, message_bus):
        log = MessageLog().attach(message_bus)
        message_bus.publish("carState", CarState(v_ego=1.0))
        message_bus.publish("carState", CarState(v_ego=2.0))
        assert log.last("carState").data.v_ego == 2.0

    def test_last_none_when_empty(self, message_bus):
        log = MessageLog().attach(message_bus)
        assert log.last("carState") is None

    def test_iteration_in_publication_order(self, message_bus):
        log = MessageLog().attach(message_bus)
        message_bus.publish("carState", CarState(v_ego=1.0))
        message_bus.publish("gpsLocationExternal", GpsLocationExternal(speed=2.0))
        services = [event.service for event in log]
        assert services == ["carState", "gpsLocationExternal"]

    def test_clear(self, message_bus):
        log = MessageLog().attach(message_bus)
        message_bus.publish("carState", CarState())
        log.clear()
        assert len(log) == 0

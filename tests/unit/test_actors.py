"""Tests for the lead, follower and phase-scripted vehicles."""

import pytest

from repro.sim.actors import (
    FollowerVehicle,
    IdmParams,
    LaneChange,
    LeadBehavior,
    LeadVehicle,
    ManeuverPhase,
    ScriptedVehicle,
    behavior_profile,
)


class TestLeadVehicle:
    def test_cruise_holds_speed(self):
        lead = LeadVehicle(initial_s=100.0, initial_speed=15.0)
        for step in range(500):
            lead.step(time=step * 0.01)
        assert lead.state.speed == pytest.approx(15.0)
        assert lead.state.s == pytest.approx(100.0 + 15.0 * 5.0, rel=0.01)

    def test_decelerate_reaches_target_and_stops_there(self):
        lead = LeadVehicle(
            initial_s=0.0,
            initial_speed=22.0,
            behavior=LeadBehavior.DECELERATE,
            target_speed=15.0,
            speed_change_rate=1.0,
            speed_change_start=1.0,
        )
        for step in range(2000):
            lead.step(time=step * 0.01)
        assert lead.state.speed == pytest.approx(15.0, abs=0.02)

    def test_accelerate_reaches_target(self):
        lead = LeadVehicle(
            initial_s=0.0,
            initial_speed=15.0,
            behavior=LeadBehavior.ACCELERATE,
            target_speed=22.0,
            speed_change_rate=1.0,
            speed_change_start=1.0,
        )
        for step in range(2000):
            lead.step(time=step * 0.01)
        assert lead.state.speed == pytest.approx(22.0, abs=0.02)

    def test_no_change_before_start_time(self):
        lead = LeadVehicle(
            initial_s=0.0,
            initial_speed=22.0,
            behavior=LeadBehavior.DECELERATE,
            target_speed=15.0,
            speed_change_start=10.0,
        )
        for step in range(100):
            lead.step(time=step * 0.01)
        assert lead.state.speed == pytest.approx(22.0)

    def test_missing_target_speed_rejected(self):
        with pytest.raises(ValueError):
            LeadVehicle(0.0, 20.0, behavior=LeadBehavior.DECELERATE)

    def test_bumper_geometry(self):
        lead = LeadVehicle(initial_s=50.0, initial_speed=10.0, length=4.0)
        assert lead.front_s == pytest.approx(52.0)
        assert lead.rear_s == pytest.approx(48.0)


class TestFollowerVehicle:
    def test_keeps_distance_behind_steady_ego(self):
        follower = FollowerVehicle(initial_s=-50.0, initial_speed=24.0)
        ego_rear, ego_speed = 0.0, 20.0
        for step in range(6000):
            time = step * 0.01
            ego_rear += ego_speed * 0.01
            follower.step(time, ego_rear, ego_speed)
        gap = ego_rear - follower.front_s
        assert 5.0 < gap < 60.0
        assert follower.state.speed == pytest.approx(20.0, abs=1.0)

    def test_reacts_with_delay(self):
        follower = FollowerVehicle(initial_s=-60.0, initial_speed=20.0, reaction_delay=1.0)
        # One second of normal driving behind a moving ego...
        ego_rear = 0.0
        for step in range(100):
            ego_rear += 20.0 * 0.01
            follower.step(step * 0.01, ego_rear_s=ego_rear, ego_speed=20.0)
        speed_before_stop = follower.state.speed
        # ... then the ego suddenly stops: for the next ~half second the
        # follower is still acting on the old (moving) observation.
        for step in range(100, 150):
            follower.step(step * 0.01, ego_rear_s=ego_rear, ego_speed=0.0)
        assert follower.state.speed == pytest.approx(speed_before_stop, abs=1.0)

    def test_braking_bounded_by_max_decel(self):
        follower = FollowerVehicle(initial_s=-12.0, initial_speed=25.0, max_decel=6.0, reaction_delay=0.0)
        for step in range(200):
            follower.step(step * 0.01, ego_rear_s=0.0, ego_speed=0.0)
        assert follower.state.accel >= -6.0 - 1e-6

    def test_may_collide_with_suddenly_stopped_ego(self):
        # The A2 rear-end scenario: a close follower cannot always stop in time.
        follower = FollowerVehicle(initial_s=-8.0, initial_speed=25.0, reaction_delay=1.5)
        collided = False
        for step in range(1000):
            follower.step(step * 0.01, ego_rear_s=0.0, ego_speed=0.0)
            if follower.front_s >= 0.0:
                collided = True
                break
        assert collided


class TestScriptedVehicle:
    def test_empty_profile_cruises(self):
        vehicle = ScriptedVehicle(initial_s=10.0, initial_speed=20.0)
        for step in range(300):
            vehicle.step(time=step * 0.01)
        assert vehicle.state.speed == pytest.approx(20.0)
        assert vehicle.state.s == pytest.approx(10.0 + 20.0 * 3.0, rel=0.01)

    def test_multi_phase_stop_and_go(self):
        vehicle = ScriptedVehicle(
            initial_s=0.0,
            initial_speed=15.0,
            profile=(
                ManeuverPhase(start_time=1.0, target_speed=2.0, rate=2.0),
                ManeuverPhase(start_time=12.0, target_speed=15.0, rate=2.0),
            ),
        )
        speeds = {}
        for step in range(2200):
            time = step * 0.01
            vehicle.step(time)
            speeds[round(time, 2)] = vehicle.state.speed
        assert speeds[10.0] == pytest.approx(2.0)      # braked to the crawl
        assert speeds[21.99] == pytest.approx(15.0)    # recovered
        assert min(speeds.values()) >= 2.0 - 1e-9

    def test_phases_must_be_ordered(self):
        with pytest.raises(ValueError):
            ScriptedVehicle(
                0.0,
                10.0,
                profile=(
                    ManeuverPhase(start_time=5.0, target_speed=1.0),
                    ManeuverPhase(start_time=2.0, target_speed=3.0),
                ),
            )

    def test_phase_validation(self):
        with pytest.raises(ValueError):
            ManeuverPhase(start_time=0.0, target_speed=1.0, rate=0.0)
        with pytest.raises(ValueError):
            ManeuverPhase(start_time=0.0, target_speed=-1.0)
        with pytest.raises(ValueError):
            LaneChange(start_time=0.0, target_d=0.0, duration=0.0)

    def test_lane_change_reaches_target_smoothly(self):
        vehicle = ScriptedVehicle(
            initial_s=0.0,
            initial_speed=20.0,
            initial_d=3.6,
            lane_change=LaneChange(start_time=2.0, target_d=0.0, duration=3.0),
        )
        max_step = 0.0
        previous_d = vehicle.state.d
        for step in range(800):
            time = step * 0.01
            vehicle.step(time)
            max_step = max(max_step, abs(vehicle.state.d - previous_d))
            previous_d = vehicle.state.d
        assert vehicle.state.d == pytest.approx(0.0, abs=1e-9)
        # Cosine blend: no lateral jump larger than ~2 cm per 10 ms step.
        assert max_step < 0.02

    def test_lane_change_holds_before_start(self):
        vehicle = ScriptedVehicle(
            0.0, 20.0, initial_d=3.6,
            lane_change=LaneChange(start_time=5.0, target_d=0.0, duration=2.0),
        )
        for step in range(400):
            vehicle.step(step * 0.01)
        assert vehicle.state.d == pytest.approx(3.6)


class TestBehaviorProfileEquivalence:
    """The legacy enum construction and an explicit one-phase profile must
    produce bit-identical trajectories (the S1-S4 compatibility guarantee)."""

    @pytest.mark.parametrize(
        "behavior,initial,target",
        [
            (LeadBehavior.CRUISE, 20.0, None),
            (LeadBehavior.DECELERATE, 22.352, 15.6464),
            (LeadBehavior.ACCELERATE, 15.6464, 22.352),
        ],
    )
    def test_enum_and_profile_step_identically(self, behavior, initial, target):
        legacy = LeadVehicle(
            initial_s=50.0,
            initial_speed=initial,
            behavior=behavior,
            target_speed=target,
            speed_change_rate=1.0,
            speed_change_start=12.0,
        )
        phased = ScriptedVehicle(
            initial_s=50.0,
            initial_speed=initial,
            profile=behavior_profile(behavior, target, 1.0, 12.0),
        )
        for step in range(5000):
            time = step * 0.01
            legacy.step(time)
            phased.step(time)
            assert legacy.state.speed == phased.state.speed  # bitwise
            assert legacy.state.s == phased.state.s
            assert legacy.state.accel == phased.state.accel

    def test_lead_vehicle_exposes_legacy_attributes(self):
        lead = LeadVehicle(0.0, 20.0, behavior=LeadBehavior.DECELERATE, target_speed=10.0)
        assert lead.behavior is LeadBehavior.DECELERATE
        assert lead.target_speed == 10.0
        assert lead.kind == "lead"
        assert len(lead.profile) == 1

    def test_missing_target_speed_still_rejected_via_profile_path(self):
        with pytest.raises(ValueError):
            behavior_profile(LeadBehavior.ACCELERATE, None)


class TestIdmCarFollowing:
    """The optional IDM mode: gap keeping without changing disabled actors."""

    def _drive(self, vehicle, leader, seconds=40.0):
        steps = int(seconds / 0.01)
        for step in range(steps):
            time = step * 0.01
            leader.step(time)
            vehicle.step(time, leader=leader)

    def test_disabled_idm_is_bit_identical_with_and_without_leader(self):
        leader = ScriptedVehicle(initial_s=30.0, initial_speed=10.0)
        with_leader = ScriptedVehicle(initial_s=0.0, initial_speed=20.0)
        without = ScriptedVehicle(initial_s=0.0, initial_speed=20.0)
        for step in range(3000):
            time = step * 0.01
            leader.step(time)
            with_leader.step(time, leader=leader)
            without.step(time)
            assert with_leader.state.speed == without.state.speed  # bitwise
            assert with_leader.state.s == without.state.s

    def test_disabled_idm_drives_through_slower_leader(self):
        """Documents the ROADMAP issue the IDM mode fixes."""
        leader = ScriptedVehicle(initial_s=30.0, initial_speed=5.0)
        chaser = ScriptedVehicle(initial_s=0.0, initial_speed=25.0)
        self._drive(chaser, leader, seconds=20.0)
        assert chaser.front_s > leader.rear_s  # overlapped / passed through

    def test_idm_keeps_gap_behind_slower_leader(self):
        leader = ScriptedVehicle(initial_s=30.0, initial_speed=5.0)
        chaser = ScriptedVehicle(initial_s=0.0, initial_speed=25.0, idm=IdmParams())
        min_gap_seen = float("inf")
        for step in range(4000):
            time = step * 0.01
            leader.step(time)
            chaser.step(time, leader=leader)
            min_gap_seen = min(min_gap_seen, leader.rear_s - chaser.front_s)
        assert min_gap_seen > 0.0  # never touches the leader
        # Converges towards the leader's speed at roughly the desired gap.
        assert chaser.state.speed == pytest.approx(leader.state.speed, abs=0.5)
        final_gap = leader.rear_s - chaser.front_s
        params = IdmParams()
        desired = params.min_gap + params.time_headway * chaser.state.speed
        assert final_gap == pytest.approx(desired, rel=0.5)

    def test_idm_respects_hard_brake_of_leader(self):
        leader = ScriptedVehicle(
            initial_s=40.0,
            initial_speed=20.0,
            profile=(ManeuverPhase(start_time=5.0, target_speed=0.0, rate=6.0),),
        )
        chaser = ScriptedVehicle(initial_s=0.0, initial_speed=20.0, idm=IdmParams())
        self._drive(chaser, leader, seconds=30.0)
        assert leader.state.speed == pytest.approx(0.0)
        assert leader.rear_s - chaser.front_s > 0.0
        assert chaser.state.speed == pytest.approx(0.0, abs=0.2)

    def test_idm_never_exceeds_profile_speed(self):
        """IDM only ever slows the script down (min composition)."""
        leader = ScriptedVehicle(initial_s=500.0, initial_speed=30.0)
        vehicle = ScriptedVehicle(
            initial_s=0.0,
            initial_speed=10.0,
            profile=(ManeuverPhase(start_time=0.0, target_speed=15.0, rate=2.0),),
            idm=IdmParams(),
        )
        self._drive(vehicle, leader, seconds=20.0)
        assert vehicle.state.speed <= 15.0 + 1e-12

    def test_idm_parameter_validation(self):
        with pytest.raises(ValueError):
            IdmParams(min_gap=0.0)
        with pytest.raises(ValueError):
            IdmParams(max_accel=-1.0)

    def test_world_passes_leader_to_idm_actors(self):
        from repro.messaging.bus import MessageBus
        from repro.can.bus import CANBus
        from repro.sim.scenarios import ActorSpec, build_scenario
        from repro.sim.world import World, WorldConfig
        from dataclasses import replace

        scenario = build_scenario("S1")
        # A fast chaser scripted 50 m ahead of the ego, IDM enabled via the
        # declarative ActorSpec: it must settle behind the scenario lead
        # instead of driving through it.
        spec = ActorSpec(
            initial_gap=50.0,
            initial_speed=30.0,
            lane=0,
            kind="chaser",
            idm=IdmParams(),
        )
        scenario = replace(scenario, actors=(spec,))
        world = World(WorldConfig(scenario=scenario), MessageBus(), CANBus())
        chaser = world.scripted_actors[0]
        assert chaser.idm is not None
        from repro.sim.vehicle import ActuatorCommand

        for _ in range(3000):
            world.step(ActuatorCommand())
        lead = world.scenario_lead
        assert lead.rear_s - chaser.front_s > 0.0

    def test_idm_gentle_scripted_stop_stays_gentle(self):
        """Over-speed braking towards the script target is bounded by
        comfortable_decel — a gentle scripted stop near a (receding)
        leader must not become an emergency brake."""
        leader = ScriptedVehicle(initial_s=100.0, initial_speed=20.0)
        vehicle = ScriptedVehicle(
            initial_s=0.0,
            initial_speed=20.0,
            profile=(ManeuverPhase(start_time=1.0, target_speed=0.0, rate=0.5),),
            idm=IdmParams(),
        )
        params = IdmParams()
        min_accel = 0.0
        for step in range(4000):
            time = step * 0.01
            leader.step(time)
            vehicle.step(time, leader=leader)
            min_accel = min(min_accel, vehicle.state.accel)
        assert vehicle.state.speed == pytest.approx(0.0, abs=0.05)
        assert min_accel >= -(params.comfortable_decel + 0.5)

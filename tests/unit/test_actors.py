"""Tests for the lead and follower vehicles."""

import pytest

from repro.sim.actors import FollowerVehicle, LeadBehavior, LeadVehicle


class TestLeadVehicle:
    def test_cruise_holds_speed(self):
        lead = LeadVehicle(initial_s=100.0, initial_speed=15.0)
        for step in range(500):
            lead.step(time=step * 0.01)
        assert lead.state.speed == pytest.approx(15.0)
        assert lead.state.s == pytest.approx(100.0 + 15.0 * 5.0, rel=0.01)

    def test_decelerate_reaches_target_and_stops_there(self):
        lead = LeadVehicle(
            initial_s=0.0,
            initial_speed=22.0,
            behavior=LeadBehavior.DECELERATE,
            target_speed=15.0,
            speed_change_rate=1.0,
            speed_change_start=1.0,
        )
        for step in range(2000):
            lead.step(time=step * 0.01)
        assert lead.state.speed == pytest.approx(15.0, abs=0.02)

    def test_accelerate_reaches_target(self):
        lead = LeadVehicle(
            initial_s=0.0,
            initial_speed=15.0,
            behavior=LeadBehavior.ACCELERATE,
            target_speed=22.0,
            speed_change_rate=1.0,
            speed_change_start=1.0,
        )
        for step in range(2000):
            lead.step(time=step * 0.01)
        assert lead.state.speed == pytest.approx(22.0, abs=0.02)

    def test_no_change_before_start_time(self):
        lead = LeadVehicle(
            initial_s=0.0,
            initial_speed=22.0,
            behavior=LeadBehavior.DECELERATE,
            target_speed=15.0,
            speed_change_start=10.0,
        )
        for step in range(100):
            lead.step(time=step * 0.01)
        assert lead.state.speed == pytest.approx(22.0)

    def test_missing_target_speed_rejected(self):
        with pytest.raises(ValueError):
            LeadVehicle(0.0, 20.0, behavior=LeadBehavior.DECELERATE)

    def test_bumper_geometry(self):
        lead = LeadVehicle(initial_s=50.0, initial_speed=10.0, length=4.0)
        assert lead.front_s == pytest.approx(52.0)
        assert lead.rear_s == pytest.approx(48.0)


class TestFollowerVehicle:
    def test_keeps_distance_behind_steady_ego(self):
        follower = FollowerVehicle(initial_s=-50.0, initial_speed=24.0)
        ego_rear, ego_speed = 0.0, 20.0
        for step in range(6000):
            time = step * 0.01
            ego_rear += ego_speed * 0.01
            follower.step(time, ego_rear, ego_speed)
        gap = ego_rear - follower.front_s
        assert 5.0 < gap < 60.0
        assert follower.state.speed == pytest.approx(20.0, abs=1.0)

    def test_reacts_with_delay(self):
        follower = FollowerVehicle(initial_s=-60.0, initial_speed=20.0, reaction_delay=1.0)
        # One second of normal driving behind a moving ego...
        ego_rear = 0.0
        for step in range(100):
            ego_rear += 20.0 * 0.01
            follower.step(step * 0.01, ego_rear_s=ego_rear, ego_speed=20.0)
        speed_before_stop = follower.state.speed
        # ... then the ego suddenly stops: for the next ~half second the
        # follower is still acting on the old (moving) observation.
        for step in range(100, 150):
            follower.step(step * 0.01, ego_rear_s=ego_rear, ego_speed=0.0)
        assert follower.state.speed == pytest.approx(speed_before_stop, abs=1.0)

    def test_braking_bounded_by_max_decel(self):
        follower = FollowerVehicle(initial_s=-12.0, initial_speed=25.0, max_decel=6.0, reaction_delay=0.0)
        for step in range(200):
            follower.step(step * 0.01, ego_rear_s=0.0, ego_speed=0.0)
        assert follower.state.accel >= -6.0 - 1e-6

    def test_may_collide_with_suddenly_stopped_ego(self):
        # The A2 rear-end scenario: a close follower cannot always stop in time.
        follower = FollowerVehicle(initial_s=-8.0, initial_speed=25.0, reaction_delay=1.5)
        collided = False
        for step in range(1000):
            follower.step(step * 0.01, ego_rear_s=0.0, ego_speed=0.0)
            if follower.front_s >= 0.0:
                collided = True
                break
        assert collided

"""Property-based tests for vehicle dynamics, Kalman filter and corruption."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adas.limits import ISO_SAFETY_LIMITS, OPENPILOT_LIMITS
from repro.core.attack_types import AttackType, spec_for
from repro.core.corruption import CorruptionMode, ValueCorruptor
from repro.core.kalman import ScalarKalmanFilter
from repro.sim.road import Road, RoadSpec
from repro.sim.vehicle import ActuatorCommand, EgoVehicle


class TestVehicleInvariants:
    @settings(max_examples=30, deadline=None)
    @given(
        st.floats(min_value=0.0, max_value=35.0),
        st.floats(min_value=0.0, max_value=4.0),
        st.floats(min_value=0.0, max_value=8.0),
        st.floats(min_value=-45.0, max_value=45.0),
        st.integers(min_value=1, max_value=300),
    )
    def test_speed_never_negative_and_accel_bounded(self, v0, accel, brake, steer, steps):
        ego = EgoVehicle(Road(RoadSpec()), initial_speed=v0)
        command = ActuatorCommand(accel=accel, brake=brake, steering_angle_deg=steer)
        for _ in range(steps):
            ego.step(command)
            assert ego.state.speed >= 0.0
            assert ego.params.max_decel_physical - 1e-6 <= ego.state.accel <= ego.params.max_accel_physical + 1e-6
            assert abs(ego.state.steering_wheel_deg) <= ego.params.max_steering_wheel_deg + 1e-6

    @settings(max_examples=30, deadline=None)
    @given(st.floats(min_value=5.0, max_value=35.0), st.integers(min_value=10, max_value=200))
    def test_arc_length_monotonically_increases_while_moving(self, v0, steps):
        ego = EgoVehicle(Road(RoadSpec()), initial_speed=v0)
        previous = ego.state.s
        for _ in range(steps):
            ego.step(ActuatorCommand())
            assert ego.state.s >= previous
            previous = ego.state.s


class TestKalmanInvariants:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=40.0), min_size=1, max_size=50))
    def test_estimate_stays_within_measurement_envelope(self, measurements):
        kf = ScalarKalmanFilter()
        for measurement in measurements:
            kf.update(measurement)
        low, high = min(measurements), max(measurements)
        assert low - 1e-6 <= kf.estimate <= high + 1e-6

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=40.0), min_size=2, max_size=50))
    def test_variance_positive_and_gain_in_unit_interval(self, measurements):
        kf = ScalarKalmanFilter()
        for measurement in measurements:
            kf.predict(0.0, 0.01) if kf.initialized else None
            kf.update(measurement)
            assert kf.variance > 0.0
            assert 0.0 <= kf.gain <= 1.0


class TestCorruptionInvariants:
    @settings(max_examples=60, deadline=None)
    @given(
        st.sampled_from(list(AttackType)),
        st.floats(min_value=0.0, max_value=2.0),
        st.floats(min_value=0.0, max_value=3.5),
        st.floats(min_value=-30.0, max_value=30.0),
        st.floats(min_value=0.0, max_value=33.0),
        st.sampled_from([-1, 0, 1]),
    )
    def test_strategic_corruption_never_exceeds_iso_limits(
        self, attack_type, accel, brake, steering, speed, direction
    ):
        corruptor = ValueCorruptor(CorruptionMode.STRATEGIC)
        corruptor.observe_speed(speed)
        spec = spec_for(attack_type)
        if spec.corrupts_steering and spec.steer_direction == 0 and direction == 0:
            direction = 1
        command = ActuatorCommand(accel=accel, brake=brake, steering_angle_deg=steering)
        result = corruptor.corrupt(command, spec, direction, steering, cruise_speed=26.82)
        # Corrupted channels always stay within the strategic (ISO) limits;
        # untouched channels keep their original (already limited) values.
        if spec.corrupt_accel:
            assert 0.0 <= result.accel <= ISO_SAFETY_LIMITS.accel_max + 1e-9
        if spec.corrupt_brake:
            assert 0.0 <= result.brake <= -ISO_SAFETY_LIMITS.brake_min + 1e-9
        assert abs(result.steering_angle_deg - steering) <= ISO_SAFETY_LIMITS.steer_delta_max_deg + 1e-9

    @settings(max_examples=60, deadline=None)
    @given(
        st.sampled_from(list(AttackType)),
        st.floats(min_value=-30.0, max_value=30.0),
        st.sampled_from([-1, 1]),
    )
    def test_fixed_corruption_respects_openpilot_steer_rate(self, attack_type, steering, direction):
        corruptor = ValueCorruptor(CorruptionMode.FIXED)
        spec = spec_for(attack_type)
        command = ActuatorCommand(accel=0.0, brake=0.0, steering_angle_deg=steering)
        result = corruptor.corrupt(command, spec, direction, steering, cruise_speed=26.82)
        assert abs(result.steering_angle_deg - steering) <= OPENPILOT_LIMITS.steer_delta_max_deg + 1e-9


class TestRoadInvariants:
    @settings(max_examples=50, deadline=None)
    @given(st.floats(min_value=0.0, max_value=2000.0))
    def test_curvature_bounded_and_nonnegative(self, s):
        road = Road(RoadSpec())
        assert 0.0 <= road.curvature(s) <= road.spec.curvature_max + 1e-12

    @settings(max_examples=50, deadline=None)
    @given(st.floats(min_value=0.0, max_value=1500.0), st.floats(min_value=0.0, max_value=1500.0))
    def test_heading_monotone_in_arc_length(self, s1, s2):
        road = Road(RoadSpec())
        low, high = sorted((s1, s2))
        assert road.heading(high) >= road.heading(low) - 1e-12

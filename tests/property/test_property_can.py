"""Property-based tests for the CAN substrate (checksums, signal packing)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.can.checksum import apply_checksum, honda_checksum, verify_checksum
from repro.can.dbc import Signal, _pack_field, _unpack_field
from repro.can.honda import HONDA_DBC
from repro.core.can_tamper import tamper_signal

payloads = st.binary(min_size=1, max_size=8)
addresses = st.integers(min_value=0, max_value=0x7FF)


class TestChecksumProperties:
    @given(addresses, payloads)
    def test_apply_then_verify_always_succeeds(self, address, data):
        fixed = apply_checksum(address, bytearray(data))
        assert verify_checksum(address, fixed)

    @given(addresses, payloads)
    def test_checksum_always_four_bits(self, address, data):
        assert 0 <= honda_checksum(address, data) <= 0xF

    @given(addresses, payloads, st.integers(0, 7), st.integers(1, 255))
    def test_flipping_a_byte_changes_or_preserves_validity_consistently(
        self, address, data, index, flip
    ):
        fixed = apply_checksum(address, bytearray(data))
        index = index % len(fixed)
        corrupted = bytearray(fixed)
        corrupted[index] ^= flip
        # Either detection (common case) or the flip cancelled in the 4-bit
        # sum; in both cases re-applying the checksum restores validity.
        assert verify_checksum(address, apply_checksum(address, bytearray(corrupted)))


class TestSignalPackingProperties:
    @given(
        st.integers(min_value=0, max_value=48),
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=0),
    )
    def test_pack_unpack_round_trip(self, offset, size, raw):
        raw = raw % (1 << size)
        data = bytearray(8)
        _pack_field(data, offset, size, raw)
        assert _unpack_field(bytes(data), offset, size) == raw

    @given(st.floats(min_value=-300.0, max_value=300.0, allow_nan=False))
    def test_steering_signal_round_trip_within_resolution(self, angle):
        signal = HONDA_DBC.message_by_name("STEERING_CONTROL").signals["STEER_ANGLE_CMD"]
        recovered = signal.to_physical(signal.to_raw(angle))
        assert abs(recovered - angle) <= signal.factor / 2 + 1e-9

    @given(st.floats(min_value=-10.0, max_value=10.0, allow_nan=False))
    def test_signed_signal_monotonic(self, value):
        signal = Signal("S", 0, 16, factor=0.01, is_signed=True)
        low = signal.to_physical(signal.to_raw(value))
        high = signal.to_physical(signal.to_raw(value + 1.0))
        assert high > low


class TestTamperProperties:
    @settings(max_examples=50)
    @given(
        st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
        st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
    )
    def test_tampered_frames_always_pass_checksum(self, original, injected):
        frame = HONDA_DBC.encode("STEERING_CONTROL", {"STEER_ANGLE_CMD": original})
        tampered = tamper_signal(frame, HONDA_DBC, {"STEER_ANGLE_CMD": injected})
        assert verify_checksum(tampered.address, tampered.data)
        decoded = HONDA_DBC.decode(tampered)
        assert abs(decoded["STEER_ANGLE_CMD"] - injected) <= 0.01

    @settings(max_examples=50)
    @given(st.floats(min_value=0.0, max_value=150.0, allow_nan=False),
           st.floats(min_value=0.0, max_value=150.0, allow_nan=False))
    def test_tampering_preserves_untouched_signals(self, accel, brake):
        frame = HONDA_DBC.encode(
            "ACC_CONTROL", {"ACCEL_COMMAND": accel, "BRAKE_COMMAND": brake, "ACC_ON": 1.0}
        )
        tampered = tamper_signal(frame, HONDA_DBC, {"ACCEL_COMMAND": 2.0})
        decoded = HONDA_DBC.decode(tampered)
        assert abs(decoded["BRAKE_COMMAND"] - min(brake, 327.675)) <= 0.01
        assert decoded["ACC_ON"] == 1.0

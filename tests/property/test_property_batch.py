"""Property-based tests for the dense batch path's divergence mask.

The SoA fast path in :mod:`repro.kernel.batch` is only sound because
any row can leave it at any cycle boundary (alert raised, driver
intervention, CAN transformer) and finish on the scalar stages.  These
tests pin that contract from the outside: for *arbitrary* mixes of
rows that stay dense and rows that demote mid-run, the batched results
must be bit-identical to running every task through the sequential
engine — no tolerance, ``RunResult.__eq__`` compares every field.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.attack_types import AttackType
from repro.core.strategies import strategy_by_name
from repro.injection.engine import SimulationConfig, run_simulation
from repro.kernel import BatchRunner, run_batched

_MAX_STEPS = 350

#: Attack rows demote mid-run (alerts and driver intervention); ``None``
#: rows ride the dense path end to end.  Mixing them in one batch is the
#: point of the property.
_ATTACK_POOL = (
    None,
    AttackType.DECELERATION,
    AttackType.ACCELERATION,
    AttackType.STEERING_LEFT,
    AttackType.ACCELERATION_STEERING,
)

_task_spec = st.tuples(
    st.sampled_from(_ATTACK_POOL),
    st.integers(min_value=0, max_value=7),   # seed
    st.sampled_from((50.0, 70.0)),           # initial distance
)


def _build_tasks(specs):
    tasks = []
    for attack, seed, distance in specs:
        config = SimulationConfig(
            scenario="S1",
            initial_distance=distance,
            seed=seed,
            attack_type=attack,
            max_steps=_MAX_STEPS,
        )
        strategy = strategy_by_name("Random-ST+DUR") if attack else None
        tasks.append((config, strategy))
    return tasks


class TestDivergenceMaskProperty:
    @settings(max_examples=8, deadline=None)
    @given(
        specs=st.lists(_task_spec, min_size=2, max_size=6),
        batch_size=st.integers(min_value=2, max_value=8),
    )
    def test_any_dense_demoted_mix_is_bit_identical_to_scalar(self, specs, batch_size):
        batched = run_batched(_build_tasks(specs), batch_size=batch_size)
        sequential = [
            run_simulation(config, strategy)
            for config, strategy in _build_tasks(specs)
        ]
        assert batched == sequential


class TestMidRunDemotionRegression:
    def test_alert_at_step_k_demotes_row_and_stays_identical(self):
        # A scheduled steering attack saturates the lateral controller
        # mid-run: the steerSaturated alert raises at some step k > 0,
        # and the row must leave the dense region at the next cycle top
        # while the rest of the batch stays dense — with results still
        # bit-identical to the sequential engine.
        attack_config = SimulationConfig(
            scenario="S1",
            initial_distance=70.0,
            seed=2022,
            attack_type=AttackType.STEERING_LEFT,
            max_steps=2000,
            # No driver takeover: the steering saturation persists until
            # the steerSaturated alert itself is what demotes the row.
            driver_enabled=False,
        )
        dense_configs = [
            SimulationConfig(
                scenario="S1", initial_distance=70.0, seed=seed, max_steps=2000
            )
            for seed in (0, 1, 2)
        ]

        def tasks():
            return [(attack_config, strategy_by_name("Context-Aware"))] + [
                (config, None) for config in dense_configs
            ]

        expected = [run_simulation(config, strategy) for config, strategy in tasks()]
        assert expected[0].alerts, "the attacked reference run must raise an alert"

        runner = BatchRunner(batch_size=4)
        demotions = []
        cycles = [0]
        original_cycle = runner._cycle
        original_demote = runner._demote

        def counting_cycle(active, stage_hists=None):
            cycles[0] += 1
            original_cycle(active, stage_hists)

        def recording_demote(active, position):
            demotions.append((cycles[0], active[position].index))
            original_demote(active, position)

        runner._cycle = counting_cycle
        runner._demote = recording_demote
        results = runner.run_tasks(tasks())

        assert results == expected
        attacked = [(cycle, idx) for cycle, idx in demotions if idx == 0]
        assert attacked, "the attacked row never left the dense path"
        cycle_of_demotion = attacked[0][0]
        assert 1 < cycle_of_demotion < cycles[0], (
            "demotion must happen mid-run, not at admission or retirement"
        )
        # The attack-free rows must have stayed dense to the end.
        assert all(idx == 0 for _, idx in demotions)

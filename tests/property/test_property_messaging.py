"""Property-based tests for the messaging bus and safety-limit algebra."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adas.limits import SafetyLimits
from repro.messaging.bus import MessageBus
from repro.messaging.messages import CarState


class TestBusProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=40.0), min_size=1, max_size=30))
    def test_conflated_subscriber_always_sees_last_message(self, speeds):
        bus = MessageBus()
        sub = bus.subscribe("carState", conflate=True)
        for speed in speeds:
            bus.publish("carState", CarState(v_ego=speed))
        assert sub.latest.data.v_ego == speeds[-1]
        assert len(sub.drain()) == 1

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=1, max_value=100))
    def test_sequence_numbers_dense_and_ordered(self, count):
        bus = MessageBus()
        sub = bus.subscribe("carState")
        for _ in range(count):
            bus.publish("carState", CarState())
        seqs = [event.seq for event in sub.drain()[-1024:]]
        assert seqs == sorted(seqs)
        assert bus.publication_count("carState") == count


class TestSafetyLimitProperties:
    limits_strategy = st.builds(
        SafetyLimits,
        accel_max=st.floats(min_value=0.5, max_value=5.0),
        brake_min=st.floats(min_value=-6.0, max_value=-0.5),
        steer_delta_max_deg=st.floats(min_value=0.05, max_value=2.0),
    )

    @settings(max_examples=80, deadline=None)
    @given(limits_strategy, st.floats(min_value=-20.0, max_value=20.0))
    def test_clamped_accel_never_violates(self, limits, accel):
        clamped = limits.clamp_accel(accel)
        assert limits.brake_min - 1e-9 <= clamped <= limits.accel_max + 1e-9

    @settings(max_examples=80, deadline=None)
    @given(limits_strategy, st.floats(min_value=-30.0, max_value=30.0))
    def test_clamped_steer_delta_never_violates(self, limits, delta):
        clamped = limits.clamp_steer_delta(delta)
        assert abs(clamped) <= limits.steer_delta_max_deg + 1e-9
        assert not limits.violates(0.0, 0.0, clamped)

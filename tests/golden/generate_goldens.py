"""Regenerate or check the golden-run fixture (``golden_runs.json``).

The fixture pins the exact :class:`~repro.analysis.metrics.RunResult` of
every catalog scenario (attack-free) and of one attacked S1 run per
attack type.  ``tests/integration/test_golden_equivalence.py`` compares
the current code against it, so any change to the control cycle that is
not bit-for-bit equivalent fails loudly.

Only regenerate deliberately — i.e. when a PR intentionally changes
simulation behaviour — and say so in the PR description::

    PYTHONPATH=src python tests/golden/generate_goldens.py

``--check`` regenerates into memory and diffs against the committed
fixture instead of writing, exiting non-zero on any divergence — CI's
golden-drift gate, which catches silent semantic drift even where no
golden *test* happens to read the diverging field::

    PYTHONPATH=src python tests/golden/generate_goldens.py --check
"""

import argparse
import json
import os
import sys

from repro.core.attack_types import AttackType
from repro.injection.engine import SimulationConfig, run_simulation
from repro.scenarios import CATALOG

GOLDEN_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)), "golden_runs.json")

#: Seed used for every golden run (arbitrary but fixed).
GOLDEN_SEED = 0
#: Attacked golden runs: the paper's S1 at its 70 m gap, Context-Aware.
ATTACK_SCENARIO = "S1"
ATTACK_DISTANCE = 70.0
ATTACK_STRATEGY = "Context-Aware"
ATTACK_SEED = 2022


def golden_configs():
    """Yield ``(key, SimulationConfig, strategy_name)`` for every golden run."""
    for name in CATALOG.names():
        yield (
            f"catalog/{name}",
            SimulationConfig(scenario=name, seed=GOLDEN_SEED),
            None,
        )
    for attack_type in AttackType:
        yield (
            f"attack/{attack_type.value}",
            SimulationConfig(
                scenario=ATTACK_SCENARIO,
                initial_distance=ATTACK_DISTANCE,
                seed=ATTACK_SEED,
                attack_type=attack_type,
            ),
            ATTACK_STRATEGY,
        )


def run_golden(config, strategy_name):
    from repro.core.strategies import strategy_by_name

    strategy = strategy_by_name(strategy_name) if strategy_name else None
    return run_simulation(config, strategy)


def regenerate():
    """Run every golden configuration and return ``{key: result_dict}``."""
    runs = {}
    for key, config, strategy_name in golden_configs():
        result = run_golden(config, strategy_name)
        runs[key] = result.to_dict()
        print(f"{key}: hazards={list(result.hazards)} accidents={list(result.accidents)} "
              f"alerts={len(result.alerts)} invasions={result.lane_invasions}")
    return runs


def check(runs) -> int:
    """Diff freshly regenerated ``runs`` against the committed fixture."""
    try:
        with open(GOLDEN_PATH) as handle:
            committed = json.load(handle)["runs"]
    except (OSError, ValueError, KeyError) as error:
        print(f"cannot read committed goldens at {GOLDEN_PATH}: {error}")
        return 1
    drifted = []
    for key in sorted(set(runs) | set(committed)):
        if key not in committed:
            drifted.append(f"{key}: new golden not in the committed fixture")
        elif key not in runs:
            drifted.append(f"{key}: committed golden no longer generated")
        elif runs[key] != committed[key]:
            fields = [
                field
                for field in sorted(set(runs[key]) | set(committed[key]))
                if runs[key].get(field) != committed[key].get(field)
            ]
            drifted.append(f"{key}: fields differ: {fields}")
    if drifted:
        print(f"GOLDEN DRIFT: {len(drifted)} run(s) diverge from the committed fixture:")
        for line in drifted:
            print(f"  {line}")
        print("If the behaviour change is intentional, regenerate with "
              "`PYTHONPATH=src python tests/golden/generate_goldens.py` and "
              "call it out in the PR description.")
        return 1
    print(f"OK: all {len(runs)} golden runs match the committed fixture")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="regenerate into memory and diff against the committed fixture "
        "(exit 1 on drift) instead of overwriting it",
    )
    args = parser.parse_args(argv)
    runs = regenerate()
    if args.check:
        return check(runs)
    with open(GOLDEN_PATH, "w") as handle:
        json.dump({"runs": runs}, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"wrote {len(runs)} golden runs to {GOLDEN_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Regenerate the golden-run fixture (``golden_runs.json``).

The fixture pins the exact :class:`~repro.analysis.metrics.RunResult` of
every catalog scenario (attack-free) and of one attacked S1 run per
attack type.  ``tests/integration/test_golden_equivalence.py`` compares
the current code against it, so any change to the control cycle that is
not bit-for-bit equivalent fails loudly.

Only regenerate deliberately — i.e. when a PR intentionally changes
simulation behaviour — and say so in the PR description::

    PYTHONPATH=src python tests/golden/generate_goldens.py
"""

import json
import os

from repro.core.attack_types import AttackType
from repro.injection.engine import SimulationConfig, run_simulation
from repro.scenarios import CATALOG

GOLDEN_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)), "golden_runs.json")

#: Seed used for every golden run (arbitrary but fixed).
GOLDEN_SEED = 0
#: Attacked golden runs: the paper's S1 at its 70 m gap, Context-Aware.
ATTACK_SCENARIO = "S1"
ATTACK_DISTANCE = 70.0
ATTACK_STRATEGY = "Context-Aware"
ATTACK_SEED = 2022


def golden_configs():
    """Yield ``(key, SimulationConfig, strategy_name)`` for every golden run."""
    for name in CATALOG.names():
        yield (
            f"catalog/{name}",
            SimulationConfig(scenario=name, seed=GOLDEN_SEED),
            None,
        )
    for attack_type in AttackType:
        yield (
            f"attack/{attack_type.value}",
            SimulationConfig(
                scenario=ATTACK_SCENARIO,
                initial_distance=ATTACK_DISTANCE,
                seed=ATTACK_SEED,
                attack_type=attack_type,
            ),
            ATTACK_STRATEGY,
        )


def run_golden(config, strategy_name):
    from repro.core.strategies import strategy_by_name

    strategy = strategy_by_name(strategy_name) if strategy_name else None
    return run_simulation(config, strategy)


def main() -> None:
    runs = {}
    for key, config, strategy_name in golden_configs():
        result = run_golden(config, strategy_name)
        runs[key] = result.to_dict()
        print(f"{key}: hazards={list(result.hazards)} accidents={list(result.accidents)} "
              f"alerts={len(result.alerts)} invasions={result.lane_invasions}")
    with open(GOLDEN_PATH, "w") as handle:
        json.dump({"runs": runs}, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"wrote {len(runs)} golden runs to {GOLDEN_PATH}")


if __name__ == "__main__":
    main()

"""Integration tests for the budgeted search driver.

Pins the subsystem's contracts: bit-identical search trajectories across
sequential, process-pool and lockstep-batched evaluation; memoization
(no duplicate simulation of repeated proposals); checkpoint/resume
reproducing the uninterrupted run; and the acceptance benchmark — on a
pinned seeded case every adaptive optimizer finds a hazard-inducing
attack point in fewer simulator evaluations than the exhaustive grid.
"""

import json

import pytest

from repro.core.attack_types import AttackType
from repro.search.driver import SearchConfig, SearchDriver, point_seed
from repro.search.objectives import HazardObjective
from repro.search.optimizers import Optimizer, make_optimizer
from repro.search.space import attack_search_space

PINNED_SEED = 2022


def _space(max_steps=1500):
    return attack_search_space(
        scenario="S1", attack_types=(AttackType.DECELERATION,), max_steps=max_steps
    )


def _factory(name, generation_size=4, **kwargs):
    return lambda space: make_optimizer(
        name, space, seed=PINNED_SEED, generation_size=generation_size, **kwargs
    )


def _signature(result):
    """Everything that must be identical across evaluation modes."""
    return (
        [(e.index, e.generation, e.point, e.score) for e in result.evaluations],
        [(g.points, g.scores, g.memo_hits) for g in result.trail],
        None if result.best is None else (result.best.point, result.best.score),
        result.first_hazard_evaluation,
    )


class TestExecutionModeEquivalence:
    def test_sequential_workers_and_batched_agree(self):
        signatures = {}
        for label, extra in (
            ("sequential", {}),
            ("workers", {"workers": 4}),
            ("batched", {"batch_size": 8}),
        ):
            config = SearchConfig(budget=8, master_seed=PINNED_SEED, **extra)
            result = SearchDriver(
                _space(max_steps=1200), HazardObjective(), _factory("random"), config
            ).run()
            signatures[label] = _signature(result)
        assert signatures["sequential"] == signatures["workers"]
        assert signatures["sequential"] == signatures["batched"]

    def test_point_seeds_are_order_independent(self):
        space = _space()
        point = space.quantize((0.3, 0.6, 0.9))
        key = space.key(point)
        assert point_seed(7, key, 0) == point_seed(7, key, 0)
        assert point_seed(7, key, 0) != point_seed(7, key, 1)
        assert point_seed(7, key, 0) != point_seed(8, key, 0)


class _RepeatOptimizer(Optimizer):
    """Asks the same three points every generation (memo stress)."""

    name = "repeat"

    def ask(self):
        return [
            self.space.quantize((0.2, 0.9, 0.9)),
            self.space.quantize((0.5, 0.9, 0.9)),
            self.space.quantize((0.2, 0.9, 0.9)),  # duplicate inside the generation
        ]

    def tell(self, told):
        pass


class TestMemoization:
    def test_repeated_points_are_never_resimulated(self):
        config = SearchConfig(
            budget=10, master_seed=PINNED_SEED, max_stalled_generations=2
        )
        result = SearchDriver(
            _space(max_steps=1200),
            HazardObjective(),
            lambda space: _RepeatOptimizer(space),
            config,
        ).run()
        # Two unique points exist; only those were ever simulated.
        assert result.evaluations_used == 2
        assert result.simulations_run == 2
        # The first generation evaluated both fresh; later generations
        # were pure memo hits until the stall guard stopped the loop.
        assert result.trail[0].memo_hits == [False, False, True]
        for record in result.trail[1:]:
            assert record.memo_hits == [True, True, True]

    def test_repetitions_multiply_simulations_not_evaluations(self):
        config = SearchConfig(
            budget=2, repetitions=3, master_seed=PINNED_SEED,
            max_stalled_generations=1,
        )
        result = SearchDriver(
            _space(max_steps=800),
            HazardObjective(),
            lambda space: _RepeatOptimizer(space),
            config,
        ).run()
        assert result.evaluations_used == 2
        assert result.simulations_run == 6
        for evaluation in result.evaluations:
            assert len(evaluation.repetitions) == 3
            seeds = [outcome.seed for outcome in evaluation.repetitions]
            assert len(set(seeds)) == 3


class TestCheckpointResume:
    def test_resume_reproduces_the_uninterrupted_run(self, tmp_path):
        checkpoint = str(tmp_path / "search.json")
        objective = HazardObjective()

        uninterrupted = SearchDriver(
            _space(max_steps=1200), objective, _factory("cem"),
            SearchConfig(budget=10, master_seed=PINNED_SEED),
        ).run()

        # An interrupted run: half the budget, checkpointing as it goes.
        interrupted = SearchDriver(
            _space(max_steps=1200), objective, _factory("cem"),
            SearchConfig(budget=5, master_seed=PINNED_SEED, checkpoint_path=checkpoint),
        ).run()
        assert interrupted.evaluations_used == 5

        resumed = SearchDriver(
            _space(max_steps=1200), objective, _factory("cem"),
            SearchConfig(budget=10, master_seed=PINNED_SEED),
        ).run(resume_from=checkpoint)

        assert _signature(resumed) == _signature(uninterrupted)
        # The resumed run only paid for what the checkpoint did not cover.
        assert resumed.simulations_run == (
            uninterrupted.simulations_run - interrupted.simulations_run
        )

    def test_checkpoint_is_valid_json_with_point_keys(self, tmp_path):
        checkpoint = str(tmp_path / "search.json")
        SearchDriver(
            _space(max_steps=800), HazardObjective(), _factory("random"),
            SearchConfig(budget=3, master_seed=PINNED_SEED, checkpoint_path=checkpoint),
        ).run()
        with open(checkpoint) as handle:
            payload = json.load(handle)
        assert payload["master_seed"] == PINNED_SEED
        assert len(payload["evaluations"]) == 3
        for entry in payload["evaluations"]:
            assert all(isinstance(k, int) for k in entry["key"])

    def test_resume_rejects_mismatched_seed(self, tmp_path):
        checkpoint = str(tmp_path / "search.json")
        SearchDriver(
            _space(max_steps=800), HazardObjective(), _factory("random"),
            SearchConfig(budget=2, master_seed=PINNED_SEED, checkpoint_path=checkpoint),
        ).run()
        driver = SearchDriver(
            _space(max_steps=800), HazardObjective(), _factory("random"),
            SearchConfig(budget=2, master_seed=PINNED_SEED + 1),
        )
        with pytest.raises(ValueError):
            driver.run(resume_from=checkpoint)

    def test_resume_rejects_a_differently_shaped_space(self, tmp_path):
        # Same space name family, different decode mapping: the grid keys
        # would decode to different parameter values, so resume must
        # refuse instead of serving wrong cached scores.
        checkpoint = str(tmp_path / "search.json")
        SearchDriver(
            _space(max_steps=800), HazardObjective(), _factory("random"),
            SearchConfig(budget=2, master_seed=PINNED_SEED, checkpoint_path=checkpoint),
        ).run()
        for other in (
            _space(max_steps=1000),  # different simulation horizon
            attack_search_space(     # different parameter range
                scenario="S1", attack_types=(AttackType.DECELERATION,),
                max_steps=800, start_range=(2.0, 10.0),
            ),
        ):
            driver = SearchDriver(
                other, HazardObjective(), _factory("random"),
                SearchConfig(budget=2, master_seed=PINNED_SEED),
            )
            with pytest.raises(ValueError):
                driver.run(resume_from=checkpoint)


class TestStrategicBeatsExhaustive:
    """The acceptance benchmark: pinned case S1 + Deceleration."""

    @pytest.fixture(scope="class")
    def comparison(self):
        results = {}
        for name in ("grid", "random", "hill-climb", "cem"):
            kwargs = {"steps": 6} if name == "grid" else {}
            config = SearchConfig(
                budget=40, master_seed=PINNED_SEED, batch_size=8, stop_on_hazard=True
            )
            results[name] = SearchDriver(
                _space(max_steps=2500), HazardObjective(),
                _factory(name, generation_size=6, **kwargs), config,
            ).run()
        return results

    def test_every_optimizer_beats_the_grid(self, comparison):
        grid_evals = comparison["grid"].first_hazard_evaluation
        assert grid_evals is not None
        for name in ("random", "hill-climb", "cem"):
            found = comparison[name].first_hazard_evaluation
            assert found is not None, f"{name} found no hazard in budget"
            assert found < grid_evals, (
                f"{name} needed {found} evaluations, grid needed {grid_evals}"
            )

    def test_pinned_case_is_reproducible(self, comparison):
        rerun = SearchDriver(
            _space(max_steps=2500), HazardObjective(),
            _factory("cem", generation_size=6),
            SearchConfig(budget=40, master_seed=PINNED_SEED, batch_size=8,
                         stop_on_hazard=True),
        ).run()
        assert _signature(rerun) == _signature(comparison["cem"])

    def test_best_point_actually_induces_the_hazard(self, comparison):
        from repro.injection.engine import run_simulation
        from repro.search.space import with_safety_margin

        best = comparison["cem"].best
        assert best is not None and best.hazard_found
        space = _space(max_steps=2500)
        seed = best.repetitions[0].seed
        config, strategy = with_safety_margin(space.decode(best.point, seed))
        replayed = run_simulation(config, strategy)
        assert replayed.hazard_occurred
        assert replayed.hazards and best.repetitions[0].hazard

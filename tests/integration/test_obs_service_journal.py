"""Integration tests: the event journal across service, supervisor and cache.

The journal is the service's black box: every ``JobEvent`` is mirrored
as a ``job.*`` record, chunk dispatches bind the ``job_id → chunk_id``
correlation chain into the supervised back-end, cache traffic lands as
fingerprint-correlated ``cache.*`` records (bypasses carry the *reason*
at warning level), and folding the records back with ``replay_jobs``
reconstructs exactly what a live service observed — the property the
obs-smoke CI gate exercises across a real process kill.

pytest-asyncio is deliberately not a dependency: each test drives its
coroutine with ``asyncio.run`` from a plain sync function.
"""

import asyncio
from collections import Counter

from repro.core.attack_types import AttackType
from repro.injection.campaign import Campaign, CampaignConfig
from repro.obs.journal import EventJournal, job_event_stream, read_journal, replay_jobs
from repro.resilience.chaos import ChaosPolicy, FaultSpec
from repro.resilience.supervisor import SupervisionPolicy, run_supervised_campaign
from repro.service import CampaignJobSpec, CampaignService, RunCache

EPOCH = "obs-journal-test"


def _grid(repetitions=4, max_steps=150):
    return CampaignConfig(
        strategy_name="Context-Aware",
        scenarios=("S1",),
        initial_distances=(60.0,),
        attack_types=(AttackType.DECELERATION,),
        repetitions=repetitions,
        max_steps=max_steps,
    )


async def _run_jobs(service, specs):
    await service.start()
    jobs = [await service.submit(spec) for spec in specs]
    for job in jobs:
        await service.result(job)
    await service.stop()
    return jobs


class TestServiceJournal:
    def test_job_lifecycle_is_mirrored_and_replayable(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = EventJournal(path)
        service = CampaignService(journal=journal)
        asyncio.run(_run_jobs(service, [CampaignJobSpec(config=_grid(), chunk_runs=2)]))
        journal.close()

        records = read_journal(path)
        kinds = [r["kind"] for r in records if r["kind"].startswith("job.")]
        assert kinds == [
            "job.queued",
            "job.started",
            "job.progress",
            "job.progress",
            "job.completed",
        ]
        replay = replay_jobs(records)[0]
        assert replay.status == "completed"
        assert (replay.completed, replay.total, replay.chunks) == (4, 4, 2)

    def test_concurrent_jobs_keep_sequences_strictly_monotonic(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = EventJournal(path)
        service = CampaignService(concurrency=2, journal=journal)
        specs = [CampaignJobSpec(config=_grid(), chunk_runs=1) for _ in range(2)]
        asyncio.run(_run_jobs(service, specs))
        journal.close()

        records = read_journal(path)
        seqs = [r["seq"] for r in records]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        replays = replay_jobs(records)
        assert set(replays) == {0, 1}
        assert all(r.status == "completed" and r.completed == 4 for r in replays.values())

    def test_normalized_streams_of_identical_jobs_match(self, tmp_path):
        """Two executions of the same work journal the same job.* stream.

        This is the invariant the kill-and-replay smoke gate builds on:
        after stripping seq/ts, an interrupted journal must be a prefix
        of an uninterrupted one — which requires equal streams for equal
        completed work.
        """

        streams = []
        for name in ("a", "b"):
            path = str(tmp_path / f"journal-{name}.jsonl")
            journal = EventJournal(path)
            service = CampaignService(journal=journal)
            asyncio.run(
                _run_jobs(service, [CampaignJobSpec(config=_grid(), chunk_runs=2)])
            )
            journal.close()
            streams.append(job_event_stream(read_journal(path), job_id=0))
        assert streams[0] == streams[1]

    def test_failed_job_journals_the_error(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = EventJournal(path)
        service = CampaignService(journal=journal)

        def broken_factory():
            raise RuntimeError("factory exploded")

        async def scenario():
            await service.start()
            job = await service.submit(
                CampaignJobSpec(config=_grid(), strategy_factory=broken_factory)
            )
            try:
                await service.result(job)
            except RuntimeError:
                pass
            await service.stop()

        asyncio.run(scenario())
        journal.close()
        replay = replay_jobs(read_journal(path))[0]
        assert replay.status == "failed"
        assert "factory exploded" in replay.error
        failed = [r for r in read_journal(path) if r["kind"] == "job.failed"]
        assert failed and failed[0]["level"] == "error"


class TestCacheJournal:
    def test_cache_traffic_is_fingerprint_correlated(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = EventJournal(path)
        cache = RunCache(str(tmp_path / "cache"), code_epoch=EPOCH, journal=journal)
        grid = _grid(repetitions=2)
        Campaign(grid).run(cache=cache)  # cold: misses + writes
        Campaign(grid).run(cache=cache)  # warm: hits
        journal.close()

        records = read_journal(path)
        kinds = Counter(r["kind"] for r in records)
        assert kinds["cache.miss"] == 2 and kinds["cache.write"] == 2
        assert kinds["cache.hit"] == 2
        assert all(r.get("fingerprint") for r in records)

    def test_fingerprint_bypass_journals_the_reason_at_warning(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = EventJournal(path)
        cache = RunCache(str(tmp_path / "cache"), code_epoch=EPOCH, journal=journal)

        from repro.core.strategies import RandomStartStrategy
        from repro.injection.engine import SimulationConfig

        class UnknownStrategy(RandomStartStrategy):
            pass

        config = SimulationConfig(
            scenario="S1",
            initial_distance=60.0,
            seed=0,
            attack_type=AttackType.DECELERATION,
        )
        assert cache.fingerprint(config, UnknownStrategy()) is None
        journal.close()

        (record,) = read_journal(path)
        assert record["kind"] == "cache.bypass"
        assert record["level"] == "warning"
        assert "UnknownStrategy" in record["reason"]

    def test_corruption_quarantine_is_journaled(self, tmp_path):
        import glob
        import os

        path = str(tmp_path / "journal.jsonl")
        journal = EventJournal(path)
        cache = RunCache(str(tmp_path / "cache"), code_epoch=EPOCH, journal=journal)
        grid = _grid(repetitions=1)
        Campaign(grid).run(cache=cache)
        (blob,) = glob.glob(os.path.join(str(tmp_path / "cache"), "*", "*", "*.json.z"))
        with open(blob, "wb") as handle:
            handle.write(b"rotten")
        Campaign(grid).run(cache=cache)
        journal.close()

        corruptions = [
            r for r in read_journal(path) if r["kind"] == "cache.corruption"
        ]
        assert len(corruptions) == 1
        assert corruptions[0]["level"] == "warning"
        assert corruptions[0]["fingerprint"] in blob


class TestSupervisorJournal:
    def test_recovery_trail_is_journaled_with_bound_correlation(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = EventJournal(path)
        chaos = ChaosPolicy(
            faults=(
                FaultSpec(kind="error", task_index=1, times=1),
                FaultSpec(kind="crash", task_index=3, times=1),
            ),
            state_dir=str(tmp_path / "chaos"),
            seed=7,
        )
        outcome = run_supervised_campaign(
            Campaign(_grid(repetitions=6, max_steps=100)),
            policy=SupervisionPolicy(max_chunk_attempts=3, backoff_base=0.0),
            workers=2,
            chunk_size=2,
            chaos=chaos,
            journal=journal.bind(job_id=5, chunk_id=0),
        )
        journal.close()

        records = read_journal(path)
        kinds = Counter(r["kind"] for r in records)
        assert len(outcome.completed_results) == 6
        assert kinds["supervisor.retry"] == outcome.report.retries > 0
        assert kinds["supervisor.respawn"] == outcome.report.pool_respawns > 0
        assert all(r["job_id"] == 5 and r["chunk_id"] == 0 for r in records)

    def test_checkpoint_load_and_flush_are_journaled(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        checkpoint = str(tmp_path / "campaign.ckpt")
        campaign = Campaign(_grid(repetitions=4, max_steps=100))

        journal = EventJournal(path)
        run_supervised_campaign(
            campaign,
            workers=1,
            chunk_size=2,
            checkpoint_path=checkpoint,
            journal=journal,
        )
        run_supervised_campaign(  # resumes: everything restored from disk
            campaign,
            workers=1,
            chunk_size=2,
            checkpoint_path=checkpoint,
            journal=journal,
        )
        journal.close()

        records = read_journal(path)
        loads = [r for r in records if r["kind"] == "checkpoint.loaded"]
        flushes = [r for r in records if r["kind"] == "checkpoint.flush"]
        assert len(loads) == 2 and flushes
        assert loads[0]["restored"] == 0 and loads[1]["restored"] == 4

"""Integration test: CAN-level deployment of the attack engine.

Runs a closed-loop simulation where the attack is mounted as a CAN bus
man-in-the-middle (decode → corrupt → re-checksum), rather than as an ADAS
output hook, and checks it produces the same class of outcome.  Also checks
that every tampered frame would pass Panda's integrity check (valid
checksum) while staying within its rate/limit checks for strategic values.
"""


from repro.adas.openpilot import OpenPilot, OpenPilotConfig
from repro.adas.panda import PandaSafetyModel
from repro.analysis.hazards import HazardMonitor
from repro.can.bus import CANBus
from repro.can.checksum import verify_checksum
from repro.can.honda import ADDR
from repro.core.attack_engine import AttackEngine
from repro.core.attack_types import AttackType
from repro.core.can_tamper import CanAttackInterceptor
from repro.core.strategies import ContextAwareStrategy
from repro.messaging.bus import MessageBus
from repro.sim.scenarios import build_scenario
from repro.sim.world import World, WorldConfig


def run_can_level_attack(attack_type=AttackType.ACCELERATION, steps=3000, seed=1):
    message_bus = MessageBus()
    can_bus = CANBus()
    world = World(WorldConfig(scenario=build_scenario("S1", 50.0), seed=seed), message_bus, can_bus)
    openpilot = OpenPilot(OpenPilotConfig(), message_bus, can_bus)
    engine = AttackEngine(message_bus, attack_type, ContextAwareStrategy(), seed=seed)
    interceptor = CanAttackInterceptor(engine).attach(can_bus)
    panda = PandaSafetyModel()
    can_bus.add_tap(lambda frame: panda.check_frame(frame, world.time))
    monitor = HazardMonitor()

    checksums_valid = True
    def check_integrity(frame):
        nonlocal checksums_valid
        if frame.address in (ADDR["STEERING_CONTROL"], ADDR["ACC_CONTROL"]):
            checksums_valid &= verify_checksum(frame.address, frame.data)
    can_bus.add_tap(check_integrity)

    for _ in range(steps):
        time = world.time
        world.publish_sensors()
        world.publish_car_can()
        car_state = world.read_car_state()
        interceptor.observe_car_state(time, car_state)
        openpilot.step(time, car_state)
        result = world.step()
        for _event in monitor.check(world):
            engine.notify_hazard()
        if result.collision is not None:
            break
    return engine, monitor, panda, can_bus, checksums_valid


class TestCanLevelDeployment:
    def test_attack_activates_and_causes_hazard(self):
        engine, monitor, _panda, can_bus, _ok = run_can_level_attack()
        assert engine.record.activated
        assert monitor.any_hazard
        assert can_bus.tampered_count > 0

    def test_all_tampered_frames_pass_checksum(self):
        *_rest, checksums_valid = run_can_level_attack()
        assert checksums_valid

    def test_strategic_values_pass_panda_limit_checks(self):
        _engine, _monitor, panda, _bus, _ok = run_can_level_attack()
        # The strategic corruption stays within the Panda limit set, so the
        # only conceivable violations would be checksum ones — and there are
        # none, because the attacker recomputes them.
        assert panda.violation_count == 0

"""Integration tests for the campaign runner and the experiment harness."""


from repro.core.attack_types import AttackType
from repro.experiments import ExperimentScale, run_figure7, run_figure8, run_table4, run_table5
from repro.experiments.table4 import TABLE4_STRATEGIES
from repro.injection.campaign import Campaign, CampaignConfig


SMOKE = ExperimentScale.smoke()


class TestCampaign:
    def test_grid_enumeration_counts(self):
        config = CampaignConfig(
            scenarios=("S1", "S2"),
            initial_distances=(50.0, 70.0),
            attack_types=(AttackType.ACCELERATION,),
            repetitions=3,
        )
        cells = list(Campaign(config).cells())
        assert len(cells) == config.total_runs == 2 * 2 * 1 * 3

    def test_cell_seeds_unique_and_deterministic(self):
        config = CampaignConfig(repetitions=2, attack_types=(AttackType.ACCELERATION,))
        seeds_a = [cell.seed for cell in Campaign(config).cells()]
        seeds_b = [cell.seed for cell in Campaign(config).cells()]
        assert seeds_a == seeds_b
        assert len(set(seeds_a)) == len(seeds_a)

    def test_run_produces_results_for_every_cell(self):
        config = CampaignConfig(
            strategy_name="Context-Aware",
            scenarios=("S1",),
            initial_distances=(50.0,),
            attack_types=(AttackType.ACCELERATION, AttackType.STEERING_RIGHT),
            repetitions=1,
            max_steps=2500,
        )
        progress = []
        results = Campaign(config).run(progress=lambda done, total: progress.append((done, total)))
        assert len(results) == 2
        assert progress[-1] == (2, 2)
        assert all(result.strategy == "Context-Aware" for result in results)

    def test_attack_free_campaign(self):
        config = CampaignConfig(
            strategy_name="No-Attack",
            scenarios=("S1",),
            initial_distances=(70.0,),
            attack_types=(),
            repetitions=1,
            max_steps=2500,
        )
        results = Campaign(config).run()
        assert len(results) == 1
        assert results[0].attack_type is None


class TestExperimentHarness:
    def test_table4_smoke_grid(self):
        result = run_table4(SMOKE, strategies=TABLE4_STRATEGIES[-2:])  # Random-DUR + Context-Aware
        assert len(result.summaries) == 2
        context_aware = result.summary_for("Context-Aware")
        assert context_aware.runs == 6  # 1 scenario x 1 distance x 6 attack types x 1 rep
        assert "Context-Aware" in result.format()

    def test_table5_smoke_grid(self):
        result = run_table5(SMOKE)
        assert set(result.without_corruption) == {t.value for t in AttackType}
        assert set(result.with_corruption) == {t.value for t in AttackType}
        text = result.format()
        assert "With Strategic Value Corruption" in text

    def test_figure7_records_trajectory(self):
        result = run_figure7(seeds=[0])
        assert len(result.trajectory) > 100
        assert result.lane_invasions_per_second >= 0.0
        assert "Figure 7" in result.format()
        path = result.cartesian_path(resolution=5.0)
        assert len(path) == len(result.trajectory)

    def test_figure8_small_sweep(self):
        import numpy as np

        result = run_figure8(
            scenario="S1",
            initial_distance=50.0,
            start_times=np.array([5.0, 30.0]),
            durations=np.array([0.5, 2.5]),
            context_aware_seeds=[1],
        )
        assert len(result.random_points()) == 4
        assert len(result.context_aware_points()) >= 1
        assert all(point.hazard for point in result.context_aware_points())
        assert "critical start-time window" in result.format()

    def test_search_attack_reduced_comparison(self):
        from repro.experiments import run_search_attack

        result = run_search_attack(
            scenarios=("S1",),
            attack_types=(AttackType.STEERING_RIGHT,),
            methods=("random", "grid"),
            budget=12,
            max_steps=2000,
        )
        assert len(result.rows) == 2
        random_row = result.row_for("S1", "Steering-Right", "random")
        grid_row = result.row_for("S1", "Steering-Right", "grid")
        assert random_row.evaluations_to_first_hazard is not None
        assert grid_row.evaluations_used <= 12
        text = result.format()
        assert "Evals to 1st Hazard" in text
        assert "Steering-Right" in text

    def test_scale_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL_SCALE", "1")
        assert ExperimentScale.from_environment().repetitions == 20
        monkeypatch.delenv("REPRO_FULL_SCALE")
        assert ExperimentScale.from_environment(SMOKE).repetitions == SMOKE.repetitions

"""Shape checks of the paper's observations on a reduced grid.

These tests assert the qualitative findings (who wins, what is evaded, what
the driver can and cannot prevent) rather than absolute numbers; the full
quantitative comparison lives in EXPERIMENTS.md and the benchmark harness.
"""

import pytest

from repro.analysis.observations import (
    check_observation_1,
    check_observation_2,
    check_observation_5,
    format_observations,
)
from repro.analysis.results import summarize_by_attack_type, summarize_strategy
from repro.core.attack_types import AttackType
from repro.core.strategies import ContextAwareStrategy, RandomStartDurationStrategy
from repro.injection import SimulationConfig, run_simulation


REDUCED_GRID = [
    ("S1", 50.0, 1), ("S1", 70.0, 2), ("S2", 50.0, 1), ("S2", 70.0, 2),
]
STEERING_TYPES = (AttackType.STEERING_RIGHT, AttackType.ACCELERATION_STEERING)


def run_grid(strategy_factory, attack_types, driver=True, max_steps=3500):
    results = []
    for scenario, distance, seed in REDUCED_GRID:
        for attack_type in attack_types:
            cfg = SimulationConfig(
                scenario=scenario, initial_distance=distance, seed=seed,
                attack_type=attack_type, driver_enabled=driver, max_steps=max_steps,
            )
            results.append(run_simulation(cfg, strategy_factory()))
    return results


@pytest.fixture(scope="module")
def context_aware_results():
    return run_grid(ContextAwareStrategy, list(AttackType))


@pytest.fixture(scope="module")
def random_results():
    return run_grid(RandomStartDurationStrategy, list(AttackType))


@pytest.fixture(scope="module")
def attack_free_results():
    return [
        run_simulation(SimulationConfig(scenario=s, initial_distance=d, seed=seed, max_steps=5000))
        for s, d, seed in REDUCED_GRID
    ]


class TestObservation1:
    def test_lane_invasions_without_attacks(self, attack_free_results):
        check = check_observation_1(attack_free_results)
        assert check.holds, check.detail


class TestObservation2:
    def test_context_aware_beats_random_and_evades_alerts(
        self, context_aware_results, random_results
    ):
        context_aware = summarize_strategy("Context-Aware", context_aware_results)
        random_summary = summarize_strategy("Random-ST+DUR", random_results)
        check = check_observation_2(context_aware, [random_summary])
        assert check.holds, check.detail

    def test_fcw_never_fires_during_context_aware_attacks(self, context_aware_results):
        fcw_alerts = [
            alert for result in context_aware_results for alert, _time in result.alerts
            if alert == "fcw"
        ]
        assert fcw_alerts == []


class TestObservation5:
    def test_steering_attacks_effective_and_unpreventable(self):
        with_driver = run_grid(ContextAwareStrategy, STEERING_TYPES, driver=True)
        without_driver = run_grid(ContextAwareStrategy, STEERING_TYPES, driver=False)
        summaries = summarize_by_attack_type(with_driver, without_driver)
        check = check_observation_5(summaries)
        assert check.holds, check.detail

    def test_steering_time_to_hazard_below_driver_reaction_time(self):
        results = run_grid(ContextAwareStrategy, (AttackType.STEERING_RIGHT,))
        tths = [r.time_to_hazard for r in results if r.time_to_hazard is not None]
        assert tths and max(tths) < 2.5


class TestReporting:
    def test_format_observations_lists_every_check(self, attack_free_results):
        check = check_observation_1(attack_free_results)
        text = format_observations([check])
        assert "Observation 1" in text
        assert ("HOLDS" in text) or ("DEVIATES" in text)

"""Integration tests for the asyncio campaign service.

The service front-end must change *scheduling*, never *results*: a job
executed through the queue is bit-identical to a direct run, concurrent
jobs genuinely interleave (observable through the service-wide event
sequence), partial results stream per chunk, a shared cache makes warm
jobs free, search jobs stream per-generation progress, and a failing
job reports ``failed`` without poisoning its neighbours.

pytest-asyncio is deliberately not a dependency: each test drives its
coroutine with ``asyncio.run`` from a plain sync function.
"""

import asyncio

import pytest

from repro.core.attack_types import AttackType
from repro.injection.campaign import Campaign, CampaignConfig
from repro.search.driver import SearchConfig, SearchDriver
from repro.search.objectives import HazardObjective
from repro.search.optimizers import make_optimizer
from repro.search.space import attack_search_space
from repro.service import (
    CampaignJobSpec,
    CampaignService,
    JobStatus,
    RunCache,
    SearchJobSpec,
)
from repro.telemetry import Telemetry, TelemetryConfig

EPOCH = "service-test"


def _grid(scenarios=("S1",), repetitions=2):
    return CampaignConfig(
        strategy_name="Context-Aware",
        scenarios=scenarios,
        initial_distances=(50.0, 70.0),
        attack_types=(AttackType.DECELERATION,),
        repetitions=repetitions,
        max_steps=1200,
    )


async def _collect(service, job):
    events = []
    async for event in service.events(job):
        events.append(event)
    return events


class TestCampaignJobs:
    def test_job_results_match_direct_run_and_stream_progress(self):
        async def scenario():
            service = CampaignService()
            await service.start()
            job = await service.submit(CampaignJobSpec(config=_grid(), chunk_runs=2))
            events = await _collect(service, job)
            results = await service.result(job)
            await service.stop()
            return job, events, results

        job, events, results = asyncio.run(scenario())
        assert job.status is JobStatus.COMPLETED
        assert results == Campaign(_grid()).run()
        assert job.partial_results == results
        kinds = [event.kind for event in events]
        assert kinds[0] == "queued" and kinds[1] == "started" and kinds[-1] == "completed"
        progress = [event.payload for event in events if event.kind == "progress"]
        assert [p["completed"] for p in progress] == [2, 4]
        assert all(p["total"] == _grid().total_runs for p in progress)

    def test_concurrent_jobs_interleave(self):
        """Two jobs on a concurrency-2 service must overlap in time.

        The service-wide event sequence makes this checkable: if job B's
        first progress event lands before job A's last, the seq ranges
        interleave instead of forming two disjoint blocks.
        """

        async def scenario():
            service = CampaignService(concurrency=2)
            await service.start()
            job_a = await service.submit(CampaignJobSpec(config=_grid(), chunk_runs=1))
            job_b = await service.submit(
                CampaignJobSpec(config=_grid(scenarios=("S2",)), chunk_runs=1)
            )
            events_a, events_b = await asyncio.gather(
                _collect(service, job_a), _collect(service, job_b)
            )
            results = (await service.result(job_a), await service.result(job_b))
            await service.stop()
            return events_a, events_b, results

        events_a, events_b, (results_a, results_b) = asyncio.run(scenario())
        assert results_a == Campaign(_grid()).run()
        assert results_b == Campaign(_grid(scenarios=("S2",))).run()
        span_a = (events_a[0].seq, events_a[-1].seq)
        span_b = (events_b[0].seq, events_b[-1].seq)
        assert span_a[0] < span_b[1] and span_b[0] < span_a[1], (
            f"jobs serialized: seq spans {span_a} and {span_b} do not overlap"
        )

    def test_serialized_queue_runs_jobs_in_submission_order(self):
        async def scenario():
            service = CampaignService(concurrency=1)
            await service.start()
            first = await service.submit(CampaignJobSpec(config=_grid()))
            second = await service.submit(CampaignJobSpec(config=_grid()))
            await service.result(first)
            await service.result(second)
            await service.stop()
            return first, second

        first, second = asyncio.run(scenario())
        assert first.status is second.status is JobStatus.COMPLETED
        assert first.result == second.result

    def test_failed_job_does_not_poison_the_queue(self):
        def exploding_factory():
            raise ValueError("strategy factory is broken")

        async def scenario():
            service = CampaignService()
            await service.start()
            bad = await service.submit(
                CampaignJobSpec(config=_grid(), strategy_factory=exploding_factory)
            )
            good = await service.submit(CampaignJobSpec(config=_grid()))
            bad_events = await _collect(service, bad)
            results = await service.result(good)
            with pytest.raises(RuntimeError):
                await service.result(bad)
            await service.stop()
            return bad, bad_events, results

        bad, bad_events, results = asyncio.run(scenario())
        assert bad.status is JobStatus.FAILED and bad.error
        assert bad_events[-1].kind == "failed"
        assert results == Campaign(_grid()).run()


class TestCachedJobs:
    def test_warm_job_is_served_from_the_cache(self, tmp_path):
        telemetry = Telemetry(TelemetryConfig())

        async def scenario():
            cache = RunCache(
                str(tmp_path / "cache"), telemetry=telemetry, code_epoch=EPOCH
            )
            service = CampaignService(cache=cache, telemetry=telemetry)
            await service.start()
            cold = await service.submit(CampaignJobSpec(config=_grid()))
            cold_results = await service.result(cold)
            warm = await service.submit(CampaignJobSpec(config=_grid()))
            warm_results = await service.result(warm)
            await service.stop()
            return cache, cold_results, warm_results

        cache, cold_results, warm_results = asyncio.run(scenario())
        assert cold_results == warm_results == Campaign(_grid()).run()
        total = _grid().total_runs
        assert cache.stats.misses == total      # the cold job only
        assert cache.stats.hits == total        # the warm job paid nothing
        counters = telemetry.snapshot()["counters"]
        assert counters["cache.hits"] == total
        assert counters["service.runs_served"] == 2 * total
        assert counters["service.jobs_completed"] == 2


class TestSearchJobs:
    def _spec(self):
        return SearchJobSpec(
            space=attack_search_space(
                scenario="S1",
                attack_types=(AttackType.DECELERATION,),
                max_steps=1200,
            ),
            objective=HazardObjective(),
            optimizer_factory=lambda space: make_optimizer(
                "random", space, seed=2022, generation_size=4
            ),
            config=SearchConfig(budget=8, master_seed=2022),
        )

    def test_search_job_streams_generations_and_matches_direct_run(self, tmp_path):
        async def scenario():
            cache = RunCache(str(tmp_path / "cache"), code_epoch=EPOCH)
            service = CampaignService(cache=cache)
            await service.start()
            job = await service.submit(self._spec())
            events = await _collect(service, job)
            result = await service.result(job)
            await service.stop()
            return cache, events, result

        cache, events, result = asyncio.run(scenario())
        spec = self._spec()
        direct = SearchDriver(
            spec.space, spec.objective, spec.optimizer_factory, spec.config
        ).run()
        assert [(e.index, e.point, e.score) for e in result.evaluations] == [
            (e.index, e.point, e.score) for e in direct.evaluations
        ]
        progress = [event.payload for event in events if event.kind == "progress"]
        assert len(progress) == len(result.trail)   # one event per generation
        assert progress[-1]["evaluations"] == result.evaluations_used
        assert cache.stats.misses == result.simulations_run

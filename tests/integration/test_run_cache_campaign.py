"""Cache-aware campaign and search execution must be invisible in results.

The acceptance property of the run cache is *bit-identity*: a cached
campaign (cold or warm, sequential, pooled or batched) returns exactly
the ``RunResult`` sequence of an uncached run — the cache only changes
what is paid.  A warm pass must pay zero simulations, supervised runs
must report cache hits distinctly from checkpoint loads, and a search
driver sharing the cache must follow the identical trajectory.
"""

from repro.core.attack_types import AttackType
from repro.injection.campaign import Campaign, CampaignConfig
from repro.search.driver import SearchConfig, SearchDriver
from repro.search.objectives import HazardObjective
from repro.search.optimizers import make_optimizer
from repro.search.space import attack_search_space
from repro.service.cache import RunCache

EPOCH = "campaign-cache-test"

GRID = CampaignConfig(
    strategy_name="Context-Aware",
    scenarios=("S1", "S2"),
    initial_distances=(50.0, 70.0),
    attack_types=(AttackType.ACCELERATION, AttackType.DECELERATION),
    repetitions=1,
    max_steps=1200,
)


def _cache(tmp_path, name="cache"):
    return RunCache(str(tmp_path / name), code_epoch=EPOCH)


class TestBitIdentity:
    def test_cached_equals_uncached_across_execution_modes(self, tmp_path):
        baseline = Campaign(GRID).run()
        for label, kwargs in (
            ("sequential", {}),
            ("workers", {"workers": 4}),
            ("batched", {"batch_size": 8}),
        ):
            cold = Campaign(GRID).run(cache=_cache(tmp_path, f"{label}-cold"), **kwargs)
            assert cold == baseline, f"cold {label} diverged"
        # Warm passes against one shared cache, again across all modes.
        shared = _cache(tmp_path, "shared")
        Campaign(GRID).run(cache=shared)
        for label, kwargs in (
            ("sequential", {}),
            ("workers", {"workers": 4}),
            ("batched", {"batch_size": 8}),
        ):
            warm = Campaign(GRID).run(cache=shared, **kwargs)
            assert warm == baseline, f"warm {label} diverged"

    def test_warm_pass_pays_zero_simulations(self, tmp_path):
        cache = _cache(tmp_path)
        Campaign(GRID).run(cache=cache)
        assert cache.stats.writes == GRID.total_runs
        warm_before = cache.stats.misses
        Campaign(GRID).run(cache=cache)
        assert cache.stats.misses == warm_before            # zero new misses
        assert cache.stats.hits == GRID.total_runs
        assert cache.stats.bypasses == 0

    def test_partial_cache_pays_only_the_difference(self, tmp_path):
        cache = _cache(tmp_path)
        half = CampaignConfig(
            strategy_name="Context-Aware",
            scenarios=("S1",),
            initial_distances=(50.0, 70.0),
            attack_types=(AttackType.ACCELERATION, AttackType.DECELERATION),
            repetitions=1,
            max_steps=1200,
        )
        Campaign(half).run(cache=cache)
        assert len(cache) == half.total_runs
        full = Campaign(GRID).run(cache=cache)
        assert full == Campaign(GRID).run()
        assert cache.stats.hits == half.total_runs          # S1 cells reused
        assert cache.stats.misses == GRID.total_runs        # cold half + first pass

    def test_progress_covers_hits_and_misses(self, tmp_path):
        cache = _cache(tmp_path)
        Campaign(GRID).run(cache=cache)
        calls = []
        Campaign(GRID).run(
            cache=cache, progress=lambda done, total: calls.append((done, total))
        )
        assert calls[-1] == (GRID.total_runs, GRID.total_runs)
        assert [done for done, _ in calls] == sorted(done for done, _ in calls)


class TestSupervisedCache:
    def test_supervised_warm_run_reports_cache_hits(self, tmp_path):
        from repro.resilience.supervisor import SupervisionPolicy

        cache = _cache(tmp_path)
        policy = SupervisionPolicy(max_chunk_attempts=2)
        baseline = Campaign(GRID).run()
        cold = Campaign(GRID).run_resilient(supervision=policy, cache=cache)
        assert cold.results == baseline
        assert cold.report.loaded_from_cache == 0
        warm = Campaign(GRID).run_resilient(supervision=policy, cache=cache)
        assert warm.results == baseline
        assert warm.report.loaded_from_cache == GRID.total_runs
        assert warm.report.sims_paid == 0
        assert "from cache" in warm.report.summary()


class TestSearchCache:
    def _driver(self, cache=None, **extra):
        config = SearchConfig(budget=8, master_seed=2022, **extra)
        return SearchDriver(
            attack_search_space(
                scenario="S1",
                attack_types=(AttackType.DECELERATION,),
                max_steps=1200,
            ),
            HazardObjective(),
            lambda space: make_optimizer("random", space, seed=2022, generation_size=4),
            config,
            run_cache=cache,
        )

    @staticmethod
    def _signature(result):
        return (
            [(e.index, e.generation, e.point, e.score) for e in result.evaluations],
            None if result.best is None else (result.best.point, result.best.score),
        )

    def test_search_trajectory_identical_with_and_without_cache(self, tmp_path):
        plain = self._driver().run()
        cached = self._driver(cache=_cache(tmp_path)).run()
        assert self._signature(cached) == self._signature(plain)
        assert cached.simulations_run == plain.simulations_run  # cold pays full price

    def test_warm_search_pays_zero_simulations(self, tmp_path):
        cache = _cache(tmp_path)
        cold = self._driver(cache=cache).run()
        assert cold.simulations_run > 0
        warm = self._driver(cache=cache).run()
        assert self._signature(warm) == self._signature(cold)
        assert warm.simulations_run == 0

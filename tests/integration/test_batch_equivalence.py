"""Bit-for-bit equivalence of lockstep batched execution.

The batch executor (:mod:`repro.kernel.batch`) interleaves many runs
through the kernel stage columns and replaces the per-run CAN
encode/decode round trips with vectorised codec passes.  These tests pin
the hard guarantee that makes that legal: batched results are **equal**
to sequential results —

* every golden run (all catalog scenarios attack-free plus one attacked
  S1 run per attack type) replays identically through ``batch_size`` 1,
  8, 64 and 256 — covering the scalar lockstep fallback, the fused codec
  path and the SoA dense column path at widths where the whole golden
  set rides in one batch;
* a sampled-family campaign produces identical results batched,
  sequential, and batched-inside-parallel-workers;
* the lockstep machinery itself (retirement, refill, progress, strategy
  isolation, shared kinematics) behaves as documented.
"""

import os
import sys

import numpy as np
import pytest

from repro.core.attack_types import AttackType
from repro.core.strategies import strategy_by_name
from repro.injection.campaign import Campaign, CampaignConfig
from repro.injection.engine import Simulation, SimulationConfig, run_simulation
from repro.kernel import BatchKinematics, BatchRunner, run_batched
from repro.kernel.batch import FUSED_MIN_ACTIVE
from repro.scenarios import ScenarioSampler

_GOLDEN_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), os.pardir, "golden"
)
sys.path.insert(0, _GOLDEN_DIR)

from generate_goldens import GOLDEN_PATH, golden_configs  # noqa: E402


@pytest.fixture(scope="module")
def golden_runs():
    import json

    with open(GOLDEN_PATH) as handle:
        return json.load(handle)["runs"]


def _golden_tasks():
    tasks = []
    keys = []
    for key, config, strategy_name in golden_configs():
        strategy = strategy_by_name(strategy_name) if strategy_name else None
        tasks.append((config, strategy))
        keys.append(key)
    return keys, tasks


class TestGoldenBatchEquivalence:
    @pytest.mark.parametrize("batch_size", [1, 8, 64, 256])
    def test_all_goldens_replay_through_batch_runner(self, batch_size, golden_runs):
        keys, tasks = _golden_tasks()
        results = run_batched(tasks, batch_size=batch_size)
        assert len(results) == len(keys)
        for key, result in zip(keys, results):
            assert result.to_dict() == golden_runs[key], (
                f"batched (batch_size={batch_size}) output diverged from golden for {key}"
            )


class TestSampledFamilyCampaignEquivalence:
    def _config(self, runs=24):
        sampler = ScenarioSampler(master_seed=99)
        return CampaignConfig(
            strategy_name="Context-Aware",
            scenarios=tuple(sampler.take(runs)),
            initial_distances=(None,),
            attack_types=(AttackType.DECELERATION,),
            repetitions=1,
            master_seed=99,
            max_steps=600,
        )

    def test_batched_equals_sequential_on_sampled_families(self):
        config = self._config(24)
        sequential = Campaign(config).run()
        batched = Campaign(config).run(batch_size=8)
        assert batched == sequential

    def test_batched_inside_parallel_workers_equals_sequential(self):
        config = self._config(16)
        sequential = Campaign(config).run()
        combined = Campaign(config).run(workers=2, batch_size=4)
        assert combined == sequential


class TestBatchRunnerMechanics:
    def _tasks(self, n, max_steps=400):
        return [
            (SimulationConfig(scenario="S1", initial_distance=70.0, seed=i, max_steps=max_steps), None)
            for i in range(n)
        ]

    def test_results_follow_task_order_with_mixed_lengths(self):
        # Attacked runs retire early (collision), attack-free run long:
        # results must still come back in task order.
        tasks = []
        for i, attack in enumerate(
            (None, AttackType.DECELERATION, None, AttackType.STEERING_LEFT)
        ):
            config = SimulationConfig(
                scenario="S1",
                initial_distance=70.0,
                seed=2022 + i,
                attack_type=attack,
                max_steps=1500,
            )
            strategy = strategy_by_name("Context-Aware") if attack else None
            tasks.append((config, strategy))
        expected = [
            run_simulation(c, strategy_by_name("Context-Aware") if c.attack_type else None)
            for c, _ in tasks
        ]
        results = run_batched(tasks, batch_size=2)
        assert results == expected

    def test_progress_reports_every_completion(self):
        calls = []
        run_batched(
            self._tasks(5, max_steps=120),
            batch_size=2,
            progress=lambda done, total: calls.append((done, total)),
        )
        assert calls == [(1, 5), (2, 5), (3, 5), (4, 5), (5, 5)]

    def test_shared_strategy_instance_is_rejected(self):
        strategy = strategy_by_name("Context-Aware")
        config = SimulationConfig(
            scenario="S1",
            initial_distance=70.0,
            seed=1,
            attack_type=AttackType.DECELERATION,
            max_steps=200,
        )
        with pytest.raises(ValueError, match="one strategy instance per"):
            run_batched([(config, strategy), (config, strategy)], batch_size=2)

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(ValueError):
            BatchRunner(batch_size=0)

    def test_kinematics_rows_match_context_values(self):
        runner = BatchRunner(batch_size=4)
        results = runner.run_tasks(self._tasks(4, max_steps=250))
        assert len(results) == 4
        kin = runner.kinematics
        # After the final cycle the rows hold the last active runs' state;
        # TTC/headway are derived on demand.
        assert kin.n >= 1
        kin.derive()
        assert np.all(np.isfinite(kin.ego_speed[: kin.n]))
        # S1 keeps a lead: gap/ttc/headway defined (ttc may be inf).
        assert np.all(np.isfinite(kin.lead_gap[: kin.n]))
        assert np.all(kin.headway[: kin.n] > 0.0)

    def test_kinematics_no_lead_rows_are_nan(self):
        kin = BatchKinematics(2)

        class Ctx:
            end_time = 1.0
            ego_s = 10.0
            ego_d = 0.0
            ego_speed = 20.0
            lead_gap = None
            lead_speed = None

        class CtxLead(Ctx):
            lead_gap = 40.0
            lead_speed = 15.0

        kin.refresh([Ctx(), CtxLead()])
        assert np.isnan(kin.ttc[0]) and np.isnan(kin.headway[0])
        assert kin.ttc[1] == 40.0 / 5.0
        assert kin.headway[1] == 40.0 / 20.0

    def test_transformer_on_bus_falls_back_to_scalar_stages(self):
        # A man-in-the-middle transformer makes the codec fast path
        # unsound; the runner must detect it and still produce the exact
        # sequential result through the scalar stages.
        config = SimulationConfig(scenario="S1", initial_distance=70.0, seed=5, max_steps=300)
        expected = run_simulation(config)

        runner = BatchRunner(batch_size=4)
        tampered = {}
        original_init = Simulation.__init__

        def patched_init(self, cfg, strategy=None):
            original_init(self, cfg, strategy)
            # Register a pass-through transformer: frames are unchanged,
            # but the bus can no longer be assumed codec-transparent.
            self.world.can_bus.add_transformer(lambda frame: None)
            tampered["done"] = True

        Simulation.__init__ = patched_init
        try:
            results = runner.run_tasks([(config, None)] * 4)
        finally:
            Simulation.__init__ = original_init
        assert tampered["done"]
        assert all(result == expected for result in results)

    def test_drained_batch_below_threshold_stays_identical(self):
        # Fewer tasks than the fused threshold: the scalar lockstep path.
        n = FUSED_MIN_ACTIVE - 1
        tasks = self._tasks(n, max_steps=300)
        expected = [run_simulation(c) for c, _ in tasks]
        assert run_batched(tasks, batch_size=8) == expected

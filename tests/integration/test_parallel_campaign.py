"""Determinism and plumbing of the parallel campaign executor.

The acceptance property of :mod:`repro.injection.executor` is that a
parallel campaign is indistinguishable from a sequential one: per-cell
seeds are derived from ``(master_seed, cell index)`` alone, so the same
``CampaignConfig`` must yield identical ``RunResult`` sequences whatever
the worker count or chunking.
"""


from repro.core.attack_types import AttackType
from repro.core.strategies import ContextAwareStrategy
from repro.injection.campaign import Campaign, CampaignConfig
from repro.injection.engine import SimulationConfig
from repro.injection.executor import ParallelCampaignRunner, run_simulations

REDUCED_GRID = CampaignConfig(
    strategy_name="Context-Aware",
    scenarios=("S1", "S2"),
    initial_distances=(50.0, 70.0),
    attack_types=(AttackType.ACCELERATION, AttackType.STEERING_RIGHT),
    repetitions=1,
    max_steps=1200,
)


class TestParallelDeterminism:
    def test_workers_1_vs_4_identical_results(self):
        sequential = Campaign(REDUCED_GRID).run(workers=1)
        parallel = Campaign(REDUCED_GRID).run(workers=4)
        assert len(sequential) == len(parallel) == REDUCED_GRID.total_runs
        for seq_run, par_run in zip(sequential, parallel):
            assert seq_run.seed == par_run.seed
            assert seq_run == par_run

    def test_chunk_size_does_not_change_results(self):
        runner_small = ParallelCampaignRunner(Campaign(REDUCED_GRID), workers=2, chunk_size=1)
        runner_large = ParallelCampaignRunner(Campaign(REDUCED_GRID), workers=2, chunk_size=5)
        assert runner_small.run() == runner_large.run()

    def test_parallel_flag_equivalent_to_workers(self):
        config = CampaignConfig(
            scenarios=("S1",),
            initial_distances=(70.0,),
            attack_types=(AttackType.DECELERATION,),
            repetitions=2,
            max_steps=800,
        )
        assert Campaign(config).run(parallel=True, workers=2) == Campaign(config).run()


class TestExecutorPlumbing:
    def test_progress_reaches_total_and_is_monotonic(self):
        calls = []
        Campaign(REDUCED_GRID).run(
            workers=3, progress=lambda done, total: calls.append((done, total))
        )
        assert calls[-1] == (REDUCED_GRID.total_runs, REDUCED_GRID.total_runs)
        assert [done for done, _ in calls] == sorted(done for done, _ in calls)

    def test_empty_campaign(self):
        config = CampaignConfig(scenarios=(), repetitions=1)
        assert Campaign(config).run(workers=4) == []

    def test_unpicklable_strategy_factory_works_with_fork(self):
        """Closures as factories must survive the fork-based pool."""
        campaign = Campaign(
            REDUCED_GRID, strategy_factory=lambda: ContextAwareStrategy(max_duration=8.0)
        )
        assert campaign.run(workers=2) == campaign.run()

    def test_run_simulations_order_and_determinism(self):
        tasks = [
            (
                SimulationConfig(
                    scenario="S1",
                    initial_distance=70.0,
                    seed=seed,
                    attack_type=AttackType.ACCELERATION,
                    max_steps=800,
                ),
                ContextAwareStrategy(),
            )
            for seed in (3, 1, 2)
        ]
        sequential = run_simulations(tasks, workers=1)
        parallel = run_simulations(tasks, workers=3)
        assert [run.seed for run in sequential] == [3, 1, 2]
        assert sequential == parallel

    def test_run_simulations_empty(self):
        assert run_simulations([], workers=4) == []

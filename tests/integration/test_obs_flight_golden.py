"""The flight-recorder tap must never change simulation results.

The tap rides inside the kernel's cycle loop (scalar delegation wrapper,
batched ``record`` stage hook), so the hard guarantee it must keep is
the same one the batch executor keeps: **bit-for-bit** golden equality
with capture enabled at full rate — for every golden run sequentially
and through the lockstep batch runner at widths covering the scalar
fallback and the dense SoA path.
"""

import json
import os
import sys

import pytest

from repro.core.strategies import strategy_by_name
from repro.injection.engine import run_simulation
from repro.kernel import run_batched
from repro.obs.recorder import FlightRecorderConfig

_GOLDEN_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), os.pardir, "golden"
)
sys.path.insert(0, _GOLDEN_DIR)

from generate_goldens import GOLDEN_PATH, golden_configs  # noqa: E402


@pytest.fixture(scope="module")
def golden_runs():
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)["runs"]


def _recorder(tmp_path) -> FlightRecorderConfig:
    # Full-rate capture, no flushing: the pure observation cost/effect.
    return FlightRecorderConfig(
        output_dir=str(tmp_path), capacity=256, capture_every=1, flush_on=()
    )


def _golden_tasks():
    tasks, keys = [], []
    for key, config, strategy_name in golden_configs():
        strategy = strategy_by_name(strategy_name) if strategy_name else None
        tasks.append((config, strategy))
        keys.append(key)
    return keys, tasks


class TestTapGoldenEquivalence:
    @pytest.mark.parametrize("key", [key for key, _, _ in golden_configs()])
    def test_tapped_run_matches_golden(self, key, golden_runs, tmp_path):
        configs = {k: (c, s) for k, c, s in golden_configs()}
        config, strategy_name = configs[key]
        strategy = strategy_by_name(strategy_name) if strategy_name else None
        result = run_simulation(config, strategy, recorder=_recorder(tmp_path))
        assert result.to_dict() == golden_runs[key], (
            f"flight-recorder tap changed the result of {key}"
        )

    @pytest.mark.parametrize("batch_size", [8, 64])
    def test_tapped_batched_runs_match_goldens(self, batch_size, golden_runs, tmp_path):
        keys, tasks = _golden_tasks()
        results = run_batched(
            tasks, batch_size=batch_size, recorder=_recorder(tmp_path)
        )
        for key, result in zip(keys, results):
            assert result.to_dict() == golden_runs[key], (
                f"tapped batch (batch_size={batch_size}) diverged from golden for {key}"
            )

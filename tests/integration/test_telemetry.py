"""Integration tests of the telemetry layer across the execution paths.

Three guarantees are pinned here:

1. **Observe, never perturb** — every golden run is bit-identical with a
   full-rate probe + tracer attached (and a subset again at sampling
   rate 7), so enabling observability can never change science results.
2. **Mode-independent aggregation** — the deterministic snapshot
   (everything outside ``perf.*``) of one campaign is identical whether
   it ran sequentially, lockstep-batched or on a process pool, and the
   supervised path agrees on the result-derived counters.
3. **Export surfaces work end to end** — a campaign-produced registry
   renders to Prometheus text, JSON and a Perfetto-loadable JSONL trace.
"""

import json
import os
import sys

import pytest

from repro.core.attack_types import AttackType
from repro.core.strategies import strategy_by_name
from repro.injection.campaign import Campaign, CampaignConfig
from repro.injection.engine import run_simulation
from repro.telemetry import Telemetry, TelemetryConfig, prometheus_text

_GOLDEN_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), os.pardir, "golden"
)
sys.path.insert(0, _GOLDEN_DIR)

from generate_goldens import (  # noqa: E402  (path set up above)
    GOLDEN_PATH,
    golden_configs,
)


@pytest.fixture(scope="module")
def golden_runs():
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)["runs"]


def _keyed_configs():
    return {key: (config, strategy) for key, config, strategy in golden_configs()}


_ALL_KEYS = [key for key, _, _ in golden_configs()]


class TestGoldenRunsUnperturbed:
    @pytest.mark.parametrize("key", _ALL_KEYS)
    def test_full_rate_probe_and_tracer_keep_goldens_bit_identical(self, key, golden_runs):
        config, strategy_name = _keyed_configs()[key]
        strategy = strategy_by_name(strategy_name) if strategy_name else None
        telemetry = Telemetry(TelemetryConfig(sample_every=1, trace=True))
        result = run_simulation(config, strategy, telemetry=telemetry)
        assert result.to_dict() == golden_runs[key], (
            f"telemetry perturbed the simulation for {key}"
        )
        # The probe actually observed the run it did not perturb.
        histograms = telemetry.snapshot()["histograms"]
        assert any(name.startswith("perf.stage.") for name in histograms)

    @pytest.mark.parametrize("key", _ALL_KEYS[::4])
    def test_sampling_rate_7_keeps_goldens_bit_identical(self, key, golden_runs):
        config, strategy_name = _keyed_configs()[key]
        strategy = strategy_by_name(strategy_name) if strategy_name else None
        telemetry = Telemetry(TelemetryConfig(sample_every=7))
        result = run_simulation(config, strategy, telemetry=telemetry)
        assert result.to_dict() == golden_runs[key]

    def test_sampling_rate_thins_stage_samples_only(self):
        config, strategy_name = _keyed_configs()[_ALL_KEYS[0]]
        strategy = strategy_by_name(strategy_name) if strategy_name else None
        full = Telemetry(TelemetryConfig(sample_every=1))
        sampled = Telemetry(TelemetryConfig(sample_every=7))
        run_simulation(config, strategy, telemetry=full)
        run_simulation(config, strategy, telemetry=sampled)
        def stage_counts(telemetry):
            return {
                name: data["count"]
                for name, data in telemetry.snapshot()["histograms"].items()
                if name.startswith("perf.stage.")
            }

        full_counts = stage_counts(full)
        sampled_counts = stage_counts(sampled)
        steps = full.metrics.counter("runs.steps").value
        # Every timed cycle contributes exactly one sample (one stage,
        # round-robin), so the counts sum to the timed-cycle count and
        # split near-evenly across the stages.
        assert sum(full_counts.values()) == steps
        assert max(full_counts.values()) - min(full_counts.values()) <= 1
        assert sum(sampled_counts.values()) == -(-steps // 7)  # ceil: cycles 0, 7, ...
        # The deterministic view is identical either way.
        assert full.deterministic_snapshot() == sampled.deterministic_snapshot()


def _campaign_config():
    return CampaignConfig(
        strategy_name="Context-Aware",
        scenarios=("S1", "S2"),
        initial_distances=(None, 50.0),
        attack_types=(AttackType.DECELERATION,),
        repetitions=2,
        max_steps=800,
    )


class TestCrossModeAggregation:
    def test_sequential_pooled_batched_deterministic_snapshots_agree(self):
        config = _campaign_config()

        sequential = Telemetry(TelemetryConfig())
        results_sequential = Campaign(config).run(telemetry=sequential)

        pooled = Telemetry(TelemetryConfig())
        results_pooled = Campaign(config).run(workers=4, telemetry=pooled)

        batched = Telemetry(TelemetryConfig())
        results_batched = Campaign(config).run(batch_size=8, telemetry=batched)

        assert results_sequential == results_pooled == results_batched
        deterministic = sequential.deterministic_snapshot()
        assert deterministic == pooled.deterministic_snapshot()
        assert deterministic == batched.deterministic_snapshot()
        assert deterministic["counters"]["runs.completed"] == config.total_runs
        assert deterministic["counters"]["runs.steps"] > 0
        assert deterministic["counters"]["can.frames_sent"] > 0

    def test_campaign_snapshots_merge_across_telemetry_objects(self):
        config = _campaign_config()
        first = Telemetry(TelemetryConfig())
        second = Telemetry(TelemetryConfig())
        Campaign(config).run(telemetry=first)
        Campaign(config).run(telemetry=second)
        first.merge(second)
        assert (
            first.metrics.counter("runs.completed").value == 2 * config.total_runs
        )

    def test_supervised_path_records_report_and_run_counters(self):
        config = _campaign_config()
        telemetry = Telemetry(TelemetryConfig())
        outcome = Campaign(config).run_resilient(workers=1, telemetry=telemetry)

        report = outcome.report
        assert not report.quarantine
        assert report.backoff_seconds == 0.0
        text = report.summary()
        assert "supervised execution:" in text
        assert "retries=0" in text and "backoff=0.00s" in text
        assert "no tasks quarantined" in text
        assert str(report) == text

        counters = telemetry.snapshot()["counters"]
        assert counters["supervisor.tasks"] == config.total_runs
        assert counters["supervisor.completed"] == config.total_runs
        assert counters["runs.completed"] == config.total_runs
        # The supervised result-derived counters agree with a plain run.
        plain = Telemetry(TelemetryConfig())
        Campaign(config).run(telemetry=plain)
        plain_counters = plain.deterministic_snapshot()["counters"]
        for name in ("runs.completed", "runs.hazards", "runs.with_hazard"):
            assert counters.get(name, 0) == plain_counters.get(name, 0)


class TestSearchTelemetry:
    def test_search_driver_records_counters_gauges_and_spans(self):
        from repro.search import (
            HazardObjective,
            SearchConfig,
            SearchDriver,
            attack_search_space,
            make_optimizer,
        )

        telemetry = Telemetry(TelemetryConfig(trace=True))
        space = attack_search_space(
            scenario="S1", attack_types=(AttackType.DECELERATION,), max_steps=600
        )
        driver = SearchDriver(
            space,
            HazardObjective(),
            lambda s: make_optimizer("random", s, seed=7, generation_size=4),
            SearchConfig(budget=8, master_seed=7, batch_size=4),
            telemetry=telemetry,
        )
        result = driver.run()

        snapshot = telemetry.snapshot()
        counters = snapshot["counters"]
        assert counters["search.evaluations"] == result.evaluations_used == 8
        assert counters["search.generations"] >= 2
        assert counters["search.simulations"] >= counters["search.evaluations"]
        assert "search.memo_hits" in counters
        gauges = snapshot["gauges"]
        assert gauges["search.best_score"] == result.best.score
        assert gauges["perf.search.evals_per_s"] > 0
        span_names = {span[0] for span in telemetry.tracer}
        assert "search" in span_names and "search.generation" in span_names

    def test_search_trajectory_identical_with_and_without_telemetry(self):
        from repro.search import (
            HazardObjective,
            SearchConfig,
            SearchDriver,
            attack_search_space,
            make_optimizer,
        )

        def run_search(telemetry):
            space = attack_search_space(
                scenario="S1", attack_types=(AttackType.DECELERATION,), max_steps=600
            )
            driver = SearchDriver(
                space,
                HazardObjective(),
                lambda s: make_optimizer("random", s, seed=7, generation_size=4),
                SearchConfig(budget=8, master_seed=7, batch_size=4),
                telemetry=telemetry,
            )
            return driver.run()

        plain = run_search(None)
        observed = run_search(Telemetry(TelemetryConfig(sample_every=3, trace=True)))
        assert [e.score for e in plain.evaluations] == [
            e.score for e in observed.evaluations
        ]
        assert plain.best.index == observed.best.index


class TestCampaignExports:
    def test_campaign_registry_exports_prometheus_json_and_trace(self, tmp_path):
        config = _campaign_config()
        telemetry = Telemetry(TelemetryConfig(trace=True))
        results = Campaign(config).run(telemetry=telemetry)
        assert len(results) == config.total_runs

        text = telemetry.prometheus()
        assert text == prometheus_text(telemetry.metrics)
        assert "repro_runs_completed 8" in text

        json_path = tmp_path / "snapshot.json"
        telemetry.write_json(str(json_path), extra={"runs": len(results)})
        payload = json.loads(json_path.read_text())
        assert payload["counters"]["runs.completed"] == config.total_runs
        # The snapshot is the mergeable wire format workers ship back.
        from repro.telemetry import MetricsRegistry

        merged = MetricsRegistry()
        merged.merge(
            {key: payload[key] for key in ("counters", "gauges", "histograms")}
        )
        assert merged.counter("runs.completed").value == config.total_runs

        trace_path = tmp_path / "trace.jsonl"
        written = telemetry.write_trace_jsonl(str(trace_path))
        lines = trace_path.read_text().splitlines()
        assert written == len(lines) > 0
        events = [json.loads(line) for line in lines]
        assert {"campaign", "run"} <= {event["name"] for event in events}
        assert all(event["ph"] in ("X", "i") for event in events)

    def test_trace_export_requires_tracing_enabled(self, tmp_path):
        telemetry = Telemetry(TelemetryConfig(trace=False))
        with pytest.raises(ValueError):
            telemetry.write_trace_jsonl(str(tmp_path / "t.jsonl"))
        with pytest.raises(ValueError):
            telemetry.write_chrome_trace(str(tmp_path / "t.json"))


class TestExperimentEntryPoints:
    def test_run_table4_threads_telemetry_through(self):
        from repro.experiments import run_table4
        from repro.experiments.scale import ExperimentScale
        from repro.experiments.table4 import ContextAwareStrategy

        telemetry = Telemetry(TelemetryConfig())
        run_table4(
            ExperimentScale.smoke(),
            strategies=(ContextAwareStrategy,),
            attack_types=(AttackType.DECELERATION,),
            telemetry=telemetry,
        )
        assert telemetry.metrics.counter("runs.completed").value == 1

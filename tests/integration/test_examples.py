"""Smoke tests for the runnable examples.

Each example is executed in-process (importing its ``main``) with stdout
captured, so a broken public API surface shows up as a test failure.  The
slow sweep examples are exercised through their underlying experiment
functions instead (covered in ``test_campaign_experiments.py``).
"""

import importlib.util
import os


EXAMPLES_DIR = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "examples")
)


def load_example(name):
    path = os.path.join(EXAMPLES_DIR, name)
    spec = importlib.util.spec_from_file_location(name.replace(".py", ""), path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_directory_contains_quickstart_plus_scenarios(self):
        examples = [name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")]
        assert "quickstart.py" in examples
        assert len(examples) >= 3

    def test_quickstart_runs(self, capsys):
        load_example("quickstart.py").main()
        output = capsys.readouterr().out
        assert "Safety context table" in output
        assert "attack activated" in output

    def test_can_tampering_example_runs(self, capsys):
        load_example("can_tampering.py").main()
        output = capsys.readouterr().out
        assert "checksum_ok=True" in output
        assert "accepted" in output

    def test_attack_free_trajectory_example_runs(self, capsys):
        load_example("attack_free_trajectory.py").main()
        output = capsys.readouterr().out
        assert "Lane invasions" in output
        assert "Figure 7" in output

    def test_search_attack_example_single_search_runs(self, capsys):
        # The full strategic-vs-exhaustive comparison is exercised through
        # run_search_attack in test_campaign_experiments; the example's
        # single-search path is cheap enough to smoke in-process.
        load_example("search_attack.py").single_search()
        output = capsys.readouterr().out
        assert "first hazard at evaluation" in output
        assert "best attack point" in output

    def test_scenario_catalog_example_runs(self, capsys):
        load_example("scenario_catalog.py").main()
        output = capsys.readouterr().out
        assert "Scenario catalog" in output
        assert "cut-in-short-gap" in output
        assert "Sampled parametric variants" in output
        assert "hazard-free" in output

"""Integration tests for the scenario catalog and sampler.

Pins the two subsystem-level guarantees:

* every catalog scenario runs attack-free to completion with **no hazard
  flagged** (so hazards observed in attack campaigns are attributable to
  the attack, not the traffic script), and
* sampled campaigns are bit-identical between sequential and parallel
  execution (the determinism contract of ``(master_seed, index)`` seeding
  extends to scenario generation).
"""

import pytest

from repro.injection.campaign import Campaign, CampaignConfig
from repro.injection.engine import SimulationConfig, Simulation, run_simulation
from repro.scenarios import CATALOG, PAPER_SCENARIOS, ScenarioSampler


def _catalog_names():
    return list(CATALOG.names())


class TestCatalogScenariosAttackFree:
    @pytest.mark.parametrize("name", _catalog_names())
    def test_runs_to_completion_with_no_hazard(self, name):
        result = run_simulation(
            SimulationConfig(scenario=name, initial_distance=None, seed=3)
        )
        assert result.duration >= 49.9, f"{name} terminated early"
        assert not result.hazards, f"{name} flagged hazards: {result.hazards}"
        assert not result.accidents, f"{name} had accidents: {result.accidents}"

    def test_catalog_runs_differ_from_s1(self):
        # The scenarios must actually exercise different traffic, not alias
        # S1: compare a behaviour-sensitive observable.
        reference = run_simulation(
            SimulationConfig(scenario="S1", initial_distance=None, seed=3)
        )
        distinct = 0
        for name in _catalog_names():
            if name in PAPER_SCENARIOS:
                continue
            result = run_simulation(
                SimulationConfig(scenario=name, initial_distance=None, seed=3)
            )
            if (
                result.lane_invasions != reference.lane_invasions
                or result.alerts != reference.alerts
            ):
                distinct += 1
        assert distinct >= 5


class TestLeadSelection:
    def _drive(self, name, steps=5000):
        sim = Simulation(SimulationConfig(scenario=name, initial_distance=None, seed=0))
        world = sim.world
        sequence = []
        current = object()
        for _ in range(steps):
            world.publish_sensors()
            world.publish_car_can()
            car_state = world.read_car_state()
            sim.openpilot.step(world.time, car_state)
            world.step()
            if world.lead is not current:
                current = world.lead
                sequence.append(None if current is None else current.kind)
        return sequence, world

    def test_cut_in_becomes_the_lead(self):
        sequence, world = self._drive("cut-in-short-gap")
        assert sequence[0] == "lead"
        assert "cut_in" in sequence
        # Once merged, the cut-in stays the tracked lead.
        assert world.lead is not None and world.lead.kind == "cut_in"

    def test_cut_out_reveals_the_slow_vehicle(self):
        sequence, world = self._drive("cut-out-reveal")
        assert sequence == ["lead", "slow_traffic"]
        # The departed lead really left the ego lane.
        assert abs(world.scenario_lead.state.d) > world.config.scenario.road.lane_width / 2.0

    def test_single_lead_scenarios_pin_the_scenario_lead(self):
        sequence, world = self._drive("S1", steps=500)
        assert sequence == ["lead"]
        assert world.lead is world.scenario_lead


class TestSampledCampaignDeterminism:
    def _config(self, runs=100):
        sampler = ScenarioSampler(master_seed=99)
        return CampaignConfig(
            strategy_name="No-Attack",
            scenarios=tuple(sampler.take(runs)),
            initial_distances=(None,),
            attack_types=(),
            repetitions=1,
            master_seed=99,
            max_steps=400,
        )

    def test_sampled_100_run_campaign_parallel_equals_sequential(self):
        config = self._config(100)
        assert config.total_runs == 100
        sequential = Campaign(config).run()
        parallel = Campaign(config).run(parallel=True, workers=4)
        assert sequential == parallel

    def test_sampled_runs_record_family_scenario_names(self):
        config = self._config(8)
        results = Campaign(config).run()
        names = [result.scenario for result in results]
        assert names == [spec.name for spec in config.scenarios]
        assert any("[" in name for name in names)

    def test_rebuilt_sampler_reproduces_the_campaign(self):
        first = Campaign(self._config(12)).run()
        second = Campaign(self._config(12)).run()
        assert first == second

"""End-to-end simulation tests: world + ADAS + attack engine + driver."""

import pytest

from repro.core.attack_types import AttackType
from repro.core.strategies import ContextAwareStrategy, RandomStartDurationStrategy
from repro.injection import SimulationConfig, run_simulation


def config(**kwargs):
    defaults = dict(scenario="S1", initial_distance=50.0, seed=1, driver_enabled=True,
                    max_steps=3000)
    defaults.update(kwargs)
    return SimulationConfig(**defaults)


class TestAttackFreeOperation:
    def test_no_hazards_without_attack(self):
        result = run_simulation(config(initial_distance=70.0, max_steps=5000))
        assert result.hazards == {}
        assert result.accidents == {}
        assert result.strategy == "No-Attack"
        assert not result.attack_activated

    def test_acc_slows_to_follow_lead(self):
        result = run_simulation(config(initial_distance=70.0, max_steps=5000,
                                       record_trajectory=True))
        # Ego starts at 60 mph (26.8 m/s) and ends up following the 35 mph
        # (15.6 m/s) lead vehicle.
        assert result.trajectory[-1].speed == pytest.approx(15.6, abs=1.0)

    def test_lane_invasions_occur_without_attack(self):
        # Observation 1 of the paper.
        result = run_simulation(config(initial_distance=70.0, max_steps=5000))
        assert result.lane_invasions > 0

    def test_deterministic_given_seed(self):
        first = run_simulation(config(seed=5), ContextAwareStrategy())
        second = run_simulation(config(seed=5), ContextAwareStrategy())
        assert first.hazards == second.hazards
        assert first.attack_activation_time == second.attack_activation_time
        assert first.lane_invasions == second.lane_invasions

    def test_different_seeds_differ(self):
        first = run_simulation(config(seed=5, initial_distance=70.0, max_steps=5000))
        second = run_simulation(config(seed=6, initial_distance=70.0, max_steps=5000))
        assert first.lane_invasions != second.lane_invasions or True  # may coincide; at least runs


class TestContextAwareAttacks:
    def test_acceleration_attack_causes_h1(self):
        result = run_simulation(config(attack_type=AttackType.ACCELERATION), ContextAwareStrategy())
        assert result.attack_activated
        assert "H1" in result.hazards
        assert result.time_to_hazard is not None and result.time_to_hazard > 0.0

    def test_deceleration_attack_causes_h2(self):
        result = run_simulation(
            config(attack_type=AttackType.DECELERATION, max_steps=4000), ContextAwareStrategy()
        )
        assert result.attack_activated
        assert "H2" in result.hazards

    def test_steering_right_attack_causes_h3_and_accident(self):
        result = run_simulation(
            config(attack_type=AttackType.STEERING_RIGHT), ContextAwareStrategy()
        )
        assert "H3" in result.hazards
        assert "A3" in result.accidents

    def test_strategic_attack_raises_no_alerts(self):
        # The headline: hazards occur without any ADAS warning.
        result = run_simulation(config(attack_type=AttackType.ACCELERATION), ContextAwareStrategy())
        assert result.hazard_occurred
        assert result.alerts == []
        assert result.hazard_without_alert

    def test_attack_record_propagated_to_result(self):
        result = run_simulation(config(attack_type=AttackType.ACCELERATION), ContextAwareStrategy())
        assert result.attack_activation_time is not None
        assert result.attack_reason.startswith("rule")

    def test_time_to_hazard_larger_than_zero_and_bounded(self):
        result = run_simulation(config(attack_type=AttackType.STEERING_RIGHT), ContextAwareStrategy())
        assert 0.0 < result.time_to_hazard < 10.0


class TestDriverInfluence:
    def test_driver_prevents_fixed_value_deceleration_attack(self):
        from repro.experiments.table5 import ContextAwareFixedValueStrategy

        cfg_driver = config(attack_type=AttackType.DECELERATION, scenario="S2",
                            initial_distance=70.0, seed=2, max_steps=4000)
        cfg_nodriver = config(attack_type=AttackType.DECELERATION, scenario="S2",
                              initial_distance=70.0, seed=2, driver_enabled=False, max_steps=4000)
        with_driver = run_simulation(cfg_driver, ContextAwareFixedValueStrategy())
        without_driver = run_simulation(cfg_nodriver, ContextAwareFixedValueStrategy())
        assert without_driver.hazard_occurred
        assert with_driver.driver_perceived
        # The alert driver notices the unintended hard braking and prevents
        # the unnecessary-stop hazard (Observation 4).
        assert "H2" not in with_driver.hazards

    def test_driver_cannot_prevent_steering_attack(self):
        result = run_simulation(
            config(attack_type=AttackType.STEERING_RIGHT), ContextAwareStrategy()
        )
        # Hazard occurs well before the 2.5 s driver reaction time elapses.
        assert result.hazard_occurred
        assert result.time_to_hazard < 2.5

    def test_disabled_driver_never_engages(self):
        result = run_simulation(
            config(attack_type=AttackType.ACCELERATION, driver_enabled=False),
            ContextAwareStrategy(),
        )
        assert not result.driver_engaged


class TestRandomStrategies:
    def test_random_attack_outside_critical_window_causes_no_hazard(self):
        strategy = RandomStartDurationStrategy(start_range=(25.0, 25.0), duration_range=(1.0, 1.0))
        result = run_simulation(
            config(attack_type=AttackType.ACCELERATION, initial_distance=70.0, max_steps=4000),
            strategy,
        )
        assert result.attack_activated
        assert "H1" not in result.hazards

    def test_early_termination_after_collision(self):
        result = run_simulation(
            config(attack_type=AttackType.STEERING_RIGHT, max_steps=5000), ContextAwareStrategy()
        )
        assert result.accident_occurred
        assert result.duration < 45.0

"""Chaos suite: every recovery path of the supervised executor yields
bit-identical results to an undisturbed run.

The deterministic fault-injection harness (:mod:`repro.resilience.chaos`)
makes pool workers raise, crash, hang, or corrupt/short-change their
result payloads at chosen task indices.  Each test asserts that after the
supervisor absorbed the fault (retry, pool respawn, timeout kill,
bisection + quarantine, degradation to sequential, checkpoint resume) the
surviving :class:`RunResult` records equal an undisturbed sequential run
bit for bit — the same invariant the parallel and batched executors are
held to.
"""

import os

import pytest

from repro.core.attack_types import AttackType
from repro.core.strategies import ContextAwareStrategy
from repro.injection.campaign import Campaign, CampaignConfig
from repro.injection.engine import SimulationConfig
from repro.injection.executor import run_simulations
from repro.resilience import (
    FaultSpec,
    SupervisionPolicy,
    TaskExecutionError,
    chaos_policy,
    run_supervised_simulations,
)

#: Tiny but non-trivial grid: 2 distances x 2 attacks x 2 reps = 8 runs.
CAMPAIGN_CONFIG = CampaignConfig(
    strategy_name="Context-Aware",
    scenarios=("S1",),
    initial_distances=(50.0, 70.0),
    attack_types=(AttackType.ACCELERATION, AttackType.DECELERATION),
    repetitions=2,
    max_steps=600,
)

#: Fast supervision policy for tests (no multi-second backoff sleeps).
FAST = SupervisionPolicy(backoff_base=0.01)


@pytest.fixture(scope="module")
def campaign():
    return Campaign(CAMPAIGN_CONFIG)


@pytest.fixture(scope="module")
def baseline(campaign):
    """The undisturbed sequential run every chaos test compares against."""
    return [result.to_dict() for result in campaign.run()]


def _dicts(results):
    return [result.to_dict() for result in results]


class TestCleanSupervision:
    """No faults: supervision must be an invisible wrapper."""

    def test_sequential(self, campaign, baseline):
        outcome = campaign.run_resilient(workers=1)
        assert _dicts(outcome.completed_results) == baseline
        assert not outcome.report.quarantine
        assert outcome.report.retries == 0

    def test_parallel_batched(self, campaign, baseline):
        outcome = campaign.run_resilient(workers=2, batch_size=4)
        assert _dicts(outcome.completed_results) == baseline

    def test_campaign_run_routes_through_supervisor(self, campaign, baseline):
        runs = campaign.run(workers=2, supervision=FAST)
        assert _dicts(runs) == baseline


class TestFaultRecovery:
    """Injected worker faults with finite budgets: the retry is clean, so
    the recovered results are bit-identical."""

    def _run_with_fault(self, campaign, fault, tmp_path, policy=FAST, **kwargs):
        chaos = chaos_policy([fault], state_dir=str(tmp_path / "chaos"))
        return campaign.run_resilient(
            workers=2, chaos=chaos, supervision=policy, **kwargs
        )

    def test_worker_exception_is_retried(self, campaign, baseline, tmp_path):
        outcome = self._run_with_fault(
            campaign, FaultSpec(kind="error", task_index=3), tmp_path
        )
        assert _dicts(outcome.completed_results) == baseline
        assert outcome.report.retries >= 1

    def test_worker_crash_respawns_pool(self, campaign, baseline, tmp_path):
        outcome = self._run_with_fault(
            campaign, FaultSpec(kind="crash", task_index=2), tmp_path
        )
        assert _dicts(outcome.completed_results) == baseline
        assert outcome.report.pool_respawns >= 1

    def test_hung_worker_is_killed_by_timeout(self, campaign, baseline, tmp_path):
        outcome = self._run_with_fault(
            campaign,
            FaultSpec(kind="hang", task_index=1, hang_seconds=20.0),
            tmp_path,
            policy=SupervisionPolicy(chunk_timeout=1.0, backoff_base=0.01),
        )
        assert _dicts(outcome.completed_results) == baseline
        assert outcome.report.timeouts >= 1
        assert outcome.report.pool_respawns >= 1

    def test_corrupted_payload_is_rejected_and_retried(self, campaign, baseline, tmp_path):
        outcome = self._run_with_fault(
            campaign, FaultSpec(kind="corrupt", task_index=5), tmp_path
        )
        assert _dicts(outcome.completed_results) == baseline
        assert outcome.report.retries >= 1

    def test_short_payload_is_rejected_and_retried(self, campaign, baseline, tmp_path):
        outcome = self._run_with_fault(
            campaign, FaultSpec(kind="drop", task_index=6), tmp_path
        )
        assert _dicts(outcome.completed_results) == baseline
        assert outcome.report.retries >= 1

    def test_repeated_crashes_degrade_to_sequential(self, campaign, baseline, tmp_path):
        outcome = self._run_with_fault(
            campaign,
            FaultSpec(kind="crash", task_index=0, times=10),
            tmp_path,
            policy=SupervisionPolicy(backoff_base=0.01, max_pool_respawns=1),
        )
        assert outcome.report.degraded_to_sequential
        assert _dicts(outcome.completed_results) == baseline


class TestQuarantine:
    """A task that fails every attempt is bisected out of its chunk and
    quarantined; everything else still completes bit-identically."""

    def test_poison_task_is_quarantined_not_fatal(self, campaign, baseline, tmp_path):
        chaos = chaos_policy(
            [FaultSpec(kind="error", task_index=4, times=-1)],
            state_dir=str(tmp_path / "chaos"),
        )
        outcome = campaign.run_resilient(
            workers=2,
            chunk_size=4,  # force multi-task chunks so bisection must isolate #4
            chaos=chaos,
            supervision=SupervisionPolicy(backoff_base=0.01, max_chunk_attempts=2),
        )
        assert outcome.report.quarantine.indices == [4]
        assert outcome.report.bisections >= 1
        quarantined = outcome.report.quarantine.tasks[0]
        assert "scenario=S1" in quarantined.fingerprint
        assert "seed=" in quarantined.fingerprint
        for index, expected in enumerate(baseline):
            if index == 4:
                assert outcome.results[index] is None
            else:
                assert outcome.results[index].to_dict() == expected

    def test_require_complete_raises_on_quarantine(self, campaign, tmp_path):
        chaos = chaos_policy(
            [FaultSpec(kind="error", task_index=0, times=-1)],
            state_dir=str(tmp_path / "chaos"),
        )
        outcome = campaign.run_resilient(
            workers=2,
            chaos=chaos,
            supervision=SupervisionPolicy(backoff_base=0.01, max_chunk_attempts=2),
        )
        with pytest.raises(TaskExecutionError, match="quarantined"):
            outcome.require_complete()


class _Interrupted(Exception):
    """Stand-in for the process dying mid-campaign."""


class TestCheckpointResume:
    def test_interrupted_campaign_resumes_bit_identically(self, campaign, baseline, tmp_path):
        """Kill the campaign after 3 results; the resumed run must load
        them from the checkpoint, pay only for the rest, and produce the
        exact results of an uninterrupted run."""
        path = str(tmp_path / "campaign.json")
        seen = []

        def die_after_three(index, result):
            seen.append(index)
            if len(seen) == 3:
                raise _Interrupted()

        with pytest.raises(_Interrupted):
            campaign.run_resilient(
                workers=1, chunk_size=1, checkpoint_path=path, on_result=die_after_three
            )
        assert os.path.exists(path)

        outcome = campaign.run_resilient(workers=1, checkpoint_path=path)
        assert outcome.report.loaded_from_checkpoint == 3
        assert outcome.report.sims_paid == len(baseline) - 3
        assert _dicts(outcome.completed_results) == baseline

    def test_finished_checkpoint_resumes_for_free(self, campaign, baseline, tmp_path):
        path = str(tmp_path / "campaign.json")
        campaign.run_resilient(workers=1, checkpoint_path=path)
        outcome = campaign.run_resilient(workers=1, checkpoint_path=path)
        assert outcome.report.loaded_from_checkpoint == len(baseline)
        assert outcome.report.sims_paid == 0
        assert _dicts(outcome.completed_results) == baseline

    def test_resume_with_crash_fault_still_matches(self, campaign, baseline, tmp_path):
        """Interruption and a worker crash in the same campaign: resume +
        respawn still converge to the undisturbed results."""
        path = str(tmp_path / "campaign.json")
        seen = []

        def die_after_two(index, result):
            seen.append(index)
            if len(seen) == 2:
                raise _Interrupted()

        with pytest.raises(_Interrupted):
            campaign.run_resilient(
                workers=1, chunk_size=1, checkpoint_path=path, on_result=die_after_two
            )

        chaos = chaos_policy(
            [FaultSpec(kind="crash", task_index=6)], state_dir=str(tmp_path / "chaos")
        )
        outcome = campaign.run_resilient(
            workers=2, checkpoint_path=path, chaos=chaos, supervision=FAST
        )
        assert outcome.report.loaded_from_checkpoint == 2
        assert _dicts(outcome.completed_results) == baseline


class _PoisonStrategy(ContextAwareStrategy):
    """A strategy that dies during preparation (picklable, module level)."""

    def prepare(self, rng):
        raise RuntimeError("poison strategy")


class TestFingerprintedErrors:
    """Satellite: a failing worker task surfaces its (scenario, attack,
    seed) fingerprint instead of a bare pool traceback — in the plain
    executor too, not only under supervision."""

    def _tasks(self):
        tasks = []
        for seed in (11, 12, 13):
            config = SimulationConfig(
                scenario="S1",
                initial_distance=50.0,
                seed=seed,
                attack_type=AttackType.ACCELERATION,
            )
            strategy = _PoisonStrategy() if seed == 12 else ContextAwareStrategy()
            tasks.append((config, strategy))
        return tasks

    def test_sequential_executor_names_the_failing_task(self):
        with pytest.raises(TaskExecutionError, match="seed=12"):
            run_simulations(self._tasks())

    def test_parallel_executor_names_the_failing_task(self):
        with pytest.raises(TaskExecutionError, match="seed=12"):
            run_simulations(self._tasks(), workers=2)

    def test_supervised_executor_quarantines_with_fingerprint(self):
        outcome = run_supervised_simulations(
            self._tasks(),
            workers=1,
            policy=SupervisionPolicy(backoff_base=0.01, max_chunk_attempts=2),
        )
        assert outcome.report.quarantine.indices == [1]
        assert "seed=12" in outcome.report.quarantine.tasks[0].fingerprint
        assert outcome.results[0] is not None
        assert outcome.results[2] is not None

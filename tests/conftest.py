"""Shared pytest fixtures.

Also inserts ``src/`` into ``sys.path`` so the test suite runs even when
the package has not been pip-installed (the offline evaluation environment
lacks the ``wheel`` package needed for editable installs).
"""

import os
import sys

import numpy as np
import pytest

_SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, os.path.abspath(_SRC))

from repro.can.bus import CANBus  # noqa: E402
from repro.messaging.bus import MessageBus  # noqa: E402
from repro.sim.scenarios import build_scenario  # noqa: E402
from repro.sim.sensors import SensorNoise  # noqa: E402
from repro.sim.world import World, WorldConfig  # noqa: E402


@pytest.fixture
def message_bus() -> MessageBus:
    return MessageBus()


@pytest.fixture
def can_bus() -> CANBus:
    return CANBus()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)


@pytest.fixture
def world(message_bus, can_bus) -> World:
    """A deterministic, noise-free world for the S1 scenario."""
    config = WorldConfig(
        scenario=build_scenario("S1", 70.0),
        noise=SensorNoise.noiseless(),
        seed=0,
        record_trajectory=False,
        disturbance_amplitude=0.0,
    )
    return World(config, message_bus, can_bus)


@pytest.fixture
def noisy_world(message_bus, can_bus) -> World:
    """A world with the default noise and disturbance models."""
    config = WorldConfig(scenario=build_scenario("S1", 70.0), seed=3)
    return World(config, message_bus, can_bus)

"""Setup shim.

The ``wheel`` package is not available in the offline evaluation
environment, so PEP 517 editable installs (which build a wheel) fail.
This shim lets ``pip install -e . --no-build-isolation --no-use-pep517``
fall back to the classic ``setup.py develop`` path.  All project metadata
lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()

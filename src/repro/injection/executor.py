"""Parallel execution of fault-injection campaigns.

The paper's headline results each sweep a grid of 1,440 simulations per
strategy (14,400 for the Random-ST+DUR baseline).  Every grid cell is an
independent simulation whose seed is derived deterministically from
``(master_seed, cell index)``, so the campaign is embarrassingly parallel
and the results of a parallel run are **bit-identical** to a sequential
run of the same :class:`~repro.injection.campaign.CampaignConfig` — the
determinism test in ``tests/integration/test_parallel_campaign.py`` pins
this property.

:class:`ParallelCampaignRunner` fans the grid out over a process pool
(worker count, chunked cell dispatch, ordered result collection and
progress callbacks), and :func:`run_simulations` offers the same fan-out
for ad-hoc lists of ``(SimulationConfig, strategy)`` pairs, as used by the
Figure 8 parameter-space sweep.

Performance
-----------

Workers are plain OS processes (``concurrent.futures``), so campaign
throughput scales near-linearly with physical cores until memory
bandwidth saturates; the chunked dispatch (default: ~4 chunks per worker)
keeps inter-process traffic to a few pickled ``RunResult`` lists per
worker instead of one round-trip per run.  Combined with the compiled CAN
codec plans (see :mod:`repro.can.dbc`), the per-PR trajectory is recorded
in ``BENCH_throughput.json`` by ``benchmarks/test_bench_throughput.py``:
the seed revision ran one simulation at ~5.1k steps/s and the reduced
benchmark campaign at ~5.1 runs/s sequentially; this revision reaches
~12.4k steps/s (2.4x) single-run and ~10.6 runs/s (2.1x) sequential
campaign throughput on the same single-CPU container, and parallel
campaign throughput is the sequential rate times the worker count on
unloaded cores (single-core containers see only the codec gain).

On start-methods without ``fork`` the campaign configuration and the
strategy factory are pickled to the workers; with ``fork`` they are
inherited, so lambda/closure factories work there too.
"""

import multiprocessing
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.analysis.metrics import RunResult
from repro.core.strategies import AttackStrategy
from repro.injection.engine import SimulationConfig, run_simulation
from repro.resilience.errors import TaskExecutionError, cell_fingerprint, task_fingerprint
from repro.telemetry import Telemetry, TelemetryConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.injection.campaign import Campaign, CampaignCell
    from repro.obs.journal import EventJournal
    from repro.obs.recorder import FlightRecorderConfig
    from repro.resilience.chaos import ChaosPolicy
    from repro.resilience.supervisor import SupervisionPolicy
    from repro.service.cache import RunCache

ProgressCallback = Callable[[int, int], None]
SimulationTask = Tuple[SimulationConfig, Optional[AttackStrategy]]

# Campaign inherited by forked workers (set just before the pool spawns).
_FORK_CAMPAIGN: Optional["Campaign"] = None
# Per-worker campaign, set by the pool initializer.
_WORKER_CAMPAIGN: Optional["Campaign"] = None
# Per-worker lockstep batch width (None/1 = scalar), set by the initializers.
_WORKER_BATCH_SIZE: Optional[int] = None
# Per-worker telemetry config (None = telemetry off), set by the initializers.
# Workers accumulate into chunk-local registries and ship snapshots back
# with the results; the parent merges them in chunk order (deterministic).
_WORKER_TELEMETRY_CONFIG: Optional[TelemetryConfig] = None
# Per-worker flight-recorder config (None = recording off), set by the
# initializers.  Workers write their own flight-record artifacts (the
# config is a small frozen dataclass, cheap to pickle); the journal, by
# contrast, stays parent-side only and is never shipped to workers.
_WORKER_RECORDER: Optional["FlightRecorderConfig"] = None


def default_worker_count() -> int:
    """Number of workers used when ``workers`` is not specified."""
    return max(1, os.cpu_count() or 1)


def _chunked(items: Sequence, chunk_size: int) -> List[Sequence]:
    return [items[i : i + chunk_size] for i in range(0, len(items), chunk_size)]


def _init_worker(
    campaign: Optional["Campaign"],
    batch_size: Optional[int] = None,
    telemetry_config: Optional[TelemetryConfig] = None,
    recorder: Optional["FlightRecorderConfig"] = None,
) -> None:
    """Pool initializer: install the campaign and batch width for this worker."""
    global _WORKER_CAMPAIGN, _WORKER_BATCH_SIZE, _WORKER_TELEMETRY_CONFIG
    global _WORKER_RECORDER
    _WORKER_CAMPAIGN = campaign if campaign is not None else _FORK_CAMPAIGN
    _WORKER_BATCH_SIZE = batch_size
    _WORKER_TELEMETRY_CONFIG = telemetry_config
    _WORKER_RECORDER = recorder


def _init_task_worker(
    batch_size: Optional[int],
    telemetry_config: Optional[TelemetryConfig] = None,
    recorder: Optional["FlightRecorderConfig"] = None,
) -> None:
    """Pool initializer for ad-hoc task chunks: install the batch width."""
    global _WORKER_BATCH_SIZE, _WORKER_TELEMETRY_CONFIG, _WORKER_RECORDER
    _WORKER_BATCH_SIZE = batch_size
    _WORKER_TELEMETRY_CONFIG = telemetry_config
    _WORKER_RECORDER = recorder


def _chunk_telemetry() -> Optional[Telemetry]:
    """A fresh chunk-local telemetry handle (None when telemetry is off)."""
    if _WORKER_TELEMETRY_CONFIG is None:
        return None
    return Telemetry(_WORKER_TELEMETRY_CONFIG)


def _run_cells(
    indexed_chunk: Tuple[int, Sequence["CampaignCell"]],
) -> Tuple[int, List[RunResult], Optional[dict]]:
    """Worker body: run one chunk of campaign cells in submission order.

    A failing simulation raises :class:`TaskExecutionError` naming the
    offending task's ``(scenario, attack, seed)`` fingerprint, so the
    parent sees which run died instead of a bare pool traceback.  The
    third element is the chunk's metrics snapshot (None with telemetry
    off); the parent merges snapshots in chunk order.
    """
    chunk_index, cells = indexed_chunk
    campaign = _WORKER_CAMPAIGN
    if campaign is None:  # pragma: no cover - defensive
        raise RuntimeError("worker has no campaign installed")
    batch_size = _WORKER_BATCH_SIZE
    telemetry = _chunk_telemetry()
    recorder = _WORKER_RECORDER
    strategy_name = campaign.config.strategy_name
    if batch_size is not None and batch_size > 1 and len(cells) > 1:
        from repro.kernel.batch import run_batched

        try:
            results = run_batched(
                [campaign.cell_task(cell) for cell in cells],
                batch_size=batch_size,
                telemetry=telemetry,
                recorder=recorder,
            )
            return chunk_index, results, telemetry.snapshot() if telemetry is not None else None
        except Exception as error:
            raise TaskExecutionError.wrap_batch(
                [cell_fingerprint(cell, strategy_name) for cell in cells], error
            ) from error
    results = []
    for cell in cells:
        try:
            results.append(campaign.run_cell(cell, telemetry=telemetry, recorder=recorder))
        except Exception as error:
            raise TaskExecutionError.wrap(
                cell_fingerprint(cell, strategy_name), error
            ) from error
    return chunk_index, results, telemetry.snapshot() if telemetry is not None else None


def _run_tasks(
    indexed_chunk: Tuple[int, Sequence[SimulationTask]],
) -> Tuple[int, List[RunResult], Optional[dict]]:
    """Worker body: run one chunk of ad-hoc simulation tasks.

    Failures carry the task fingerprint, as in :func:`_run_cells`; the
    third element is the chunk's metrics snapshot (None with telemetry
    off).
    """
    chunk_index, tasks = indexed_chunk
    batch_size = _WORKER_BATCH_SIZE
    telemetry = _chunk_telemetry()
    recorder = _WORKER_RECORDER
    if batch_size is not None and batch_size > 1 and len(tasks) > 1:
        from repro.kernel.batch import run_batched

        try:
            results = run_batched(
                tasks, batch_size=batch_size, telemetry=telemetry, recorder=recorder
            )
            return chunk_index, results, telemetry.snapshot() if telemetry is not None else None
        except Exception as error:
            raise TaskExecutionError.wrap_batch(
                [task_fingerprint(config, strategy) for config, strategy in tasks],
                error,
            ) from error
    results = []
    for config, strategy in tasks:
        try:
            results.append(
                run_simulation(config, strategy, telemetry=telemetry, recorder=recorder)
            )
        except Exception as error:
            raise TaskExecutionError.wrap(
                task_fingerprint(config, strategy), error
            ) from error
    return chunk_index, results, telemetry.snapshot() if telemetry is not None else None


def _pool_context():
    """Prefer ``fork`` (cheap, inherits unpicklable strategy factories)."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork"), True
    return multiprocessing.get_context(), False


def _dispatch(
    worker_fn: Callable,
    chunks: List[Tuple[int, Sequence]],
    total: int,
    workers: int,
    progress: Optional[ProgressCallback],
    context,
    initializer: Optional[Callable] = None,
    initargs: tuple = (),
    telemetry: Optional[Telemetry] = None,
) -> List[RunResult]:
    """Fan chunks out over a pool; collect results back in chunk order.

    Progress callbacks fire with the cumulative completed-run count as
    chunks *complete* (possibly out of order); the returned flat list is
    re-ordered by chunk index, so it reproduces the sequential result
    order exactly.  Worker metrics snapshots are likewise merged into
    ``telemetry`` in chunk order after collection, so the merged view is
    independent of chunk completion order.
    """
    ordered: List[Optional[List[RunResult]]] = [None] * len(chunks)
    snapshots: List[Optional[dict]] = [None] * len(chunks)
    completed_runs = 0
    with ProcessPoolExecutor(
        max_workers=min(workers, len(chunks)),
        mp_context=context,
        initializer=initializer,
        initargs=initargs,
    ) as pool:
        pending = {pool.submit(worker_fn, chunk) for chunk in chunks}
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                chunk_index, results, snapshot = future.result()
                ordered[chunk_index] = results
                snapshots[chunk_index] = snapshot
                completed_runs += len(results)
                if progress is not None:
                    progress(completed_runs, total)
    if telemetry is not None:
        for snapshot in snapshots:
            if snapshot is not None:
                telemetry.merge(snapshot)
    return [result for chunk in ordered if chunk is not None for result in chunk]


class ParallelCampaignRunner:
    """Runs a :class:`~repro.injection.campaign.Campaign` on a process pool.

    Args:
        campaign: The campaign to run.
        workers: Worker process count (default: one per CPU).
        chunk_size: Cells per dispatched chunk (default: the grid split
            into ~4 chunks per worker, so stragglers rebalance while the
            per-chunk dispatch overhead stays negligible).
        batch_size: Lockstep batch width *within* each worker (> 1 steps
            that many of a chunk's runs through the kernel together; see
            :class:`repro.kernel.BatchRunner`).  Orthogonal to ``workers``
            — the pool scales across cores, the batch amortises per-step
            dispatch within one core.  Chunks are capped at ``~total /
            (workers * 4)`` cells, which also caps the effective batch.
        supervision: Fault-tolerance policy
            (:class:`repro.resilience.SupervisionPolicy`).  When given,
            dispatch goes through the supervised executor: per-chunk
            timeouts, seeded retry/backoff, dead-worker respawn,
            poison-task quarantine and graceful degradation — results
            stay bit-identical to a plain run.
        chaos: Deterministic fault-injection policy installed in the
            workers (:class:`repro.resilience.ChaosPolicy`; testing
            only).  Implies supervision.
        checkpoint_path: Crash-safe campaign checkpoint
            (:class:`repro.resilience.CampaignCheckpoint`); a rerun
            resumes paying only for unfinished cells.  Implies
            supervision.
    """

    def __init__(
        self,
        campaign: "Campaign",
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        batch_size: Optional[int] = None,
        supervision: Optional["SupervisionPolicy"] = None,
        chaos: Optional["ChaosPolicy"] = None,
        checkpoint_path: Optional[str] = None,
        telemetry: Optional[Telemetry] = None,
        recorder: Optional["FlightRecorderConfig"] = None,
    ):
        self.campaign = campaign
        self.workers = max(1, workers if workers is not None else default_worker_count())
        self.chunk_size = chunk_size
        self.batch_size = batch_size
        self.supervision = supervision
        self.chaos = chaos
        self.checkpoint_path = checkpoint_path
        self.telemetry = telemetry
        self.recorder = recorder

    def _resolve_chunk_size(self, total: int) -> int:
        if self.chunk_size is not None:
            return max(1, self.chunk_size)
        return max(1, -(-total // (self.workers * 4)))

    def run(self, progress: Optional[ProgressCallback] = None) -> List[RunResult]:
        """Run the whole campaign; results are in sequential cell order.

        Under supervision (``supervision``/``chaos``/``checkpoint_path``
        set) quarantined cells are withheld from the returned list; use
        :func:`repro.resilience.run_supervised_campaign` directly for
        the full :class:`~repro.resilience.SupervisedOutcome`.
        """
        global _FORK_CAMPAIGN
        if (
            self.supervision is not None
            or self.chaos is not None
            or self.checkpoint_path is not None
        ):
            from repro.resilience.supervisor import run_supervised_campaign

            outcome = run_supervised_campaign(
                self.campaign,
                policy=self.supervision,
                workers=self.workers,
                chunk_size=self.chunk_size,
                batch_size=self.batch_size,
                progress=progress,
                chaos=self.chaos,
                checkpoint_path=self.checkpoint_path,
                telemetry=self.telemetry,
                recorder=self.recorder,
            )
            return outcome.completed_results
        telemetry = self.telemetry
        cells = list(self.campaign.cells())
        total = len(cells)
        if total == 0:
            return []
        if self.workers == 1 or total == 1:
            # In-process fallback: identical code path to Campaign.run().
            batch_size = self.batch_size
            if batch_size is not None and batch_size > 1 and total > 1:
                from repro.kernel.batch import run_batched

                tasks = [self.campaign.cell_task(cell) for cell in cells]
                return run_batched(
                    tasks,
                    batch_size=batch_size,
                    progress=progress,
                    telemetry=telemetry,
                    recorder=self.recorder,
                )
            results = []
            for index, cell in enumerate(cells, start=1):
                results.append(
                    self.campaign.run_cell(
                        cell, telemetry=telemetry, recorder=self.recorder
                    )
                )
                if progress is not None:
                    progress(index, total)
            return results

        chunks = list(enumerate(_chunked(cells, self._resolve_chunk_size(total))))
        context, forked = _pool_context()
        worker_telemetry = telemetry.worker_config() if telemetry is not None else None
        if forked:
            # Forked workers inherit the campaign object (works for any
            # strategy factory, including closures); non-fork platforms
            # pickle it through the initializer instead.
            _FORK_CAMPAIGN = self.campaign
            initargs: tuple = (None, self.batch_size, worker_telemetry, self.recorder)
        else:
            initargs = (self.campaign, self.batch_size, worker_telemetry, self.recorder)
        try:
            return _dispatch(
                _run_cells,
                chunks,
                total,
                self.workers,
                progress,
                context,
                initializer=_init_worker,
                initargs=initargs,
                telemetry=telemetry,
            )
        finally:
            _FORK_CAMPAIGN = None


def run_simulations(
    tasks: Sequence[SimulationTask],
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
    batch_size: Optional[int] = None,
    supervision: Optional["SupervisionPolicy"] = None,
    chaos: Optional["ChaosPolicy"] = None,
    checkpoint_path: Optional[str] = None,
    telemetry: Optional[Telemetry] = None,
    cache: Optional["RunCache"] = None,
    recorder: Optional["FlightRecorderConfig"] = None,
    journal: Optional["EventJournal"] = None,
) -> List[RunResult]:
    """Run independent ``(SimulationConfig, strategy)`` pairs, optionally
    in parallel and/or lockstep-batched, preserving input order.

    Used by the Figure 8 parameter-space sweep, which is a plain list of
    simulations rather than a campaign grid.  Unlike the campaign runner
    (whose strategy *factory* is inherited by forked workers), the tasks
    themselves are pickled to the pool, so strategy objects must be
    picklable whenever more than one task runs with ``workers > 1``.

    ``batch_size > 1`` steps that many runs through the kernel together
    (per worker, when combined with ``workers > 1``); results are
    bit-identical to sequential execution.  Batched execution keeps many
    runs live at once, so each task needs its own strategy instance — the
    batch runner rejects shared strategy objects loudly.

    ``supervision``, ``chaos`` or ``checkpoint_path`` route the dispatch
    through :func:`repro.resilience.run_supervised_simulations`
    (timeouts, retry, quarantine, crash-safe resume); quarantined tasks
    are withheld from the returned list.

    ``cache`` (:class:`repro.service.RunCache`) serves every task the
    content-addressed cache already holds and pays (then stores) only
    the misses; the returned list stays bit-identical to an uncached
    run.  Cache hits count toward ``progress`` up front.

    ``recorder`` (:class:`repro.obs.FlightRecorderConfig`) arms the
    per-run flight recorder in every execution mode (sequential,
    batched, pooled, supervised); ``journal``
    (:class:`repro.obs.EventJournal` or a bound view) receives the
    supervisor's and the cache's causal events — it stays in this
    process and is never pickled to workers.
    """
    tasks = list(tasks)
    if supervision is not None or chaos is not None or checkpoint_path is not None:
        from repro.resilience.supervisor import run_supervised_simulations

        outcome = run_supervised_simulations(
            tasks,
            policy=supervision,
            workers=workers,
            chunk_size=chunk_size,
            batch_size=batch_size,
            progress=progress,
            chaos=chaos,
            checkpoint_path=checkpoint_path,
            telemetry=telemetry,
            cache=cache,
            recorder=recorder,
            journal=journal,
        )
        return outcome.completed_results
    total = len(tasks)
    if total == 0:
        return []
    if cache is not None:
        from repro.service.cache import partition_tasks

        cached, pending, keys = partition_tasks(tasks, cache)
        sub_progress: Optional[ProgressCallback] = None
        if progress is not None:
            if cached:
                progress(len(cached), total)
            hits = len(cached)
            sub_progress = lambda completed, _total: progress(hits + completed, total)  # noqa: E731
        fresh: dict = {}
        if pending:
            computed = run_simulations(
                [tasks[index] for index in pending],
                workers=workers,
                chunk_size=chunk_size,
                progress=sub_progress,
                batch_size=batch_size,
                telemetry=telemetry,
                recorder=recorder,
                journal=journal,
            )
            for index, result in zip(pending, computed):
                fresh[index] = result
                key = keys[index]
                if key is not None:
                    cache.put(key, result)
        return [cached[i] if i in cached else fresh[i] for i in range(total)]
    workers = max(1, workers if workers is not None else 1)
    if workers == 1 or total == 1:
        if batch_size is not None and batch_size > 1 and total > 1:
            from repro.kernel.batch import run_batched

            return run_batched(
                tasks,
                batch_size=batch_size,
                progress=progress,
                telemetry=telemetry,
                recorder=recorder,
            )
        results = []
        for index, (config, strategy) in enumerate(tasks, start=1):
            try:
                results.append(
                    run_simulation(
                        config, strategy, telemetry=telemetry, recorder=recorder
                    )
                )
            except Exception as error:
                raise TaskExecutionError.wrap(
                    task_fingerprint(config, strategy), error
                ) from error
            if progress is not None:
                progress(index, total)
        return results

    if chunk_size is None:
        chunk_size = max(1, -(-total // (workers * 4)))
    chunks = list(enumerate(_chunked(tasks, chunk_size)))
    context, _ = _pool_context()
    worker_telemetry = telemetry.worker_config() if telemetry is not None else None
    return _dispatch(
        _run_tasks,
        chunks,
        total,
        workers,
        progress,
        context,
        initializer=_init_task_worker,
        initargs=(batch_size, worker_telemetry, recorder),
        telemetry=telemetry,
    )

"""One complete fault-injection simulation.

The :class:`Simulation` reproduces the platform of Fig. 5 in the paper:
OpenPilot (ADAS substitute) bridged to the driving simulator, a driver
reaction simulator, and the attack/fault-injection engine hooked into the
ADAS output stage.  The control cycle itself is the kernel step pipeline
(:mod:`repro.kernel`): a preallocated :class:`~repro.kernel.StepContext`
runs through sense → perceive → plan → inject → drive → actuate →
detect → record once per 10 ms step, so the hot loop is free of per-step
observation rebuilding.  :func:`run_simulation` is the single-call entry
point used by examples, tests and the campaign runner.
"""

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.adas.openpilot import OpenPilot, OpenPilotConfig
from repro.analysis.hazards import HazardMonitor, HazardParams
from repro.analysis.metrics import RunResult
from repro.can.bus import CANBus
from repro.core.attack_engine import AttackEngine, AttackTuning
from repro.core.attack_types import AttackType
from repro.core.strategies import AttackStrategy, NoAttackStrategy
from repro.driver.reaction import DriverParams, DriverReactionSimulator
from repro.kernel import (
    ActuateStage,
    DetectStage,
    DriveStage,
    InjectStage,
    PerceiveStage,
    PlanStage,
    RecordStage,
    SenseStage,
    StepContext,
    StepPipeline,
)
from repro.messaging.bus import MessageBus
from repro.obs.recorder import FlightRecorder, FlightRecorderConfig
from repro.obs.tap import TappedPipeline
from repro.sim.scenarios import Scenario, build_scenario
from repro.sim.sensors import SensorNoise
from repro.sim.units import DT, STEPS_PER_SIMULATION
from repro.sim.world import World, WorldConfig
from repro.telemetry import Telemetry


@dataclass(frozen=True)
class SimulationConfig:
    """Configuration of one simulation run.

    Attributes:
        scenario: A scenario name (the paper's ``"S1"``..``"S4"`` or any
            name registered in :data:`repro.scenarios.CATALOG`) or a fully
            built :class:`~repro.sim.scenarios.Scenario`.
        initial_distance: Initial gap to the lead vehicle, m.  The default
            ``None`` keeps the scenario's own gap — for the paper's S1–S4
            that is 70 m, and for catalog/sampled scenarios the gap is
            part of the scenario design (multi-actor scripts are tuned to
            it), so only pass a distance when sweeping that axis
            deliberately.
        seed: Seed for every stochastic component of this run.
        attack_type: Attack type to inject, or ``None`` for an attack-free
            run.
        driver_enabled: Whether the simulated alert driver is in the loop.
        max_steps: Number of 10 ms control steps (paper: 5000 = 50 s).
        stop_after_collision: Seconds of simulation kept after the first
            collision before terminating early.
        noise: Sensor noise model.
        record_trajectory: Record the ego trajectory (needed for Fig. 7).
        driver_reaction_time: Average driver reaction time, s.
        hazard_params: Hazard detection thresholds.
        attack_tuning: Optional per-run attack-engine tuning (corruption
            limit sets, context-table thresholds) — the decode target of
            the attack-parameter search.  ``None`` keeps the defaults.
        track_safety_margin: Record the run's minimum lead TTC and gap
            into :attr:`RunResult.min_ttc` / :attr:`RunResult.min_lead_gap`
            (used by search objectives to rank near-misses); off by
            default so the hot loop pays nothing.
    """

    scenario: Union[str, Scenario] = "S1"
    initial_distance: Optional[float] = None
    seed: int = 0
    attack_type: Optional[AttackType] = None
    driver_enabled: bool = True
    max_steps: int = STEPS_PER_SIMULATION
    stop_after_collision: float = 0.5
    noise: SensorNoise = field(default_factory=SensorNoise)
    record_trajectory: bool = False
    driver_reaction_time: float = 2.5
    hazard_params: HazardParams = field(default_factory=HazardParams)
    attack_tuning: Optional[AttackTuning] = None
    track_safety_margin: bool = False

    def build_scenario(self) -> Scenario:
        if isinstance(self.scenario, Scenario):
            if self.initial_distance is None:
                return self.scenario
            return self.scenario.with_initial_distance(self.initial_distance)
        return build_scenario(self.scenario, self.initial_distance)


class Simulation:
    """A single end-to-end simulation run."""

    def __init__(
        self,
        config: SimulationConfig,
        strategy: Optional[AttackStrategy] = None,
        telemetry: Optional[Telemetry] = None,
        recorder: Optional[FlightRecorderConfig] = None,
    ):
        self.config = config
        self.strategy = strategy or NoAttackStrategy()
        self.telemetry = telemetry
        self._probe = None

        scenario = config.build_scenario()
        self.message_bus = MessageBus()
        self.can_bus = CANBus()
        # Alerts are accounted by the kernel's record stage from this
        # subscription (drained each step), instead of re-scanning a
        # message log after the run.
        self._alert_sub = self.message_bus.subscribe("alertEvent")

        self.world = World(
            WorldConfig(
                scenario=scenario,
                noise=config.noise,
                seed=config.seed,
                record_trajectory=config.record_trajectory,
            ),
            self.message_bus,
            self.can_bus,
        )
        self.openpilot = OpenPilot(OpenPilotConfig(), self.message_bus, self.can_bus)

        self.attack_engine: Optional[AttackEngine] = None
        if config.attack_type is not None and not isinstance(self.strategy, NoAttackStrategy):
            tuning = config.attack_tuning
            engine_kwargs: dict = {}
            if tuning is not None:
                engine_kwargs["context_table"] = tuning.build_context_table()
                engine_kwargs["corruption_limits"] = tuning.corruption_limits
            self.attack_engine = AttackEngine(
                self.message_bus,
                attack_type=config.attack_type,
                strategy=self.strategy,
                seed=config.seed + 7919,
                **engine_kwargs,
            )
            self.openpilot.add_output_hook(self.attack_engine.output_hook)

        self.driver = DriverReactionSimulator(
            self.message_bus,
            params=DriverParams(
                reaction_time=config.driver_reaction_time, enabled=config.driver_enabled
            ),
        )
        self.hazard_monitor = HazardMonitor(config.hazard_params)

        # The per-run flight recorder (black box): filled by a pipeline
        # tap, flushed in finalize() when the run turns interesting.
        self.flight: Optional[FlightRecorder] = None
        if recorder is not None:
            self.flight = recorder.recorder_for(self)

    def build_pipeline(self, result: RunResult) -> "tuple[StepContext, StepPipeline]":
        """Assemble the kernel step pipeline and its preallocated context.

        The context carries the per-cycle state (decoded car state, plans,
        commands, kinematics) through the ordered stages; everything is
        allocated here, once per run.
        """
        world = self.world
        scenario = world.config.scenario
        road = world.road
        ctx = StepContext(
            dt=DT,
            cruise_speed=scenario.cruise_speed,
            ego_width=world.ego.params.width,
            road_left_lane_line=road.left_lane_line,
            road_right_lane_line=road.right_lane_line,
            road_right_guardrail=road.right_guardrail,
            road_left_road_edge=road.left_road_edge,
            follower=world.follower,
            others=world.collision_others(),
        )
        # Seed the kinematic fields from the initial world state: the
        # drive stage of step k reads the post-step observation of step
        # k-1, which for the first step is the initial state.
        world.observe_into(ctx)
        pipeline = StepPipeline(
            (
                SenseStage(world),
                PerceiveStage(world),
                PlanStage(self.openpilot),
                InjectStage(self.openpilot),
                DriveStage(world, self.driver, self.openpilot, self.attack_engine, result),
                ActuateStage(world),
                DetectStage(world.lane_monitor, world.collision_detector, self.hazard_monitor),
                RecordStage(
                    world, result, self.attack_engine, self._alert_sub,
                    self.config.stop_after_collision,
                    track_safety_margin=self.config.track_safety_margin,
                ),
            )
        )
        return ctx, pipeline

    def prepare(self) -> "tuple[RunResult, StepContext, StepPipeline]":
        """Build the result record, context and pipeline for one run.

        Split out of :meth:`run` so the lockstep batch executor
        (:mod:`repro.kernel.batch`) can own the cycle loop itself; the
        pair ``prepare()`` / ``finalize()`` brackets exactly what
        :meth:`run` does around its loop.
        """
        config = self.config
        scenario = self.world.config.scenario
        result = RunResult(
            scenario=scenario.name,
            initial_distance=scenario.initial_distance,
            attack_type=config.attack_type.value if config.attack_type else None,
            strategy=self.strategy.name,
            seed=config.seed,
            driver_enabled=config.driver_enabled,
            duration=0.0,
        )
        ctx, pipeline = self.build_pipeline(result)
        if self.telemetry is not None:
            probe = self.telemetry.probe()
            if probe is not None:
                pipeline = probe.wrap(pipeline)
                self._probe = probe
        # Tap outermost so the capture observes the completed cycle and
        # a stacked probe keeps timing the bare stages, not the tap.
        if self.flight is not None:
            pipeline = TappedPipeline(pipeline, self.flight.capture)
        return result, ctx, pipeline

    def finalize(
        self, result: RunResult, ctx: StepContext, wall_ns: Optional[int] = None
    ) -> RunResult:
        """Post-loop accounting: durations, driver/attack records, trajectory."""
        result.duration = self.world.time
        result.lane_invasions = ctx.lane_invasions
        result.driver_perceived = self.driver.perceived
        result.driver_perception_reason = self.driver.perceived_reason or ""

        if self.attack_engine is not None:
            record = self.attack_engine.record
            result.attack_activated = record.activated
            result.attack_activation_time = record.activation_time
            result.attack_duration = record.duration
            result.attack_reason = record.activation_reason
            result.attack_stopped_by_driver = record.stopped_by_driver
            self.attack_engine.close()

        if self.config.record_trajectory:
            result.trajectory = list(self.world.trajectory)

        if self.flight is not None:
            self.flight.finalize(result)
        if self._probe is not None:
            self._probe.flush()
        if self.telemetry is not None:
            self.telemetry.record_run(
                result,
                steps=self.world.step_count,
                can_sent=self.can_bus.sent_count,
                can_tampered=self.can_bus.tampered_count,
                wall_ns=wall_ns,
            )
        return result

    def run(self) -> RunResult:
        """Run the simulation to completion and return the result record."""
        telemetry = self.telemetry
        result, ctx, pipeline = self.prepare()
        run_cycle = pipeline.run_cycle
        if telemetry is None:
            for _ in range(self.config.max_steps):
                run_cycle(ctx)
                if ctx.stop:
                    break
            return self.finalize(result, ctx)
        with telemetry.span(
            "run", scenario=result.scenario, seed=result.seed,
            attack=result.attack_type or "none",
        ):
            start_ns = telemetry.now_ns()
            for _ in range(self.config.max_steps):
                run_cycle(ctx)
                if ctx.stop:
                    break
            wall_ns = telemetry.now_ns() - start_ns
        return self.finalize(result, ctx, wall_ns=wall_ns)

    def flush_flight(self, trigger: str = "failure") -> None:
        """Best-effort black-box flush when the run dies mid-loop."""
        if self.flight is not None:
            self.flight.abort(trigger)


def run_simulation(
    config: SimulationConfig,
    strategy: Optional[AttackStrategy] = None,
    telemetry: Optional[Telemetry] = None,
    recorder: Optional[FlightRecorderConfig] = None,
) -> RunResult:
    """Build and run one simulation (convenience wrapper)."""
    sim = Simulation(config, strategy, telemetry=telemetry, recorder=recorder)
    if recorder is None:
        return sim.run()
    try:
        return sim.run()
    except BaseException:
        sim.flush_flight()
        raise

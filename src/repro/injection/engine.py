"""One complete fault-injection simulation.

The :class:`Simulation` reproduces the platform of Fig. 5 in the paper:
OpenPilot (ADAS substitute) bridged to the driving simulator, a driver
reaction simulator, and the attack/fault-injection engine hooked into the
ADAS output stage.  :func:`run_simulation` is the single-call entry point
used by examples, tests and the campaign runner.
"""

from dataclasses import dataclass, field, replace
from typing import Optional, Union

import numpy as np

from repro.adas.openpilot import OpenPilot, OpenPilotConfig
from repro.analysis.hazards import HazardMonitor, HazardParams
from repro.analysis.metrics import RunResult
from repro.can.bus import CANBus
from repro.core.attack_engine import AttackEngine
from repro.core.attack_types import AttackType
from repro.core.strategies import AttackStrategy, NoAttackStrategy
from repro.driver.reaction import DriverParams, DriverReactionSimulator
from repro.messaging.bus import MessageBus
from repro.messaging.log import MessageLog
from repro.sim.scenarios import Scenario, build_scenario
from repro.sim.sensors import SensorNoise
from repro.sim.units import DT, STEPS_PER_SIMULATION
from repro.sim.world import World, WorldConfig


@dataclass(frozen=True)
class SimulationConfig:
    """Configuration of one simulation run.

    Attributes:
        scenario: A scenario name (the paper's ``"S1"``..``"S4"`` or any
            name registered in :data:`repro.scenarios.CATALOG`) or a fully
            built :class:`~repro.sim.scenarios.Scenario`.
        initial_distance: Initial gap to the lead vehicle, m.  The default
            ``None`` keeps the scenario's own gap — for the paper's S1–S4
            that is 70 m, and for catalog/sampled scenarios the gap is
            part of the scenario design (multi-actor scripts are tuned to
            it), so only pass a distance when sweeping that axis
            deliberately.
        seed: Seed for every stochastic component of this run.
        attack_type: Attack type to inject, or ``None`` for an attack-free
            run.
        driver_enabled: Whether the simulated alert driver is in the loop.
        max_steps: Number of 10 ms control steps (paper: 5000 = 50 s).
        stop_after_collision: Seconds of simulation kept after the first
            collision before terminating early.
        noise: Sensor noise model.
        record_trajectory: Record the ego trajectory (needed for Fig. 7).
        driver_reaction_time: Average driver reaction time, s.
        hazard_params: Hazard detection thresholds.
    """

    scenario: Union[str, Scenario] = "S1"
    initial_distance: Optional[float] = None
    seed: int = 0
    attack_type: Optional[AttackType] = None
    driver_enabled: bool = True
    max_steps: int = STEPS_PER_SIMULATION
    stop_after_collision: float = 0.5
    noise: SensorNoise = field(default_factory=SensorNoise)
    record_trajectory: bool = False
    driver_reaction_time: float = 2.5
    hazard_params: HazardParams = field(default_factory=HazardParams)

    def build_scenario(self) -> Scenario:
        if isinstance(self.scenario, Scenario):
            if self.initial_distance is None:
                return self.scenario
            return self.scenario.with_initial_distance(self.initial_distance)
        return build_scenario(self.scenario, self.initial_distance)


class Simulation:
    """A single end-to-end simulation run."""

    def __init__(self, config: SimulationConfig, strategy: Optional[AttackStrategy] = None):
        self.config = config
        self.strategy = strategy or NoAttackStrategy()

        scenario = config.build_scenario()
        self.message_bus = MessageBus()
        self.can_bus = CANBus()
        self.alert_log = MessageLog(services=["alertEvent"]).attach(self.message_bus)

        self.world = World(
            WorldConfig(
                scenario=scenario,
                noise=config.noise,
                seed=config.seed,
                record_trajectory=config.record_trajectory,
            ),
            self.message_bus,
            self.can_bus,
        )
        self.openpilot = OpenPilot(OpenPilotConfig(), self.message_bus, self.can_bus)

        self.attack_engine: Optional[AttackEngine] = None
        if config.attack_type is not None and not isinstance(self.strategy, NoAttackStrategy):
            self.attack_engine = AttackEngine(
                self.message_bus,
                attack_type=config.attack_type,
                strategy=self.strategy,
                seed=config.seed + 7919,
            )
            self.openpilot.add_output_hook(self.attack_engine.output_hook)

        self.driver = DriverReactionSimulator(
            self.message_bus,
            params=DriverParams(
                reaction_time=config.driver_reaction_time, enabled=config.driver_enabled
            ),
        )
        self.hazard_monitor = HazardMonitor(config.hazard_params)

    def run(self) -> RunResult:
        """Run the simulation to completion and return the result record."""
        config = self.config
        scenario = self.world.config.scenario
        result = RunResult(
            scenario=scenario.name,
            initial_distance=scenario.initial_distance,
            attack_type=config.attack_type.value if config.attack_type else None,
            strategy=self.strategy.name,
            seed=config.seed,
            driver_enabled=config.driver_enabled,
            duration=0.0,
        )

        driver_engaged = False
        collision_time: Optional[float] = None
        # The lead gap/speed for the driver model: seeded from the initial
        # world state, then carried forward from each WorldStepResult (the
        # post-step observation of step k is exactly the pre-step
        # observation of step k+1), so it is computed once per step.
        lead_gap, lead_speed = self.world.lead_observation()

        for _ in range(config.max_steps):
            time = self.world.time
            self.world.publish_sensors()
            self.world.publish_car_can()
            car_state = self.world.read_car_state()

            if not driver_engaged:
                self.openpilot.step(time, car_state)
            executed_command = self.world.decode_actuator_command()

            decision = self.driver.update(
                time=time,
                observed_command=executed_command,
                v_ego=car_state.v_ego,
                cruise_speed=scenario.cruise_speed,
                lateral_offset=self.world.ego.state.d,
                heading_error=self.world.ego.state.heading_error,
                current_steering_deg=self.world.ego.state.steering_wheel_deg,
                lead_gap=lead_gap,
                lead_speed=lead_speed,
            )
            if decision.engaged:
                if not driver_engaged:
                    driver_engaged = True
                    result.driver_engaged = True
                    result.driver_engagement_time = time
                    self.openpilot.disengage()
                    if self.attack_engine is not None:
                        self.attack_engine.notify_driver_engaged()
                executed_command = decision.command

            # ``executed_command`` was just decoded from the same bus state
            # ``world.step(None)`` would decode from, so pass it through and
            # save the second per-step command decode.
            step_result = self.world.step(executed_command)
            lead_gap, lead_speed = step_result.lead_gap, step_result.lead_speed

            new_hazards = self.hazard_monitor.check(self.world)
            for event in new_hazards:
                result.record_hazard(event)
                if self.attack_engine is not None:
                    self.attack_engine.notify_hazard()

            if step_result.collision is not None:
                result.record_accident(step_result.collision)
                if collision_time is None:
                    collision_time = step_result.collision.time
            if collision_time is not None and self.world.time - collision_time >= config.stop_after_collision:
                break

        result.duration = self.world.time
        result.lane_invasions = len(self.world.lane_monitor.report.invasion_events)
        result.alerts = [
            (event.data.name, event.mono_time) for event in self.alert_log.by_service("alertEvent")
        ]
        result.driver_perceived = self.driver.perceived
        result.driver_perception_reason = self.driver.perceived_reason or ""

        if self.attack_engine is not None:
            record = self.attack_engine.record
            result.attack_activated = record.activated
            result.attack_activation_time = record.activation_time
            result.attack_duration = record.duration
            result.attack_reason = record.activation_reason
            result.attack_stopped_by_driver = record.stopped_by_driver
            self.attack_engine.close()

        if config.record_trajectory:
            result.trajectory = list(self.world.trajectory)
        return result


def run_simulation(
    config: SimulationConfig, strategy: Optional[AttackStrategy] = None
) -> RunResult:
    """Build and run one simulation (convenience wrapper)."""
    return Simulation(config, strategy).run()

"""Experiment campaigns: sweeps over the paper's experiment grid.

The paper's grid is: 4 driving scenarios × 3 initial distances × 6 attack
types × 20 repetitions = 1,440 simulations per strategy (14,400 for the
Random-ST+DUR baseline, which uses more repetitions to cover the random
parameter space).  :class:`Campaign` runs an arbitrary subset of that grid
with deterministic per-run seeding and returns the :class:`RunResult`
records for aggregation.
"""

from contextlib import nullcontext
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.analysis.metrics import RunResult
from repro.core.attack_types import AttackType
from repro.core.strategies import AttackStrategy, strategy_by_name
from repro.injection.engine import SimulationConfig, run_simulation
from repro.sim.scenarios import INITIAL_DISTANCES, Scenario
from repro.telemetry import Telemetry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.obs.recorder import FlightRecorderConfig
    from repro.resilience.chaos import ChaosPolicy
    from repro.resilience.supervisor import SupervisedOutcome, SupervisionPolicy
    from repro.service.cache import RunCache

StrategyFactory = Callable[[], AttackStrategy]

#: A grid scenario: a name resolved through the catalog, or a fully built
#: spec (e.g. drawn from :class:`repro.scenarios.ScenarioSampler`).
ScenarioLike = Union[str, Scenario]

ALL_ATTACK_TYPES: Tuple[AttackType, ...] = tuple(AttackType)


@dataclass(frozen=True)
class CampaignConfig:
    """Configuration of one campaign (one strategy over a grid).

    Attributes:
        strategy_name: Table III strategy name (used for seeding and in
            the results); the actual strategy object comes from
            ``strategy_factory`` or :func:`strategy_by_name`.
        scenarios: Scenarios to include: catalog names and/or fully built
            :class:`~repro.sim.scenarios.Scenario` objects (e.g. sampled
            parametric variants).
        initial_distances: Initial gaps (m) to include; a ``None`` entry
            keeps each scenario's own gap.
        attack_types: Attack types to include (``()`` for attack-free runs).
        repetitions: Repetitions per grid cell.
        driver_enabled: Whether the simulated driver is in the loop.
        master_seed: Seed from which all per-run seeds are derived.
        max_steps: Steps per simulation.
    """

    strategy_name: str = "Context-Aware"
    scenarios: Sequence[ScenarioLike] = ("S1", "S2", "S3", "S4")
    initial_distances: Sequence[Optional[float]] = INITIAL_DISTANCES
    attack_types: Sequence[AttackType] = ALL_ATTACK_TYPES
    repetitions: int = 20
    driver_enabled: bool = True
    master_seed: int = 2022
    max_steps: int = 5000

    @property
    def total_runs(self) -> int:
        cells = len(self.scenarios) * len(self.initial_distances) * max(1, len(self.attack_types))
        return cells * self.repetitions


@dataclass(frozen=True)
class CampaignCell:
    """One cell of the campaign grid."""

    scenario: ScenarioLike
    initial_distance: Optional[float]
    attack_type: Optional[AttackType]
    repetition: int
    seed: int


class Campaign:
    """Enumerates and runs a campaign grid."""

    def __init__(
        self,
        config: CampaignConfig,
        strategy_factory: Optional[StrategyFactory] = None,
    ):
        self.config = config
        self.strategy_factory = strategy_factory or (
            lambda: strategy_by_name(config.strategy_name)
        )

    def cells(self) -> Iterator[CampaignCell]:
        """Yield every grid cell with its deterministic seed."""
        config = self.config
        attack_types: Sequence[Optional[AttackType]] = (
            list(config.attack_types) if config.attack_types else [None]
        )
        # Seeds derived deterministically from the master seed and the cell
        # index, so any cell can be re-run in isolation.
        index = 0
        for scenario in config.scenarios:
            for distance in config.initial_distances:
                for attack_type in attack_types:
                    for repetition in range(config.repetitions):
                        seed_sequence = np.random.SeedSequence([config.master_seed, index])
                        seed = int(seed_sequence.generate_state(1)[0] % (2**31))
                        index += 1
                        yield CampaignCell(
                            scenario=scenario,
                            initial_distance=distance,
                            attack_type=attack_type,
                            repetition=repetition,
                            seed=seed,
                        )

    def cell_task(self, cell: CampaignCell) -> "Tuple[SimulationConfig, Optional[AttackStrategy]]":
        """The ``(SimulationConfig, strategy)`` pair for one grid cell.

        Single place the cell → simulation mapping lives; :meth:`run_cell`
        executes it directly and the lockstep batch executor collects many
        of them (each call builds a fresh strategy instance, which batched
        execution requires).
        """
        config = SimulationConfig(
            scenario=cell.scenario,
            initial_distance=cell.initial_distance,
            seed=cell.seed,
            attack_type=cell.attack_type,
            driver_enabled=self.config.driver_enabled,
            max_steps=self.config.max_steps,
        )
        strategy = self.strategy_factory() if cell.attack_type is not None else None
        return config, strategy

    def run_cell(
        self,
        cell: CampaignCell,
        telemetry: Optional[Telemetry] = None,
        recorder: Optional["FlightRecorderConfig"] = None,
    ) -> RunResult:
        """Run one cell of the grid."""
        config, strategy = self.cell_task(cell)
        return run_simulation(config, strategy, telemetry=telemetry, recorder=recorder)

    def run_resilient(
        self,
        progress: Optional[Callable[[int, int], None]] = None,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        batch_size: Optional[int] = None,
        supervision: Optional["SupervisionPolicy"] = None,
        chaos: Optional["ChaosPolicy"] = None,
        checkpoint_path: Optional[str] = None,
        on_result: Optional[Callable[[int, RunResult], None]] = None,
        telemetry: Optional[Telemetry] = None,
        cache: Optional["RunCache"] = None,
    ) -> "SupervisedOutcome":
        """Run under supervision, returning results *and* the recovery trail.

        The :class:`~repro.resilience.SupervisedOutcome` carries the
        cell-aligned results (``None`` where a poison cell was
        quarantined) and the :class:`~repro.resilience.ExecutionReport`
        (retries, pool respawns, degradations, quarantine, sims paid vs
        loaded from the checkpoint and/or the shared run ``cache``).
        """
        from repro.resilience.supervisor import run_supervised_campaign

        return run_supervised_campaign(
            self,
            policy=supervision,
            workers=workers,
            chunk_size=chunk_size,
            batch_size=batch_size,
            progress=progress,
            chaos=chaos,
            checkpoint_path=checkpoint_path,
            on_result=on_result,
            telemetry=telemetry,
            cache=cache,
        )

    def run(
        self,
        progress: Optional[Callable[[int, int], None]] = None,
        parallel: bool = False,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        batch_size: Optional[int] = None,
        supervision: Optional["SupervisionPolicy"] = None,
        chaos: Optional["ChaosPolicy"] = None,
        checkpoint_path: Optional[str] = None,
        telemetry: Optional[Telemetry] = None,
        cache: Optional["RunCache"] = None,
    ) -> List[RunResult]:
        """Run the whole campaign.

        Args:
            progress: Optional callback ``(completed, total)`` invoked after
                every run (sequential) or chunk of runs (parallel).
            parallel: Run on a process pool.  Results are bit-identical to
                a sequential run because every cell's seed is derived from
                ``(master_seed, cell index)`` alone.
            workers: Worker process count; a value > 1 implies
                ``parallel=True`` (default: one worker per CPU when
                parallel).
            chunk_size: Cells per dispatched chunk (parallel only).
            batch_size: Lockstep batch width (> 1 steps that many runs
                through the kernel together, amortising the per-step
                Python dispatch; see :class:`repro.kernel.BatchRunner`).
                Composes with ``workers``: each pool worker batches the
                cells of its chunk.  Results are bit-identical either way.
            supervision: Fault-tolerance policy
                (:class:`repro.resilience.SupervisionPolicy`): per-chunk
                timeouts, seeded retry/backoff, dead-worker respawn,
                quarantine, graceful degradation.  Results stay
                bit-identical; quarantined cells are withheld from the
                returned list (see :meth:`run_resilient` for the report).
            chaos: Worker fault-injection policy (testing only); implies
                supervision.
            checkpoint_path: Crash-safe checkpoint file; a rerun resumes
                paying only for unfinished cells.  Implies supervision.
            telemetry: Optional :class:`~repro.telemetry.Telemetry` handle;
                when given, the campaign records run/CAN/hazard counters
                (and, sampled, per-stage timings) into it on every
                execution path — sequential, batched, pooled and
                supervised views merge to the same deterministic snapshot.
            cache: Optional shared run cache
                (:class:`repro.service.RunCache`): every cell the cache
                already holds is served without simulating, and fresh
                results are stored back under their content fingerprints
                — the returned list is bit-identical to an uncached run.
                With ``cache`` and ``workers > 1`` the cells are pickled
                to the pool as tasks, so the strategy factory must
                produce picklable strategies on that path.
        """
        if supervision is not None or chaos is not None or checkpoint_path is not None:
            return self.run_resilient(
                progress=progress,
                workers=workers,
                chunk_size=chunk_size,
                batch_size=batch_size,
                supervision=supervision,
                chaos=chaos,
                checkpoint_path=checkpoint_path,
                telemetry=telemetry,
                cache=cache,
            ).completed_results
        total = self.config.total_runs

        def campaign_span(mode: str):
            if telemetry is None:
                return nullcontext()
            return telemetry.span("campaign", mode=mode, runs=total)

        if cache is not None:
            from repro.injection.executor import default_worker_count, run_simulations

            if (parallel or workers is not None) and workers is None:
                workers = default_worker_count()
            tasks = [self.cell_task(cell) for cell in self.cells()]
            with campaign_span("cached"):
                return run_simulations(
                    tasks,
                    workers=workers,
                    chunk_size=chunk_size,
                    progress=progress,
                    batch_size=batch_size,
                    telemetry=telemetry,
                    cache=cache,
                )
        if parallel or (workers is not None and workers > 1):
            from repro.injection.executor import ParallelCampaignRunner

            runner = ParallelCampaignRunner(
                self,
                workers=workers,
                chunk_size=chunk_size,
                batch_size=batch_size,
                telemetry=telemetry,
            )
            with campaign_span("parallel"):
                return runner.run(progress=progress)
        if batch_size is not None and batch_size > 1:
            from repro.kernel.batch import run_batched

            tasks = [self.cell_task(cell) for cell in self.cells()]
            with campaign_span("batched"):
                return run_batched(
                    tasks, batch_size=batch_size, progress=progress, telemetry=telemetry
                )
        results: List[RunResult] = []
        with campaign_span("sequential"):
            for index, cell in enumerate(self.cells(), start=1):
                results.append(self.run_cell(cell, telemetry=telemetry))
                if progress is not None:
                    progress(index, total)
        return results


def run_campaign(
    config: CampaignConfig,
    strategy_factory: Optional[StrategyFactory] = None,
    workers: Optional[int] = None,
    batch_size: Optional[int] = None,
    supervision: Optional["SupervisionPolicy"] = None,
    checkpoint_path: Optional[str] = None,
    telemetry: Optional[Telemetry] = None,
    cache: Optional["RunCache"] = None,
) -> List[RunResult]:
    """Convenience wrapper: build and run a campaign."""
    return Campaign(config, strategy_factory).run(
        workers=workers,
        batch_size=batch_size,
        supervision=supervision,
        checkpoint_path=checkpoint_path,
        telemetry=telemetry,
        cache=cache,
    )

"""Fault-injection engine and experiment campaigns.

* :mod:`repro.injection.engine` — wires one complete simulation together
  (world, ADAS, attack engine, driver, hazard monitors) and runs it.
* :mod:`repro.injection.campaign` — sweeps over scenarios, initial
  distances, attack types, strategies and repetitions, with deterministic
  per-run seeding, to regenerate the paper's experiment grids.
* :mod:`repro.injection.executor` — process-pool execution of campaigns
  and ad-hoc simulation lists with bit-identical results.
"""

from repro.injection.engine import SimulationConfig, Simulation, run_simulation
from repro.injection.campaign import CampaignConfig, Campaign, run_campaign
from repro.injection.executor import ParallelCampaignRunner, run_simulations

__all__ = [
    "SimulationConfig",
    "Simulation",
    "run_simulation",
    "CampaignConfig",
    "Campaign",
    "run_campaign",
    "ParallelCampaignRunner",
    "run_simulations",
]

"""Reproduction of "Strategic Safety-Critical Attacks Against an Advanced
Driver Assistance System" (DSN 2022).

The package is organised as a set of substrates (driving simulator, ADAS
stack, messaging layer, CAN bus, driver model) plus the paper's primary
contribution, the Context-Aware attack engine, in :mod:`repro.core`.

Quick start::

    from repro.injection import SimulationConfig, run_simulation
    from repro.core.strategies import ContextAwareStrategy

    config = SimulationConfig(scenario="S1", initial_distance=70.0, seed=0)
    result = run_simulation(config, strategy=ContextAwareStrategy())
    print(result.hazards, result.accidents, result.time_to_hazard)
"""

from repro.version import __version__

__all__ = ["__version__"]

"""Driver monitoring model.

OpenPilot is a fail-safe passive system: it requires the driver to stay
alert and "jolts" (warns) a distracted driver.  The experiments in the
paper assume an alert driver, so the default model reports an attentive
driver with full awareness; a distraction profile can be injected to study
how a distracted driver changes the outcome (used by the extension bench
on driver reaction time).
"""

from dataclasses import dataclass
from typing import Callable, Optional

from repro.messaging.messages import DriverMonitoringState
from repro.sim.units import clamp


@dataclass(frozen=True)
class DriverMonitoringParams:
    """Tuning of the awareness decay/recovery dynamics."""

    decay_rate: float = 1.0 / 6.0     # awareness lost per second while distracted
    recovery_rate: float = 1.0 / 2.0  # awareness regained per second while attentive
    warn_threshold: float = 0.5       # awareness below which a warning is issued


class DriverMonitoring:
    """Tracks driver awareness and issues distraction warnings."""

    def __init__(
        self,
        params: DriverMonitoringParams = DriverMonitoringParams(),
        distraction_profile: Optional[Callable[[float], bool]] = None,
    ):
        """Args:
            params: Awareness dynamics parameters.
            distraction_profile: Optional ``f(time) -> bool`` returning True
                when the driver is distracted at ``time``.  ``None`` models
                the paper's always-alert driver.
        """
        self.params = params
        self.distraction_profile = distraction_profile
        self.awareness = 1.0
        self.warning_active = False
        self._last_state: Optional[DriverMonitoringState] = None

    def update(self, time: float, dt: float) -> DriverMonitoringState:
        """Advance the awareness model by ``dt`` seconds.

        Payloads on the bus are shared and treated as immutable, so the
        previous state object is reused while its values are unchanged —
        with the paper's always-alert driver that is every 10 ms cycle
        after the first, which keeps the 100 Hz pub/sub fan-out free of
        per-step payload construction.
        """
        distracted = bool(self.distraction_profile(time)) if self.distraction_profile else False
        if distracted:
            self.awareness -= self.params.decay_rate * dt
        else:
            self.awareness += self.params.recovery_rate * dt
        self.awareness = clamp(self.awareness, 0.0, 1.0)
        self.warning_active = self.awareness < self.params.warn_threshold
        last = self._last_state
        if (
            last is not None
            and last.is_distracted == distracted
            and last.awareness == self.awareness
        ):
            return last
        state = DriverMonitoringState(
            face_detected=True,
            is_distracted=distracted,
            awareness=self.awareness,
        )
        self._last_state = state
        return state

"""Adaptive Cruise Control: longitudinal planner and controller.

The planner produces a target acceleration that tracks the set cruise
speed while keeping a time-headway-based following distance to the lead
vehicle reported by the radar.  It also computes the Forward Collision
Warning *precondition* (the deceleration that would be required to avoid
the lead); the alert manager turns that into an FCW alert based on the
final output brake command, matching the paper's observation that FCW is
tied to the brake output crossing OpenPilot's safety threshold.
"""

from dataclasses import dataclass
from typing import Optional

from repro.adas.limits import ISO_SAFETY_LIMITS, SafetyLimits
from repro.messaging.messages import CarState, RadarState
from repro.sim.units import clamp


@dataclass(slots=True)
class LongitudinalPlan:
    """Output of the longitudinal planner for one control cycle.

    The kernel's step pipeline reuses one instance per simulation
    (:meth:`LongitudinalPlanner.update_into` overwrites every field each
    cycle), so the dataclass is mutable with ``slots``; treat instances
    returned by the public :meth:`LongitudinalPlanner.update` as
    immutable snapshots.
    """

    desired_accel: float = 0.0      # m/s^2, after planner limits
    v_target: float = 0.0           # m/s
    has_lead: bool = False
    lead_distance: float = float("inf")
    lead_speed: float = 0.0
    time_to_collision: float = float("inf")
    required_decel: float = 0.0     # m/s^2 (positive magnitude) to avoid the lead


@dataclass(frozen=True)
class LongitudinalParams:
    """Tuning of the ACC control law."""

    follow_time_headway: float = 2.5     # s, desired headway while following
    standstill_distance: float = 4.0     # m, desired gap at rest
    cruise_gain: float = 0.4             # 1/s, speed-tracking proportional gain
    gap_gain: float = 0.08               # 1/s^2
    closing_gain: float = 0.30           # 1/s
    planner_limits: SafetyLimits = ISO_SAFETY_LIMITS


class LongitudinalPlanner:
    """ACC planner producing a desired acceleration each cycle."""

    def __init__(self, params: LongitudinalParams = LongitudinalParams()):
        self.params = params

    def update(self, car_state: CarState, radar: Optional[RadarState]) -> LongitudinalPlan:
        """Compute the longitudinal plan for the current cycle."""
        plan = LongitudinalPlan()
        self.update_into(plan, car_state, radar)
        return plan

    def update_into(
        self, plan: LongitudinalPlan, car_state: CarState, radar: Optional[RadarState]
    ) -> LongitudinalPlan:
        """Compute the plan in place, overwriting every field of ``plan``."""
        params = self.params
        v_ego = car_state.v_ego
        v_cruise = car_state.cruise_speed

        cruise_accel = params.cruise_gain * (v_cruise - v_ego)

        lead = radar.lead_one if radar is not None else None
        if lead is None or not lead.status:
            plan.desired_accel = clamp(
                cruise_accel, params.planner_limits.brake_min, params.planner_limits.accel_max
            )
            plan.v_target = v_cruise
            plan.has_lead = False
            plan.lead_distance = float("inf")
            plan.lead_speed = 0.0
            plan.time_to_collision = float("inf")
            plan.required_decel = 0.0
            return plan

        gap = max(0.0, lead.d_rel)
        v_lead = max(0.0, v_ego + lead.v_rel)
        desired_gap = params.standstill_distance + params.follow_time_headway * v_ego
        follow_accel = params.gap_gain * (gap - desired_gap) + params.closing_gain * (v_lead - v_ego)

        desired = min(cruise_accel, follow_accel)
        desired = clamp(desired, params.planner_limits.brake_min, params.planner_limits.accel_max)

        closing_speed = v_ego - v_lead
        ttc = gap / closing_speed if closing_speed > 0.1 else float("inf")
        required_decel = 0.0
        if closing_speed > 0.0:
            effective_gap = max(gap - params.standstill_distance / 2.0, 0.5)
            required_decel = closing_speed ** 2 / (2.0 * effective_gap)

        plan.desired_accel = desired
        plan.v_target = min(v_cruise, v_lead) if gap < desired_gap else v_cruise
        plan.has_lead = True
        plan.lead_distance = gap
        plan.lead_speed = v_lead
        plan.time_to_collision = ttc
        plan.required_decel = required_decel
        return plan

"""Adaptive Cruise Control: longitudinal planner and controller.

The planner produces a target acceleration that tracks the set cruise
speed while keeping a time-headway-based following distance to the lead
vehicle reported by the radar.  It also computes the Forward Collision
Warning *precondition* (the deceleration that would be required to avoid
the lead); the alert manager turns that into an FCW alert based on the
final output brake command, matching the paper's observation that FCW is
tied to the brake output crossing OpenPilot's safety threshold.
"""

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.adas.limits import ISO_SAFETY_LIMITS, SafetyLimits
from repro.messaging.messages import CarState, RadarState
from repro.sim.units import clamp

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.batch import BatchState


@dataclass(slots=True)
class LongitudinalPlan:
    """Output of the longitudinal planner for one control cycle.

    The kernel's step pipeline reuses one instance per simulation
    (:meth:`LongitudinalPlanner.update_into` overwrites every field each
    cycle), so the dataclass is mutable with ``slots``; treat instances
    returned by the public :meth:`LongitudinalPlanner.update` as
    immutable snapshots.
    """

    desired_accel: float = 0.0      # m/s^2, after planner limits
    v_target: float = 0.0           # m/s
    has_lead: bool = False
    lead_distance: float = float("inf")
    lead_speed: float = 0.0
    time_to_collision: float = float("inf")
    required_decel: float = 0.0     # m/s^2 (positive magnitude) to avoid the lead


@dataclass(frozen=True)
class LongitudinalParams:
    """Tuning of the ACC control law."""

    follow_time_headway: float = 2.5     # s, desired headway while following
    standstill_distance: float = 4.0     # m, desired gap at rest
    cruise_gain: float = 0.4             # 1/s, speed-tracking proportional gain
    gap_gain: float = 0.08               # 1/s^2
    closing_gain: float = 0.30           # 1/s
    planner_limits: SafetyLimits = ISO_SAFETY_LIMITS


class LongitudinalPlanner:
    """ACC planner producing a desired acceleration each cycle."""

    def __init__(self, params: LongitudinalParams = LongitudinalParams()):
        self.params = params

    def update(self, car_state: CarState, radar: Optional[RadarState]) -> LongitudinalPlan:
        """Compute the longitudinal plan for the current cycle."""
        plan = LongitudinalPlan()
        self.update_into(plan, car_state, radar)
        return plan

    def update_into(
        self, plan: LongitudinalPlan, car_state: CarState, radar: Optional[RadarState]
    ) -> LongitudinalPlan:
        """Compute the plan in place, overwriting every field of ``plan``."""
        params = self.params
        v_ego = car_state.v_ego
        v_cruise = car_state.cruise_speed

        cruise_accel = params.cruise_gain * (v_cruise - v_ego)

        lead = radar.lead_one if radar is not None else None
        if lead is None or not lead.status:
            plan.desired_accel = clamp(
                cruise_accel, params.planner_limits.brake_min, params.planner_limits.accel_max
            )
            plan.v_target = v_cruise
            plan.has_lead = False
            plan.lead_distance = float("inf")
            plan.lead_speed = 0.0
            plan.time_to_collision = float("inf")
            plan.required_decel = 0.0
            return plan

        gap = max(0.0, lead.d_rel)
        v_lead = max(0.0, v_ego + lead.v_rel)
        desired_gap = params.standstill_distance + params.follow_time_headway * v_ego
        follow_accel = params.gap_gain * (gap - desired_gap) + params.closing_gain * (v_lead - v_ego)

        desired = min(cruise_accel, follow_accel)
        desired = clamp(desired, params.planner_limits.brake_min, params.planner_limits.accel_max)

        closing_speed = v_ego - v_lead
        ttc = gap / closing_speed if closing_speed > 0.1 else float("inf")
        required_decel = 0.0
        if closing_speed > 0.0:
            effective_gap = max(gap - params.standstill_distance / 2.0, 0.5)
            required_decel = closing_speed ** 2 / (2.0 * effective_gap)

        plan.desired_accel = desired
        plan.v_target = min(v_cruise, v_lead) if gap < desired_gap else v_cruise
        plan.has_lead = True
        plan.lead_distance = gap
        plan.lead_speed = v_lead
        plan.time_to_collision = ttc
        plan.required_decel = required_decel
        return plan


def update_long_columns(state: "BatchState", n: int) -> None:
    """Vectorised :meth:`LongitudinalPlanner.update_into` over batch rows.

    Reads the gathered plan inputs (``plan_v_ego``, ``plan_v_cruise``,
    ``plan_d_rel``, ``plan_v_rel``, ``plan_has_lead``) and per-run planner
    parameters from :class:`repro.kernel.batch.BatchState`, and writes the
    longitudinal plan output columns, bit-identically to the scalar
    planner for every row.  Rows without a lead carry garbage in the
    radar columns; every use of them is masked by ``plan_has_lead``.
    The one non-ufunc piece — ``closing_speed ** 2`` uses Python float
    pow in the scalar path — stays a (rare) per-row loop.
    """
    v_ego = state.plan_v_ego[:n]
    v_cruise = state.plan_v_cruise[:n]
    has_lead = state.plan_has_lead[:n]
    cruise = state.w0[:n]
    gap = state.w1[:n]
    v_lead = state.w2[:n]
    desired_gap = state.w3[:n]
    follow = state.w4[:n]
    w5 = state.w5[:n]

    np.subtract(v_cruise, v_ego, out=cruise)
    np.multiply(state.p_cruise_gain[:n], cruise, out=cruise)

    np.maximum(state.plan_d_rel[:n], 0.0, out=gap)
    np.add(v_ego, state.plan_v_rel[:n], out=v_lead)
    np.maximum(v_lead, 0.0, out=v_lead)
    np.multiply(state.p_follow_headway[:n], v_ego, out=desired_gap)
    np.add(state.p_standstill[:n], desired_gap, out=desired_gap)
    np.subtract(gap, desired_gap, out=follow)
    np.multiply(state.p_gap_gain[:n], follow, out=follow)
    np.subtract(v_lead, v_ego, out=w5)
    np.multiply(state.p_closing_gain[:n], w5, out=w5)
    np.add(follow, w5, out=follow)

    desired = state.plan_accel[:n]
    np.minimum(cruise, follow, out=w5)
    np.copyto(desired, np.where(has_lead, w5, cruise))
    np.minimum(desired, state.p_long_accel_max[:n], out=desired)
    np.maximum(desired, state.p_long_brake_min[:n], out=desired)

    closing = w5
    np.subtract(v_ego, v_lead, out=closing)
    ttc = state.plan_ttc[:n]
    ttc.fill(np.inf)
    np.divide(gap, closing, out=ttc, where=has_lead & (closing > 0.1))

    decel = state.plan_req_decel[:n]
    decel.fill(0.0)
    closing_rows = np.flatnonzero(has_lead & (closing > 0.0))
    if closing_rows.size:
        eff = cruise  # scratch reuse; the cruise accel is folded in already
        np.divide(state.p_standstill[:n], 2.0, out=eff)
        np.subtract(gap, eff, out=eff)
        np.maximum(eff, 0.5, out=eff)
        for j in closing_rows:
            c = float(closing[j])
            decel[j] = c ** 2 / (2.0 * float(eff[j]))

    near = gap < desired_gap
    np.copyto(
        state.plan_v_target[:n],
        np.where(has_lead & near, np.minimum(v_cruise, v_lead), v_cruise),
    )
    np.copyto(state.plan_lead_dist[:n], np.where(has_lead, gap, np.inf))
    np.copyto(state.plan_lead_speed[:n], np.where(has_lead, v_lead, 0.0))

"""Panda safety model.

Panda is Comma.ai's universal OBD-II adapter; its firmware enforces safety
checks on every CAN message OpenPilot sends to the car (torque/steering
rate limits, acceleration bounds).  When OpenPilot is bridged to a
simulator, Panda is not in the loop (Section IV of the paper), but the
attacker still treats its limits as constraints so the same attack would
survive on a real car.  This module implements the checks so experiments
and tests can ask "would Panda have blocked this frame sequence?".
"""

from dataclasses import dataclass
from typing import List, Optional

from repro.adas.limits import PANDA_LIMITS, SafetyLimits
from repro.can.checksum import verify_checksum
from repro.can.frame import CANFrame
from repro.can.honda import ADDR, HONDA_DBC


@dataclass(frozen=True)
class PandaViolation:
    """A single safety-check violation detected by the Panda model."""

    time: float
    address: int
    rule: str
    value: float


class PandaSafetyModel:
    """Stateful re-implementation of the Panda output safety checks."""

    def __init__(self, limits: SafetyLimits = PANDA_LIMITS):
        self.limits = limits
        self.violations: List[PandaViolation] = []
        self._last_steer_cmd: Optional[float] = None

    @property
    def violation_count(self) -> int:
        return len(self.violations)

    def reset(self) -> None:
        self.violations.clear()
        self._last_steer_cmd = None

    def check_frame(self, frame: CANFrame, time: float = 0.0) -> List[PandaViolation]:
        """Check one outgoing frame; returns (and records) any violations."""
        found: List[PandaViolation] = []
        if frame.address not in (ADDR["STEERING_CONTROL"], ADDR["ACC_CONTROL"]):
            return found

        if not verify_checksum(frame.address, frame.data):
            found.append(PandaViolation(time, frame.address, "bad_checksum", 0.0))
            self.violations.extend(found)
            return found

        if frame.address == ADDR["ACC_CONTROL"]:
            decoded = HONDA_DBC.decode(frame, signals=("ACCEL_COMMAND", "BRAKE_COMMAND"))
            accel = decoded["ACCEL_COMMAND"]
            brake = decoded["BRAKE_COMMAND"]
            if accel > self.limits.accel_max + 1e-6:
                found.append(PandaViolation(time, frame.address, "accel_too_high", accel))
            if -brake < self.limits.brake_min - 1e-6:
                found.append(PandaViolation(time, frame.address, "brake_too_high", brake))
        else:
            steer_cmd = HONDA_DBC.decode_signal(frame, "STEER_ANGLE_CMD")
            if self._last_steer_cmd is not None:
                delta = steer_cmd - self._last_steer_cmd
                if abs(delta) > self.limits.steer_delta_max_deg + 1e-6:
                    found.append(
                        PandaViolation(time, frame.address, "steer_rate_too_high", delta)
                    )
            self._last_steer_cmd = steer_cmd

        self.violations.extend(found)
        return found

    def would_block(self, frame: CANFrame, time: float = 0.0) -> bool:
        """True if the frame violates the safety model (without recording)."""
        saved_violations = list(self.violations)
        saved_steer = self._last_steer_cmd
        try:
            return bool(self.check_frame(frame, time))
        finally:
            self.violations = saved_violations
            self._last_steer_cmd = saved_steer

"""ADAS substrate (OpenPilot substitute).

Implements the Automated Lane Centering (ALC) and Adaptive Cruise Control
(ACC) functions of a Level-2 driver assistance system, together with the
safety mechanisms the paper evaluates against:

* output limits derived from ISO 22179-style safety principles
  (Section II-A of the paper): ±2 m/s² acceleration, −3.5 m/s²
  deceleration, bounded per-frame steering change;
* an alert manager raising Forward Collision Warning (FCW) and
  ``steerSaturated`` alerts;
* a driver-monitoring model;
* a Panda-style CAN safety model (used as the constraint set for the
  attack's strategic value corruption, exactly as in the paper, since
  Panda checks are not enforced when OpenPilot is bridged to a
  simulator).
"""

from repro.adas.limits import SafetyLimits, OPENPILOT_LIMITS, ISO_SAFETY_LIMITS, PANDA_LIMITS
from repro.adas.longitudinal import LongitudinalPlanner, LongitudinalPlan
from repro.adas.lateral import LateralPlanner, LateralPlan
from repro.adas.alerts import AlertManager, Alert
from repro.adas.driver_monitoring import DriverMonitoring
from repro.adas.panda import PandaSafetyModel, PandaViolation
from repro.adas.openpilot import OpenPilot, OpenPilotConfig, OutputHook

__all__ = [
    "SafetyLimits",
    "OPENPILOT_LIMITS",
    "ISO_SAFETY_LIMITS",
    "PANDA_LIMITS",
    "LongitudinalPlanner",
    "LongitudinalPlan",
    "LateralPlanner",
    "LateralPlan",
    "AlertManager",
    "Alert",
    "DriverMonitoring",
    "PandaSafetyModel",
    "PandaViolation",
    "OpenPilot",
    "OpenPilotConfig",
    "OutputHook",
]

"""Automated Lane Centering: lateral planner and steering controller.

The planner converts the perception model's lane geometry into a desired
path curvature (lane-centre tracking with curvature feed-forward); the
controller turns that into a steering wheel angle command, subject to the
per-frame steering rate limit.  When the demanded angle exceeds what the
rate limit allows for a sustained period the plan is flagged as
*saturated*, which is the condition behind OpenPilot's ``steerSaturated``
alert (the only alert the paper observed during attacks).
"""

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.adas.limits import OPENPILOT_LIMITS, SafetyLimits
from repro.messaging.messages import CarState, ModelV2
from repro.sim.units import RAD_TO_DEG, clamp, rad_to_deg
from repro.sim.vehicle import VehicleParams

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.batch import BatchState


@dataclass(slots=True)
class LateralPlan:
    """Output of the lateral planner/controller for one control cycle.

    The kernel's step pipeline reuses one instance per simulation
    (:meth:`LateralPlanner.update_into` overwrites every field each
    cycle), so the dataclass is mutable with ``slots``; treat instances
    returned by the public :meth:`LateralPlanner.update` as immutable
    snapshots.
    """

    desired_curvature: float = 0.0  # 1/m, + = left
    desired_steering_deg: float = 0.0  # steering wheel angle demanded by the controller
    output_steering_deg: float = 0.0   # rate-limited command actually emitted
    saturated: bool = False         # demand persistently exceeds actuation authority


@dataclass(frozen=True)
class LateralParams:
    """Tuning of the ALC control law.

    The gains are deliberately modest and purely proportional: the paper
    observes (Observation 1) that OpenPilot's ALC bridged to a simulator
    does not hold the lane centre perfectly and produces frequent lane
    invasion events even without attacks; a soft controller with
    curvature feed-forward error reproduces that behaviour.
    """

    lane_gain: float = 0.006            # curvature per metre of lateral error
    heading_gain: float = 0.12          # curvature per radian of heading error
    curvature_feedforward: float = 0.9  # fraction of the model's path curvature fed forward
    saturation_angle_deg: float = 25.0  # demand-vs-measured mismatch that counts as saturated
    saturation_frames: int = 120        # consecutive frames (1.2 s) before flagging saturation
    output_limits: SafetyLimits = OPENPILOT_LIMITS


class LateralPlanner:
    """ALC planner + steering controller."""

    def __init__(
        self,
        params: LateralParams = LateralParams(),
        vehicle: VehicleParams = VehicleParams(),
    ):
        self.params = params
        self.vehicle = vehicle
        self._saturated_count = 0

    def update(self, car_state: CarState, model: ModelV2) -> LateralPlan:
        """Compute the steering command for the current cycle."""
        plan = LateralPlan()
        self.update_into(plan, car_state, model)
        return plan

    def update_into(self, plan: LateralPlan, car_state: CarState, model: ModelV2) -> LateralPlan:
        """Compute the plan in place, overwriting every field of ``plan``."""
        params = self.params

        # Lateral error: the model reports the vehicle's offset from the lane
        # centre (positive left), so steer towards -offset.
        lateral_error = -model.lateral_offset
        heading_error = -model.heading_error

        desired_curvature = (
            params.lane_gain * lateral_error
            + params.heading_gain * heading_error
            + params.curvature_feedforward * model.curvature
        )

        wheel_angle_rad = math.atan(desired_curvature * self.vehicle.wheelbase)
        desired_steering_deg = rad_to_deg(wheel_angle_rad) * self.vehicle.steering_ratio
        desired_steering_deg = clamp(
            desired_steering_deg,
            -self.vehicle.max_steering_wheel_deg,
            self.vehicle.max_steering_wheel_deg,
        )

        # The per-frame steering rate limit is applied once, by the ADAS
        # output stage, relative to the previously *commanded* angle
        # (applying it here against the lagging measured angle would
        # compound with the EPS lag and throttle the achievable slew rate).
        delta = desired_steering_deg - car_state.steering_angle_deg
        output_steering_deg = desired_steering_deg

        # The controller is "saturated" when the angle it wants differs from
        # the measured angle by more than it can command for a sustained
        # period — i.e. the car is not following the lateral plan (this is
        # what happens when an attacker ramps the steering command).
        if abs(delta) > params.saturation_angle_deg:
            self._saturated_count += 1
        else:
            self._saturated_count = 0

        plan.desired_curvature = desired_curvature
        plan.desired_steering_deg = desired_steering_deg
        plan.output_steering_deg = output_steering_deg
        plan.saturated = self._saturated_count >= params.saturation_frames
        return plan


def update_lat_columns(state: "BatchState", n: int) -> None:
    """Vectorised :meth:`LateralPlanner.update_into` over batch rows.

    Rows whose perception model is absent (``plan_has_model`` False) take
    OpenPilot's no-model fallback: hold the measured steering angle, zero
    curvature, saturation counter unchanged, not saturated — exactly the
    scalar branch in :meth:`repro.adas.openpilot.OpenPilot._plan_cycle`.
    ``math.atan`` stays a per-row loop (``np.arctan`` differs in the last
    ulp on this platform); everything else is in-place ufuncs over the
    shared scratch columns.
    """
    has_model = state.plan_has_model[:n]
    steer_meas = state.plan_steer_meas[:n]
    curv = state.w0[:n]
    w1 = state.w1[:n]
    w2 = state.w2[:n]

    np.negative(state.plan_lat_off[:n], out=curv)
    np.multiply(state.p_lane_gain[:n], curv, out=curv)
    np.negative(state.plan_head_err[:n], out=w1)
    np.multiply(state.p_heading_gain[:n], w1, out=w1)
    np.add(curv, w1, out=curv)
    np.multiply(state.p_curv_ff[:n], state.plan_model_curv[:n], out=w1)
    np.add(curv, w1, out=curv)

    np.multiply(curv, state.p_lat_wheelbase[:n], out=w1)
    atan = math.atan
    for j in range(n):
        w1[j] = atan(w1[j])
    np.multiply(w1, RAD_TO_DEG, out=w1)
    np.multiply(w1, state.p_lat_steer_ratio[:n], out=w1)
    np.minimum(w1, state.p_lat_max_steer[:n], out=w1)
    np.negative(state.p_lat_max_steer[:n], out=w2)
    np.maximum(w1, w2, out=w1)

    np.subtract(w1, steer_meas, out=w2)
    np.abs(w2, out=w2)
    counts = state.plan_sat_count[:n]
    new_counts = np.where(w2 > state.p_sat_angle[:n], counts + 1, 0)
    np.copyto(counts, np.where(has_model, new_counts, counts))
    np.copyto(
        state.plan_saturated[:n], has_model & (counts >= state.p_sat_frames[:n])
    )

    np.copyto(state.plan_curvature[:n], np.where(has_model, curv, 0.0))
    desired = state.plan_desired_deg[:n]
    np.copyto(desired, np.where(has_model, w1, steer_meas))
    np.copyto(state.plan_output_deg[:n], desired)

"""ADAS alert manager.

Raises the two alerts the paper's evaluation tracks:

* **Forward Collision Warning (FCW)** — raised when the brake command
  actually being sent to the car exceeds OpenPilot's hard-braking
  threshold while a lead vehicle is close.  Because the paper's attack
  keeps the brake output below this threshold, FCW never activates during
  Context-Aware attacks (Observation 2).
* **steerSaturated** — raised when the lateral controller's demanded
  steering angle persistently diverges from the measured angle, i.e. the
  car is not following the lateral plan.

Every alert is published on the ``alertEvent`` service so the (simulated)
driver can perceive it.
"""

from dataclasses import dataclass
from typing import List

from repro.adas.lateral import LateralPlan
from repro.adas.longitudinal import LongitudinalPlan
from repro.messaging.messages import AlertEvent


@dataclass(frozen=True)
class Alert:
    """A raised alert with its activation time."""

    name: str
    severity: str
    time: float
    text: str = ""

    def to_event(self) -> AlertEvent:
        return AlertEvent(name=self.name, severity=self.severity, text=self.text)


@dataclass(frozen=True)
class AlertThresholds:
    """Thresholds controlling alert activation."""

    fcw_brake_threshold: float = 4.0       # m/s^2 braking demand that triggers FCW
    fcw_ttc_threshold: float = 3.0         # s, lead must be this close in time
    fcw_min_speed: float = 2.0             # m/s, suppress at crawling speed
    steer_saturated_rearm_time: float = 3.0  # s between repeated steerSaturated alerts
    fcw_rearm_time: float = 5.0


class AlertManager:
    """Evaluates alert conditions once per control cycle."""

    def __init__(self, thresholds: AlertThresholds = AlertThresholds()):
        self.thresholds = thresholds
        self.raised: List[Alert] = []
        self._last_fcw_time = float("-inf")
        self._last_saturated_time = float("-inf")

    @property
    def alert_count(self) -> int:
        return len(self.raised)

    def alerts_named(self, name: str) -> List[Alert]:
        return [alert for alert in self.raised if alert.name == name]

    def update(
        self,
        time: float,
        v_ego: float,
        output_brake: float,
        long_plan: LongitudinalPlan,
        lat_plan: LateralPlan,
    ) -> List[Alert]:
        """Evaluate alert conditions; returns newly raised alerts.

        Args:
            time: Current simulation time, s.
            v_ego: Current ego speed, m/s.
            output_brake: Braking deceleration magnitude (m/s^2, >= 0) of
                the command being sent to the car *after* any output hooks
                (fault injection happens before this check, as in the
                paper's injection point).
            long_plan: Current longitudinal plan.
            lat_plan: Current lateral plan.
        """
        new_alerts: List[Alert] = []

        fcw_armed = time - self._last_fcw_time >= self.thresholds.fcw_rearm_time
        if (
            fcw_armed
            and v_ego > self.thresholds.fcw_min_speed
            and long_plan.has_lead
            and long_plan.time_to_collision < self.thresholds.fcw_ttc_threshold
            and output_brake >= self.thresholds.fcw_brake_threshold
        ):
            alert = Alert(
                name="fcw",
                severity="critical",
                time=time,
                text="BRAKE! Risk of collision",
            )
            new_alerts.append(alert)
            self._last_fcw_time = time

        saturated_armed = (
            time - self._last_saturated_time >= self.thresholds.steer_saturated_rearm_time
        )
        if saturated_armed and lat_plan.saturated:
            alert = Alert(
                name="steerSaturated",
                severity="warning",
                time=time,
                text="Turn exceeds steering limit",
            )
            new_alerts.append(alert)
            self._last_saturated_time = time

        self.raised.extend(new_alerts)
        return new_alerts

"""Safety limits of the ADAS output stage.

The paper distinguishes two sets of limits (Table III):

* the **OpenPilot output limits** — the maximum values the control
  software will emit for each output command (``limitaccel = 2.4 m/s²``,
  ``limitbrake = −4 m/s²``, ``limitsteer = 0.5°`` change per 10 ms frame).
  The *fixed-value* baseline attacks inject exactly these maxima.
* the **ISO-style design limits** used both by OpenPilot's planner and by
  the human driver's sense of "anomalous" behaviour (Section II-A and the
  driver-reaction simulator): 2 m/s² acceleration, −3.5 m/s² deceleration,
  0.25° per-frame steering change, and at most 10 % above the set cruise
  speed.  The *strategic* value corruption keeps the injected commands
  inside these tighter limits so neither the ADAS nor the driver notices.

Panda's CAN safety checks are modelled as a third limit set (equal to the
OpenPilot output limits here); the attack treats them as constraints even
though, as in the paper's simulator integration, Panda is not in the loop.
"""

from dataclasses import dataclass

from repro.sim.units import clamp


@dataclass(frozen=True)
class SafetyLimits:
    """A set of output-command limits.

    Attributes:
        accel_max: Maximum commanded acceleration, m/s² (positive).
        brake_min: Most negative commanded acceleration (braking), m/s².
        steer_delta_max_deg: Maximum change of the commanded steering
            wheel angle per 10 ms control frame, degrees.
        cruise_overspeed_factor: Maximum ratio of vehicle speed to the set
            cruise speed before the behaviour counts as anomalous.
    """

    accel_max: float
    brake_min: float
    steer_delta_max_deg: float
    cruise_overspeed_factor: float = 1.1

    def __post_init__(self):
        if self.accel_max <= 0:
            raise ValueError("accel_max must be positive")
        if self.brake_min >= 0:
            raise ValueError("brake_min must be negative")
        if self.steer_delta_max_deg <= 0:
            raise ValueError("steer_delta_max_deg must be positive")

    def clamp_accel(self, accel: float) -> float:
        """Clamp a net acceleration command into ``[brake_min, accel_max]``."""
        return clamp(accel, self.brake_min, self.accel_max)

    def clamp_steer_delta(self, delta_deg: float) -> float:
        """Clamp a per-frame steering change into the allowed band."""
        return clamp(delta_deg, -self.steer_delta_max_deg, self.steer_delta_max_deg)

    def violates(self, accel: float, brake: float, steer_delta_deg: float) -> bool:
        """True if any of the given command components exceeds this limit set.

        ``accel`` and ``brake`` follow the library convention: both are
        magnitudes (``accel >= 0`` from gas, ``brake >= 0`` braking
        demand).
        """
        return (
            accel > self.accel_max + 1e-9
            or -brake < self.brake_min - 1e-9
            or abs(steer_delta_deg) > self.steer_delta_max_deg + 1e-9
        )


# OpenPilot output-stage limits (the "Fixed" attack values in Table III).
OPENPILOT_LIMITS = SafetyLimits(
    accel_max=2.4,
    brake_min=-4.0,
    steer_delta_max_deg=0.5,
    cruise_overspeed_factor=1.1,
)

# ISO 22179-style design limits (the "Strategic" attack values in
# Table III and the driver-anomaly thresholds in Section IV-B).
ISO_SAFETY_LIMITS = SafetyLimits(
    accel_max=2.0,
    brake_min=-3.5,
    steer_delta_max_deg=0.25,
    cruise_overspeed_factor=1.1,
)

# Panda CAN-interface safety model limits.  Modelled as identical to the
# OpenPilot output limits; kept separate so experiments can tighten them.
PANDA_LIMITS = SafetyLimits(
    accel_max=2.4,
    brake_min=-4.0,
    steer_delta_max_deg=0.5,
    cruise_overspeed_factor=1.15,
)

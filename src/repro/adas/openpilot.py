"""Top-level ADAS loop (OpenPilot substitute).

Each control cycle the :class:`OpenPilot` object

1. reads the latest perception (``modelV2``) and radar (``radarState``)
   messages from the Cereal-substitute bus,
2. runs the longitudinal (ACC) and lateral (ALC) planners,
3. clamps the resulting actuator commands to its output safety limits,
4. runs any registered *output hooks* — this is the injection point used
   by the fault-injection engine, matching the paper's attack model of
   corrupting the ADAS output variables just before they are sent to the
   actuators,
5. evaluates alerts (FCW on the final brake output, ``steerSaturated`` on
   the lateral controller state) and publishes them,
6. encodes the commands into CAN frames (``STEERING_CONTROL`` 0xE4 and
   ``ACC_CONTROL``) and sends them on the CAN bus.
"""

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, List

import numpy as np

from repro.adas.alerts import Alert, AlertManager, AlertThresholds
from repro.adas.driver_monitoring import DriverMonitoring
from repro.adas.lateral import LateralParams, LateralPlan, LateralPlanner
from repro.adas.limits import OPENPILOT_LIMITS, SafetyLimits
from repro.adas.longitudinal import LongitudinalParams, LongitudinalPlan, LongitudinalPlanner
from repro.can.bus import CANBus
from repro.can.frame import CANFrame
from repro.can.honda import ADDR, HONDA_DBC
from repro.messaging.bus import MessageBus
from repro.messaging.messages import Actuators, CarControl, CarState, ControlsState
from repro.messaging.pubsub import PubMaster, SubMaster
from repro.sim.units import clamp
from repro.sim.vehicle import ActuatorCommand

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.batch import BatchState

# An output hook receives (time, command, car_state) and returns the —
# possibly corrupted — command to send to the car.
OutputHook = Callable[[float, ActuatorCommand, CarState], ActuatorCommand]


@dataclass(frozen=True)
class OpenPilotConfig:
    """Configuration of the ADAS stack."""

    output_limits: SafetyLimits = OPENPILOT_LIMITS
    longitudinal: LongitudinalParams = LongitudinalParams()
    lateral: LateralParams = LateralParams()
    alert_thresholds: AlertThresholds = AlertThresholds()


@dataclass
class ControlCycleResult:
    """Everything produced by one ADAS control cycle."""

    command: ActuatorCommand
    pre_hook_command: ActuatorCommand
    long_plan: LongitudinalPlan
    lat_plan: LateralPlan
    new_alerts: List[Alert] = field(default_factory=list)
    engaged: bool = True


class OpenPilot:
    """The ADAS control stack (ALC + ACC + safety mechanisms)."""

    def __init__(self, config: OpenPilotConfig, message_bus: MessageBus, can_bus: CANBus):
        self.config = config
        self.message_bus = message_bus
        self.can_bus = can_bus

        self.sub_master = SubMaster(message_bus, ["modelV2", "radarState", "gpsLocationExternal"])
        self.pub_master = PubMaster(
            message_bus,
            ["carControl", "controlsState", "alertEvent", "driverMonitoringState", "carState"],
        )

        self.long_planner = LongitudinalPlanner(config.longitudinal)
        self.lat_planner = LateralPlanner(config.lateral)
        self.alert_manager = AlertManager(config.alert_thresholds)
        self.driver_monitoring = DriverMonitoring()

        self._output_hooks: List[OutputHook] = []
        self._engaged = True
        self._can_counter = 0
        # Steering angle of the previously *commanded* frame (the output
        # rate limit is applied against it).  A plain float rather than a
        # retained ActuatorCommand so the kernel can reuse one command
        # object per cycle without aliasing the history.
        self._previous_steering_deg = 0.0
        # Compiled codec plans for the two command frames sent every cycle.
        self._addr_steering_control = ADDR["STEERING_CONTROL"]
        self._addr_acc_control = ADDR["ACC_CONTROL"]
        self._plan_steering_control = HONDA_DBC.plan_by_address(self._addr_steering_control)
        self._plan_acc_control = HONDA_DBC.plan_by_address(self._addr_acc_control)
        # Reused 100 Hz payloads: bus payloads are shared and treated as
        # immutable by subscribers (see repro.messaging.messages), so the
        # publisher refreshes one instance per service instead of
        # constructing a new payload every cycle.
        self._actuators = Actuators()
        self._car_control = CarControl(actuators=self._actuators)
        self._controls_state = ControlsState()

    # -- lifecycle ---------------------------------------------------------

    @property
    def engaged(self) -> bool:
        """True while the ADAS is actively controlling the car."""
        return self._engaged

    def disengage(self) -> None:
        """Disengage (e.g. the driver has taken over)."""
        self._engaged = False

    def add_output_hook(self, hook: OutputHook) -> None:
        """Register a hook applied to the actuator command each cycle.

        Hooks run after the output safety limits and before alert
        evaluation and CAN encoding — the injection point of the paper.
        """
        self._output_hooks.append(hook)

    def remove_output_hook(self, hook: OutputHook) -> None:
        if hook in self._output_hooks:
            self._output_hooks.remove(hook)

    # -- control cycle -----------------------------------------------------

    def step(self, time: float, car_state: CarState, dt: float = 0.01) -> ControlCycleResult:
        """Run one 10 ms control cycle and send commands on the CAN bus.

        Public allocating API: builds fresh plan and command objects each
        call.  The kernel's step pipeline uses :meth:`plan_into` /
        :meth:`inject_into` instead, which reuse the objects preallocated
        on the :class:`~repro.kernel.context.StepContext`.
        """
        long_plan = LongitudinalPlan()
        lat_plan = LateralPlan()
        pre_hook = ActuatorCommand()
        self._plan_cycle(time, car_state, dt, long_plan, lat_plan, pre_hook)
        command = ActuatorCommand(
            accel=pre_hook.accel,
            brake=pre_hook.brake,
            steering_angle_deg=pre_hook.steering_angle_deg,
        )
        command, new_alerts = self._emit_cycle(time, car_state, long_plan, lat_plan, command)
        return ControlCycleResult(
            command=command,
            pre_hook_command=pre_hook,
            long_plan=long_plan,
            lat_plan=lat_plan,
            new_alerts=new_alerts,
            engaged=self._engaged,
        )

    # -- kernel pipeline entry points --------------------------------------

    def plan_into(self, ctx) -> None:
        """Plan stage: perception, planners and output limits, in place."""
        self._plan_cycle(
            ctx.time, ctx.car_state, ctx.dt, ctx.long_plan, ctx.lat_plan, ctx.pre_hook_command
        )

    def inject_into(self, ctx) -> None:
        """Inject stage: output hooks, alerts, publications, actuator CAN.

        The final (possibly corrupted) command always lands in
        ``ctx.adas_command``, whatever object the hooks returned.
        """
        if self.emit_publish_into(ctx):
            cmd = ctx.adas_command
            self._send_can(ctx.time, cmd)
            self._previous_steering_deg = cmd.steering_angle_deg

    def emit_publish_into(self, ctx) -> bool:
        """The inject stage minus the actuator CAN send (batch fast path).

        Runs the output hooks, alert evaluation and publications exactly
        like :meth:`inject_into`, leaving the final command in
        ``ctx.adas_command``, and returns whether the actuator frames
        still need to be sent (i.e. the ADAS is engaged).  The lockstep
        batch executor gathers the commands of every run that returns
        True and encodes them in one vectorised pass; the scalar path
        sends them via :meth:`_send_can` right away.
        """
        cmd = ctx.adas_command
        pre = ctx.pre_hook_command
        cmd.accel = pre.accel
        cmd.brake = pre.brake
        cmd.steering_angle_deg = pre.steering_angle_deg
        final, _ = self._emit_publish(
            ctx.time, ctx.car_state, ctx.long_plan, ctx.lat_plan, cmd
        )
        if final is not cmd:
            cmd.accel = final.accel
            cmd.brake = final.brake
            cmd.steering_angle_deg = final.steering_angle_deg
        return self._engaged

    def advance_can_counter(self) -> int:
        """Advance and return the rolling counter for one command-frame pair."""
        self._can_counter = (self._can_counter + 1) & 0x3
        return self._can_counter

    def send_can_payloads(
        self, time: float, steering_payload: bytes, acc_payload: bytes,
        steering_angle_deg: float,
    ) -> None:
        """Send pre-encoded actuator payloads (same frame order as
        :meth:`_send_can`) and record the commanded steering angle for the
        next cycle's output rate limit."""
        self.can_bus.send(
            CANFrame(self._addr_steering_control, steering_payload, timestamp=time)
        )
        self.can_bus.send(CANFrame(self._addr_acc_control, acc_payload, timestamp=time))
        self._previous_steering_deg = steering_angle_deg

    def plan_prelude(self, time: float, car_state: CarState, dt: float):
        """Perception reads + driver-monitoring publishes of the plan stage.

        Exactly the first half of :meth:`_plan_cycle` — the messaging
        round trip that stays per-run even on the batch fast path (each
        run owns its buses).  Returns ``(model, radar)`` for the planner
        half; the lockstep batch executor calls this per row and then
        runs the planner arithmetic as vectorised columns.
        """
        self.sub_master.update()
        model = self.sub_master["modelV2"]
        radar = self.sub_master["radarState"]

        dm_state = self.driver_monitoring.update(time, dt)
        self.pub_master.send("driverMonitoringState", dm_state)
        self.pub_master.send("carState", car_state)
        return model, radar

    # -- cycle internals ---------------------------------------------------

    def _plan_cycle(
        self,
        time: float,
        car_state: CarState,
        dt: float,
        long_plan: LongitudinalPlan,
        lat_plan: LateralPlan,
        pre_hook: ActuatorCommand,
    ) -> None:
        """Perception + planning half of the cycle, writing into the given objects."""
        model, radar = self.plan_prelude(time, car_state, dt)

        self.long_planner.update_into(long_plan, car_state, radar)
        if model is not None:
            self.lat_planner.update_into(lat_plan, car_state, model)
        else:
            lat_plan.desired_curvature = 0.0
            lat_plan.desired_steering_deg = car_state.steering_angle_deg
            lat_plan.output_steering_deg = car_state.steering_angle_deg
            lat_plan.saturated = False

        # Split planner acceleration into gas / brake channels and apply the
        # output-stage safety limits.
        limits = self.config.output_limits
        desired_accel = clamp(long_plan.desired_accel, limits.brake_min, limits.accel_max)
        pre_hook.accel = max(0.0, desired_accel)
        pre_hook.brake = max(0.0, -desired_accel)

        steer_delta = lat_plan.output_steering_deg - self._previous_steering_deg
        pre_hook.steering_angle_deg = self._previous_steering_deg + limits.clamp_steer_delta(
            steer_delta
        )

    def _emit_cycle(
        self,
        time: float,
        car_state: CarState,
        long_plan: LongitudinalPlan,
        lat_plan: LateralPlan,
        command: ActuatorCommand,
    ) -> "tuple[ActuatorCommand, List[Alert]]":
        """Hooks + alerts + publications + CAN half of the cycle.

        Returns the final command (hooks may substitute a new object) and
        the newly raised alerts.
        """
        command, new_alerts = self._emit_publish(time, car_state, long_plan, lat_plan, command)
        if self._engaged:
            self._send_can(time, command)
            self._previous_steering_deg = command.steering_angle_deg
        return command, new_alerts

    def _emit_publish(
        self,
        time: float,
        car_state: CarState,
        long_plan: LongitudinalPlan,
        lat_plan: LateralPlan,
        command: ActuatorCommand,
    ) -> "tuple[ActuatorCommand, List[Alert]]":
        """Hooks + alerts + publications — everything up to the CAN send."""
        if self._engaged:
            for hook in self._output_hooks:
                command = hook(time, command, car_state)

        new_alerts = self.alert_manager.update(
            time=time,
            v_ego=car_state.v_ego,
            output_brake=command.brake,
            long_plan=long_plan,
            lat_plan=lat_plan,
        )
        for alert in new_alerts:
            self.pub_master.send("alertEvent", alert.to_event())

        actuators = self._actuators
        actuators.accel = command.accel
        actuators.brake = -command.brake
        actuators.steering_angle_deg = command.steering_angle_deg
        actuators.steer_torque = clamp(command.steering_angle_deg / 100.0, -1.0, 1.0)
        car_control = self._car_control
        car_control.enabled = self._engaged
        self.pub_master.send("carControl", car_control)
        if new_alerts:
            fcw = any(alert.name == "fcw" for alert in new_alerts)
            alert_text = new_alerts[-1].text
            alert_type = new_alerts[-1].name
            alert_status = (
                "critical" if any(a.severity == "critical" for a in new_alerts) else "normal"
            )
        else:
            fcw = False
            alert_text = ""
            alert_type = ""
            alert_status = "normal"
        controls_state = self._controls_state
        controls_state.enabled = True
        controls_state.active = self._engaged
        controls_state.v_cruise = car_state.cruise_speed
        controls_state.v_target = long_plan.v_target
        controls_state.a_target = long_plan.desired_accel
        controls_state.curvature = lat_plan.desired_curvature
        controls_state.steer_saturated = lat_plan.saturated
        controls_state.fcw = fcw
        controls_state.alert_text = alert_text
        controls_state.alert_type = alert_type
        controls_state.alert_status = alert_status
        self.pub_master.send("controlsState", controls_state)

        return command, new_alerts

    def _send_can(self, time: float, command: ActuatorCommand) -> None:
        """Encode and send the actuator command frames on the CAN bus."""
        self.advance_can_counter()
        self.can_bus.send(
            CANFrame(
                self._addr_steering_control,
                self._plan_steering_control.encode(
                    {
                        "STEER_ANGLE_CMD": command.steering_angle_deg,
                        "STEER_TORQUE": clamp(command.steering_angle_deg / 100.0, -1.0, 1.0),
                        "STEER_REQUEST": 1.0,
                    },
                    counter=self._can_counter,
                ),
                timestamp=time,
            )
        )
        self.can_bus.send(
            CANFrame(
                self._addr_acc_control,
                self._plan_acc_control.encode(
                    {
                        "ACCEL_COMMAND": command.accel,
                        "BRAKE_COMMAND": command.brake,
                        "BRAKE_REQUEST": 1.0 if command.brake > 0 else 0.0,
                        "ACC_ON": 1.0,
                    },
                    counter=self._can_counter,
                ),
                timestamp=time,
            )
        )


def apply_output_limit_columns(state: "BatchState", n: int) -> None:
    """Vectorised output-limit tail of :meth:`OpenPilot._plan_cycle`.

    Splits the planned acceleration into gas/brake channels and applies
    the per-frame steering rate limit against the previously commanded
    angle, writing the actuator pre-hook command columns (``cmd_*``).
    ``max(0.0, x)`` is realised as ``np.where(x > 0, x, 0.0)`` so the
    zero branch carries the scalar path's exact ``+0.0``.
    """
    accel = state.plan_accel[:n]
    w0 = state.w0[:n]
    w1 = state.w1[:n]

    np.minimum(accel, state.p_out_accel_max[:n], out=w0)
    np.maximum(w0, state.p_out_brake_min[:n], out=w0)
    np.copyto(state.cmd_accel[:n], np.where(w0 > 0.0, w0, 0.0))
    np.negative(w0, out=w1)
    np.copyto(state.cmd_brake[:n], np.where(w1 > 0.0, w1, 0.0))

    prev = state.plan_prev_steer[:n]
    np.subtract(state.plan_output_deg[:n], prev, out=w0)
    np.minimum(w0, state.p_steer_delta_max[:n], out=w0)
    np.negative(state.p_steer_delta_max[:n], out=w1)
    np.maximum(w0, w1, out=w0)
    np.add(prev, w0, out=state.cmd_steer[:n])

"""Hazard detection (H1–H3 from Section III-A of the paper).

* **H1** — the ego vehicle violates the safe following-distance
  constraint with the lead vehicle (may result in accident A1).
* **H2** — the ego vehicle slows to an unnecessary crawl/stop although
  there is no lead vehicle nearby (may result in rear-end collision A2).
* **H3** — the ego vehicle drives out of its lane (may result in
  collision with road-side objects or neighbouring traffic, A3).

Hazards are evaluated on ground truth (the simulator state), independent
of what the ADAS or the attacker believe.
"""

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional

from repro.sim.world import World


class HazardType(Enum):
    """Hazardous states from the paper."""

    UNSAFE_FOLLOWING_DISTANCE = "H1"
    UNNECESSARY_STOP = "H2"
    OUT_OF_LANE = "H3"


@dataclass(frozen=True)
class HazardEvent:
    """First occurrence of a hazardous state."""

    hazard: HazardType
    time: float
    description: str


@dataclass(frozen=True)
class HazardParams:
    """Thresholds defining the hazardous states.

    Attributes:
        h1_headway: H1 triggers when the bumper-to-bumper gap drops below
            ``h1_headway`` seconds of travel at the current ego speed.
        h1_min_gap: ... or below this absolute distance (m).
        h2_speed_fraction: Reserved for alternative H2 definitions (unused
            by the default configuration).
        h2_speed_floor: Speed (m/s) below which the vehicle counts as
            having "decelerated to a complete stop" (the paper's H2) when
            no lead vehicle is within ``h2_clear_distance``.
        h2_clear_distance: A lead closer than this (m) legitimises slowing
            down, so H2 is not raised.
        h2_warmup: H2 is not evaluated before this time (s), so the
            initial speed transient cannot trigger it.
        out_of_lane_margin: Extra margin (m) beyond the lane line for the
            vehicle centre before H3 triggers.
    """

    h1_headway: float = 1.0
    h1_min_gap: float = 5.0
    h2_speed_floor: float = 1.0
    h2_clear_distance: float = 40.0
    h2_warmup: float = 3.0
    out_of_lane_margin: float = 0.4
    h2_speed_fraction: float = 0.0


class HazardMonitor:
    """Detects the first occurrence of each hazardous state."""

    def __init__(self, params: HazardParams = HazardParams()):
        self.params = params
        self.events: Dict[HazardType, HazardEvent] = {}

    @property
    def any_hazard(self) -> bool:
        return bool(self.events)

    @property
    def first_event(self) -> Optional[HazardEvent]:
        if not self.events:
            return None
        return min(self.events.values(), key=lambda event: event.time)

    def check(self, world: World) -> List[HazardEvent]:
        """Evaluate hazard conditions on the current world state."""
        ego = world.ego
        lead = world.lead
        if lead is not None:
            lead_gap = lead.rear_s - ego.front_s
            lead_d = lead.state.d
        else:
            lead_gap = 0.0
            lead_d = 0.0
        road = world.road
        return self._evaluate(
            world.time,
            ego.state.speed,
            ego.state.d,
            lead is not None,
            lead_gap,
            lead_d,
            road.left_lane_line,
            road.right_lane_line,
        )

    def check_context(self, ctx) -> List[HazardEvent]:
        """Evaluate hazards on a kernel StepContext's precomputed kinematics.

        Same semantics as :meth:`check`, but reads the ego/lead kinematics
        the actuate stage already derived instead of walking the
        ``world.ego.state`` property chains again.
        """
        has_lead = ctx.lead is not None
        return self._evaluate(
            ctx.end_time,
            ctx.ego_speed,
            ctx.ego_d,
            has_lead,
            ctx.lead_gap if has_lead else 0.0,
            ctx.lead_d,
            ctx.road_left_lane_line,
            ctx.road_right_lane_line,
        )

    def _evaluate(
        self,
        time: float,
        ego_speed: float,
        ego_d: float,
        has_lead: bool,
        lead_gap: float,
        lead_d: float,
        left_lane_line: float,
        right_lane_line: float,
    ) -> List[HazardEvent]:
        new_events: List[HazardEvent] = []
        params = self.params

        # H1: unsafe following distance.
        if HazardType.UNSAFE_FOLLOWING_DISTANCE not in self.events and has_lead:
            threshold = max(params.h1_min_gap, params.h1_headway * ego_speed)
            same_lane = abs(lead_d - ego_d) < 2.0
            if same_lane and lead_gap < threshold:
                new_events.append(
                    HazardEvent(
                        HazardType.UNSAFE_FOLLOWING_DISTANCE,
                        time,
                        f"gap {lead_gap:.1f} m below safe distance {threshold:.1f} m",
                    )
                )

        # H2: unnecessary slow-down / stop with no lead nearby.
        if HazardType.UNNECESSARY_STOP not in self.events and time >= params.h2_warmup:
            lead_far = True
            if has_lead:
                lead_far = lead_gap > params.h2_clear_distance
            if lead_far and ego_speed < params.h2_speed_floor:
                new_events.append(
                    HazardEvent(
                        HazardType.UNNECESSARY_STOP,
                        time,
                        f"speed {ego_speed:.1f} m/s with no lead within "
                        f"{params.h2_clear_distance:.0f} m",
                    )
                )

        # H3: out of lane.
        if HazardType.OUT_OF_LANE not in self.events:
            left_limit = left_lane_line + params.out_of_lane_margin
            right_limit = right_lane_line - params.out_of_lane_margin
            if ego_d > left_limit or ego_d < right_limit:
                side = "left" if ego_d > left_limit else "right"
                new_events.append(
                    HazardEvent(
                        HazardType.OUT_OF_LANE,
                        time,
                        f"vehicle centre crossed the {side} lane line (d={ego_d:.2f} m)",
                    )
                )

        for event in new_events:
            self.events[event.hazard] = event
        return new_events

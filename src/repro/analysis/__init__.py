"""Hazard analysis, per-run metrics and result aggregation.

* :mod:`repro.analysis.hazards` — detectors for the paper's hazardous
  states H1 (unsafe following distance), H2 (unnecessary stop) and H3
  (out of lane).
* :mod:`repro.analysis.metrics` — the per-run :class:`RunResult` record
  (hazards, accidents, alerts, lane invasions, time-to-hazard, attack
  bookkeeping).
* :mod:`repro.analysis.results` — aggregation of many runs into the rows
  of Table IV and Table V, plus text rendering.
* :mod:`repro.analysis.observations` — programmatic checks of the paper's
  six observations against a set of aggregated results.
"""

from repro.analysis.hazards import HazardType, HazardEvent, HazardMonitor, HazardParams
from repro.analysis.metrics import RunResult
from repro.analysis.results import (
    StrategySummary,
    AttackTypeSummary,
    summarize_strategy,
    summarize_by_attack_type,
    format_table_iv,
    format_table_v,
)

__all__ = [
    "HazardType",
    "HazardEvent",
    "HazardMonitor",
    "HazardParams",
    "RunResult",
    "StrategySummary",
    "AttackTypeSummary",
    "summarize_strategy",
    "summarize_by_attack_type",
    "format_table_iv",
    "format_table_v",
]

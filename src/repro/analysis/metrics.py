"""Per-run result record and derived metrics.

A :class:`RunResult` captures everything the paper's tables need from a
single simulation: hazards (with times), accidents, alerts, lane
invasions, the attack bookkeeping (activation time, duration), and the
derived Time-To-Hazard (TTH — the time between attack activation and the
first hazard, i.e. the budget available for detection and mitigation).
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.hazards import HazardEvent
from repro.sim.collision import CollisionEvent
from repro.sim.world import TrajectorySample


@dataclass
class RunResult:
    """Outcome of one simulation run."""

    scenario: str
    initial_distance: float
    attack_type: Optional[str]
    strategy: str
    seed: int
    driver_enabled: bool
    duration: float

    # Attack bookkeeping.
    attack_activated: bool = False
    attack_activation_time: Optional[float] = None
    attack_duration: Optional[float] = None
    attack_reason: str = ""
    attack_stopped_by_driver: bool = False

    # Outcomes.
    hazards: Dict[str, float] = field(default_factory=dict)        # hazard id -> first time
    accidents: Dict[str, float] = field(default_factory=dict)      # accident id -> first time
    alerts: List[Tuple[str, float]] = field(default_factory=list)  # (alert name, time)
    lane_invasions: int = 0
    driver_perceived: bool = False
    driver_perception_reason: str = ""
    driver_engaged: bool = False
    driver_engagement_time: Optional[float] = None

    # Safety margins (recorded only when the run was configured with
    # ``track_safety_margin=True``; ``None`` otherwise).  One running
    # minimum per hazard axis: lead TTC (H1), ego speed (H2), distance to
    # the nearer lane line (H3, negative once invaded), plus the raw
    # minimum lead gap.
    min_ttc: Optional[float] = None         # minimum lead TTC over the run, s
    min_lead_gap: Optional[float] = None    # minimum lead gap over the run, m
    min_ego_speed: Optional[float] = None   # minimum ego speed over the run, m/s
    min_lane_margin: Optional[float] = None  # min distance to nearer lane line, m

    # Optional raw trajectory (Figure 7).
    trajectory: List[TrajectorySample] = field(default_factory=list)

    # -- derived metrics ----------------------------------------------------

    @property
    def hazard_occurred(self) -> bool:
        return bool(self.hazards)

    @property
    def accident_occurred(self) -> bool:
        return bool(self.accidents)

    @property
    def alert_raised(self) -> bool:
        return bool(self.alerts)

    @property
    def hazard_without_alert(self) -> bool:
        """Hazard occurred and no alert was ever raised in this run."""
        return self.hazard_occurred and not self.alert_raised

    @property
    def first_hazard_time(self) -> Optional[float]:
        if not self.hazards:
            return None
        return min(self.hazards.values())

    @property
    def time_to_hazard(self) -> Optional[float]:
        """TTH: first hazard time minus attack activation time (s)."""
        if self.attack_activation_time is None or self.first_hazard_time is None:
            return None
        tth = self.first_hazard_time - self.attack_activation_time
        return tth if tth >= 0.0 else None

    @property
    def lane_invasions_per_second(self) -> float:
        if self.duration <= 0:
            return 0.0
        return self.lane_invasions / self.duration

    def record_hazard(self, event: HazardEvent) -> None:
        self.hazards.setdefault(event.hazard.value, event.time)

    def record_accident(self, event: CollisionEvent) -> None:
        self.accidents.setdefault(event.accident.value, event.time)

    # -- serialization ------------------------------------------------------

    def to_dict(self, include_trajectory: bool = True) -> dict:
        """A JSON-serializable dict that round-trips through :meth:`from_dict`.

        Floats survive JSON exactly (Python serializes doubles with
        ``repr`` precision), so a round-tripped record compares equal to
        the original — the golden-run equivalence suite relies on this.
        """
        payload = {
            "scenario": self.scenario,
            "initial_distance": self.initial_distance,
            "attack_type": self.attack_type,
            "strategy": self.strategy,
            "seed": self.seed,
            "driver_enabled": self.driver_enabled,
            "duration": self.duration,
            "attack_activated": self.attack_activated,
            "attack_activation_time": self.attack_activation_time,
            "attack_duration": self.attack_duration,
            "attack_reason": self.attack_reason,
            "attack_stopped_by_driver": self.attack_stopped_by_driver,
            "hazards": dict(self.hazards),
            "accidents": dict(self.accidents),
            "alerts": [[name, time] for name, time in self.alerts],
            "lane_invasions": self.lane_invasions,
            "driver_perceived": self.driver_perceived,
            "driver_perception_reason": self.driver_perception_reason,
            "driver_engaged": self.driver_engaged,
            "driver_engagement_time": self.driver_engagement_time,
        }
        # Margin fields only appear when margin tracking produced them, so
        # default-configured payloads (e.g. the golden fixtures) are
        # byte-identical to the pre-margin format.
        if self.min_ttc is not None:
            payload["min_ttc"] = self.min_ttc
        if self.min_lead_gap is not None:
            payload["min_lead_gap"] = self.min_lead_gap
        if self.min_ego_speed is not None:
            payload["min_ego_speed"] = self.min_ego_speed
        if self.min_lane_margin is not None:
            payload["min_lane_margin"] = self.min_lane_margin
        if include_trajectory:
            payload["trajectory"] = [
                [s.time, s.s, s.d, s.speed, s.steering_wheel_deg, s.x, s.y]
                for s in self.trajectory
            ]
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "RunResult":
        """Rebuild a :class:`RunResult` from :meth:`to_dict` output."""
        trajectory = [
            TrajectorySample(
                time=row[0], s=row[1], d=row[2], speed=row[3],
                steering_wheel_deg=row[4], x=row[5], y=row[6],
            )
            for row in payload.get("trajectory", ())
        ]
        return cls(
            scenario=payload["scenario"],
            initial_distance=payload["initial_distance"],
            attack_type=payload["attack_type"],
            strategy=payload["strategy"],
            seed=payload["seed"],
            driver_enabled=payload["driver_enabled"],
            duration=payload["duration"],
            attack_activated=payload["attack_activated"],
            attack_activation_time=payload["attack_activation_time"],
            attack_duration=payload["attack_duration"],
            attack_reason=payload["attack_reason"],
            attack_stopped_by_driver=payload["attack_stopped_by_driver"],
            hazards=dict(payload["hazards"]),
            accidents=dict(payload["accidents"]),
            alerts=[(name, time) for name, time in payload["alerts"]],
            lane_invasions=payload["lane_invasions"],
            driver_perceived=payload["driver_perceived"],
            driver_perception_reason=payload["driver_perception_reason"],
            driver_engaged=payload["driver_engaged"],
            driver_engagement_time=payload["driver_engagement_time"],
            min_ttc=payload.get("min_ttc"),
            min_lead_gap=payload.get("min_lead_gap"),
            min_ego_speed=payload.get("min_ego_speed"),
            min_lane_margin=payload.get("min_lane_margin"),
            trajectory=trajectory,
        )

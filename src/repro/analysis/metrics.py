"""Per-run result record and derived metrics.

A :class:`RunResult` captures everything the paper's tables need from a
single simulation: hazards (with times), accidents, alerts, lane
invasions, the attack bookkeeping (activation time, duration), and the
derived Time-To-Hazard (TTH — the time between attack activation and the
first hazard, i.e. the budget available for detection and mitigation).
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.hazards import HazardEvent, HazardType
from repro.sim.collision import CollisionEvent
from repro.sim.world import TrajectorySample


@dataclass
class RunResult:
    """Outcome of one simulation run."""

    scenario: str
    initial_distance: float
    attack_type: Optional[str]
    strategy: str
    seed: int
    driver_enabled: bool
    duration: float

    # Attack bookkeeping.
    attack_activated: bool = False
    attack_activation_time: Optional[float] = None
    attack_duration: Optional[float] = None
    attack_reason: str = ""
    attack_stopped_by_driver: bool = False

    # Outcomes.
    hazards: Dict[str, float] = field(default_factory=dict)        # hazard id -> first time
    accidents: Dict[str, float] = field(default_factory=dict)      # accident id -> first time
    alerts: List[Tuple[str, float]] = field(default_factory=list)  # (alert name, time)
    lane_invasions: int = 0
    driver_perceived: bool = False
    driver_perception_reason: str = ""
    driver_engaged: bool = False
    driver_engagement_time: Optional[float] = None

    # Optional raw trajectory (Figure 7).
    trajectory: List[TrajectorySample] = field(default_factory=list)

    # -- derived metrics ----------------------------------------------------

    @property
    def hazard_occurred(self) -> bool:
        return bool(self.hazards)

    @property
    def accident_occurred(self) -> bool:
        return bool(self.accidents)

    @property
    def alert_raised(self) -> bool:
        return bool(self.alerts)

    @property
    def hazard_without_alert(self) -> bool:
        """Hazard occurred and no alert was ever raised in this run."""
        return self.hazard_occurred and not self.alert_raised

    @property
    def first_hazard_time(self) -> Optional[float]:
        if not self.hazards:
            return None
        return min(self.hazards.values())

    @property
    def time_to_hazard(self) -> Optional[float]:
        """TTH: first hazard time minus attack activation time (s)."""
        if self.attack_activation_time is None or self.first_hazard_time is None:
            return None
        tth = self.first_hazard_time - self.attack_activation_time
        return tth if tth >= 0.0 else None

    @property
    def lane_invasions_per_second(self) -> float:
        if self.duration <= 0:
            return 0.0
        return self.lane_invasions / self.duration

    def record_hazard(self, event: HazardEvent) -> None:
        self.hazards.setdefault(event.hazard.value, event.time)

    def record_accident(self, event: CollisionEvent) -> None:
        self.accidents.setdefault(event.accident.value, event.time)

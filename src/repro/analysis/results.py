"""Aggregation of run results into the paper's tables.

* :func:`summarize_strategy` — one row of Table IV (per attack strategy).
* :func:`summarize_by_attack_type` — one row of Table V (per attack type,
  optionally paired with a no-driver baseline to compute prevented /
  new hazards).
* :func:`format_table_iv` / :func:`format_table_v` — text rendering that
  mirrors the paper's table layout.
"""

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.metrics import RunResult


def _mean_std(values: Sequence[float]) -> Tuple[float, float]:
    values = [value for value in values if value is not None and not math.isnan(value)]
    if not values:
        return (float("nan"), float("nan"))
    mean = sum(values) / len(values)
    variance = sum((value - mean) ** 2 for value in values) / len(values)
    return mean, math.sqrt(variance)


@dataclass(frozen=True)
class StrategySummary:
    """One row of Table IV."""

    strategy: str
    runs: int
    alerts: int
    alert_rate: float
    hazards: int
    hazard_rate: float
    accidents: int
    accident_rate: float
    hazards_without_alerts: int
    hazards_without_alerts_rate: float
    lane_invasions_per_second: float
    tth_mean: float
    tth_std: float

    def as_row(self) -> List[str]:
        tth = "-" if math.isnan(self.tth_mean) else f"{self.tth_mean:.2f}±{self.tth_std:.2f}"
        return [
            self.strategy,
            f"{self.alerts} ({100 * self.alert_rate:.1f}%)",
            f"{self.hazards} ({100 * self.hazard_rate:.1f}%)",
            f"{self.accidents} ({100 * self.accident_rate:.1f}%)",
            f"{self.hazards_without_alerts} ({100 * self.hazards_without_alerts_rate:.1f}%)",
            f"{self.lane_invasions_per_second:.2f}",
            tth,
        ]


@dataclass(frozen=True)
class AttackTypeSummary:
    """One (half-)row of Table V for a single attack type."""

    attack_type: str
    runs: int
    alerts: int
    alert_rate: float
    hazards: int
    hazard_rate: float
    accidents: int
    accident_rate: float
    tth_mean: float
    tth_std: float
    prevented_hazards: int = 0
    new_hazards: int = 0
    prevented_accidents: int = 0
    driver_preventions: int = 0

    def as_row(self) -> List[str]:
        tth = "-" if math.isnan(self.tth_mean) else f"{self.tth_mean:.2f}±{self.tth_std:.2f}"
        return [
            self.attack_type,
            f"{self.alerts} ({100 * self.alert_rate:.1f}%)",
            f"{self.hazards} ({100 * self.hazard_rate:.1f}%)",
            f"{self.accidents} ({100 * self.accident_rate:.1f}%)",
            tth,
            str(self.prevented_hazards),
            str(self.new_hazards),
            str(self.prevented_accidents),
        ]


def summarize_strategy(strategy: str, results: Sequence[RunResult]) -> StrategySummary:
    """Aggregate many runs of one strategy into a Table IV row."""
    runs = len(results)
    if runs == 0:
        raise ValueError(f"no results for strategy {strategy!r}")
    alerts = sum(1 for result in results if result.alert_raised)
    hazards = sum(1 for result in results if result.hazard_occurred)
    accidents = sum(1 for result in results if result.accident_occurred)
    hazards_no_alert = sum(1 for result in results if result.hazard_without_alert)
    invasion_rate = sum(result.lane_invasions_per_second for result in results) / runs
    tth_mean, tth_std = _mean_std(
        [result.time_to_hazard for result in results if result.time_to_hazard is not None]
    )
    return StrategySummary(
        strategy=strategy,
        runs=runs,
        alerts=alerts,
        alert_rate=alerts / runs,
        hazards=hazards,
        hazard_rate=hazards / runs,
        accidents=accidents,
        accident_rate=accidents / runs,
        hazards_without_alerts=hazards_no_alert,
        hazards_without_alerts_rate=hazards_no_alert / runs,
        lane_invasions_per_second=invasion_rate,
        tth_mean=tth_mean,
        tth_std=tth_std,
    )


def _key(result: RunResult) -> Tuple[str, float, Optional[str], int]:
    return (result.scenario, result.initial_distance, result.attack_type, result.seed)


def summarize_by_attack_type(
    results: Sequence[RunResult],
    baseline_without_driver: Optional[Sequence[RunResult]] = None,
) -> Dict[str, AttackTypeSummary]:
    """Aggregate runs per attack type (Table V).

    If ``baseline_without_driver`` is given, each run is paired (by
    scenario / distance / attack type / seed) with the corresponding run
    without driver intervention, and the prevented / new hazards and
    prevented accidents are computed from the pairs, mirroring the paper's
    "Driver Prevention" accounting.
    """
    baseline_index: Dict[Tuple, RunResult] = {}
    if baseline_without_driver:
        baseline_index = {_key(result): result for result in baseline_without_driver}

    by_type: Dict[str, List[RunResult]] = {}
    for result in results:
        by_type.setdefault(result.attack_type or "None", []).append(result)

    summaries: Dict[str, AttackTypeSummary] = {}
    for attack_type, type_results in sorted(by_type.items()):
        runs = len(type_results)
        alerts = sum(1 for result in type_results if result.alert_raised)
        hazards = sum(1 for result in type_results if result.hazard_occurred)
        accidents = sum(1 for result in type_results if result.accident_occurred)
        tth_mean, tth_std = _mean_std(
            [r.time_to_hazard for r in type_results if r.time_to_hazard is not None]
        )

        prevented_hazards = new_hazards = prevented_accidents = driver_preventions = 0
        if baseline_index:
            for result in type_results:
                baseline = baseline_index.get(_key(result))
                if baseline is None:
                    continue
                base_hazards = set(baseline.hazards)
                with_hazards = set(result.hazards)
                if base_hazards and not with_hazards:
                    prevented_hazards += 1
                if with_hazards - base_hazards:
                    new_hazards += 1
                if baseline.accident_occurred and not result.accident_occurred:
                    prevented_accidents += 1
                if result.driver_engaged and base_hazards and not with_hazards:
                    driver_preventions += 1

        summaries[attack_type] = AttackTypeSummary(
            attack_type=attack_type,
            runs=runs,
            alerts=alerts,
            alert_rate=alerts / runs,
            hazards=hazards,
            hazard_rate=hazards / runs,
            accidents=accidents,
            accident_rate=accidents / runs,
            tth_mean=tth_mean,
            tth_std=tth_std,
            prevented_hazards=prevented_hazards,
            new_hazards=new_hazards,
            prevented_accidents=prevented_accidents,
            driver_preventions=driver_preventions,
        )
    return summaries


def _render_table(headers: List[str], rows: Iterable[List[str]]) -> str:
    rows = [headers] + [list(row) for row in rows]
    widths = [max(len(row[col]) for row in rows) for col in range(len(headers))]
    lines = []
    for index, row in enumerate(rows):
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("-+-".join("-" * width for width in widths))
    return "\n".join(lines)


def format_table_iv(summaries: Sequence[StrategySummary]) -> str:
    """Render Table IV (attack strategy comparison) as text."""
    headers = [
        "Attack Strategy",
        "Alerts",
        "Hazards",
        "Accidents",
        "Hazards&no Alerts",
        "LaneInvasion (No./s)",
        "TTH (s)",
    ]
    return _render_table(headers, [summary.as_row() for summary in summaries])


def format_table_v(
    without_corruption: Dict[str, AttackTypeSummary],
    with_corruption: Dict[str, AttackTypeSummary],
) -> str:
    """Render Table V (Context-Aware with/without strategic value corruption)."""
    headers = [
        "Attack Type",
        "Alerts",
        "Hazards",
        "Accidents",
        "TTH (s)",
        "Prevented Hazards",
        "New Hazards",
        "Prevented Accidents",
    ]
    sections = []
    for title, summaries in (
        ("No Strategic Value Corruption", without_corruption),
        ("With Strategic Value Corruption", with_corruption),
    ):
        rows = [summary.as_row() for summary in summaries.values()]
        sections.append(f"== {title} ==\n" + _render_table(headers, rows))
    return "\n\n".join(sections)

"""Programmatic checks of the paper's six observations.

Each observation is expressed as a predicate over aggregated experiment
results; the integration tests and EXPERIMENTS.md use these to check that
the *shape* of the paper's findings holds in the reproduction, without
requiring the absolute numbers to match.
"""

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.analysis.metrics import RunResult
from repro.analysis.results import AttackTypeSummary, StrategySummary


@dataclass(frozen=True)
class ObservationCheck:
    """Outcome of checking one observation."""

    observation: int
    description: str
    holds: bool
    detail: str = ""


def check_observation_1(attack_free_runs: Sequence[RunResult]) -> ObservationCheck:
    """Lane invasions can happen even without any attacks."""
    invasions = sum(run.lane_invasions for run in attack_free_runs)
    hazards = sum(bool(run.hazards) for run in attack_free_runs)
    holds = invasions > 0 and hazards == 0
    return ObservationCheck(
        1,
        "Lane invasions occur without attacks (and without hazards)",
        holds,
        f"{invasions} invasions, {hazards} hazards over {len(attack_free_runs)} attack-free runs",
    )


def check_observation_2(
    context_aware: StrategySummary, random_summaries: Sequence[StrategySummary]
) -> ObservationCheck:
    """Context-Aware attacks beat random strategies and evade the FCW."""
    best_random = max(summary.hazard_rate for summary in random_summaries)
    holds = (
        context_aware.hazard_rate > best_random
        and context_aware.hazards_without_alerts_rate >= 0.8 * context_aware.hazard_rate
    )
    return ObservationCheck(
        2,
        "Context-Aware attacks achieve the highest hazard rate, almost always without alerts",
        holds,
        f"Context-Aware {context_aware.hazard_rate:.0%} vs best random {best_random:.0%}; "
        f"{context_aware.hazards_without_alerts_rate:.0%} hazards without alerts",
    )


def check_observation_3(
    critical_window, random_hazard_rate: float, context_aware_hazard_rate: float
) -> ObservationCheck:
    """Context-Aware start/duration selection does not waste injections."""
    holds = critical_window is not None and context_aware_hazard_rate >= random_hazard_rate
    detail = (
        f"critical window {critical_window}, random hazard rate {random_hazard_rate:.0%}, "
        f"Context-Aware hazard rate {context_aware_hazard_rate:.0%}"
    )
    return ObservationCheck(
        3, "A critical start-time window exists and Context-Aware lands inside it", holds, detail
    )


def check_observation_4(
    without_corruption: Dict[str, AttackTypeSummary]
) -> ObservationCheck:
    """Human alertness prevents hazards for longitudinal attacks."""
    prevented = sum(
        summary.prevented_hazards
        for name, summary in without_corruption.items()
        if name in ("Acceleration", "Deceleration", "Deceleration-Steering")
    )
    holds = prevented > 0
    return ObservationCheck(
        4,
        "The driver prevents a substantial number of fixed-value longitudinal attack hazards",
        holds,
        f"{prevented} hazards prevented by the driver across longitudinal attack types",
    )


def check_observation_5(summaries: Dict[str, AttackTypeSummary]) -> ObservationCheck:
    """Steering attacks cannot be halted by the driver."""
    steering = [
        summary
        for name, summary in summaries.items()
        if "Steering" in name and name not in ("Deceleration-Steering",)
    ]
    prevented = sum(summary.prevented_hazards for summary in steering)
    hazard_rate = (
        sum(summary.hazards for summary in steering) / sum(summary.runs for summary in steering)
        if steering
        else 0.0
    )
    holds = bool(steering) and prevented <= 0.1 * sum(summary.hazards for summary in steering) \
        and hazard_rate >= 0.5
    return ObservationCheck(
        5,
        "Steering attacks achieve high hazard rates and are (almost) never prevented by the driver",
        holds,
        f"steering hazard rate {hazard_rate:.0%}, prevented {prevented}",
    )


def check_observation_6(
    with_corruption: Dict[str, AttackTypeSummary],
    without_corruption: Dict[str, AttackTypeSummary],
) -> ObservationCheck:
    """Strategic value corruption evades the driver and the ADAS checks."""
    alerts_with = sum(summary.alerts for summary in with_corruption.values())
    alerts_without = sum(summary.alerts for summary in without_corruption.values())
    prevented_with = sum(summary.prevented_hazards for summary in with_corruption.values())
    prevented_without = sum(summary.prevented_hazards for summary in without_corruption.values())
    holds = alerts_with <= alerts_without and prevented_with <= prevented_without
    return ObservationCheck(
        6,
        "Strategic value corruption reduces alerts and driver preventions",
        holds,
        f"alerts {alerts_with} vs {alerts_without}; prevented {prevented_with} vs {prevented_without}",
    )


def format_observations(checks: Sequence[ObservationCheck]) -> str:
    """Render observation checks as a text report."""
    lines = []
    for check in checks:
        status = "HOLDS" if check.holds else "DEVIATES"
        lines.append(f"Observation {check.observation}: {status} — {check.description}")
        if check.detail:
            lines.append(f"    {check.detail}")
    return "\n".join(lines)

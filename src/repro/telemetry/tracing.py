"""Lightweight span tracing with Chrome trace-event / Perfetto export.

A :class:`Tracer` records *complete* spans (name, category, start, and
duration from :func:`time.perf_counter_ns`) into a bounded ring buffer,
so tracing a long campaign costs a fixed amount of memory: when the
buffer is full the oldest spans are dropped and counted.

The recorded spans map 1:1 onto the Trace Event Format's ``"X"``
(complete) events, which both ``chrome://tracing`` and Perfetto load
directly; :func:`repro.telemetry.export.write_trace_jsonl` writes one
event per line (each line is a standalone JSON object) and
:func:`repro.telemetry.export.write_chrome_trace` writes the classic
``{"traceEvents": [...]}`` envelope.

Span hierarchy used across the library::

    campaign                      (one per Campaign.run / table / figure)
      chunk                       (parallel dispatch unit)
        run                       (one simulation)
          stage.<name>            (optional, sampled pipeline stages)
      supervisor.retry / supervisor.bisect
    search                        (one per SearchDriver.run)
      search.generation           (one per optimizer generation)

Determinism: the tracer only ever *reads* clocks — it never touches an
RNG stream or a :class:`~repro.kernel.context.StepContext`, so enabling
tracing cannot change simulation results (pinned by the golden suite).
"""

import os
import time
from collections import deque
from typing import Deque, Iterator, List, Optional, Tuple

#: A recorded span: (name, category, start_ns, duration_ns, args-or-None).
Span = Tuple[str, str, int, int, Optional[dict]]

#: Default ring-buffer capacity (spans); campaign-level spans are few,
#: per-run spans are one per simulation, so this holds hours of work.
DEFAULT_CAPACITY = 65536


class SpanHandle:
    """Context manager recording one complete span into its tracer."""

    __slots__ = ("tracer", "name", "category", "args", "start_ns")

    def __init__(self, tracer: "Tracer", name: str, category: str, args: Optional[dict]):
        self.tracer = tracer
        self.name = name
        self.category = category
        self.args = args
        self.start_ns = 0

    def __enter__(self) -> "SpanHandle":
        self.start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.tracer.add_complete(
            self.name,
            self.start_ns,
            time.perf_counter_ns() - self.start_ns,
            category=self.category,
            args=self.args,
        )

    def annotate(self, **args) -> None:
        """Attach (or extend) the span's ``args`` payload before it closes."""
        if self.args is None:
            self.args = {}
        self.args.update(args)


class Tracer:
    """A bounded ring buffer of complete spans.

    Args:
        capacity: Maximum retained spans; older spans are dropped (and
            counted in :attr:`dropped`) once the buffer is full.
    """

    __slots__ = ("capacity", "_spans", "dropped", "pid")

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._spans: Deque[Span] = deque(maxlen=capacity)
        self.dropped = 0
        self.pid = os.getpid()

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self._spans)

    def span(self, name: str, category: str = "repro", **args) -> SpanHandle:
        """A context manager that records a complete span on exit."""
        return SpanHandle(self, name, category, args or None)

    def add_complete(
        self,
        name: str,
        start_ns: int,
        duration_ns: int,
        category: str = "repro",
        args: Optional[dict] = None,
    ) -> None:
        """Record one already-measured complete span."""
        if len(self._spans) == self.capacity:
            self.dropped += 1
        self._spans.append((name, category, start_ns, duration_ns, args))

    def instant(self, name: str, category: str = "repro", **args) -> None:
        """Record a zero-duration marker (rendered as an instant event)."""
        self.add_complete(name, time.perf_counter_ns(), 0, category, args or None)

    def merge(self, other: "Tracer") -> None:
        """Append another tracer's spans (no timestamp realignment)."""
        self.dropped += other.dropped
        for span in other._spans:
            self.add_complete(span[0], span[2], span[3], span[1], span[4])

    def chrome_events(self) -> List[dict]:
        """The recorded spans as Trace Event Format ``"X"`` event dicts.

        Timestamps and durations are microseconds (the format's unit);
        zero-duration spans become ``"i"`` (instant) events so markers
        stay visible in the viewer.
        """
        events = []
        pid = self.pid
        for name, category, start_ns, duration_ns, args in self._spans:
            event = {
                "name": name,
                "cat": category,
                "ph": "X" if duration_ns else "i",
                "ts": start_ns / 1000.0,
                "pid": pid,
                "tid": 0,
            }
            if duration_ns:
                event["dur"] = duration_ns / 1000.0
            else:
                event["s"] = "t"  # instant-event scope: thread
            if args:
                event["args"] = args
            events.append(event)
        return events

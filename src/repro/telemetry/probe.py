"""Sampled per-stage instrumentation of the kernel step pipeline.

:meth:`PipelineProbe.wrap` derives a :class:`ProbedPipeline` from a
:class:`~repro.kernel.pipeline.StepPipeline`: same stage objects, but a
``run_cycle`` that times stages with :func:`time.perf_counter_ns` and
buffers the raw nanoseconds.  :meth:`PipelineProbe.flush` (called once
per run, from the simulation's finalizer) folds the buffers into
per-stage histograms (``perf.stage.<name>.ns``).

Overhead control
----------------

* **one stage per timed cycle, round-robin** — a timed cycle brackets a
  single stage with two clock reads and buffers one integer; which stage
  rotates every timed cycle, so at full rate each stage is sampled every
  ``stage count``-th cycle.  Timing every boundary of every cycle (nine
  clock reads plus nine buffer appends) was measured at 6-8 % of a run
  on this workload — interleaved clock calls cost far more than a tight
  microbenchmark suggests — while the rotation keeps the probe well
  inside the <5 % budget without giving up per-stage distributions.
  Stage shares are estimates from interleaved samples rather than a
  same-cycle breakdown; at histogram-bucket resolution the difference is
  invisible.
* **deferred bucketing** — the hot loop only appends raw integers to a
  per-stage list; sorting and bucket classification happen once per run
  in :meth:`Histogram.record_many` (C-level ``sorted`` + one ``bisect``
  per bucket edge instead of one per sample).
* **sampling** — only every ``sample_every``-th cycle is timed; an
  off-cycle pays one integer modulo and falls through to the plain stage
  walk.  At ``sample_every=1`` the full instrumentation stays within the
  <5 % budget gated by ``benchmarks/check_regression.py``
  (``telemetry_overhead_pct``); with telemetry disabled the pipeline is
  not wrapped at all, so the cost is exactly zero.
* **no behavioural surface** — the probe only reads clocks and writes
  into its own buffers.  It never touches the RNG streams, the
  :class:`~repro.kernel.context.StepContext`, or any stage state — the
  stage objects themselves are shared with the probed pipeline, not
  wrapped — so results with probes enabled are bit-identical to unprobed
  runs at any sampling rate (pinned by the golden suite at rates 1 and 7).

Every timed cycle contributes exactly one sample, so at ``sample_every=1``
the per-stage counts sum to the cycle count and split evenly across the
stages.
"""

from time import perf_counter_ns
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.kernel.context import StepContext
from repro.kernel.pipeline import PipelineStage, StepPipeline
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracing import Tracer

#: Metric-name template of the per-stage latency histograms.
STAGE_METRIC = "perf.stage.{name}.ns"


class PipelineProbe:
    """Shared sampling state for one run's probed pipeline(s)."""

    __slots__ = ("metrics", "tracer", "sample_every", "_cycle", "_pipelines")

    def __init__(
        self,
        metrics: MetricsRegistry,
        sample_every: int = 1,
        tracer: Optional[Tracer] = None,
    ):
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        self.metrics = metrics
        self.tracer = tracer
        self.sample_every = sample_every
        self._cycle = 0
        self._pipelines: List["ProbedPipeline"] = []

    @property
    def cycles(self) -> int:
        """Cycles started so far (sampled and unsampled alike)."""
        return self._cycle

    @property
    def sampling(self) -> bool:
        """Whether the *next* cycle will be timed."""
        return self._cycle % self.sample_every == 0

    def wrap(self, pipeline: StepPipeline) -> "ProbedPipeline":
        """A probed view of ``pipeline`` sharing its stage objects.

        Stage names, ``pipeline.stage(name)`` and stage-specific methods
        all keep working — the stages are not wrapped, only the cycle
        walk is replaced.
        """
        probed = ProbedPipeline(pipeline.stages, self)
        self._pipelines.append(probed)
        return probed

    def flush(self) -> None:
        """Fold all buffered stage timings into the histograms (idempotent)."""
        for pipeline in self._pipelines:
            pipeline.flush()


class ProbedPipeline(StepPipeline):
    """A pipeline whose timed cycles time one stage each, round-robin."""

    __slots__ = ("probe", "_buffers", "_splits", "_rotation")

    def __init__(self, stages: Iterable[PipelineStage], probe: PipelineProbe):
        super().__init__(stages)
        self.probe = probe
        self._buffers: Tuple[List[int], ...] = tuple([] for _ in self.stages)
        runs = self._runs
        # Per-target precomputed (stages before, timed stage, stages
        # after, buffer append) so a timed cycle pays no per-stage branch.
        self._splits = tuple(
            (runs[:index], run, runs[index + 1 :], buffer.append)
            for index, (run, buffer) in enumerate(zip(runs, self._buffers))
        )
        self._rotation = 0

    def run_cycle(self, ctx: StepContext) -> None:
        probe = self.probe
        cycle = probe._cycle
        probe._cycle = cycle + 1
        if cycle % probe.sample_every:
            for run in self._runs:
                run(ctx)
            return
        splits = self._splits
        target = self._rotation
        self._rotation = (target + 1) % len(splits)
        before, timed, after, append = splits[target]
        for run in before:
            run(ctx)
        clock = perf_counter_ns
        start = clock()
        timed(ctx)
        append(clock() - start)
        for run in after:
            run(ctx)

    def run_cycle_batch(self, contexts: Sequence[StepContext]) -> None:
        """Time one lockstep cycle's stage *columns*.

        A column spreads its cost over the whole batch, so a timed batch
        cycle brackets every column (the per-cycle clock cost is paid
        once per batch row set, not once per run).  Records each column's
        whole nanoseconds plus the row count into ``perf.batch.rows`` so
        column costs can be normalised per run.
        """
        probe = self.probe
        cycle = probe._cycle
        probe._cycle = cycle + 1
        if cycle % probe.sample_every:
            for stage in self.stages:
                stage.run_batch(contexts)
            return
        metrics = probe.metrics
        for stage in self.stages:
            start = perf_counter_ns()
            stage.run_batch(contexts)
            metrics.histogram(STAGE_METRIC.format(name=stage.name)).record(
                perf_counter_ns() - start
            )
        metrics.counter("perf.batch.rows").inc(len(contexts))

    def flush(self) -> None:
        """Fold this pipeline's buffered timings into the histograms."""
        metrics = self.probe.metrics
        for stage, buffer in zip(self.stages, self._buffers):
            if buffer:
                metrics.histogram(STAGE_METRIC.format(name=stage.name)).record_many(
                    buffer
                )
                buffer.clear()

"""Exporters: Prometheus text, JSON snapshots, trace files, summary table.

Everything here consumes the plain snapshot dicts produced by
:meth:`~repro.telemetry.metrics.MetricsRegistry.snapshot` (or a live
registry), so exports work identically on a local registry and on a
merged cross-worker view.
"""

import json
import re
from typing import IO, List, Optional, Union

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracing import Tracer

#: Prefix of every exported Prometheus metric name.
PROMETHEUS_NAMESPACE = "repro"

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_]")


def prometheus_name(name: str) -> str:
    """Map a dotted metric name onto the Prometheus name grammar."""
    return f"{PROMETHEUS_NAMESPACE}_{_INVALID_CHARS.sub('_', name)}"


def _format_value(value: Union[int, float]) -> str:
    if isinstance(value, float) and value != value:  # NaN
        return "NaN"
    return repr(value) if isinstance(value, float) else str(value)


def prometheus_text(source: Union[MetricsRegistry, dict]) -> str:
    """Render a registry (or snapshot dict) in Prometheus text format.

    Counters and gauges become single samples; histograms become the
    standard ``_bucket{le=...}`` / ``_sum`` / ``_count`` series with
    cumulative bucket counts and a ``+Inf`` bucket.
    """
    snapshot = source.snapshot() if isinstance(source, MetricsRegistry) else source
    lines: List[str] = []
    for name, value in snapshot.get("counters", {}).items():
        metric = prometheus_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(value)}")
    for name, value in snapshot.get("gauges", {}).items():
        metric = prometheus_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(value)}")
    for name, data in snapshot.get("histograms", {}).items():
        metric = prometheus_name(name)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(data["bounds"], data["counts"]):
            cumulative += count
            lines.append(f'{metric}_bucket{{le="{_format_value(float(bound))}"}} {cumulative}')
        cumulative += data["counts"][-1]
        lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{metric}_sum {_format_value(float(data['sum']))}")
        lines.append(f"{metric}_count {data['count']}")
    return "\n".join(lines) + "\n"


def write_prometheus(source: Union[MetricsRegistry, dict], path: str) -> None:
    """Write the Prometheus text exposition to ``path``."""
    with open(path, "w") as handle:
        handle.write(prometheus_text(source))


def write_json_snapshot(
    source: Union[MetricsRegistry, dict], path: str, extra: Optional[dict] = None
) -> None:
    """Write the metrics snapshot (plus optional ``extra`` keys) as JSON."""
    snapshot = source.snapshot() if isinstance(source, MetricsRegistry) else dict(source)
    if extra:
        snapshot = {**snapshot, **extra}
    with open(path, "w") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")


def write_trace_jsonl(tracer: Tracer, path_or_handle: Union[str, IO[str]]) -> int:
    """Write the trace as JSONL: one Trace Event Format object per line.

    Each line parses as a standalone JSON object (streaming-friendly and
    what the CI artifact check asserts); the whole file is also what
    Perfetto's JSON tokenizer accepts as a newline-separated event list.
    Returns the number of events written.
    """
    events = tracer.chrome_events()
    if isinstance(path_or_handle, str):
        with open(path_or_handle, "w") as handle:
            for event in events:
                handle.write(json.dumps(event, sort_keys=True))
                handle.write("\n")
    else:
        for event in events:
            path_or_handle.write(json.dumps(event, sort_keys=True))
            path_or_handle.write("\n")
    return len(events)


def write_chrome_trace(tracer: Tracer, path: str) -> int:
    """Write the classic ``{"traceEvents": [...]}`` JSON envelope.

    This is the most broadly compatible form: load it directly in
    ``chrome://tracing`` or drag it into https://ui.perfetto.dev.
    Returns the number of events written.
    """
    events = tracer.chrome_events()
    with open(path, "w") as handle:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, handle)
        handle.write("\n")
    return len(events)


def summary(source: Union[MetricsRegistry, dict], title: str = "telemetry") -> str:
    """A human-readable summary table of everything recorded.

    Counters and gauges print name/value; histograms print count, mean,
    p50/p95 (bucket-resolution) and max, with nanosecond histograms
    scaled to microseconds for readability.
    """
    snapshot = source.snapshot() if isinstance(source, MetricsRegistry) else source
    lines = [f"=== {title} ==="]
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    if counters:
        lines.append("counters:")
        width = max(len(name) for name in counters)
        for name, value in counters.items():
            lines.append(f"  {name:<{width}}  {_format_value(value)}")
    if gauges:
        lines.append("gauges:")
        width = max(len(name) for name in gauges)
        for name, value in gauges.items():
            lines.append(f"  {name:<{width}}  {_format_value(round(float(value), 3))}")
    if histograms:
        lines.append("histograms:                                  "
                     "count       mean        p50        p95        max")
        for name, data in histograms.items():
            count = data["count"]
            if count == 0:
                lines.append(f"  {name:<42} {0:>6}")
                continue
            histogram = MetricsRegistry.from_snapshot({"histograms": {name: data}}).get(name)
            scale, unit = (1e3, "us") if name.endswith(".ns") or name.endswith("_ns") else (1.0, "")
            mean = histogram.mean / scale  # type: ignore[union-attr]
            p50 = histogram.quantile(0.5) / scale  # type: ignore[union-attr]
            p95 = histogram.quantile(0.95) / scale  # type: ignore[union-attr]
            peak = (data["max"] or 0.0) / scale
            lines.append(
                f"  {name:<42} {count:>6} {mean:>10.1f} {p50:>10.1f} "
                f"{p95:>10.1f} {peak:>10.1f} {unit}"
            )
    if len(lines) == 1:
        lines.append("(nothing recorded)")
    return "\n".join(lines)

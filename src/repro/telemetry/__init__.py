"""repro.telemetry — opt-in metrics, tracing and profiling.

Zero-dependency observability layer threaded through the kernel,
executors, resilience and search layers.  Everything is opt-in: without
a :class:`Telemetry` object the execution paths are untouched (no
wrapping, a handful of ``is None`` checks), and with one enabled the
probes only read clocks and write into their own registries — results
stay bit-identical (pinned by the golden-run suite).

Quick start::

    from repro.telemetry import Telemetry, TelemetryConfig

    telemetry = Telemetry(TelemetryConfig(trace=True))
    results = campaign.run(telemetry=telemetry)
    print(telemetry.summary())
    telemetry.write_prometheus("metrics.prom")
    telemetry.write_trace_jsonl("trace.jsonl")   # load in ui.perfetto.dev
"""

from repro.telemetry.collector import Telemetry, TelemetryConfig
from repro.telemetry.export import (
    PROMETHEUS_NAMESPACE,
    prometheus_name,
    prometheus_text,
    summary,
    write_chrome_trace,
    write_json_snapshot,
    write_prometheus,
    write_trace_jsonl,
)
from repro.telemetry.metrics import (
    NS_BUCKETS,
    SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.probe import STAGE_METRIC, PipelineProbe, ProbedPipeline
from repro.telemetry.tracing import DEFAULT_CAPACITY, Span, SpanHandle, Tracer

__all__ = [
    "Telemetry",
    "TelemetryConfig",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "NS_BUCKETS",
    "SECONDS_BUCKETS",
    "Tracer",
    "Span",
    "SpanHandle",
    "DEFAULT_CAPACITY",
    "PipelineProbe",
    "ProbedPipeline",
    "STAGE_METRIC",
    "PROMETHEUS_NAMESPACE",
    "prometheus_name",
    "prometheus_text",
    "summary",
    "write_prometheus",
    "write_json_snapshot",
    "write_trace_jsonl",
    "write_chrome_trace",
]

"""Picklable, mergeable metrics primitives for the telemetry layer.

Zero-dependency counters, gauges and fixed-bucket histograms collected in
a :class:`MetricsRegistry`.  Everything here is designed around the
execution model of the rest of the library:

* **picklable / JSON-safe** — worker processes accumulate into their own
  registries and ship plain :meth:`MetricsRegistry.snapshot` dicts back
  to the parent, which merges them;
* **mergeable** — counters and histograms merge by summation (histogram
  merge is associative and commutative, pinned by a hypothesis test), so
  a campaign-level view aggregates identically whether the runs executed
  sequentially, through the process pool, or lockstep-batched;
* **deterministic vs. timing split** — metrics whose values depend on
  wall clocks live under the ``perf.`` prefix; everything else must be a
  pure function of the simulated work (run counts, hazard counts, CAN
  frame counts, memo hits).  :meth:`MetricsRegistry.deterministic_snapshot`
  drops the ``perf.`` namespace, and the determinism tests assert that
  the remainder is identical across sequential / pooled / batched
  execution of the same campaign.

No locks: each registry is owned by exactly one thread of one process
(the simulation loops are single-threaded; cross-process aggregation
happens through snapshot merges, not shared memory).
"""

from bisect import bisect_left, bisect_right
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

try:  # optional vectorised record_many fast path; bisect fallback below
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on numpy-free hosts
    _np = None  # type: ignore[assignment]

#: Metrics under this prefix depend on wall clocks / host speed and are
#: excluded from determinism comparisons.
PERF_PREFIX = "perf."

#: Default nanosecond buckets (1-2-5 decades, 1 µs .. 1 s) for the
#: per-stage and per-cycle latency histograms.
NS_BUCKETS: Tuple[float, ...] = tuple(
    mantissa * 10.0**exponent
    for exponent in range(3, 9)
    for mantissa in (1.0, 2.0, 5.0)
) + (1e9,)

#: Default second buckets (10 ms .. 100 s) for run durations.
SECONDS_BUCKETS: Tuple[float, ...] = tuple(
    mantissa * 10.0**exponent
    for exponent in range(-2, 2)
    for mantissa in (1.0, 2.0, 5.0)
) + (100.0,)


class Counter:
    """A monotonically increasing sum (int or float)."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str, value: Union[int, float] = 0):
        self.name = name
        self.value = value

    def inc(self, amount: Union[int, float] = 1) -> None:
        self.value += amount

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def to_dict(self) -> Union[int, float]:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A last-value-wins measurement.

    Merge semantics: the *other* gauge wins when it was ever set, so a
    chain of merges applied in task order reproduces the value the last
    setting task observed.  (``(a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)`` — the result
    is always the last set value in merge order.)
    """

    __slots__ = ("name", "value", "is_set")
    kind = "gauge"

    def __init__(self, name: str, value: float = 0.0, is_set: bool = False):
        self.name = name
        self.value = value
        self.is_set = is_set

    def set(self, value: float) -> None:
        self.value = value
        self.is_set = True

    def merge(self, other: "Gauge") -> None:
        if other.is_set:
            self.value = other.value
            self.is_set = True

    def to_dict(self) -> float:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """A fixed-bucket histogram with sum/count/min/max.

    ``bounds`` are the inclusive upper edges of the first ``len(bounds)``
    buckets; one implicit overflow bucket catches everything above the
    last bound (Prometheus's ``+Inf`` bucket).  Recording is a C-level
    ``bisect`` plus two adds — cheap enough for sampled per-stage timing
    at full rate.
    """

    __slots__ = ("name", "bounds", "counts", "sum", "count", "min", "max")
    kind = "histogram"

    def __init__(self, name: str, bounds: Sequence[float] = NS_BUCKETS):
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(float(bound) for bound in bounds)
        if not self.bounds or list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError(f"histogram bounds must be strictly increasing: {bounds}")
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def record(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def record_many(self, values: Sequence[float]) -> None:
        """Record a batch of samples in one pass.

        Equivalent to calling :meth:`record` per value (pinned by a
        hypothesis test) but sorts once and classifies with one bisect
        per bucket edge instead of one per sample — this is how the
        pipeline probe folds a whole run's buffered stage timings without
        paying per-sample bucketing in the hot loop.  Integer numpy
        arrays take a fully vectorised path (``sort`` + one
        ``searchsorted`` over the bucket edges) when the values are small
        enough that the int64 sum and the float64 edge comparisons are
        both exact; anything else falls back to the portable bisect loop.
        """
        count = len(values)
        if not count:
            return
        if (
            _np is not None
            and isinstance(values, _np.ndarray)
            and values.dtype.kind in "iu"
        ):
            ordered_array = _np.sort(values)
            low = int(ordered_array[0])
            high = int(ordered_array[-1])
            if 0 <= low and high < 2**40 and count < 2**22:
                counts = self.counts
                previous = 0
                positions = _np.searchsorted(ordered_array, self.bounds, side="right")
                for index, position in enumerate(positions.tolist()):
                    counts[index] += position - previous
                    previous = position
                counts[len(self.bounds)] += count - previous
                self.sum += int(ordered_array.sum())
                self.count += count
                if self.min is None or low < self.min:
                    self.min = low
                if self.max is None or high > self.max:
                    self.max = high
                return
            values = ordered_array.tolist()
        ordered = sorted(values)
        counts = self.counts
        previous = 0
        for index, bound in enumerate(self.bounds):
            position = bisect_right(ordered, bound)
            counts[index] += position - previous
            previous = position
        counts[len(self.bounds)] += len(ordered) - previous
        self.sum += sum(ordered)
        self.count += len(ordered)
        if self.min is None or ordered[0] < self.min:
            self.min = ordered[0]
        if self.max is None or ordered[-1] > self.max:
            self.max = ordered[-1]

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper bound of the bucket
        holding the q-th sample; the overflow bucket reports the max)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for index, count in enumerate(self.counts):
            cumulative += count
            if cumulative >= rank and count:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.max if self.max is not None else self.bounds[-1]
        return self.max if self.max is not None else self.bounds[-1]

    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histogram {self.name!r}: bucket bounds differ"
            )
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.sum += other.sum
        self.count += other.count
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    def to_dict(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, name: str, payload: dict) -> "Histogram":
        histogram = cls(name, payload["bounds"])
        histogram.counts = [int(count) for count in payload["counts"]]
        histogram.sum = float(payload["sum"])
        histogram.count = int(payload["count"])
        histogram.min = payload["min"]
        histogram.max = payload["max"]
        return histogram

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name!r}, count={self.count}, mean={self.mean:.1f})"


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """A named collection of counters, gauges and histograms.

    Metric names are dotted lowercase paths (``runs.completed``,
    ``can.frames_sent``, ``perf.stage.sense.ns``).  Accessors create on
    first use and return the existing metric afterwards, so callers can
    hold direct references for hot-loop recording.
    """

    __slots__ = ("_metrics",)

    def __init__(self):
        self._metrics: Dict[str, Metric] = {}

    # -- accessors ---------------------------------------------------------

    def counter(self, name: str) -> Counter:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = Counter(name)
        elif not isinstance(metric, Counter):
            raise TypeError(f"{name!r} is a {metric.kind}, not a counter")
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = Gauge(name)
        elif not isinstance(metric, Gauge):
            raise TypeError(f"{name!r} is a {metric.kind}, not a gauge")
        return metric

    def histogram(self, name: str, bounds: Sequence[float] = NS_BUCKETS) -> Histogram:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = Histogram(name, bounds)
        elif not isinstance(metric, Histogram):
            raise TypeError(f"{name!r} is a {metric.kind}, not a histogram")
        return metric

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterable[Metric]:
        return iter(self._metrics.values())

    def __bool__(self) -> bool:
        return bool(self._metrics)

    # -- merging / serialization ------------------------------------------

    def merge(self, other: Union["MetricsRegistry", dict]) -> None:
        """Merge another registry (or a snapshot dict) into this one.

        Counters and histograms add; gauges take the other's value when
        it was set.  Merging is applied in task order by every caller, so
        the merged view is deterministic however the work was scheduled.
        """
        if isinstance(other, dict):
            other = MetricsRegistry.from_snapshot(other)
        for name, metric in other._metrics.items():
            mine = self._metrics.get(name)
            if mine is None:
                if isinstance(metric, Counter):
                    self.counter(name).merge(metric)
                elif isinstance(metric, Gauge):
                    self.gauge(name).merge(metric)
                else:
                    self.histogram(name, metric.bounds).merge(metric)
            elif mine.kind != metric.kind:
                raise TypeError(
                    f"cannot merge {name!r}: {metric.kind} into {mine.kind}"
                )
            else:
                mine.merge(metric)  # type: ignore[arg-type]

    def snapshot(self) -> dict:
        """A JSON-safe dict of everything recorded (see :meth:`from_snapshot`)."""
        counters = {}
        gauges = {}
        histograms = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                counters[name] = metric.to_dict()
            elif isinstance(metric, Gauge):
                gauges[name] = metric.to_dict()
            else:
                histograms[name] = metric.to_dict()
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def deterministic_snapshot(self) -> dict:
        """The snapshot minus every wall-clock-dependent (``perf.*``) metric.

        This is the view the determinism tests compare across sequential,
        pooled and batched execution of the same campaign.
        """
        full = self.snapshot()
        return {
            section: {
                name: value
                for name, value in full[section].items()
                if not name.startswith(PERF_PREFIX)
            }
            for section in ("counters", "gauges", "histograms")
        }

    @classmethod
    def from_snapshot(cls, payload: dict) -> "MetricsRegistry":
        registry = cls()
        for name, value in payload.get("counters", {}).items():
            registry.counter(name).value = value
        for name, value in payload.get("gauges", {}).items():
            registry.gauge(name).set(value)
        for name, data in payload.get("histograms", {}).items():
            registry._metrics[name] = Histogram.from_dict(name, data)
        return registry

    def __getstate__(self) -> dict:
        return self.snapshot()

    def __setstate__(self, state: dict) -> None:
        self._metrics = MetricsRegistry.from_snapshot(state)._metrics

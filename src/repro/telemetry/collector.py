"""The user-facing telemetry handle threaded through the execution paths.

A :class:`Telemetry` object bundles one :class:`MetricsRegistry`, an
optional :class:`Tracer`, and the :class:`TelemetryConfig` knobs, and is
what ``Campaign.run(telemetry=...)``, ``run_simulation``,
``SearchDriver`` and the batch/pool executors accept.

Aggregation model
-----------------

* **in-process** (sequential, lockstep-batched, SearchDriver): every run
  records directly into the shared registry; pipelines are wrapped with
  a sampled :class:`~repro.telemetry.probe.PipelineProbe` per run.
* **process pool** (:class:`~repro.injection.executor.ParallelCampaignRunner`,
  :func:`~repro.injection.executor.run_simulations`): workers accumulate
  into chunk-local registries and ship snapshots back with the results;
  the parent merges them **in chunk order** after collection, so the
  merged view is identical to the sequential one (pinned by the
  determinism tests) even though chunks complete out of order.
* **supervised** (:mod:`repro.resilience.supervisor`): the parent records
  supervision counters (retries, timeouts, respawns, backoff) and
  result-derived run metrics; worker-side stage probes are off on this
  path (the payload protocol is the supervisor's corruption-detection
  surface and stays untouched).

The config is a small frozen dataclass so it pickles cheaply to workers;
the registry pickles as its snapshot.
"""

from dataclasses import dataclass
from time import perf_counter_ns
from typing import TYPE_CHECKING, Optional, Union

from repro.telemetry.export import (
    prometheus_text,
    summary,
    write_chrome_trace,
    write_json_snapshot,
    write_prometheus,
    write_trace_jsonl,
)
from repro.telemetry.metrics import SECONDS_BUCKETS, MetricsRegistry
from repro.telemetry.probe import PipelineProbe
from repro.telemetry.tracing import DEFAULT_CAPACITY, SpanHandle, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.metrics import RunResult


class _NullSpan:
    """No-op span used when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def annotate(self, **args) -> None:
        return None


_NULL_SPAN = _NullSpan()


@dataclass(frozen=True)
class TelemetryConfig:
    """Knobs of the telemetry layer (picklable; shipped to pool workers).

    Attributes:
        sample_every: Probe sampling interval — every N-th control cycle
            pays the per-stage timing; 1 = every cycle (full rate, still
            within the <5 % overhead budget), larger values amortise the
            cost further on very hot loops.
        probe_stages: Wrap each run's pipeline with the per-stage probe.
            Off, only run/campaign-level metrics are recorded.
        trace: Keep a span ring buffer (campaign/chunk/run/generation
            spans; exportable to Perfetto / chrome://tracing).
        trace_capacity: Ring-buffer size in spans (oldest are dropped
            and counted once full).
    """

    sample_every: int = 1
    probe_stages: bool = True
    trace: bool = False
    trace_capacity: int = DEFAULT_CAPACITY

    def __post_init__(self):
        if self.sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        if self.trace_capacity < 1:
            raise ValueError("trace_capacity must be >= 1")


class Telemetry:
    """One observation context: metrics + optional tracer + config."""

    def __init__(
        self,
        config: Optional[TelemetryConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.config = config or TelemetryConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        if tracer is None and self.config.trace:
            tracer = Tracer(self.config.trace_capacity)
        self.tracer = tracer

    # -- recording ---------------------------------------------------------

    def probe(self) -> Optional[PipelineProbe]:
        """A fresh per-run probe over the shared registry (None when off)."""
        if not self.config.probe_stages:
            return None
        return PipelineProbe(self.metrics, sample_every=self.config.sample_every)

    def span(self, name: str, category: str = "repro", **args) -> Union[SpanHandle, _NullSpan]:
        """A span context manager (no-op when tracing is disabled)."""
        if self.tracer is None:
            return _NULL_SPAN
        return self.tracer.span(name, category, **args)

    def record_run(
        self,
        result: "RunResult",
        steps: int,
        can_sent: int = 0,
        can_tampered: int = 0,
        wall_ns: Optional[int] = None,
    ) -> None:
        """Account one finished simulation into the campaign-level view.

        Everything here is a pure function of the simulated work (plus
        the optional wall-clock duration, which lands under ``perf.``),
        so the deterministic snapshot agrees across execution modes.
        """
        metrics = self.metrics
        metrics.counter("runs.completed").inc()
        metrics.counter("runs.steps").inc(steps)
        metrics.counter("runs.hazards").inc(len(result.hazards))
        metrics.counter("runs.accidents").inc(len(result.accidents))
        metrics.counter("runs.alerts").inc(len(result.alerts))
        metrics.counter("runs.lane_invasions").inc(result.lane_invasions)
        if result.driver_engaged:
            metrics.counter("runs.driver_engaged").inc()
        if result.attack_activated:
            metrics.counter("runs.attacks_activated").inc()
        if result.hazard_occurred:
            metrics.counter("runs.with_hazard").inc()
        metrics.counter("can.frames_sent").inc(can_sent)
        metrics.counter("can.frames_tampered").inc(can_tampered)
        metrics.histogram("run.duration_s", SECONDS_BUCKETS).record(result.duration)
        if wall_ns is not None and wall_ns > 0:
            metrics.histogram("perf.run.wall_ns").record(wall_ns)
            metrics.counter("perf.run.busy_ns").inc(wall_ns)
            metrics.gauge("perf.run.steps_per_s").set(steps / (wall_ns / 1e9))

    def merge(self, other: Union["Telemetry", MetricsRegistry, dict, None]) -> None:
        """Merge another telemetry view / registry / snapshot into this one."""
        if other is None:
            return
        if isinstance(other, Telemetry):
            self.metrics.merge(other.metrics)
            if other.tracer is not None and self.tracer is not None:
                self.tracer.merge(other.tracer)
        else:
            self.metrics.merge(other)

    def worker_config(self) -> Optional[TelemetryConfig]:
        """The config shipped to pool workers (tracing stays parent-side:
        worker clocks are not aligned with the parent's timebase)."""
        config = self.config
        if config.trace:
            config = TelemetryConfig(
                sample_every=config.sample_every,
                probe_stages=config.probe_stages,
                trace=False,
            )
        return config

    # -- time helper -------------------------------------------------------

    @staticmethod
    def now_ns() -> int:
        return perf_counter_ns()

    # -- exports -----------------------------------------------------------

    def snapshot(self) -> dict:
        return self.metrics.snapshot()

    def deterministic_snapshot(self) -> dict:
        return self.metrics.deterministic_snapshot()

    def prometheus(self) -> str:
        return prometheus_text(self.metrics)

    def summary(self, title: str = "telemetry") -> str:
        return summary(self.metrics, title=title)

    def write_prometheus(self, path: str) -> None:
        write_prometheus(self.metrics, path)

    def write_json(self, path: str, extra: Optional[dict] = None) -> None:
        write_json_snapshot(self.metrics, path, extra=extra)

    def write_trace_jsonl(self, path: str) -> int:
        if self.tracer is None:
            raise ValueError("tracing is disabled (TelemetryConfig(trace=True) enables it)")
        return write_trace_jsonl(self.tracer, path)

    def write_chrome_trace(self, path: str) -> int:
        if self.tracer is None:
            raise ValueError("tracing is disabled (TelemetryConfig(trace=True) enables it)")
        return write_chrome_trace(self.tracer, path)

"""Honda-style CAN message database used by the simulated vehicle.

The paper's running example corrupts the steering output CAN message with
arbitration id ``0xE4`` (Fig. 4) and relies on the opendbc definitions to
know the payload layout.  The definitions below model the subset of the
Honda powertrain bus needed by the ADAS and the attack:

* ``STEERING_CONTROL`` (0xE4)  — commanded steering angle, ADAS → EPS.
* ``ACC_CONTROL``      (0x1FA) — commanded acceleration / brake, ADAS → PCM.
* ``POWERTRAIN_DATA``  (0x17C) — measured speed and pedal state, car → ADAS.
* ``STEERING_SENSORS`` (0x156) — measured steering angle/rate, car → ADAS.

The exact bit positions are a simplification of the real DBC but preserve
the properties the attack depends on: a scaled physical signal, a rolling
counter, and a 4-bit checksum that must be recomputed after tampering.
"""

from repro.can.dbc import DBC, MessageDef, Signal

# Arbitration ids (powertrain bus 0).
ADDR = {
    "STEERING_CONTROL": 0xE4,
    "ACC_CONTROL": 0x1FA,
    "POWERTRAIN_DATA": 0x17C,
    "STEERING_SENSORS": 0x156,
}

STEERING_CONTROL = MessageDef(
    name="STEERING_CONTROL",
    address=ADDR["STEERING_CONTROL"],
    length=5,
    signals={
        # Commanded steering wheel angle, degrees (+ = left), 0.01 deg/bit.
        "STEER_ANGLE_CMD": Signal("STEER_ANGLE_CMD", 0, 16, factor=0.01, is_signed=True),
        # Normalised steering torque request in [-1, 1], 1/2047 per bit.
        "STEER_TORQUE": Signal("STEER_TORQUE", 16, 12, factor=1.0 / 2047.0, is_signed=True),
        "STEER_REQUEST": Signal("STEER_REQUEST", 28, 1),
        "COUNTER": Signal("COUNTER", 32, 2),
        "CHECKSUM": Signal("CHECKSUM", 36, 4),
    },
)

ACC_CONTROL = MessageDef(
    name="ACC_CONTROL",
    address=ADDR["ACC_CONTROL"],
    length=8,
    signals={
        # Commanded longitudinal acceleration, m/s^2, 0.005 per bit.
        "ACCEL_COMMAND": Signal("ACCEL_COMMAND", 0, 16, factor=0.005, is_signed=True),
        # Commanded braking deceleration magnitude, m/s^2, 0.005 per bit.
        "BRAKE_COMMAND": Signal("BRAKE_COMMAND", 16, 16, factor=0.005),
        "BRAKE_REQUEST": Signal("BRAKE_REQUEST", 32, 1),
        "ACC_ON": Signal("ACC_ON", 33, 1),
        "COUNTER": Signal("COUNTER", 56, 2),
        "CHECKSUM": Signal("CHECKSUM", 60, 4),
    },
)

POWERTRAIN_DATA = MessageDef(
    name="POWERTRAIN_DATA",
    address=ADDR["POWERTRAIN_DATA"],
    length=8,
    signals={
        # Measured vehicle speed, m/s, 0.01 per bit.
        "XMISSION_SPEED": Signal("XMISSION_SPEED", 0, 16, factor=0.01),
        # Measured longitudinal acceleration, m/s^2, 0.01 per bit.
        "ACCEL_MEASURED": Signal("ACCEL_MEASURED", 16, 16, factor=0.01, is_signed=True),
        "PEDAL_GAS": Signal("PEDAL_GAS", 32, 8, factor=1.0 / 255.0),
        "BRAKE_PRESSED": Signal("BRAKE_PRESSED", 40, 1),
        "GAS_PRESSED": Signal("GAS_PRESSED", 41, 1),
        "COUNTER": Signal("COUNTER", 56, 2),
        "CHECKSUM": Signal("CHECKSUM", 60, 4),
    },
)

STEERING_SENSORS = MessageDef(
    name="STEERING_SENSORS",
    address=ADDR["STEERING_SENSORS"],
    length=6,
    signals={
        # Measured steering wheel angle, degrees, 0.1 per bit.
        "STEER_ANGLE": Signal("STEER_ANGLE", 0, 16, factor=0.1, is_signed=True),
        # Measured steering wheel rate, deg/s, 1 per bit.
        "STEER_ANGLE_RATE": Signal("STEER_ANGLE_RATE", 16, 16, factor=1.0, is_signed=True),
        "COUNTER": Signal("COUNTER", 40, 2),
        "CHECKSUM": Signal("CHECKSUM", 44, 4),
    },
)

HONDA_DBC = DBC(
    "honda_civic_touring_2016_can_generated",
    [STEERING_CONTROL, ACC_CONTROL, POWERTRAIN_DATA, STEERING_SENSORS],
)

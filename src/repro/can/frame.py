"""Raw CAN frame representation."""

from dataclasses import dataclass


@dataclass(frozen=True)
class CANFrame:
    """A single CAN data frame.

    Attributes:
        address: 11-bit (standard) or 29-bit (extended) arbitration id.
        data: Payload bytes (0..8 bytes for classic CAN).
        bus: Logical bus index (0 = powertrain, 1 = radar, 2 = camera),
            matching OpenPilot's convention.
        timestamp: Logical send time in seconds.
    """

    address: int
    data: bytes
    bus: int = 0
    timestamp: float = 0.0

    def __post_init__(self):
        if not 0 <= self.address <= 0x1FFFFFFF:
            raise ValueError(f"invalid CAN address: {self.address:#x}")
        if len(self.data) > 8:
            raise ValueError(f"classic CAN payload is at most 8 bytes, got {len(self.data)}")

    @property
    def is_extended(self) -> bool:
        """True if the arbitration id requires the 29-bit extended format."""
        return self.address > 0x7FF

    def with_data(self, data: bytes) -> "CANFrame":
        """Return a copy of this frame carrying ``data`` instead."""
        return CANFrame(self.address, data, self.bus, self.timestamp)

    def hex(self) -> str:
        """Payload as a hex string, e.g. ``'d00055c0'``."""
        return self.data.hex()

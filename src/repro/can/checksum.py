"""Checksums and rolling counters used on Honda CAN messages.

Honda frames carry a 4-bit rolling counter and a 4-bit checksum in the
last byte of the payload.  The paper notes that after corrupting a control
command the attacker "updates the checksum ... so the integrity of the
corrupted CAN message is maintained"; :func:`honda_checksum` is that
computation.
"""

from typing import Union


def honda_checksum(address: int, data: Union[bytes, bytearray]) -> int:
    """Compute the Honda 4-bit checksum for a frame.

    The checksum is computed over the arbitration id nibbles and every
    payload nibble except the checksum nibble itself (the low nibble of
    the final byte), then negated modulo 16.

    Args:
        address: CAN arbitration id.
        data: Full payload including the checksum byte (its low nibble is
            ignored).

    Returns:
        The 4-bit checksum value (0..15).
    """
    if not data:
        raise ValueError("cannot checksum an empty payload")
    checksum = 0
    remainder = address
    while remainder > 0:
        checksum += remainder & 0xF
        remainder >>= 4
    for i, byte in enumerate(data):
        if i == len(data) - 1:
            byte >>= 4  # drop the checksum nibble itself
            checksum += byte
        else:
            checksum += (byte >> 4) + (byte & 0xF)
    return (8 - checksum) & 0xF


def honda_counter(previous: int) -> int:
    """Return the next value of the 2-bit rolling counter after ``previous``."""
    return (previous + 1) & 0x3


def apply_checksum(address: int, data: bytearray) -> bytearray:
    """Write the correct checksum into the low nibble of the final byte."""
    if not data:
        raise ValueError("cannot checksum an empty payload")
    data[-1] = (data[-1] & 0xF0) | honda_checksum(address, data)
    return data


def verify_checksum(address: int, data: Union[bytes, bytearray]) -> bool:
    """True if the payload's embedded checksum matches the computed one."""
    if not data:
        return False
    return (data[-1] & 0xF) == honda_checksum(address, data)

"""Checksums and rolling counters used on Honda CAN messages.

Honda frames carry a 4-bit rolling counter and a 4-bit checksum in the
last byte of the payload.  The paper notes that after corrupting a control
command the attacker "updates the checksum ... so the integrity of the
corrupted CAN message is maintained"; :func:`honda_checksum` is that
computation.
"""

from typing import Union

# Per-byte nibble sums ((b >> 4) + (b & 0xF)), so the payload loop is a
# single table-driven ``sum`` instead of per-byte shifting; the checksum
# runs once per encoded frame on the simulator's 100 Hz control path.
# ``NIBBLE_SUMS`` is public so the compiled codec plans can inline the
# same computation (equivalence is pinned by the codec round-trip tests).
NIBBLE_SUMS = tuple((b >> 4) + (b & 0xF) for b in range(256))


def address_nibble_sum(address: int) -> int:
    """Sum of the arbitration-id nibbles (the per-message constant part
    of :func:`honda_checksum`)."""
    total = 0
    while address > 0:
        total += address & 0xF
        address >>= 4
    return total


def honda_checksum(address: int, data: Union[bytes, bytearray]) -> int:
    """Compute the Honda 4-bit checksum for a frame.

    The checksum is computed over the arbitration id nibbles and every
    payload nibble except the checksum nibble itself (the low nibble of
    the final byte), then negated modulo 16.

    Args:
        address: CAN arbitration id.
        data: Full payload including the checksum byte (its low nibble is
            ignored).

    Returns:
        The 4-bit checksum value (0..15).
    """
    if not data:
        raise ValueError("cannot checksum an empty payload")
    # Sum every payload nibble, then drop the checksum nibble itself (the
    # low nibble of the final byte).
    checksum = address_nibble_sum(address)
    checksum += sum(map(NIBBLE_SUMS.__getitem__, data)) - (data[-1] & 0xF)
    return (8 - checksum) & 0xF


def honda_counter(previous: int) -> int:
    """Return the next value of the 2-bit rolling counter after ``previous``."""
    return (previous + 1) & 0x3


def apply_checksum(address: int, data: bytearray) -> bytearray:
    """Write the correct checksum into the low nibble of the final byte."""
    if not data:
        raise ValueError("cannot checksum an empty payload")
    data[-1] = (data[-1] & 0xF0) | honda_checksum(address, data)
    return data


def verify_checksum(address: int, data: Union[bytes, bytearray]) -> bool:
    """True if the payload's embedded checksum matches the computed one."""
    if not data:
        return False
    return (data[-1] & 0xF) == honda_checksum(address, data)

"""Simulated CAN bus.

The bus stores the most recent frame per arbitration id (like the real
bus's "last value wins" semantics at the 100 Hz control rate) and offers
two interception points used elsewhere in the library:

* **taps** — read-only callbacks receiving every sent frame, used by the
  message log and by intrusion-detection experiments;
* **transformers** — callbacks that may *replace* a frame before it is
  stored, which is exactly the man-in-the-middle capability the paper's
  attack model assumes (a compromised component between the ADAS output
  and the actuators, e.g. malware on the OBD-II dongle).
"""

from typing import Callable, Dict, List, Optional

from repro.can.frame import CANFrame

Tap = Callable[[CANFrame], None]
Transformer = Callable[[CANFrame], Optional[CANFrame]]


class CANBus:
    """A single logical CAN bus with last-value-per-address semantics."""

    def __init__(self, bus_id: int = 0):
        self.bus_id = bus_id
        self._frames: Dict[int, CANFrame] = {}
        self._taps: List[Tap] = []
        self._transformers: List[Transformer] = []
        self._sent_count = 0
        self._tampered_count = 0

    def add_tap(self, tap: Tap) -> None:
        """Register a read-only observer of every frame sent on the bus."""
        self._taps.append(tap)

    def add_transformer(self, transformer: Transformer) -> None:
        """Register a man-in-the-middle transformer.

        A transformer receives each sent frame and may return a replacement
        frame (same address) or ``None`` to pass the original through.
        """
        self._transformers.append(transformer)

    def remove_transformer(self, transformer: Transformer) -> None:
        """Remove a previously registered transformer; missing ones are ignored."""
        if transformer in self._transformers:
            self._transformers.remove(transformer)

    def send(self, frame: CANFrame) -> CANFrame:
        """Send ``frame`` on the bus, applying transformers, and return the
        frame that was actually stored (post-tampering)."""
        self._sent_count += 1
        out = frame
        for transformer in self._transformers:
            replacement = transformer(out)
            if replacement is not None:
                if replacement.address != out.address:
                    raise ValueError(
                        "a transformer must not change the frame address "
                        f"({out.address:#x} -> {replacement.address:#x})"
                    )
                out = replacement
        if out is not frame:
            self._tampered_count += 1
        self._frames[out.address] = out
        for tap in self._taps:
            tap(out)
        return out

    def latest(self, address: int) -> Optional[CANFrame]:
        """Most recent frame stored for ``address``, or ``None``."""
        return self._frames.get(address)

    @property
    def has_transformers(self) -> bool:
        """True when at least one man-in-the-middle transformer is active.

        The lockstep batch executor uses this to decide whether the
        encode→send→decode round trip of a control cycle may be collapsed
        into an array read: with a transformer registered, the stored
        frame can differ from the sent one, so every decode must go
        through the bus.
        """
        return bool(self._transformers)

    @property
    def sent_count(self) -> int:
        """Total number of frames sent on this bus."""
        return self._sent_count

    @property
    def tampered_count(self) -> int:
        """Number of frames that were replaced by a transformer."""
        return self._tampered_count

    def clear(self) -> None:
        """Drop all stored frames (keeps taps and transformers)."""
        self._frames.clear()

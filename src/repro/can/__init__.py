"""CAN bus substrate.

The last stage of the paper's attack rewrites the CAN frame that carries a
target actuator command (e.g. the 0xE4 steering control frame on Honda
platforms), updating the checksum so the tampered frame still passes
integrity checks.  This package provides the pieces needed to exercise
that code path end-to-end:

* :mod:`repro.can.frame` — raw CAN frames (arbitration id, payload, bus).
* :mod:`repro.can.dbc` — DBC-style signal definitions and packing/unpacking.
* :mod:`repro.can.checksum` — Honda-style 4-bit checksum and rolling counter.
* :mod:`repro.can.honda` — the concrete message database used by the ADAS.
* :mod:`repro.can.bus` — a simulated CAN bus with taps for intrusion tools
  and attackers.
"""

from repro.can.frame import CANFrame
from repro.can.dbc import Signal, MessageDef, DBC
from repro.can.checksum import honda_checksum, honda_counter
from repro.can.honda import HONDA_DBC, STEERING_CONTROL, ACC_CONTROL, ADDR
from repro.can.bus import CANBus

__all__ = [
    "CANFrame",
    "Signal",
    "MessageDef",
    "DBC",
    "honda_checksum",
    "honda_counter",
    "HONDA_DBC",
    "STEERING_CONTROL",
    "ACC_CONTROL",
    "ADDR",
    "CANBus",
]

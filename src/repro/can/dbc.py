"""DBC-style CAN signal definitions and packing.

A Database Container (DBC) file describes how physical signals are laid
out inside CAN payload bytes.  The attacker in the paper uses the
open-source opendbc definitions to locate the steering command inside the
0xE4 frame; here we implement the same abstraction: a :class:`Signal`
describes a bit field plus scaling, a :class:`MessageDef` groups signals
for one arbitration id, and a :class:`DBC` holds the per-platform message
database with ``encode``/``decode`` entry points.

Bit layout convention: signals are packed big-endian (Motorola byte
order), addressed by the offset of their most significant bit counting
from the MSB of byte 0.  This is sufficient for the Honda-style messages
modelled in :mod:`repro.can.honda` and keeps the codec easy to verify.
"""

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional

from repro.can.checksum import apply_checksum, verify_checksum
from repro.can.frame import CANFrame


@dataclass(frozen=True)
class Signal:
    """One physical signal inside a CAN message.

    Attributes:
        name: Signal name, e.g. ``"STEER_ANGLE_CMD"``.
        msb_offset: Offset of the signal's most significant bit, counted
            from the MSB of payload byte 0.
        size: Width in bits (1..64).
        factor: Physical value = raw * factor + offset.
        offset: See ``factor``.
        is_signed: Whether the raw value is two's-complement signed.
        minimum / maximum: Optional physical-range clamp applied on encode.
    """

    name: str
    msb_offset: int
    size: int
    factor: float = 1.0
    offset: float = 0.0
    is_signed: bool = False
    minimum: Optional[float] = None
    maximum: Optional[float] = None

    def __post_init__(self):
        if not 1 <= self.size <= 64:
            raise ValueError(f"signal {self.name!r}: size must be 1..64, got {self.size}")
        if self.msb_offset < 0:
            raise ValueError(f"signal {self.name!r}: negative bit offset")
        if self.factor == 0:
            raise ValueError(f"signal {self.name!r}: factor must be non-zero")

    def to_raw(self, physical: float) -> int:
        """Convert a physical value to the raw integer field value."""
        value = physical
        if self.minimum is not None:
            value = max(self.minimum, value)
        if self.maximum is not None:
            value = min(self.maximum, value)
        raw = int(round((value - self.offset) / self.factor))
        if self.is_signed:
            limit = 1 << (self.size - 1)
            raw = max(-limit, min(limit - 1, raw))
            if raw < 0:
                raw += 1 << self.size
        else:
            raw = max(0, min((1 << self.size) - 1, raw))
        return raw

    def to_physical(self, raw: int) -> float:
        """Convert a raw integer field value to the physical value."""
        value = raw
        if self.is_signed and raw >= 1 << (self.size - 1):
            value = raw - (1 << self.size)
        return value * self.factor + self.offset


@dataclass(frozen=True)
class MessageDef:
    """Definition of one CAN message (arbitration id + its signals)."""

    name: str
    address: int
    length: int
    signals: Mapping[str, Signal] = field(default_factory=dict)
    checksummed: bool = True

    def __post_init__(self):
        if not 1 <= self.length <= 8:
            raise ValueError(f"message {self.name!r}: length must be 1..8 bytes")
        total_bits = self.length * 8
        for sig in self.signals.values():
            if sig.msb_offset + sig.size > total_bits:
                raise ValueError(
                    f"signal {sig.name!r} does not fit in {self.length}-byte message {self.name!r}"
                )


def _pack_field(data: bytearray, msb_offset: int, size: int, raw: int) -> None:
    total_bits = len(data) * 8
    shift = total_bits - msb_offset - size
    value = int.from_bytes(data, "big")
    mask = ((1 << size) - 1) << shift
    value = (value & ~mask) | ((raw << shift) & mask)
    data[:] = value.to_bytes(len(data), "big")


def _unpack_field(data: bytes, msb_offset: int, size: int) -> int:
    total_bits = len(data) * 8
    shift = total_bits - msb_offset - size
    value = int.from_bytes(data, "big")
    return (value >> shift) & ((1 << size) - 1)


class DBC:
    """A message database: encode/decode physical signal dicts to frames."""

    def __init__(self, name: str, messages: Iterable[MessageDef]):
        self.name = name
        self._by_address: Dict[int, MessageDef] = {}
        self._by_name: Dict[str, MessageDef] = {}
        for msg in messages:
            if msg.address in self._by_address:
                raise ValueError(f"duplicate address {msg.address:#x} in DBC {name!r}")
            self._by_address[msg.address] = msg
            self._by_name[msg.name] = msg

    def message_by_address(self, address: int) -> MessageDef:
        try:
            return self._by_address[address]
        except KeyError:
            raise KeyError(f"DBC {self.name!r} has no message at {address:#x}") from None

    def message_by_name(self, name: str) -> MessageDef:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"DBC {self.name!r} has no message named {name!r}") from None

    def addresses(self) -> Iterable[int]:
        return self._by_address.keys()

    def encode(
        self,
        name: str,
        values: Mapping[str, float],
        counter: int = 0,
        bus: int = 0,
        timestamp: float = 0.0,
    ) -> CANFrame:
        """Encode physical ``values`` into a checksummed :class:`CANFrame`.

        Signals not present in ``values`` are encoded as zero.  The message's
        ``COUNTER`` signal, if defined, is set from ``counter``; the
        ``CHECKSUM`` signal, if defined, is filled in last.
        """
        msg = self.message_by_name(name)
        data = bytearray(msg.length)
        for sig_name, sig in msg.signals.items():
            if sig_name in ("CHECKSUM",):
                continue
            if sig_name == "COUNTER":
                _pack_field(data, sig.msb_offset, sig.size, counter & ((1 << sig.size) - 1))
                continue
            if sig_name in values:
                _pack_field(data, sig.msb_offset, sig.size, sig.to_raw(values[sig_name]))
        unknown = set(values) - set(msg.signals)
        if unknown:
            raise KeyError(f"unknown signals for message {name!r}: {sorted(unknown)}")
        if msg.checksummed:
            apply_checksum(msg.address, data)
        return CANFrame(msg.address, bytes(data), bus=bus, timestamp=timestamp)

    def decode(self, frame: CANFrame, check: bool = True) -> Dict[str, float]:
        """Decode a frame into a dict of physical signal values.

        Args:
            frame: The frame to decode; its address must exist in the DBC.
            check: If True (default) and the message is checksummed, raise
                ``ValueError`` when the embedded checksum is wrong.
        """
        msg = self.message_by_address(frame.address)
        if len(frame.data) != msg.length:
            raise ValueError(
                f"message {msg.name!r} expects {msg.length} bytes, frame has {len(frame.data)}"
            )
        if check and msg.checksummed and not verify_checksum(frame.address, frame.data):
            raise ValueError(f"checksum mismatch on message {msg.name!r} ({frame.address:#x})")
        return {
            sig_name: sig.to_physical(_unpack_field(frame.data, sig.msb_offset, sig.size))
            for sig_name, sig in msg.signals.items()
        }

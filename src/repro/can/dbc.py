"""DBC-style CAN signal definitions and packing.

A Database Container (DBC) file describes how physical signals are laid
out inside CAN payload bytes.  The attacker in the paper uses the
open-source opendbc definitions to locate the steering command inside the
0xE4 frame; here we implement the same abstraction: a :class:`Signal`
describes a bit field plus scaling, a :class:`MessageDef` groups signals
for one arbitration id, and a :class:`DBC` holds the per-platform message
database with ``encode``/``decode`` entry points.

Bit layout convention: signals are packed big-endian (Motorola byte
order), addressed by the offset of their most significant bit counting
from the MSB of byte 0.  This is sufficient for the Honda-style messages
modelled in :mod:`repro.can.honda` and keeps the codec easy to verify.

Performance
-----------

``encode``/``decode`` sit on the 100 Hz control path of every simulation
(six decodes and four encodes per 10 ms step), so the :class:`DBC` builds
a :class:`MessagePlan` per message at construction time:

* shift/mask/sign-extension constants are computed once per signal
  instead of on every call;
* the whole payload is converted to/from a single Python int (one
  ``int.from_bytes`` per decode rather than one per signal);
* each plan keeps a preallocated encode buffer;
* each plan memoizes the payloads it has recently seen in a small
  bounded dict, so decoding a frame that was just encoded (or decoding
  the same frame twice in one step) skips the bit unpacking *and* the
  checksum verification entirely.  The memo is multi-entry (rather than
  last-payload-only) because the lockstep batch executor
  (:mod:`repro.kernel.batch`) interleaves the encode/decode cycles of
  many runs through the same shared plan; per-payload raw fields are
  extracted lazily from the memoized packed int, so a memo entry costs
  no per-signal work until a signal is actually requested.

``decode(frame, signals=(...))`` decodes only a subset of signals and
``decode_signal(frame, name)`` is the single-field fast path; both are
used by the hot callers in :mod:`repro.sim.world` and
:mod:`repro.core.can_tamper`.  The loop-per-signal reference
implementation is kept as :func:`_pack_field`/:func:`_unpack_field` and
the equivalence of the compiled plans against it is asserted by
``tests/unit/test_can_codec_plans.py``.
"""

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Sequence

from repro.can.checksum import NIBBLE_SUMS, address_nibble_sum, verify_checksum
from repro.can.frame import CANFrame


@dataclass(frozen=True)
class Signal:
    """One physical signal inside a CAN message.

    Attributes:
        name: Signal name, e.g. ``"STEER_ANGLE_CMD"``.
        msb_offset: Offset of the signal's most significant bit, counted
            from the MSB of payload byte 0.
        size: Width in bits (1..64).
        factor: Physical value = raw * factor + offset.
        offset: See ``factor``.
        is_signed: Whether the raw value is two's-complement signed.
        minimum / maximum: Optional physical-range clamp applied on encode.
    """

    name: str
    msb_offset: int
    size: int
    factor: float = 1.0
    offset: float = 0.0
    is_signed: bool = False
    minimum: Optional[float] = None
    maximum: Optional[float] = None

    def __post_init__(self):
        if not 1 <= self.size <= 64:
            raise ValueError(f"signal {self.name!r}: size must be 1..64, got {self.size}")
        if self.msb_offset < 0:
            raise ValueError(f"signal {self.name!r}: negative bit offset")
        if self.factor == 0:
            raise ValueError(f"signal {self.name!r}: factor must be non-zero")

    def to_raw(self, physical: float) -> int:
        """Convert a physical value to the raw integer field value."""
        value = physical
        if self.minimum is not None:
            value = max(self.minimum, value)
        if self.maximum is not None:
            value = min(self.maximum, value)
        raw = int(round((value - self.offset) / self.factor))
        if self.is_signed:
            limit = 1 << (self.size - 1)
            raw = max(-limit, min(limit - 1, raw))
            if raw < 0:
                raw += 1 << self.size
        else:
            raw = max(0, min((1 << self.size) - 1, raw))
        return raw

    def to_physical(self, raw: int) -> float:
        """Convert a raw integer field value to the physical value."""
        value = raw
        if self.is_signed and raw >= 1 << (self.size - 1):
            value = raw - (1 << self.size)
        return value * self.factor + self.offset


@dataclass(frozen=True)
class MessageDef:
    """Definition of one CAN message (arbitration id + its signals)."""

    name: str
    address: int
    length: int
    signals: Mapping[str, Signal] = field(default_factory=dict)
    checksummed: bool = True

    def __post_init__(self):
        if not 1 <= self.length <= 8:
            raise ValueError(f"message {self.name!r}: length must be 1..8 bytes")
        total_bits = self.length * 8
        for sig in self.signals.values():
            if sig.msb_offset + sig.size > total_bits:
                raise ValueError(
                    f"signal {sig.name!r} does not fit in {self.length}-byte message {self.name!r}"
                )


def _pack_field(data: bytearray, msb_offset: int, size: int, raw: int) -> None:
    """Reference field packer (per-call shift/mask computation)."""
    total_bits = len(data) * 8
    shift = total_bits - msb_offset - size
    value = int.from_bytes(data, "big")
    mask = ((1 << size) - 1) << shift
    value = (value & ~mask) | ((raw << shift) & mask)
    data[:] = value.to_bytes(len(data), "big")


def _unpack_field(data: bytes, msb_offset: int, size: int) -> int:
    """Reference field unpacker (per-call shift/mask computation)."""
    total_bits = len(data) * 8
    shift = total_bits - msb_offset - size
    value = int.from_bytes(data, "big")
    return (value >> shift) & ((1 << size) - 1)


class _FieldPlan:
    """Precompiled constants for one signal inside one message."""

    __slots__ = (
        "name",
        "signal",
        "shift",
        "mask",
        "clear_mask",
        "factor",
        "offset",
        "minimum",
        "maximum",
        "is_signed",
        "sign_bit",
        "wrap",
        "signed_min",
        "signed_max",
    )

    def __init__(self, signal: Signal, total_bits: int):
        self.name = signal.name
        self.signal = signal
        self.shift = total_bits - signal.msb_offset - signal.size
        self.mask = (1 << signal.size) - 1
        self.clear_mask = ~(self.mask << self.shift)
        self.factor = signal.factor
        self.offset = signal.offset
        self.minimum = signal.minimum
        self.maximum = signal.maximum
        self.is_signed = signal.is_signed
        # For signed fields: raw >= sign_bit means negative, subtract wrap.
        self.sign_bit = 1 << (signal.size - 1) if signal.is_signed else 0
        self.wrap = 1 << signal.size
        self.signed_min = -(1 << (signal.size - 1))
        self.signed_max = (1 << (signal.size - 1)) - 1

    def to_physical(self, raw: int) -> float:
        if self.sign_bit and raw >= self.sign_bit:
            raw -= self.wrap
        return raw * self.factor + self.offset


#: Sentinel distinguishing "signal not in the values dict" from any value.
_MISSING = object()

#: Decode-memo entries kept per plan before the memo is wholesale cleared.
#: Sized for a full lockstep batch (every run contributes one payload per
#: message per step) with plenty of slack; clearing is O(1) amortized.
_MEMO_CAPACITY = 256


def _float_literal(value: float) -> str:
    """A source literal that round-trips to exactly ``value``."""
    return repr(float(value))


def _compile_encode_source(message: MessageDef, fields: "Dict[str, _FieldPlan]") -> str:
    """Generate the source of a specialised encoder for ``message``.

    The generated function unrolls the per-signal loop with every shift,
    mask and scaling constant embedded as a literal (the same technique
    code-generating DBC compilers use).  The arithmetic mirrors
    :meth:`Signal.to_raw` exactly — including the ``max``/``min`` clamp
    semantics — so the output is byte-identical to the reference encoder;
    ``tests/unit/test_can_codec_plans.py`` pins that equivalence.
    """
    lines = [
        "def _compiled_encode(self, values, counter=0):",
        "    if not self._names.issuperset(values):",
        "        unknown = values.keys() - self._names",
        "        raise KeyError(",
        "            f\"unknown signals for message {self.message.name!r}: {sorted(unknown)}\"",
        "        )",
        "    acc = 0",
    ]
    for name, plan in fields.items():
        if name in ("CHECKSUM", "COUNTER"):
            continue
        lines.append(f"    v = values.get({name!r}, _MISSING)")
        lines.append("    if v is not _MISSING:")
        if plan.minimum is not None:
            lines.append(f"        if not v > {_float_literal(plan.minimum)}:")
            lines.append(f"            v = {_float_literal(plan.minimum)}")
        if plan.maximum is not None:
            lines.append(f"        if not v < {_float_literal(plan.maximum)}:")
            lines.append(f"            v = {_float_literal(plan.maximum)}")
        expr = "v"
        if plan.offset != 0.0:
            expr = f"({expr} - {_float_literal(plan.offset)})"
        if plan.factor != 1.0:
            expr = f"{expr} / {_float_literal(plan.factor)}"
        lines.append(f"        raw = int(round({expr}))")
        if plan.is_signed:
            lines.append(f"        if raw < {plan.signed_min}:")
            lines.append(f"            raw = {plan.signed_min}")
            lines.append(f"        elif raw > {plan.signed_max}:")
            lines.append(f"            raw = {plan.signed_max}")
            lines.append("        if raw < 0:")
            lines.append(f"            raw += {plan.wrap}")
        else:
            lines.append("        if raw < 0:")
            lines.append("            raw = 0")
            lines.append(f"        elif raw > {plan.mask}:")
            lines.append(f"            raw = {plan.mask}")
        lines.append(f"        acc = (acc & {plan.clear_mask}) | (raw << {plan.shift})")
    counter_plan = fields.get("COUNTER")
    if counter_plan is not None:
        lines.append(f"    raw = counter & {counter_plan.mask}")
        lines.append(
            f"    acc = (acc & {counter_plan.clear_mask}) | (raw << {counter_plan.shift})"
        )
    lines.append("    buffer = self._buffer")
    lines.append(f"    buffer[:] = acc.to_bytes({message.length}, 'big')")
    if message.checksummed:
        lines.append(
            "    checksum = (8 - (%d + sum(map(_nibble_sum, buffer)) - (buffer[-1] & 15))) & 15"
            % address_nibble_sum(message.address)
        )
        lines.append("    buffer[-1] = (buffer[-1] & 240) | checksum")
        lines.append("    acc = (acc & -16) | checksum")
    lines.append("    data = bytes(buffer)")
    lines.append("    memo = self._memo")
    lines.append("    if len(memo) >= _MEMO_CAPACITY:")
    lines.append("        memo.clear()")
    lines.append(f"    memo[data] = [acc, {{}}, {message.checksummed}]")
    lines.append("    return data")
    return "\n".join(lines)


class MessagePlan:
    """Compiled encode/decode plan for one :class:`MessageDef`.

    Plans are built once per DBC and are not thread-safe (they reuse an
    encode buffer and a single-entry decode memo); each campaign worker
    process gets its own copy, which is all the simulator needs.
    """

    def __init__(self, message: MessageDef):
        self.message = message
        total_bits = message.length * 8
        self.fields: Dict[str, _FieldPlan] = {
            name: _FieldPlan(sig, total_bits) for name, sig in message.signals.items()
        }
        self._names = frozenset(self.fields)
        self._buffer = bytearray(message.length)
        # Compile the specialised encoder/unpacker for this message (all
        # shift/mask/scaling constants embedded as literals).
        namespace = {
            "_MISSING": _MISSING,
            "_nibble_sum": NIBBLE_SUMS.__getitem__,
            "_MEMO_CAPACITY": _MEMO_CAPACITY,
        }
        exec(_compile_encode_source(message, self.fields), namespace)
        self._compiled_encode = namespace["_compiled_encode"]
        # Bounded decode memo, keyed by payload bytes.  Each entry is
        # ``[packed_int, values_cache, checksum_verified]``: the packed
        # payload int (raw fields are shifted out of it lazily), a
        # lazily filled physical-value cache, and whether the checksum
        # has already been verified for this payload.  Multi-entry so the
        # lockstep batch executor's interleaved encode/decode cycles
        # (one per run) all stay memo-hits.
        self._memo: Dict[bytes, list] = {}
        self._memo_acc = 0
        self._memo_values: Dict[str, float] = {}

    # -- encode ----------------------------------------------------------

    def encode(self, values: Mapping[str, float], counter: int = 0) -> bytes:
        """Encode physical ``values`` into payload bytes (with checksum).

        Runs the exec-compiled encoder, which also seeds the decode memo:
        a frame we just encoded is by far the most likely frame to be
        decoded next (the world reads back its own state frames and the
        ADAS commands every step).
        """
        return self._compiled_encode(self, values, counter)

    # -- decode ----------------------------------------------------------

    def _refresh_memo(self, frame: CANFrame, check: bool) -> None:
        """Point the memo at ``frame.data``, registering it on a miss."""
        data = frame.data
        message = self.message
        entry = self._memo.get(data)
        if entry is not None:
            if check and message.checksummed and not entry[2]:
                if not verify_checksum(message.address, data):
                    raise ValueError(
                        f"checksum mismatch on message {message.name!r} ({message.address:#x})"
                    )
                entry[2] = True
            self._memo_acc = entry[0]
            self._memo_values = entry[1]
            return
        if len(data) != message.length:
            raise ValueError(
                f"message {message.name!r} expects {message.length} bytes, "
                f"frame has {len(data)}"
            )
        checked = False
        if check and message.checksummed:
            if not verify_checksum(message.address, data):
                raise ValueError(
                    f"checksum mismatch on message {message.name!r} ({message.address:#x})"
                )
            checked = True
        memo = self._memo
        if len(memo) >= _MEMO_CAPACITY:
            memo.clear()
        acc = int.from_bytes(data, "big")
        values: Dict[str, float] = {}
        memo[data] = [acc, values, checked]
        self._memo_acc = acc
        self._memo_values = values

    def _physical(self, name: str) -> float:
        """Physical value of ``name`` for the memoized payload (lazy)."""
        values = self._memo_values
        value = values.get(name)
        if value is None:
            plan = self.fields[name]  # KeyError -> unknown signal
            value = plan.to_physical((self._memo_acc >> plan.shift) & plan.mask)
            values[name] = value
        return value

    def decode(
        self, frame: CANFrame, check: bool = True, signals: Optional[Sequence[str]] = None
    ) -> Dict[str, float]:
        """Decode ``frame`` into physical values (optionally a subset)."""
        self._refresh_memo(frame, check)
        physical = self._physical
        try:
            if signals is None:
                return {name: physical(name) for name in self.fields}
            return {name: physical(name) for name in signals}
        except KeyError as exc:
            raise KeyError(
                f"message {self.message.name!r} has no signal named {exc.args[0]!r}"
            ) from None

    def decode_signal(self, frame: CANFrame, name: str, check: bool = True) -> float:
        """Single-signal decode fast path."""
        self._refresh_memo(frame, check)
        try:
            return self._physical(name)
        except KeyError:
            raise KeyError(
                f"message {self.message.name!r} has no signal named {name!r}"
            ) from None


class DBC:
    """A message database: encode/decode physical signal dicts to frames."""

    def __init__(self, name: str, messages: Iterable[MessageDef]):
        self.name = name
        self._by_address: Dict[int, MessageDef] = {}
        self._by_name: Dict[str, MessageDef] = {}
        self._plan_by_address: Dict[int, MessagePlan] = {}
        self._plan_by_name: Dict[str, MessagePlan] = {}
        for msg in messages:
            if msg.address in self._by_address:
                raise ValueError(f"duplicate address {msg.address:#x} in DBC {name!r}")
            self._by_address[msg.address] = msg
            self._by_name[msg.name] = msg
            plan = MessagePlan(msg)
            self._plan_by_address[msg.address] = plan
            self._plan_by_name[msg.name] = plan

    def message_by_address(self, address: int) -> MessageDef:
        try:
            return self._by_address[address]
        except KeyError:
            raise KeyError(f"DBC {self.name!r} has no message at {address:#x}") from None

    def message_by_name(self, name: str) -> MessageDef:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"DBC {self.name!r} has no message named {name!r}") from None

    def addresses(self) -> Iterable[int]:
        return self._by_address.keys()

    def plan_by_address(self, address: int) -> MessagePlan:
        """The compiled :class:`MessagePlan` for the message at ``address``."""
        try:
            return self._plan_by_address[address]
        except KeyError:
            raise KeyError(f"DBC {self.name!r} has no message at {address:#x}") from None

    def plan_by_name(self, name: str) -> MessagePlan:
        """The compiled :class:`MessagePlan` for the message named ``name``."""
        try:
            return self._plan_by_name[name]
        except KeyError:
            raise KeyError(f"DBC {self.name!r} has no message named {name!r}") from None

    def encode(
        self,
        name: str,
        values: Mapping[str, float],
        counter: int = 0,
        bus: int = 0,
        timestamp: float = 0.0,
    ) -> CANFrame:
        """Encode physical ``values`` into a checksummed :class:`CANFrame`.

        Unknown signal names are rejected *before* any packing work.
        Signals not present in ``values`` are encoded as zero.  The message's
        ``COUNTER`` signal, if defined, is set from ``counter``; the
        ``CHECKSUM`` signal, if defined, is filled in last.
        """
        plan = self.plan_by_name(name)
        data = plan.encode(values, counter)
        return CANFrame(plan.message.address, data, bus=bus, timestamp=timestamp)

    def decode(
        self,
        frame: CANFrame,
        check: bool = True,
        signals: Optional[Sequence[str]] = None,
    ) -> Dict[str, float]:
        """Decode a frame into a dict of physical signal values.

        Args:
            frame: The frame to decode; its address must exist in the DBC.
            check: If True (default) and the message is checksummed, raise
                ``ValueError`` when the embedded checksum is wrong.
            signals: Optional subset of signal names to decode; ``None``
                decodes every signal of the message.
        """
        return self.plan_by_address(frame.address).decode(frame, check=check, signals=signals)

    def decode_signal(self, frame: CANFrame, name: str, check: bool = True) -> float:
        """Decode a single signal from ``frame`` (fast path for hot callers)."""
        return self.plan_by_address(frame.address).decode_signal(frame, name, check=check)

"""Vectorised CAN encoding across a lockstep batch of simulations.

The kernel batch executor (:mod:`repro.kernel.batch`) steps many
independent runs through each pipeline stage together, which turns the
four hot per-step ``MessagePlan.encode`` calls of every run into one
structure-of-arrays computation per message: clamp, scale, round, clamp
to the field range, pack, checksum — each as a single numpy operation
over the whole batch instead of a Python-level pass per run.

Bit-for-bit equivalence with the scalar encoder is a hard requirement
(the golden-run suite replays through the batch executor), so every
operation here mirrors the exact arithmetic of the compiled scalar
encoder in :mod:`repro.can.dbc`:

* the physical min/max clamp uses ``np.where(v > minimum, v, minimum)``,
  matching the scalar ``if not v > minimum`` branch for every float;
* ``offset``/``factor`` are applied with the same conditional structure
  (skipped when they are the identity), so the float sequence is
  identical;
* rounding uses ``np.rint`` (round-half-to-even), identical to Python's
  ``round`` on binary64 values;
* the field-range clamp happens on the rounded float against the exact
  integer bounds (all exactly representable), so the int64 cast is exact,
  and the signed-negative wrap is a two's-complement ``& mask`` — the
  same bits the scalar ``raw += 1 << size`` produces;
* the checksum reproduces :func:`repro.can.checksum.honda_checksum` by
  nibble-folding the packed payload int (sum of all nibbles minus the
  checksum nibble, negated mod 16).

Everything runs on preallocated scratch arrays with ``out=`` ufunc calls,
so one encode pass costs a fixed few dozen numpy dispatches regardless of
batch width — the break-even against per-run scalar encodes is a batch of
about three.

The codec also keeps the per-signal **raw** integer arrays of the most
recent batch, so the lockstep executor can recover the physical values a
decoder would produce (``raw * factor + offset``, the exact
:meth:`_FieldPlan.to_physical` arithmetic) without touching the CAN bus
again — the encode→send→decode round trip of one control cycle collapses
into an array read when the bus is known to be transformer-free.

NaN inputs are out of scope: the scalar encoder raises on them
(``int(round(nan))``), the vectorised path would pack garbage — neither
occurs with the finite commands the control stack produces.

Equivalence against the scalar plans is pinned by
``tests/unit/test_batch_codec.py``.
"""

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.can.checksum import address_nibble_sum
from repro.can.dbc import MessagePlan

#: Mask selecting the low nibble of every byte of a packed uint64 payload.
_NIBBLE_MASK = 0x0F0F0F0F0F0F0F0F

_UINT64_MASK = 0xFFFFFFFFFFFFFFFF


class _BatchFieldPlan:
    """Per-signal constants plus the retained raw array of the last batch."""

    __slots__ = (
        "name",
        "shift",
        "mask",
        "factor",
        "offset",
        "minimum",
        "maximum",
        "clamp_min",
        "clamp_max",
        "raw",
        "physical_out",
    )

    def __init__(self, field_plan, capacity: int):
        self.name = field_plan.name
        self.shift = field_plan.shift
        self.mask = field_plan.mask
        self.factor = field_plan.factor
        self.offset = field_plan.offset
        self.minimum = field_plan.minimum
        self.maximum = field_plan.maximum
        # Field-range clamp bounds for the *rounded* float (exact ints).
        if field_plan.is_signed:
            self.clamp_min = float(field_plan.signed_min)
            self.clamp_max = float(field_plan.signed_max)
        else:
            self.clamp_min = 0.0
            self.clamp_max = float(field_plan.mask)
        # Raw field values of the last encoded batch, *pre-wrap* (i.e. the
        # signed value a decoder recovers), for physical-value readback.
        self.raw = np.zeros(capacity, dtype=np.int64)
        self.physical_out = np.zeros(capacity, dtype=np.float64)


class BatchMessageCodec:
    """Vectorised encoder for one CAN message over a batch of runs.

    Args:
        plan: The compiled scalar plan this codec must stay bit-identical
            to (supplies the field layout and checksum configuration).
        signals: The value-carrying signals the caller provides arrays
            for.  All other signals encode as zero — exactly like a
            scalar ``values`` dict that omits them.  ``COUNTER`` and
            ``CHECKSUM`` are handled implicitly and must not be listed.
        capacity: Maximum batch size (arrays are preallocated once).
        constants: Signals whose physical value is the same for every run
            and every step (e.g. ``STEER_REQUEST`` is always 1.0).  Their
            raw bits are packed once at construction and folded into the
            accumulator's initial value, costing nothing per encode.
        integral: Signals from ``signals`` whose input values are
            guaranteed to be exact non-negative integers within the field
            range (e.g. 0.0/1.0 request bits).  They skip the
            scale/round/clamp pipeline — a truncating cast is already
            exact — which trims the fixed dispatch cost per pass.  Results
            are identical; the guarantee is the caller's.
    """

    def __init__(
        self,
        plan: MessagePlan,
        signals: Sequence[str],
        capacity: int,
        constants: Optional[Dict[str, float]] = None,
        integral: Sequence[str] = (),
    ):
        self.plan = plan
        self.message = plan.message
        self.capacity = capacity
        self.length = plan.message.length
        constants = constants or {}
        unknown = (set(signals) | set(constants)) - set(plan.fields)
        if unknown:
            raise KeyError(
                f"unknown signals for message {plan.message.name!r}: {sorted(unknown)}"
            )
        reserved = {"COUNTER", "CHECKSUM"} & (set(signals) | set(constants))
        if reserved:
            raise ValueError("COUNTER/CHECKSUM are implicit and must not be listed")
        if set(constants) & set(signals):
            raise ValueError("a signal cannot be both constant and per-run")
        if set(integral) - set(signals):
            raise ValueError("integral signals must be a subset of signals")
        self._fields: Dict[str, _BatchFieldPlan] = {
            name: _BatchFieldPlan(plan.fields[name], capacity) for name in signals
        }
        integral = set(integral)
        self._plans = tuple(
            plan for plan in self._fields.values() if plan.name not in integral
        )
        self._integral_plans = tuple(
            plan for plan in self._fields.values() if plan.name in integral
        )
        # Constant signals: pack their raw bits once (scalar semantics via
        # Signal.to_raw, which the compiled encoder mirrors exactly).
        base = 0
        for name, value in constants.items():
            field_plan = plan.fields[name]
            base |= field_plan.signal.to_raw(value) << field_plan.shift
        self._acc_base = base
        counter = plan.fields.get("COUNTER")
        self._counter_shift = counter.shift if counter is not None else None
        self._counter_mask = counter.mask if counter is not None else None
        # (8 - address nibble sum) mod 2^64: the checksum negation constant,
        # applied in wrapping uint64 arithmetic (congruent mod 16).
        self._checksum_base = np.uint64(
            (8 - address_nibble_sum(plan.message.address)) % (1 << 64)
        )
        self._byte_offset = 8 - self.length
        # Caller-facing input arrays plus reusable scratch (out= targets).
        self.values: Dict[str, np.ndarray] = {
            name: np.zeros(capacity, dtype=np.float64) for name in signals
        }
        self.counters = np.zeros(capacity, dtype=np.int64)
        self._acc = np.zeros(capacity, dtype=np.uint64)
        self._f8 = np.zeros(capacity, dtype=np.float64)
        self._i64 = np.zeros(capacity, dtype=np.int64)
        self._u64 = np.zeros(capacity, dtype=np.uint64)
        self._fold_a = np.zeros(capacity, dtype=np.uint64)
        self._fold_b = np.zeros(capacity, dtype=np.uint64)
        self._n = 0

    def encode(self, n: int, counters: Optional[np.ndarray] = None) -> List[bytes]:
        """Encode the first ``n`` entries of :attr:`values` into payloads.

        Returns one checksummed payload ``bytes`` per run, byte-identical
        to ``plan.encode({...}, counter=counters[i])`` run by run.  The
        per-signal raw arrays are retained for :meth:`physical`.
        """
        acc = self._acc[:n]
        acc.fill(self._acc_base)
        scratch = self._f8[:n]
        raw_i64 = self._i64[:n]
        bits = self._u64[:n]
        for plan in self._integral_plans:
            # Exact small non-negative integers by contract: the truncating
            # cast equals the scalar round-clamp-wrap pipeline.
            raw_i64[:] = self.values[plan.name][:n]
            plan.raw[:n] = raw_i64
            bits[:] = raw_i64
            np.left_shift(bits, plan.shift, out=bits)
            np.bitwise_or(acc, bits, out=acc)
        for plan in self._plans:
            v = self.values[plan.name][:n]
            if plan.minimum is not None:
                v = np.where(v > plan.minimum, v, plan.minimum)
            if plan.maximum is not None:
                v = np.where(v < plan.maximum, v, plan.maximum)
            if plan.offset != 0.0:
                np.subtract(v, plan.offset, out=scratch)
                v = scratch
            if plan.factor != 1.0:
                np.divide(v, plan.factor, out=scratch)
                v = scratch
            np.rint(v, out=scratch)
            np.minimum(scratch, plan.clamp_max, out=scratch)
            np.maximum(scratch, plan.clamp_min, out=scratch)
            raw_i64[:] = scratch  # exact: integral and within the field bounds
            plan.raw[:n] = raw_i64
            np.bitwise_and(raw_i64, plan.mask, out=raw_i64)  # two's-complement wrap
            bits[:] = raw_i64
            np.left_shift(bits, plan.shift, out=bits)
            np.bitwise_or(acc, bits, out=acc)
        if self._counter_shift is not None:
            if counters is None:
                counters = self.counters
            np.bitwise_and(counters[:n], self._counter_mask, out=raw_i64)
            bits[:] = raw_i64
            np.left_shift(bits, self._counter_shift, out=bits)
            np.bitwise_or(acc, bits, out=acc)
        if self.message.checksummed:
            # Nibble-fold the payload: per-byte nibble sums, then fold the
            # eight byte lanes together (sums stay < 256, so no lane ever
            # carries into its neighbour), drop the checksum nibble, negate.
            fold = self._fold_a[:n]
            tmp = self._fold_b[:n]
            np.bitwise_and(acc, _NIBBLE_MASK, out=fold)
            np.right_shift(acc, 4, out=tmp)
            np.bitwise_and(tmp, _NIBBLE_MASK, out=tmp)
            np.add(fold, tmp, out=fold)
            np.right_shift(fold, 32, out=tmp)
            np.add(fold, tmp, out=fold)
            np.right_shift(fold, 16, out=tmp)
            np.add(fold, tmp, out=fold)
            np.right_shift(fold, 8, out=tmp)
            np.add(fold, tmp, out=fold)
            np.bitwise_and(fold, 0xFF, out=fold)
            np.bitwise_and(acc, 0xF, out=tmp)
            np.subtract(fold, tmp, out=fold)
            np.subtract(self._checksum_base, fold, out=fold)  # wraps mod 2^64
            np.bitwise_and(fold, 0xF, out=fold)
            np.bitwise_and(acc, _UINT64_MASK ^ 0xF, out=acc)
            np.bitwise_or(acc, fold, out=acc)
        self._n = n
        big_endian = acc.astype(">u8").tobytes()
        offset = self._byte_offset
        return [big_endian[8 * i + offset : 8 * i + 8] for i in range(n)]

    def physical(self, name: str) -> np.ndarray:
        """Physical values a decoder recovers for ``name`` from the last batch.

        ``raw * factor + offset`` over the retained raw arrays — the exact
        arithmetic of the scalar decode path, vectorised.
        """
        plan = self._fields[name]
        n = self._n
        out = plan.physical_out[:n]
        np.multiply(plan.raw[:n], plan.factor, out=out)
        np.add(out, plan.offset, out=out)
        return out

"""The shared per-step context of the control-cycle kernel.

A :class:`StepContext` is allocated **once per simulation** and carries
every piece of per-cycle state — time, decoded car state, planner
outputs, actuator commands, ego/lead kinematics, detector outputs — through
the ordered pipeline stages (sense → perceive → plan → inject → drive →
actuate → detect → record).  Stages communicate exclusively by writing
into and reading from the context, so the 100 Hz control cycle runs
without allocating the same observation objects over and over in four
different layers.

Contract
--------

* The context is built by the simulation before the first cycle and
  reused for every cycle; stages must overwrite every field they own
  each cycle rather than relying on stale values.
* ``time`` is the cycle's start time (the world clock *before* physics
  integration); ``end_time`` is the post-integration time stamped on
  detector events — the actuate stage advances it.
* The mutable scratch objects (``car_state``, plans, commands,
  ``driver_decision``) are owned by the context and mutated in place;
  code outside the pipeline must not retain references to them across
  cycles (retain *values*, not objects).
* ``lead`` / ``lead_gap`` / ``lead_speed`` / ``lead_d`` describe the
  currently tracked lead vehicle after the most recent actuate stage
  (``lead is None`` means no lead; the gap/speed fields are ``None``
  then, matching :meth:`repro.sim.world.World.lead_observation`).
* Constants (``dt``, ``cruise_speed``, ego geometry, road landmarks,
  ``follower``, ``others``) are filled once at construction.
* Under the batch executor's dense path the per-cycle observation
  fields (``end_time``, ego pose/geometry, ``lead_gap``,
  ``lead_speed``) are scattered into the context from the
  :class:`repro.kernel.batch.BatchState` SoA columns instead of being
  written by :meth:`repro.sim.world.World.observe_into` — same fields,
  same values to the last bit, so detector stages and any row demoted
  to the scalar path read an indistinguishable context.
"""

from typing import List, Optional, Sequence

from repro.adas.lateral import LateralPlan
from repro.adas.longitudinal import LongitudinalPlan
from repro.driver.reaction import DriverDecision
from repro.messaging.messages import CarState
from repro.sim.units import DT
from repro.sim.vehicle import ActuatorCommand


class StepContext:
    """Preallocated, reused per-cycle state of the step pipeline."""

    __slots__ = (
        # constants
        "dt",
        "cruise_speed",
        "ego_width",
        "road_left_lane_line",
        "road_right_lane_line",
        "road_right_guardrail",
        "road_left_road_edge",
        "follower",
        "others",
        # clock
        "time",
        "end_time",
        # perception / planning scratch (reused objects)
        "car_state",
        "long_plan",
        "lat_plan",
        "pre_hook_command",
        "adas_command",
        "executed_command",
        "driver_decision",
        # driver engagement
        "driver_engaged",
        # ego kinematics (post most recent actuate stage)
        "ego_s",
        "ego_d",
        "ego_speed",
        "ego_heading_error",
        "ego_steering_deg",
        "ego_front_s",
        "ego_rear_s",
        "ego_left_edge",
        "ego_right_edge",
        # lead observation (post most recent actuate stage)
        "lead",
        "lead_gap",
        "lead_speed",
        "lead_d",
        # detector outputs
        "collision",
        "new_hazards",
        "lane_invasions",
        # run termination
        "collision_time",
        "stop",
    )

    def __init__(
        self,
        dt: float = DT,
        cruise_speed: float = 0.0,
        ego_width: float = 1.8,
        road_left_lane_line: float = 0.0,
        road_right_lane_line: float = 0.0,
        road_right_guardrail: float = 0.0,
        road_left_road_edge: float = 0.0,
        follower: Optional[object] = None,
        others: Sequence[object] = (),
    ):
        self.dt = dt
        self.cruise_speed = cruise_speed
        self.ego_width = ego_width
        self.road_left_lane_line = road_left_lane_line
        self.road_right_lane_line = road_right_lane_line
        self.road_right_guardrail = road_right_guardrail
        self.road_left_road_edge = road_left_road_edge
        self.follower = follower
        self.others = others

        self.time = 0.0
        self.end_time = 0.0

        self.car_state = CarState()
        self.long_plan = LongitudinalPlan()
        self.lat_plan = LateralPlan()
        self.pre_hook_command = ActuatorCommand()
        self.adas_command = ActuatorCommand()
        self.executed_command = ActuatorCommand()
        self.driver_decision = DriverDecision()

        self.driver_engaged = False

        self.ego_s = 0.0
        self.ego_d = 0.0
        self.ego_speed = 0.0
        self.ego_heading_error = 0.0
        self.ego_steering_deg = 0.0
        self.ego_front_s = 0.0
        self.ego_rear_s = 0.0
        self.ego_left_edge = 0.0
        self.ego_right_edge = 0.0

        self.lead: Optional[object] = None
        self.lead_gap: Optional[float] = None
        self.lead_speed: Optional[float] = None
        self.lead_d = 0.0

        self.collision = None
        self.new_hazards: List[object] = []
        self.lane_invasions = 0

        self.collision_time: Optional[float] = None
        self.stop = False

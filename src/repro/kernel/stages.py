"""The eight concrete stages of the fault-injection control cycle.

Stage order (one 10 ms cycle)::

    sense -> perceive -> plan -> inject -> drive -> actuate -> detect -> record

* **sense**    — the world publishes due sensor messages and the car's
  state CAN frames.
* **perceive** — the car state is decoded from the CAN bus into the
  context's reused :class:`~repro.messaging.messages.CarState`.
* **plan**     — the ADAS reads perception and runs the longitudinal and
  lateral planners in place, producing the pre-hook actuator command.
* **inject**   — output hooks (the paper's fault-injection point) corrupt
  the command; alerts are evaluated and everything is published and sent
  on the actuator CAN frames.
* **drive**    — the executed command is decoded from the (possibly
  tampered) bus and the simulated driver reacts; on engagement the ADAS
  is disengaged and the attack engine notified.
* **actuate**  — the world integrates physics and refreshes the ego/lead
  kinematics in the context.
* **detect**   — lane, collision and hazard monitors evaluate the
  precomputed kinematics from the context.
* **record**   — results accounting: hazards, accidents, alerts, the
  trajectory, and the early-stop decision after a collision.

Behavioural equivalence with the pre-kernel loop is bit-for-bit and is
pinned by the golden-run suite (``tests/integration/
test_golden_equivalence.py``); any reordering here must keep it green.

These classes are also the **scalar fallback** of the lockstep batch
executor: :class:`repro.kernel.batch.BatchRunner` steps dense rows
through vectorised *column* implementations of the same eight stages
(SoA numpy columns in :class:`repro.kernel.batch.BatchState`) and runs
any row that diverges from the fast path — active alert, CAN
transformer, driver intervention, non-vectorisable actor scripts —
through these per-run ``run(ctx)`` methods instead.  A stage edit here
therefore changes *both* paths' reference semantics: keep the golden
batch-equivalence suite (``tests/integration/test_batch_equivalence.py``,
batch sizes 1/8/64/256) green alongside the sequential goldens.
"""

from repro.kernel.context import StepContext
from repro.kernel.pipeline import PipelineStage


class SenseStage(PipelineStage):
    """Publish sensor messages and the car's state CAN frames."""

    __slots__ = ("world",)
    name = "sense"

    def __init__(self, world):
        self.world = world

    def run(self, ctx: StepContext) -> None:
        world = self.world
        ctx.time = world.time
        world.publish_sensors()
        world.publish_car_can()


class PerceiveStage(PipelineStage):
    """Decode the car's CAN state frames into the reused CarState."""

    __slots__ = ("world",)
    name = "perceive"

    def __init__(self, world):
        self.world = world

    def run(self, ctx: StepContext) -> None:
        self.world.read_car_state_into(ctx.car_state)


class PlanStage(PipelineStage):
    """Run the ADAS planners in place (skipped once the driver has taken over)."""

    __slots__ = ("openpilot",)
    name = "plan"

    def __init__(self, openpilot):
        self.openpilot = openpilot

    def run(self, ctx: StepContext) -> None:
        if not ctx.driver_engaged:
            self.openpilot.plan_into(ctx)


class InjectStage(PipelineStage):
    """Apply output hooks, evaluate alerts, publish and send actuator CAN."""

    __slots__ = ("openpilot",)
    name = "inject"

    def __init__(self, openpilot):
        self.openpilot = openpilot

    def run(self, ctx: StepContext) -> None:
        if not ctx.driver_engaged:
            self.openpilot.inject_into(ctx)


class DriveStage(PipelineStage):
    """Decode the executed command and run the driver-reaction simulator."""

    __slots__ = ("world", "driver", "openpilot", "attack_engine", "result")
    name = "drive"

    def __init__(self, world, driver, openpilot, attack_engine, result):
        self.world = world
        self.driver = driver
        self.openpilot = openpilot
        self.attack_engine = attack_engine
        self.result = result

    def run(self, ctx: StepContext) -> None:
        self.world.decode_actuator_command_into(ctx.executed_command)
        self.react(ctx)

    def react(self, ctx: StepContext) -> None:
        """Driver reaction over an already-populated ``ctx.executed_command``.

        Split out of :meth:`run` so the lockstep batch executor can fill
        the executed command from the vectorised codec read-back (skipping
        the per-run CAN decode) and still share the reaction logic.
        """
        command = ctx.executed_command
        decision = self.driver.update(
            time=ctx.time,
            observed_command=command,
            v_ego=ctx.car_state.v_ego,
            cruise_speed=ctx.cruise_speed,
            lateral_offset=ctx.ego_d,
            heading_error=ctx.ego_heading_error,
            current_steering_deg=ctx.ego_steering_deg,
            lead_gap=ctx.lead_gap,
            lead_speed=ctx.lead_speed,
            out=ctx.driver_decision,
        )
        if decision.engaged:
            if not ctx.driver_engaged:
                ctx.driver_engaged = True
                self.result.driver_engaged = True
                self.result.driver_engagement_time = ctx.time
                self.openpilot.disengage()
                if self.attack_engine is not None:
                    self.attack_engine.notify_driver_engaged()
            override = decision.command
            command.accel = override.accel
            command.brake = override.brake
            command.steering_angle_deg = override.steering_angle_deg


class ActuateStage(PipelineStage):
    """Integrate world physics and refresh the kinematics in the context."""

    __slots__ = ("world",)
    name = "actuate"

    def __init__(self, world):
        self.world = world

    def run(self, ctx: StepContext) -> None:
        world = self.world
        world.integrate(ctx.executed_command)
        world.observe_into(ctx)


class DetectStage(PipelineStage):
    """Lane, collision and hazard monitors over the context kinematics."""

    __slots__ = ("lane_monitor", "collision_detector", "hazard_monitor")
    name = "detect"

    def __init__(self, lane_monitor, collision_detector, hazard_monitor):
        self.lane_monitor = lane_monitor
        self.collision_detector = collision_detector
        self.hazard_monitor = hazard_monitor

    def run(self, ctx: StepContext) -> None:
        self.lane_monitor.check_values(
            ctx.end_time, ctx.ego_left_edge, ctx.ego_right_edge, ctx.ego_d
        )
        ctx.lane_invasions = len(self.lane_monitor.report.invasion_events)
        ctx.collision = self.collision_detector.check_context(ctx)
        ctx.new_hazards = self.hazard_monitor.check_context(ctx)


class RecordStage(PipelineStage):
    """Results accounting: hazards, accidents, alerts, trajectory, stop."""

    __slots__ = (
        "world",
        "result",
        "attack_engine",
        "alert_sub",
        "stop_after_collision",
        "track_safety_margin",
    )
    name = "record"

    def __init__(
        self,
        world,
        result,
        attack_engine,
        alert_sub,
        stop_after_collision: float,
        track_safety_margin: bool = False,
    ):
        self.world = world
        self.result = result
        self.attack_engine = attack_engine
        self.alert_sub = alert_sub
        self.stop_after_collision = stop_after_collision
        self.track_safety_margin = track_safety_margin

    def run(self, ctx: StepContext) -> None:
        world = self.world
        result = self.result
        if self.track_safety_margin:
            # Running minima along the three hazard axes, so search
            # objectives can rank hazard-free runs by how close they came:
            # lead TTC (H1; the scalar twin of BatchKinematics.derive()),
            # ego speed (H2), distance to the nearer lane line (H3).
            gap = ctx.lead_gap
            if gap is not None:
                if result.min_lead_gap is None or gap < result.min_lead_gap:
                    result.min_lead_gap = gap
                closing = ctx.ego_speed - ctx.lead_speed
                if closing > 0.0:
                    ttc = gap / closing
                    if result.min_ttc is None or ttc < result.min_ttc:
                        result.min_ttc = ttc
            speed = ctx.ego_speed
            if result.min_ego_speed is None or speed < result.min_ego_speed:
                result.min_ego_speed = speed
            lane_margin = min(
                ctx.road_left_lane_line - ctx.ego_d,
                ctx.ego_d - ctx.road_right_lane_line,
            )
            if result.min_lane_margin is None or lane_margin < result.min_lane_margin:
                result.min_lane_margin = lane_margin
        if ctx.new_hazards:
            for event in ctx.new_hazards:
                result.record_hazard(event)
                if self.attack_engine is not None:
                    self.attack_engine.notify_hazard()
        if ctx.collision is not None:
            result.record_accident(ctx.collision)
            if ctx.collision_time is None:
                ctx.collision_time = ctx.collision.time
        if self.alert_sub.updated:
            for event in self.alert_sub.drain():
                result.alerts.append((event.data.name, event.mono_time))
        config = world.config
        if config.record_trajectory and world.step_count % config.trajectory_decimation == 0:
            world.record_trajectory_sample()
        if (
            ctx.collision_time is not None
            and ctx.end_time - ctx.collision_time >= self.stop_after_collision
        ):
            ctx.stop = True

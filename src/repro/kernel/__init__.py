"""Allocation-free step-pipeline kernel for the 100 Hz control cycle.

The kernel replaces the four-layer re-derivation of per-step state (sim,
ADAS, injection, analysis each rebuilding the same observations) with a
single :class:`~repro.kernel.context.StepContext` carried through an
ordered :class:`~repro.kernel.pipeline.StepPipeline`::

    sense -> perceive -> plan -> inject -> drive -> actuate -> detect -> record

:class:`~repro.injection.engine.Simulation` assembles the pipeline from
the concrete stages in :mod:`repro.kernel.stages`; the context is
preallocated once per run and reused every cycle, so the hot loop is free
of per-step dataclass construction.  The pipeline is the extension point
for future batched / vectorised execution (see ``StepPipeline.inserted``
/ ``StepPipeline.replaced``).
"""

from repro.kernel.context import StepContext
from repro.kernel.pipeline import PipelineStage, StepPipeline
from repro.kernel.stages import (
    ActuateStage,
    DetectStage,
    DriveStage,
    InjectStage,
    PerceiveStage,
    PlanStage,
    RecordStage,
    SenseStage,
)

__all__ = [
    "ActuateStage",
    "DetectStage",
    "DriveStage",
    "InjectStage",
    "PerceiveStage",
    "PipelineStage",
    "PlanStage",
    "RecordStage",
    "SenseStage",
    "StepContext",
    "StepPipeline",
]

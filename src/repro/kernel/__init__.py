"""Allocation-free step-pipeline kernel for the 100 Hz control cycle.

The kernel replaces the four-layer re-derivation of per-step state (sim,
ADAS, injection, analysis each rebuilding the same observations) with a
single :class:`~repro.kernel.context.StepContext` carried through an
ordered :class:`~repro.kernel.pipeline.StepPipeline`::

    sense -> perceive -> plan -> inject -> drive -> actuate -> detect -> record

:class:`~repro.injection.engine.Simulation` assembles the pipeline from
the concrete stages in :mod:`repro.kernel.stages`; the context is
preallocated once per run and reused every cycle, so the hot loop is free
of per-step dataclass construction.  Batched lockstep execution of many
runs — one inner loop per stage over the whole batch, with the hot CAN
codec work vectorised across runs — lives in :mod:`repro.kernel.batch`
(:class:`BatchRunner`, which builds its stage columns across the
per-run pipelines).  For custom pipelines, every stage also accepts a
context *slice* via ``PipelineStage.run_batch`` (default: loop ``run``)
and ``StepPipeline.run_cycle_batch`` walks the stage columns of one
pipeline — the hook for vectorising an individual stage.
"""

from repro.kernel.batch import BatchKinematics, BatchRunner, run_batched
from repro.kernel.context import StepContext
from repro.kernel.pipeline import PipelineStage, StepPipeline
from repro.kernel.stages import (
    ActuateStage,
    DetectStage,
    DriveStage,
    InjectStage,
    PerceiveStage,
    PlanStage,
    RecordStage,
    SenseStage,
)

__all__ = [
    "ActuateStage",
    "BatchKinematics",
    "BatchRunner",
    "DetectStage",
    "DriveStage",
    "InjectStage",
    "PerceiveStage",
    "PipelineStage",
    "PlanStage",
    "RecordStage",
    "SenseStage",
    "StepContext",
    "StepPipeline",
    "run_batched",
]

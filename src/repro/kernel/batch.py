"""Lockstep batched execution of many simulations through the kernel.

A fault-injection campaign is thousands of *independent* short runs, each
spending its time in the same eight pipeline stages.  The
:class:`BatchRunner` steps ``N`` runs in lockstep — one inner loop per
stage over all active runs (``sense`` over the whole batch, then
``perceive`` over the whole batch, …) — so the per-step work that is
structurally identical across runs can be amortised over the batch:

* the four hot CAN encodes per run-step collapse into one vectorised
  :class:`~repro.can.batch_codec.BatchMessageCodec` pass per message;
* the encode→send→decode round trip of each cycle (the car reading back
  its own state frames, the actuators decoding the just-sent commands)
  collapses into an array read-back — legal because the payload a
  transformer-free bus stores is exactly the payload the codec produced,
  and the physical values a decoder recovers from it are
  ``raw * factor + offset`` over the raws the codec retained;
* the cross-run hot kinematics (ego/lead speed, gap — plus TTC and
  headway derived on demand) live in shared structure-of-arrays form
  (:class:`BatchKinematics`), gathered once per lockstep cycle in the
  actuate column — the substrate for vectorised cross-run detectors and
  telemetry.

Runs that finish (early-stop after a collision, or ``max_steps``) are
retired immediately and their slot refilled from the pending queue, so
batches stay dense and the codec always works on a contiguous prefix.

Equivalence
-----------

Batched execution is **bit-for-bit identical** to sequential execution:
runs share no mutable state (each has its own buses, world, ADAS, RNGs),
the vectorised codec is byte-identical to the scalar encoder, and the
fused decode reproduces the scalar decode arithmetic exactly.  The
golden-run suite replays all 21 goldens through ``batch_size`` 1, 4 and 8
(``tests/integration/test_batch_equivalence.py``).  Runs whose bus has a
man-in-the-middle transformer registered fall back to their per-run
scalar stages inside the same lockstep loop.

Composition with the process pool: batching amortises Python dispatch
*within* a worker, the pool scales *across* cores — ``workers=N``
together with ``batch_size=M`` runs N lockstep batches of M.
"""

from time import perf_counter_ns
from typing import TYPE_CHECKING, Callable, Iterator, List, Optional, Sequence, Tuple, cast

import numpy as np

from repro.analysis.metrics import RunResult
from repro.can.batch_codec import BatchMessageCodec
from repro.can.honda import HONDA_DBC
from repro.kernel.context import StepContext
from repro.kernel.stages import DriveStage
from repro.sim.units import clamp

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.strategies import AttackStrategy
    from repro.injection.engine import Simulation, SimulationConfig
    from repro.telemetry import Telemetry

#: One unit of batched work: a simulation configuration plus the strategy
#: instance for that run (``None`` for attack-free runs).  Strategy
#: objects must not be shared between tasks — lockstep execution keeps
#: many strategies live at once.
BatchTask = Tuple["SimulationConfig", Optional["AttackStrategy"]]

ProgressCallback = Callable[[int, int], None]

#: Default lockstep width: wide enough that the vectorised codec passes
#: amortise their numpy dispatch, small enough that short attacked runs
#: do not leave the tail of a huge batch running alone.
DEFAULT_BATCH_SIZE = 16

#: Below this many active runs the vectorised codec's fixed numpy
#: dispatch cost no longer beats per-run scalar encodes, so the lockstep
#: loop falls back to the scalar stages (identical results either way).
FUSED_MIN_ACTIVE = 3


class BatchKinematics:
    """Structure-of-arrays view of the cross-run hot kinematics.

    One row per active run; the gathered rows (time, ego pose/speed, lead
    gap/speed) are refreshed after every actuate column.
    ``lead_gap``/``lead_speed`` are NaN for runs without a tracked lead.
    ``ttc`` (time-to-collision under constant speeds) and ``headway``
    (gap in seconds of travel) are derived vectorised **on demand** by
    :meth:`derive` — consumers (vectorised cross-run detectors,
    telemetry) call it when they need the derived rows, so the lockstep
    hot loop pays only the scalar gathers.  Derived values are ``inf``
    when not closing / standing still, NaN without a lead.
    """

    __slots__ = (
        "capacity",
        "n",
        "time",
        "ego_s",
        "ego_d",
        "ego_speed",
        "lead_gap",
        "lead_speed",
        "ttc",
        "headway",
    )

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.n = 0
        self.time = np.zeros(capacity)
        self.ego_s = np.zeros(capacity)
        self.ego_d = np.zeros(capacity)
        self.ego_speed = np.zeros(capacity)
        self.lead_gap = np.zeros(capacity)
        self.lead_speed = np.zeros(capacity)
        self.ttc = np.zeros(capacity)
        self.headway = np.zeros(capacity)

    def gather(self, i: int, ctx: StepContext) -> None:
        """Write one run's post-actuate context kinematics into row ``i``."""
        self.time[i] = ctx.end_time
        self.ego_s[i] = ctx.ego_s
        self.ego_d[i] = ctx.ego_d
        self.ego_speed[i] = ctx.ego_speed
        if ctx.lead_gap is None:
            self.lead_gap[i] = np.nan
            self.lead_speed[i] = np.nan
        else:
            self.lead_gap[i] = ctx.lead_gap
            self.lead_speed[i] = ctx.lead_speed

    def derive(self, n: Optional[int] = None) -> None:
        """Vectorised TTC/headway over the first ``n`` gathered rows
        (default: the rows of the most recent lockstep cycle)."""
        n = self.n if n is None else n
        ego_speed = self.ego_speed
        lead_speed = self.lead_speed
        gap = self.lead_gap[:n]
        closing = ego_speed[:n] - lead_speed[:n]
        # Guard the denominators before dividing (cheaper than an errstate
        # context per cycle): non-closing / standing-still rows divide by
        # 1.0 and are overwritten with inf by the select.
        self.ttc[:n] = np.where(
            closing > 0.0, gap / np.where(closing > 0.0, closing, 1.0), np.inf
        )
        self.headway[:n] = np.where(
            ego_speed[:n] > 0.0, gap / np.where(ego_speed[:n] > 0.0, ego_speed[:n], 1.0), np.inf
        )
        # Leadless rows (NaN gap) reach the inf branches above through the
        # False comparisons; restore the documented no-lead marker.
        no_lead = np.isnan(gap)
        self.ttc[:n][no_lead] = np.nan
        self.headway[:n][no_lead] = np.nan

    def refresh(self, contexts: Sequence[StepContext]) -> None:
        """Gather every context then derive TTC/headway (one-call form)."""
        for i, ctx in enumerate(contexts):
            self.gather(i, ctx)
        self.n = len(contexts)
        self.derive()


class _Slot:
    """One active run inside the lockstep batch."""

    __slots__ = (
        "index",
        "sim",
        "world",
        "openpilot",
        "ctx",
        "result",
        "remaining",
        "fused",
        "sent",
        "sense_run",
        "perceive_run",
        "plan_run",
        "inject_run",
        "drive_stage",
        "drive_run",
        "actuate_run",
        "detect_run",
        "record_run",
    )

    def __init__(self, index: int, sim: "Simulation"):
        self.index = index
        self.sim = sim
        self.world = sim.world
        self.openpilot = sim.openpilot
        result, ctx, pipeline = sim.prepare()
        self.result = result
        self.ctx = ctx
        self.remaining = sim.config.max_steps
        # The codec fast path requires the bus to store exactly the bytes
        # the codec produced; a transformer breaks that, so such runs use
        # their scalar stages (still inside the lockstep loop).
        self.fused = not sim.world.can_bus.has_transformers
        self.sent = False
        self.sense_run = pipeline.stage("sense").run
        self.perceive_run = pipeline.stage("perceive").run
        self.plan_run = pipeline.stage("plan").run
        self.inject_run = pipeline.stage("inject").run
        self.drive_stage = cast(DriveStage, pipeline.stage("drive"))
        self.drive_run = self.drive_stage.run
        self.actuate_run = pipeline.stage("actuate").run
        self.detect_run = pipeline.stage("detect").run
        self.record_run = pipeline.stage("record").run


class BatchRunner:
    """Drives up to ``batch_size`` simulations in lockstep through the kernel.

    Args:
        batch_size: Lockstep width (number of preallocated run slots and
            the row count of the shared SoA arrays).
        telemetry: Optional :class:`~repro.telemetry.Telemetry` handle.
            The batched cost model is per lockstep *cycle*, not per run,
            so the runner records sampled whole-cycle timings
            (``perf.batch.cycle_ns``, with the active-row count in
            ``perf.batch.cycle_rows``) plus the same run-completion
            metrics the scalar path records at retirement.  The slot
            simulations themselves run unprobed — per-run stage wrapping
            would defeat the lockstep amortisation it is measuring.
    """

    def __init__(
        self,
        batch_size: int = DEFAULT_BATCH_SIZE,
        telemetry: Optional["Telemetry"] = None,
    ):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = batch_size
        self.telemetry = telemetry
        self.kinematics = BatchKinematics(batch_size)
        # The signal sets mirror the scalar call sites exactly; signals the
        # scalar code passes as constants are folded into the accumulator
        # base, and the 0/1 request bits take the integral fast path.
        self._powertrain = BatchMessageCodec(
            HONDA_DBC.plan_by_name("POWERTRAIN_DATA"),
            ("XMISSION_SPEED", "ACCEL_MEASURED", "PEDAL_GAS", "BRAKE_PRESSED"),
            batch_size,
            constants={"GAS_PRESSED": 0.0},
            integral=("BRAKE_PRESSED",),
        )
        self._steering_sensors = BatchMessageCodec(
            HONDA_DBC.plan_by_name("STEERING_SENSORS"),
            ("STEER_ANGLE",),
            batch_size,
            constants={"STEER_ANGLE_RATE": 0.0},
        )
        self._steering_control = BatchMessageCodec(
            HONDA_DBC.plan_by_name("STEERING_CONTROL"),
            ("STEER_ANGLE_CMD", "STEER_TORQUE"),
            batch_size,
            constants={"STEER_REQUEST": 1.0},
        )
        self._acc_control = BatchMessageCodec(
            HONDA_DBC.plan_by_name("ACC_CONTROL"),
            ("ACCEL_COMMAND", "BRAKE_COMMAND", "BRAKE_REQUEST"),
            batch_size,
            constants={"ACC_ON": 1.0},
            integral=("BRAKE_REQUEST",),
        )

    def run_tasks(
        self, tasks: Sequence[BatchTask], progress: Optional[ProgressCallback] = None
    ) -> List[RunResult]:
        """Run every task, lockstep-batched; results are in task order."""
        from repro.injection.engine import Simulation  # local: avoids an import cycle

        tasks = list(tasks)
        total = len(tasks)
        results: List[Optional[RunResult]] = [None] * total
        pending: Iterator[Tuple[int, BatchTask]] = iter(enumerate(tasks))
        active: List[_Slot] = []
        live_strategies: set = set()

        def admit() -> bool:
            for index, (config, strategy) in pending:
                if strategy is not None:
                    if id(strategy) in live_strategies:
                        raise ValueError(
                            "batched execution requires one strategy instance per "
                            "task (a strategy object is shared between tasks that "
                            "would run concurrently)"
                        )
                    live_strategies.add(id(strategy))
                active.append(_Slot(index, Simulation(config, strategy)))
                return True
            return False

        while len(active) < self.batch_size and admit():
            pass

        telemetry = self.telemetry
        cycle_hist = cycle_rows = sample_every = None
        cycle_index = 0
        if telemetry is not None:
            cycle_hist = telemetry.metrics.histogram("perf.batch.cycle_ns")
            cycle_rows = telemetry.metrics.counter("perf.batch.cycle_rows")
            sample_every = telemetry.config.sample_every

        completed = 0
        while active:
            if cycle_hist is not None and cycle_index % sample_every == 0:
                start_ns = perf_counter_ns()
                self._cycle(active)
                cycle_hist.record(perf_counter_ns() - start_ns)
                cycle_rows.inc(len(active))
            else:
                self._cycle(active)
            cycle_index += 1
            retired = False
            for position in range(len(active) - 1, -1, -1):
                slot = active[position]
                slot.remaining -= 1
                if not (slot.ctx.stop or slot.remaining <= 0):
                    continue
                results[slot.index] = slot.sim.finalize(slot.result, slot.ctx)
                if telemetry is not None:
                    telemetry.record_run(
                        slot.result,
                        steps=slot.world.step_count,
                        can_sent=slot.world.can_bus.sent_count,
                        can_tampered=slot.world.can_bus.tampered_count,
                    )
                strategy = tasks[slot.index][1]
                if strategy is not None:
                    live_strategies.discard(id(strategy))
                active[position] = active[-1]
                active.pop()
                retired = True
                completed += 1
                if progress is not None:
                    progress(completed, total)
            if retired:
                while len(active) < self.batch_size and admit():
                    pass
        return results  # type: ignore[return-value]  # every slot was filled

    # -- one lockstep cycle ------------------------------------------------

    def _cycle(self, active: List[_Slot]) -> None:
        if len(active) < FUSED_MIN_ACTIVE:
            self._cycle_scalar(active)
            return
        powertrain = self._powertrain
        steering_sensors = self._steering_sensors

        # sense: per-run sensor publications, batched car-state CAN.
        fused: List[_Slot] = []
        speed_values = powertrain.values["XMISSION_SPEED"]
        accel_values = powertrain.values["ACCEL_MEASURED"]
        gas_values = powertrain.values["PEDAL_GAS"]
        brake_values = powertrain.values["BRAKE_PRESSED"]
        steer_values = steering_sensors.values["STEER_ANGLE"]
        for slot in active:
            if slot.fused and slot.world.can_bus.has_transformers:
                # A transformer was attached mid-run (e.g. a CAN-level
                # attack deployment): the codec read-back is no longer
                # sound for this run — latch it onto the scalar stages.
                slot.fused = False
            if not slot.fused:
                slot.sense_run(slot.ctx)
                continue
            world = slot.world
            slot.ctx.time = world.time
            world.publish_sensors()
            i = len(fused)
            speed, accel, pedal_gas, brake_pressed, steer, counter = (
                world.batched_car_can_inputs()
            )
            speed_values[i] = speed
            accel_values[i] = accel
            gas_values[i] = pedal_gas
            brake_values[i] = brake_pressed
            powertrain.counters[i] = counter
            steer_values[i] = steer
            steering_sensors.counters[i] = counter
            fused.append(slot)
        if fused:
            n = len(fused)
            powertrain_payloads = powertrain.encode(n)
            sensor_payloads = steering_sensors.encode(n)
            for i, slot in enumerate(fused):
                slot.world.send_car_can_frames(powertrain_payloads[i], sensor_payloads[i])

        # perceive: fused read-back of the frames just encoded.
        if fused:
            v_ego = powertrain.physical("XMISSION_SPEED")
            a_ego = powertrain.physical("ACCEL_MEASURED")
            steer = steering_sensors.physical("STEER_ANGLE")
            for i, slot in enumerate(fused):
                slot.world.apply_fused_car_state(
                    slot.ctx.car_state, float(v_ego[i]), float(a_ego[i]), float(steer[i])
                )
        for slot in active:
            if not slot.fused:
                slot.perceive_run(slot.ctx)

        # plan
        for slot in active:
            slot.plan_run(slot.ctx)

        # inject: per-run hooks/alerts/publications, batched actuator CAN.
        steering_control = self._steering_control
        acc_control = self._acc_control
        send: List[_Slot] = []
        angle_values = steering_control.values["STEER_ANGLE_CMD"]
        torque_values = steering_control.values["STEER_TORQUE"]
        accel_cmd_values = acc_control.values["ACCEL_COMMAND"]
        brake_cmd_values = acc_control.values["BRAKE_COMMAND"]
        brake_req_values = acc_control.values["BRAKE_REQUEST"]
        for slot in active:
            ctx = slot.ctx
            slot.sent = False
            if ctx.driver_engaged:
                continue
            if not slot.fused:
                slot.inject_run(ctx)
                continue
            if not slot.openpilot.emit_publish_into(ctx):
                continue
            openpilot = slot.openpilot
            if openpilot.can_bus.has_transformers:
                # An output hook just attached a transformer (within this
                # very cycle): send scalar so the transformer applies, and
                # leave `sent` False so the drive column decodes the
                # (possibly tampered) frames from the bus.
                slot.fused = False
                command = ctx.adas_command
                openpilot._send_can(ctx.time, command)
                openpilot._previous_steering_deg = command.steering_angle_deg
                continue
            i = len(send)
            command = ctx.adas_command
            angle = command.steering_angle_deg
            angle_values[i] = angle
            torque_values[i] = clamp(angle / 100.0, -1.0, 1.0)
            accel_cmd_values[i] = command.accel
            brake_cmd_values[i] = command.brake
            brake_req_values[i] = 1.0 if command.brake > 0 else 0.0
            counter = slot.openpilot.advance_can_counter()
            steering_control.counters[i] = counter
            acc_control.counters[i] = counter
            send.append(slot)
        if send:
            n = len(send)
            steering_payloads = steering_control.encode(n)
            acc_payloads = acc_control.encode(n)
            for i, slot in enumerate(send):
                slot.openpilot.send_can_payloads(
                    slot.ctx.time,
                    steering_payloads[i],
                    acc_payloads[i],
                    slot.ctx.adas_command.steering_angle_deg,
                )
                slot.sent = True

        # drive: fused read-back of the commands just sent, shared reaction.
        if send:
            steer_cmd = steering_control.physical("STEER_ANGLE_CMD")
            accel_cmd = acc_control.physical("ACCEL_COMMAND")
            brake_cmd = acc_control.physical("BRAKE_COMMAND")
            for i, slot in enumerate(send):
                command = slot.ctx.executed_command
                accel = float(accel_cmd[i])
                brake = float(brake_cmd[i])
                command.accel = accel if accel > 0.0 else 0.0
                command.brake = brake if brake > 0.0 else 0.0
                command.steering_angle_deg = float(steer_cmd[i])
        for slot in active:
            if slot.sent:
                slot.drive_stage.react(slot.ctx)
            else:
                slot.drive_run(slot.ctx)

        # actuate (the shared kinematics rows are gathered in the same pass;
        # TTC/headway derivation is on demand via kinematics.derive())
        kinematics = self.kinematics
        gather = kinematics.gather
        for i, slot in enumerate(active):
            slot.actuate_run(slot.ctx)
            gather(i, slot.ctx)
        kinematics.n = len(active)

        # detect / record
        for slot in active:
            slot.detect_run(slot.ctx)
        for slot in active:
            slot.record_run(slot.ctx)

    def _cycle_scalar(self, active: List[_Slot]) -> None:
        """One lockstep cycle through the per-run scalar stages.

        Used when the batch has drained below the vectorisation
        break-even; still stage-column order, still refreshing the shared
        kinematics, bit-identical to the fused cycle.
        """
        for slot in active:
            slot.sense_run(slot.ctx)
        for slot in active:
            slot.perceive_run(slot.ctx)
        for slot in active:
            slot.plan_run(slot.ctx)
        for slot in active:
            slot.inject_run(slot.ctx)
        for slot in active:
            slot.drive_run(slot.ctx)
        kinematics = self.kinematics
        gather = kinematics.gather
        for i, slot in enumerate(active):
            slot.actuate_run(slot.ctx)
            gather(i, slot.ctx)
        kinematics.n = len(active)
        for slot in active:
            slot.detect_run(slot.ctx)
        for slot in active:
            slot.record_run(slot.ctx)


def run_batched(
    tasks: Sequence[BatchTask],
    batch_size: int = DEFAULT_BATCH_SIZE,
    progress: Optional[ProgressCallback] = None,
    telemetry: Optional["Telemetry"] = None,
) -> List[RunResult]:
    """Run ``(SimulationConfig, strategy)`` tasks through a lockstep batch."""
    return BatchRunner(batch_size=batch_size, telemetry=telemetry).run_tasks(
        tasks, progress=progress
    )

"""Lockstep batched execution of many simulations through the kernel.

A fault-injection campaign is thousands of *independent* short runs, each
spending its time in the same eight pipeline stages.  The
:class:`BatchRunner` steps ``N`` runs in lockstep — one inner loop per
stage over all active runs (``sense`` over the whole batch, then
``perceive`` over the whole batch, …) — so the per-step work that is
structurally identical across runs can be amortised over the batch:

* the four hot CAN encodes per run-step collapse into one vectorised
  :class:`~repro.can.batch_codec.BatchMessageCodec` pass per message;
* the encode→send→decode round trip of each cycle (the car reading back
  its own state frames, the actuators decoding the just-sent commands)
  collapses into an array read-back — legal because the payload a
  transformer-free bus stores is exactly the payload the codec produced,
  and the physical values a decoder recovers from it are
  ``raw * factor + offset`` over the raws the codec retained;
* the planner arithmetic, the output-stage safety limits and the ego
  physics integration run as **ufunc pipelines over structure-of-arrays
  columns** (:class:`BatchState`): the plan stage gathers each run's
  perception inputs once, then
  :func:`~repro.adas.longitudinal.update_long_columns`,
  :func:`~repro.adas.lateral.update_lat_columns` and
  :func:`~repro.adas.openpilot.apply_output_limit_columns` compute every
  run's plan in one vectorised pass; the actuate stage integrates every
  ego vehicle with :func:`~repro.sim.vehicle.step_ego_columns`;
* the TTC/lane/collision/hazard detectors read the SoA columns
  cross-run: cheap vectorised predicates decide which (few) rows need
  their scalar detector dispatched this cycle, and persistent latch
  mirrors (lane-invasion edges, pending hazards, live collisions) keep
  the dispatch set exact.

Divergence mask
---------------

The vectorised columns cover the *dense* fast path only.  The active
list is partitioned — ``active[:n_dense]`` are dense rows, the rest are
*demoted* — and a scan at the top of every cycle demotes any dense run
that diverged: a CAN transformer attached (MITM deployment), the driver
intervened, or an alert was raised.  Runs with IDM actors never enter
the dense region.  Demoted rows run the existing per-run scalar stages
inside the same lockstep loop, so correctness never depends on the
vectorised path covering every branch; demotion is permanent (row state
is re-gathered from the per-run objects each cycle, so the hand-off is
trivially safe at any cycle boundary).

Runs that finish (early-stop after a collision, or ``max_steps``) are
retired immediately and their slot refilled from the pending queue, so
batches stay dense and the codec always works on a contiguous prefix.

Equivalence
-----------

Batched execution is **bit-for-bit identical** to sequential execution:
runs share no mutable state (each has its own buses, world, ADAS, RNGs),
the vectorised codec is byte-identical to the scalar encoder, the fused
decode reproduces the scalar decode arithmetic exactly, and every
vectorised column reproduces its scalar stage's floating-point operation
sequence exactly (transcendental calls where numpy's ufunc differs from
``libm`` in the last ulp — ``tan``, ``atan``, ``atan2`` — stay per-row
``math`` loops).  The golden-run suite replays all 21 goldens through
``batch_size`` 1, 8, 64 and 256
(``tests/integration/test_batch_equivalence.py``).

Composition with the process pool: batching amortises Python dispatch
*within* a worker, the pool scales *across* cores — ``workers=N``
together with ``batch_size=M`` runs N lockstep batches of M.
"""

from time import perf_counter_ns
from typing import TYPE_CHECKING, Callable, Iterator, List, Optional, Sequence, Tuple, cast

import numpy as np

from repro.adas.lateral import update_lat_columns
from repro.adas.longitudinal import update_long_columns
from repro.adas.openpilot import apply_output_limit_columns
from repro.analysis.hazards import HazardType
from repro.analysis.metrics import RunResult
from repro.can.batch_codec import BatchMessageCodec
from repro.can.honda import HONDA_DBC
from repro.kernel.context import StepContext
from repro.kernel.stages import DriveStage
from repro.sim.units import DT
from repro.sim.vehicle import step_ego_columns

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.strategies import AttackStrategy
    from repro.injection.engine import Simulation, SimulationConfig
    from repro.obs.recorder import FlightRecorderConfig
    from repro.telemetry import Telemetry

#: One unit of batched work: a simulation configuration plus the strategy
#: instance for that run (``None`` for attack-free runs).  Strategy
#: objects must not be shared between tasks — lockstep execution keeps
#: many strategies live at once.
BatchTask = Tuple["SimulationConfig", Optional["AttackStrategy"]]

ProgressCallback = Callable[[int, int], None]

#: Default lockstep width: wide enough that the vectorised codec passes
#: amortise their numpy dispatch, small enough that short attacked runs
#: do not leave the tail of a huge batch running alone.
DEFAULT_BATCH_SIZE = 16

#: Below this many active runs the vectorised codec's fixed numpy
#: dispatch cost no longer beats per-run scalar encodes, so the lockstep
#: loop falls back to the scalar stages (identical results either way).
FUSED_MIN_ACTIVE = 3

#: Below this many *dense* rows the SoA column kernels (planners, ego
#: physics, detectors) fall back to the per-run scalar stages for the
#: dense prefix too — same break-even reasoning as ``FUSED_MIN_ACTIVE``,
#: identical results either way.
DENSE_MIN_ACTIVE = 3

#: Width of the follower reaction-delay ring (entries per row).  The ring
#: holds one ``(time, gap, ego_speed)`` sample per step over the
#: follower's perception delay, so it needs ``delay / DT`` slots plus
#: transient slack; runs whose follower delay does not fit fall back to
#: the per-run traffic path (``traffic_vec`` False), never to a wrong
#: answer.
FOLLOWER_RING = 192

#: Stage names of the lockstep columns, matching the scalar pipeline's
#: stage names so batched per-stage telemetry lands in the same
#: ``perf.stage.{name}.ns`` histograms the ``PipelineProbe`` uses.
_STAGE_NAMES = (
    "sense",
    "perceive",
    "plan",
    "inject",
    "drive",
    "actuate",
    "detect",
    "record",
)

_H1 = HazardType.UNSAFE_FOLLOWING_DISTANCE
_H2 = HazardType.UNNECESSARY_STOP
_H3 = HazardType.OUT_OF_LANE

#: Shared empty list assigned to ``ctx.new_hazards`` for dense rows whose
#: hazard predicates cleared (the record stage only truth-tests and
#: iterates it, never mutates).
_NO_NEW_HAZARDS: List = []


class BatchKinematics:
    """Structure-of-arrays view of the cross-run hot kinematics.

    One row per active run; the gathered rows (time, ego pose/speed, lead
    gap/speed) are refreshed after every actuate column.
    ``lead_gap``/``lead_speed`` are NaN for runs without a tracked lead.
    ``ttc`` (time-to-collision under constant speeds) and ``headway``
    (gap in seconds of travel) are derived vectorised **on demand** by
    :meth:`derive` — consumers (vectorised cross-run detectors,
    telemetry) call it when they need the derived rows, so the lockstep
    hot loop pays only the scalar gathers.  Derived values are ``inf``
    when not closing / standing still, NaN without a lead.
    """

    __slots__ = (
        "capacity",
        "n",
        "time",
        "ego_s",
        "ego_d",
        "ego_speed",
        "lead_gap",
        "lead_speed",
        "ttc",
        "headway",
    )

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.n = 0
        self.time = np.zeros(capacity)
        self.ego_s = np.zeros(capacity)
        self.ego_d = np.zeros(capacity)
        self.ego_speed = np.zeros(capacity)
        self.lead_gap = np.zeros(capacity)
        self.lead_speed = np.zeros(capacity)
        self.ttc = np.zeros(capacity)
        self.headway = np.zeros(capacity)

    def gather(self, i: int, ctx: StepContext) -> None:
        """Write one run's post-actuate context kinematics into row ``i``."""
        self.time[i] = ctx.end_time
        self.ego_s[i] = ctx.ego_s
        self.ego_d[i] = ctx.ego_d
        self.ego_speed[i] = ctx.ego_speed
        if ctx.lead_gap is None:
            self.lead_gap[i] = np.nan
            self.lead_speed[i] = np.nan
        else:
            self.lead_gap[i] = ctx.lead_gap
            self.lead_speed[i] = ctx.lead_speed

    def derive(self, n: Optional[int] = None) -> None:
        """Vectorised TTC/headway over the first ``n`` gathered rows
        (default: the rows of the most recent lockstep cycle).

        Leadless rows are masked *before* the divides — their NaN gap
        never reaches a denominator, so the derivation emits no
        RuntimeWarnings even with ``np.errstate`` promoted to raise —
        and they keep the documented NaN no-lead marker.
        """
        n = self.n if n is None else n
        gap = self.lead_gap[:n]
        ego_speed = self.ego_speed[:n]
        ttc = self.ttc[:n]
        headway = self.headway[:n]
        has_lead = ~np.isnan(gap)
        ttc.fill(np.inf)
        headway.fill(np.inf)
        ttc[~has_lead] = np.nan
        headway[~has_lead] = np.nan
        closing = ego_speed - self.lead_speed[:n]
        np.divide(gap, closing, out=ttc, where=has_lead & (closing > 0.0))
        np.divide(gap, ego_speed, out=headway, where=has_lead & (ego_speed > 0.0))

    def refresh(self, contexts: Sequence[StepContext]) -> None:
        """Gather every context then derive TTC/headway (one-call form)."""
        for i, ctx in enumerate(contexts):
            self.gather(i, ctx)
        self.n = len(contexts)
        self.derive()


#: Per-run planner / physics / road / detector constants, loaded once at
#: admission into a dense row and swapped with the row on compaction.
_PARAM_F8_COLUMNS = (
    # longitudinal planner
    "p_cruise_gain",
    "p_gap_gain",
    "p_closing_gain",
    "p_follow_headway",
    "p_standstill",
    "p_long_brake_min",
    "p_long_accel_max",
    # lateral planner (its own vehicle geometry, distinct from physics)
    "p_lane_gain",
    "p_heading_gain",
    "p_curv_ff",
    "p_sat_angle",
    "p_lat_wheelbase",
    "p_lat_steer_ratio",
    "p_lat_max_steer",
    # ADAS output limits
    "p_out_brake_min",
    "p_out_accel_max",
    "p_steer_delta_max",
    # ego physics
    "p_max_accel_phys",
    "p_max_decel_phys",
    "p_accel_alpha",
    "p_steer_beta",
    "p_steer_max_change",
    "p_wheelbase",
    "p_steer_ratio",
    "p_max_steer_deg",
    # road geometry + environmental disturbance
    "p_curve_start",
    "p_curve_transition",
    "p_curvature_max",
    "p_dist_amp",
    "p_dist_omega",
    "p_dist_phase",
    # follower model + body geometry (traffic columns)
    "p_fl_delay",
    "p_fl_headway",
    "p_fl_decel",
    "p_fl_half_len",
    "p_ego_half_len",
    "p_ego_half_width",
    "p_ld_half_len",
    "p_ld_d",
    # lane / roadside landmarks
    "p_left_lane_line",
    "p_right_lane_line",
    "p_lane_left_limit",
    "p_lane_right_limit",
    "p_right_guardrail",
    "p_left_road_edge",
    # hazard thresholds
    "p_h1_min_gap",
    "p_h1_headway",
    "p_h2_floor",
    "p_h2_clear",
    "p_h2_warmup",
    "p_h3_left_limit",
    "p_h3_right_limit",
)

#: Persistent detector latch mirrors (True = pending / live), kept exact
#: by the dispatch loops and resynced from the per-run monitors after any
#: scalar-fallback detect cycle.
_DETECT_BOOL_COLUMNS = (
    "det_inv_left",
    "det_inv_right",
    "det_out",
    "det_h1",
    "det_h2",
    "det_h3",
    "det_coll_scalar",
    "det_had_coll",
    "det_had_haz",
)

#: Per-cycle float columns: plan gather/outputs, actuator commands,
#: physics state, executed commands, detect extras and shared scratch.
_CYCLE_F8_COLUMNS = (
    "plan_v_ego",
    "plan_v_cruise",
    "plan_steer_meas",
    "plan_prev_steer",
    "plan_d_rel",
    "plan_v_rel",
    "plan_lat_off",
    "plan_head_err",
    "plan_model_curv",
    "plan_accel",
    "plan_v_target",
    "plan_lead_dist",
    "plan_lead_speed",
    "plan_ttc",
    "plan_req_decel",
    "plan_curvature",
    "plan_desired_deg",
    "plan_output_deg",
    "cmd_accel",
    "cmd_brake",
    "cmd_steer",
    "ph_time",
    "ph_s",
    "ph_d",
    "ph_heading",
    "ph_speed",
    "ph_accel",
    "ph_steer",
    "ph_yaw",
    "ex_accel",
    "ex_brake",
    "ex_steer",
    "ld_s",
    "ld_speed",
    "ld_accel",
    "fl_s",
    "fl_speed",
    "fl_accel",
    "left_edge",
    "right_edge",
    "lead_d",
    "w0",
    "w1",
    "w2",
    "w3",
    "w4",
    "w5",
    "w6",
    "w7",
)

_CYCLE_BOOL_COLUMNS = (
    "plan_has_lead",
    "plan_has_model",
    "plan_saturated",
    "has_lead",
)

#: Columns that carry state *across* cycles for a dense row and must
#: follow the row through partition swaps.  Everything else is gathered
#: fresh from the per-run objects every cycle.  (The follower ring's 2-D
#: arrays are persistent too; ``swap_rows`` handles them separately.)
_PERSISTENT_COLUMNS = (
    _PARAM_F8_COLUMNS
    + ("p_sat_frames",)
    + _DETECT_BOOL_COLUMNS
    + ("ld_on", "fl_on", "ld_target", "ld_rate", "ld_next_start", "fh_head", "fh_tail")
    # The ego physics columns persist too: after a dense cycle they are
    # bit-equal to the scattered per-run objects, letting the next dense
    # gather skip rows whose ``ph_fresh`` flag survived (no scalar
    # actuate touched their objects in between).
    + ("ph_time", "ph_s", "ph_d", "ph_heading", "ph_speed", "ph_accel", "ph_steer", "ph_fresh")
    # The traffic physics columns ride the same skip-gather contract, so
    # they are cross-cycle state as well and must follow their row
    # through partition swaps.
    + ("ld_s", "ld_speed", "ld_accel", "fl_s", "fl_speed", "fl_accel")
)


class BatchState(BatchKinematics):
    """Full SoA residency for the dense fast path.

    Extends the cross-run kinematics with plan columns, actuator-command
    columns, ego physics columns, per-run constants and detector latch
    mirrors — one row per active run, dense rows in the ``[0, n_dense)``
    prefix.  The state policy is *per-run objects stay authoritative*:
    each cycle gathers the dense rows' inputs from their run objects,
    runs the vectorised column kernels, and scatters the outputs back,
    which makes demoting a row to the scalar path safe at any cycle
    boundary.
    """

    # longitudinal planner params
    p_cruise_gain: np.ndarray
    p_gap_gain: np.ndarray
    p_closing_gain: np.ndarray
    p_follow_headway: np.ndarray
    p_standstill: np.ndarray
    p_long_brake_min: np.ndarray
    p_long_accel_max: np.ndarray
    # lateral planner params
    p_lane_gain: np.ndarray
    p_heading_gain: np.ndarray
    p_curv_ff: np.ndarray
    p_sat_angle: np.ndarray
    p_lat_wheelbase: np.ndarray
    p_lat_steer_ratio: np.ndarray
    p_lat_max_steer: np.ndarray
    p_sat_frames: np.ndarray
    # ADAS output limits
    p_out_brake_min: np.ndarray
    p_out_accel_max: np.ndarray
    p_steer_delta_max: np.ndarray
    # ego physics params
    p_max_accel_phys: np.ndarray
    p_max_decel_phys: np.ndarray
    p_accel_alpha: np.ndarray
    p_steer_beta: np.ndarray
    p_steer_max_change: np.ndarray
    p_wheelbase: np.ndarray
    p_steer_ratio: np.ndarray
    p_max_steer_deg: np.ndarray
    # road / disturbance params
    p_curve_start: np.ndarray
    p_curve_transition: np.ndarray
    p_curvature_max: np.ndarray
    p_dist_amp: np.ndarray
    p_dist_omega: np.ndarray
    p_dist_phase: np.ndarray
    # landmarks
    p_left_lane_line: np.ndarray
    p_right_lane_line: np.ndarray
    p_lane_left_limit: np.ndarray
    p_lane_right_limit: np.ndarray
    p_right_guardrail: np.ndarray
    p_left_road_edge: np.ndarray
    # hazard thresholds
    p_h1_min_gap: np.ndarray
    p_h1_headway: np.ndarray
    p_h2_floor: np.ndarray
    p_h2_clear: np.ndarray
    p_h2_warmup: np.ndarray
    p_h3_left_limit: np.ndarray
    p_h3_right_limit: np.ndarray
    # detector latch mirrors
    det_inv_left: np.ndarray
    det_inv_right: np.ndarray
    det_out: np.ndarray
    det_h1: np.ndarray
    det_h2: np.ndarray
    det_h3: np.ndarray
    det_coll_scalar: np.ndarray
    det_had_coll: np.ndarray
    det_had_haz: np.ndarray
    # plan gather / output columns
    plan_v_ego: np.ndarray
    plan_v_cruise: np.ndarray
    plan_steer_meas: np.ndarray
    plan_prev_steer: np.ndarray
    plan_d_rel: np.ndarray
    plan_v_rel: np.ndarray
    plan_lat_off: np.ndarray
    plan_head_err: np.ndarray
    plan_model_curv: np.ndarray
    plan_accel: np.ndarray
    plan_v_target: np.ndarray
    plan_lead_dist: np.ndarray
    plan_lead_speed: np.ndarray
    plan_ttc: np.ndarray
    plan_req_decel: np.ndarray
    plan_curvature: np.ndarray
    plan_desired_deg: np.ndarray
    plan_output_deg: np.ndarray
    plan_sat_count: np.ndarray
    plan_has_lead: np.ndarray
    plan_has_model: np.ndarray
    plan_saturated: np.ndarray
    # actuator pre-hook command columns
    cmd_accel: np.ndarray
    cmd_brake: np.ndarray
    cmd_steer: np.ndarray
    # ego physics columns
    ph_time: np.ndarray
    ph_s: np.ndarray
    ph_d: np.ndarray
    ph_heading: np.ndarray
    ph_speed: np.ndarray
    ph_accel: np.ndarray
    ph_steer: np.ndarray
    ph_yaw: np.ndarray
    # executed (post-drive) command columns
    ex_accel: np.ndarray
    ex_brake: np.ndarray
    ex_steer: np.ndarray
    # traffic columns: scenario lead profile state + follower delay ring
    ld_on: np.ndarray
    fl_on: np.ndarray
    ld_target: np.ndarray
    ld_rate: np.ndarray
    ld_next_start: np.ndarray
    ld_s: np.ndarray
    ld_speed: np.ndarray
    ld_accel: np.ndarray
    fl_s: np.ndarray
    fl_speed: np.ndarray
    fl_accel: np.ndarray
    fh_t: np.ndarray
    fh_gap: np.ndarray
    fh_v: np.ndarray
    fh_head: np.ndarray
    fh_tail: np.ndarray
    ph_fresh: np.ndarray
    # detect gather extras
    left_edge: np.ndarray
    right_edge: np.ndarray
    lead_d: np.ndarray
    has_lead: np.ndarray
    # shared scratch (reused by every column kernel)
    w0: np.ndarray
    w1: np.ndarray
    w2: np.ndarray
    w3: np.ndarray
    w4: np.ndarray
    w5: np.ndarray
    w6: np.ndarray
    w7: np.ndarray

    def __init__(self, capacity: int):
        super().__init__(capacity)
        for name in _PARAM_F8_COLUMNS:
            setattr(self, name, np.zeros(capacity))
        for name in _CYCLE_F8_COLUMNS:
            setattr(self, name, np.zeros(capacity))
        for name in _DETECT_BOOL_COLUMNS:
            setattr(self, name, np.zeros(capacity, dtype=bool))
        for name in _CYCLE_BOOL_COLUMNS:
            setattr(self, name, np.zeros(capacity, dtype=bool))
        self.p_sat_frames = np.zeros(capacity, dtype=np.int64)
        self.plan_sat_count = np.zeros(capacity, dtype=np.int64)
        self.ld_on = np.zeros(capacity, dtype=bool)
        self.fl_on = np.zeros(capacity, dtype=bool)
        self.ld_target = np.zeros(capacity)
        self.ld_rate = np.zeros(capacity)
        self.ld_next_start = np.zeros(capacity)
        self.fh_head = np.zeros(capacity, dtype=np.int64)
        self.fh_tail = np.zeros(capacity, dtype=np.int64)
        self.fh_t = np.zeros((capacity, FOLLOWER_RING))
        self.fh_gap = np.zeros((capacity, FOLLOWER_RING))
        self.fh_v = np.zeros((capacity, FOLLOWER_RING))
        self.ph_fresh = np.zeros(capacity, dtype=bool)

    # -- row lifecycle -----------------------------------------------------

    def load_row(self, row: int, slot: "_Slot") -> None:
        """Load a newly admitted dense run's constants into ``row``.

        Derived constants (``alpha``/``beta`` lags, slew per step, lane
        limits with margins) are precomputed here with the same Python
        float arithmetic the scalar stages use per step, so the values
        are bit-identical.
        """
        op = slot.openpilot
        lp = op.long_planner.params
        self.p_cruise_gain[row] = lp.cruise_gain
        self.p_gap_gain[row] = lp.gap_gain
        self.p_closing_gain[row] = lp.closing_gain
        self.p_follow_headway[row] = lp.follow_time_headway
        self.p_standstill[row] = lp.standstill_distance
        self.p_long_brake_min[row] = lp.planner_limits.brake_min
        self.p_long_accel_max[row] = lp.planner_limits.accel_max

        latp = op.lat_planner.params
        self.p_lane_gain[row] = latp.lane_gain
        self.p_heading_gain[row] = latp.heading_gain
        self.p_curv_ff[row] = latp.curvature_feedforward
        self.p_sat_angle[row] = latp.saturation_angle_deg
        self.p_sat_frames[row] = latp.saturation_frames
        lat_veh = op.lat_planner.vehicle
        self.p_lat_wheelbase[row] = lat_veh.wheelbase
        self.p_lat_steer_ratio[row] = lat_veh.steering_ratio
        self.p_lat_max_steer[row] = lat_veh.max_steering_wheel_deg

        out_limits = op.config.output_limits
        self.p_out_brake_min[row] = out_limits.brake_min
        self.p_out_accel_max[row] = out_limits.accel_max
        self.p_steer_delta_max[row] = out_limits.steer_delta_max_deg

        world = slot.world
        veh = world.ego.params
        self.p_max_accel_phys[row] = veh.max_accel_physical
        self.p_max_decel_phys[row] = veh.max_decel_physical
        self.p_accel_alpha[row] = DT / (veh.accel_time_constant + DT)
        self.p_steer_beta[row] = DT / (veh.steer_time_constant + DT)
        self.p_steer_max_change[row] = veh.max_steer_rate_deg_s * DT
        self.p_wheelbase[row] = veh.wheelbase
        self.p_steer_ratio[row] = veh.steering_ratio
        self.p_max_steer_deg[row] = veh.max_steering_wheel_deg

        road = world.road
        spec = road.spec
        self.p_curve_start[row] = spec.curve_start
        self.p_curve_transition[row] = spec.curve_transition
        self.p_curvature_max[row] = spec.curvature_max
        self.p_dist_amp[row] = world.config.disturbance_amplitude
        self.p_dist_omega[row] = world._disturbance_omega
        self.p_dist_phase[row] = world._disturbance_phase

        lane = slot.lane_monitor
        self.p_left_lane_line[row] = road.left_lane_line
        self.p_right_lane_line[row] = road.right_lane_line
        self.p_lane_left_limit[row] = road.left_lane_line + lane.out_of_lane_margin
        self.p_lane_right_limit[row] = road.right_lane_line - lane.out_of_lane_margin
        self.p_right_guardrail[row] = road.right_guardrail
        self.p_left_road_edge[row] = road.left_road_edge

        hz = slot.hazard_monitor.params
        self.p_h1_min_gap[row] = hz.h1_min_gap
        self.p_h1_headway[row] = hz.h1_headway
        self.p_h2_floor[row] = hz.h2_speed_floor
        self.p_h2_clear[row] = hz.h2_clear_distance
        self.p_h2_warmup[row] = hz.h2_warmup
        self.p_h3_left_limit[row] = road.left_lane_line + hz.out_of_lane_margin
        self.p_h3_right_limit[row] = road.right_lane_line - hz.out_of_lane_margin

        self.p_ego_half_len[row] = world.ego._half_length
        self.p_ego_half_width[row] = world.ego._half_width
        self.ph_fresh[row] = False
        lead = slot.lead_vehicle
        self.ld_on[row] = lead is not None
        if lead is not None:
            self.p_ld_half_len[row] = lead._half_length
            # A traffic-vec lead never changes lane (no lane_change, no
            # dynamic selection), so its lateral offset is a constant.
            self.p_ld_d[row] = lead.state.d
            self.load_lead_phase(row, lead)
        follower = slot.follower_vehicle
        self.fl_on[row] = follower is not None
        if follower is not None:
            self.p_fl_delay[row] = follower.reaction_delay
            self.p_fl_headway[row] = follower.desired_headway
            self.p_fl_decel[row] = follower.max_decel
            self.p_fl_half_len[row] = follower._half_length
            self.seed_follower_ring(row, follower)

        ctx = slot.ctx
        self.det_coll_scalar[row] = bool(ctx.others) or ctx.follower is not None
        self.sync_detect_row(row, slot)

    def load_lead_phase(self, row: int, lead) -> None:
        """Mirror the lead's active maneuver phase into ``row``.

        ``ld_target`` is NaN while no phase is active (or the active
        phase holds speed): every vectorised comparison against it is
        False, reproducing the scalar ``target is None`` branch.
        ``ld_next_start`` is the clock value at which the mirror must be
        re-derived (inf once the profile is exhausted); because the
        lead's own ``_phase_index`` advances monotonically through
        ``_active_phase``, the mirror self-heals even if scalar cycles
        stepped the object in between.
        """
        profile = lead.profile
        index = lead._phase_index
        target = profile[index - 1].target_speed if index > 0 else None
        self.ld_target[row] = float("nan") if target is None else target
        self.ld_rate[row] = profile[index - 1].rate if index > 0 else 0.0
        self.ld_next_start[row] = (
            profile[index].start_time if index < len(profile) else float("inf")
        )

    def seed_follower_ring(self, row: int, follower) -> None:
        """Object history → ring, on admission and after scalar cycles."""
        history = follower._pending_gap_history
        for k, (t, gap, v) in enumerate(history):
            self.fh_t[row, k] = t
            self.fh_gap[row, k] = gap
            self.fh_v[row, k] = v
        self.fh_head[row] = 0
        self.fh_tail[row] = len(history)

    def flush_follower_ring(self, row: int, follower) -> None:
        """Ring → object history, before any scalar step can read it."""
        t_row = self.fh_t[row]
        gap_row = self.fh_gap[row]
        v_row = self.fh_v[row]
        follower._pending_gap_history = [
            (
                t_row[k % FOLLOWER_RING].item(),
                gap_row[k % FOLLOWER_RING].item(),
                v_row[k % FOLLOWER_RING].item(),
            )
            for k in range(int(self.fh_head[row]), int(self.fh_tail[row]))
        ]

    def sync_detect_row(self, row: int, slot: "_Slot") -> None:
        """Refresh ``row``'s detector latch mirrors from the run objects."""
        lane = slot.lane_monitor
        self.det_inv_left[row] = lane._invading_left
        self.det_inv_right[row] = lane._invading_right
        self.det_out[row] = lane.report.out_of_lane
        events = slot.hazard_monitor.events
        self.det_h1[row] = _H1 not in events
        self.det_h2[row] = _H2 not in events
        self.det_h3[row] = _H3 not in events
        ctx = slot.ctx
        self.det_had_coll[row] = ctx.collision is not None
        self.det_had_haz[row] = bool(ctx.new_hazards)

    def swap_rows(self, i: int, j: int) -> None:
        """Swap the persistent columns of rows ``i`` and ``j``."""
        for name in _PERSISTENT_COLUMNS:
            col = getattr(self, name)
            col[i], col[j] = col[j], col[i]
        if self.fl_on[i] or self.fl_on[j]:
            for ring in (self.fh_t, self.fh_gap, self.fh_v):
                ring[[i, j]] = ring[[j, i]]

    def gather_row(self, i: int, ctx: StepContext) -> None:
        """:meth:`gather` plus the detect-column extras."""
        self.gather(i, ctx)
        self.left_edge[i] = ctx.ego_left_edge
        self.right_edge[i] = ctx.ego_right_edge
        self.lead_d[i] = ctx.lead_d
        self.has_lead[i] = ctx.lead is not None


def _tapped_record_run(
    record_run: Callable[[StepContext], None],
    capture: Callable[[StepContext], None],
) -> Callable[[StepContext], None]:
    """Chain a pipeline tap's capture after a slot's record stage.

    The batch executor never calls ``run_cycle`` on the slot pipelines
    (it walks stage columns instead), so a
    :class:`~repro.obs.tap.TappedPipeline`'s capture is honoured here by
    wrapping the extracted record-stage method — the same
    "after the completed cycle" observation point, in both the dense
    (:meth:`BatchRunner._record_column`) and scalar
    (:meth:`BatchRunner._cycle_scalar`) paths.
    """

    def run(ctx: StepContext) -> None:
        record_run(ctx)
        capture(ctx)

    return run


class _Slot:
    """One active run inside the lockstep batch."""

    __slots__ = (
        "index",
        "sim",
        "world",
        "openpilot",
        "ctx",
        "result",
        "remaining",
        "fused",
        "dense_capable",
        "traffic_vec",
        "lead_vehicle",
        "follower_vehicle",
        "sent",
        "hazard_monitor",
        "lane_monitor",
        "collision_detector",
        "sense_run",
        "perceive_run",
        "plan_run",
        "inject_run",
        "drive_stage",
        "drive_run",
        "actuate_run",
        "detect_run",
        "record_run",
    )

    def __init__(self, index: int, sim: "Simulation"):
        self.index = index
        self.sim = sim
        self.world = sim.world
        self.openpilot = sim.openpilot
        result, ctx, pipeline = sim.prepare()
        self.result = result
        self.ctx = ctx
        self.remaining = sim.config.max_steps
        # The codec fast path requires the bus to store exactly the bytes
        # the codec produced; a transformer breaks that, so such runs use
        # their scalar stages (still inside the lockstep loop).
        self.fused = not sim.world.can_bus.has_transformers
        # The SoA dense path additionally excludes IDM actors (their
        # car-following update is inherently per-run).
        self.dense_capable = self.fused and not sim.world._any_idm
        # The traffic columns cover the static-lane scenario lead
        # (profile-driven; `_dynamic_lead` rules out scripted actors and
        # lead lane changes) plus the delayed-perception follower, if its
        # history fits the ring.  Anything else keeps the per-run
        # World.advance_traffic() inside the dense actuate column.
        world = sim.world
        follower = world.follower
        self.traffic_vec = (
            self.dense_capable
            and not world._dynamic_lead
            and (
                follower is None
                or int(follower.reaction_delay / DT) + 8 <= FOLLOWER_RING
            )
        )
        self.lead_vehicle = world.scenario_lead if self.traffic_vec else None
        self.follower_vehicle = follower if self.traffic_vec else None
        self.sent = False
        self.hazard_monitor = sim.hazard_monitor
        self.lane_monitor = sim.world.lane_monitor
        self.collision_detector = sim.world.collision_detector
        self.sense_run = pipeline.stage("sense").run
        self.perceive_run = pipeline.stage("perceive").run
        self.plan_run = pipeline.stage("plan").run
        self.inject_run = pipeline.stage("inject").run
        self.drive_stage = cast(DriveStage, pipeline.stage("drive"))
        self.drive_run = self.drive_stage.run
        self.actuate_run = pipeline.stage("actuate").run
        self.detect_run = pipeline.stage("detect").run
        self.record_run = pipeline.stage("record").run
        capture = getattr(pipeline, "tap_capture", None)
        if capture is not None:
            self.record_run = _tapped_record_run(self.record_run, capture)


class BatchRunner:
    """Drives up to ``batch_size`` simulations in lockstep through the kernel.

    Args:
        batch_size: Lockstep width (number of preallocated run slots and
            the row count of the shared SoA arrays).
        telemetry: Optional :class:`~repro.telemetry.Telemetry` handle.
            The batched cost model is per lockstep *cycle*, not per run,
            so the runner records sampled whole-cycle timings
            (``perf.batch.cycle_ns``, with the active-row count in
            ``perf.batch.cycle_rows``) plus per-stage column timings in
            the scalar probe's ``perf.stage.{name}.ns`` histograms, plus
            the same run-completion metrics the scalar path records at
            retirement.  The slot simulations themselves run unprobed —
            per-run stage wrapping would defeat the lockstep amortisation
            it is measuring.
    """

    def __init__(
        self,
        batch_size: int = DEFAULT_BATCH_SIZE,
        telemetry: Optional["Telemetry"] = None,
        recorder: Optional["FlightRecorderConfig"] = None,
    ):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = batch_size
        self.telemetry = telemetry
        self.recorder = recorder
        self.state = BatchState(batch_size)
        #: Back-compat alias: the kinematics rows live on the same object.
        self.kinematics: BatchKinematics = self.state
        self._n_dense = 0
        self._detect_stale = False
        self._traffic_stale = False
        self._fused_slots: List[_Slot] = []
        self._send_slots: List[_Slot] = []
        self._columns: Tuple[Callable[[List[_Slot]], None], ...] = (
            self._sense_column,
            self._perceive_column,
            self._plan_column,
            self._inject_column,
            self._drive_column,
            self._actuate_column,
            self._detect_column,
            self._record_column,
        )
        # The signal sets mirror the scalar call sites exactly; signals the
        # scalar code passes as constants are folded into the accumulator
        # base, and the 0/1 request bits take the integral fast path.
        self._powertrain = BatchMessageCodec(
            HONDA_DBC.plan_by_name("POWERTRAIN_DATA"),
            ("XMISSION_SPEED", "ACCEL_MEASURED", "PEDAL_GAS", "BRAKE_PRESSED"),
            batch_size,
            constants={"GAS_PRESSED": 0.0},
            integral=("BRAKE_PRESSED",),
        )
        self._steering_sensors = BatchMessageCodec(
            HONDA_DBC.plan_by_name("STEERING_SENSORS"),
            ("STEER_ANGLE",),
            batch_size,
            constants={"STEER_ANGLE_RATE": 0.0},
        )
        self._steering_control = BatchMessageCodec(
            HONDA_DBC.plan_by_name("STEERING_CONTROL"),
            ("STEER_ANGLE_CMD", "STEER_TORQUE"),
            batch_size,
            constants={"STEER_REQUEST": 1.0},
        )
        self._acc_control = BatchMessageCodec(
            HONDA_DBC.plan_by_name("ACC_CONTROL"),
            ("ACCEL_COMMAND", "BRAKE_COMMAND", "BRAKE_REQUEST"),
            batch_size,
            constants={"ACC_ON": 1.0},
            integral=("BRAKE_REQUEST",),
        )

    # -- partition maintenance ---------------------------------------------

    def _swap(self, active: List[_Slot], i: int, j: int) -> None:
        if i == j:
            return
        active[i], active[j] = active[j], active[i]
        self.state.swap_rows(i, j)

    def _demote(self, active: List[_Slot], position: int) -> None:
        """Move a diverged dense row into the demoted region (permanent)."""
        self._flush_traffic_row(active[position], position)
        self._swap(active, position, self._n_dense - 1)
        self._n_dense -= 1

    def _remove(self, active: List[_Slot], position: int) -> None:
        """Retire the slot at ``position``, keeping the partition intact."""
        if position < self._n_dense:
            self._flush_traffic_row(active[position], position)
            self._swap(active, position, self._n_dense - 1)
            self._n_dense -= 1
            position = self._n_dense
        last = len(active) - 1
        self._swap(active, position, last)
        active.pop()

    def run_tasks(
        self, tasks: Sequence[BatchTask], progress: Optional[ProgressCallback] = None
    ) -> List[RunResult]:
        """Run every task, lockstep-batched; results are in task order."""
        from repro.injection.engine import Simulation  # local: avoids an import cycle

        tasks = list(tasks)
        total = len(tasks)
        results: List[Optional[RunResult]] = [None] * total
        pending: Iterator[Tuple[int, BatchTask]] = iter(enumerate(tasks))
        active: List[_Slot] = []
        live_strategies: set = set()
        self._n_dense = 0
        self._detect_stale = False
        self._traffic_stale = False

        def admit() -> bool:
            for index, (config, strategy) in pending:
                if strategy is not None:
                    if id(strategy) in live_strategies:
                        raise ValueError(
                            "batched execution requires one strategy instance per "
                            "task (a strategy object is shared between tasks that "
                            "would run concurrently)"
                        )
                    live_strategies.add(id(strategy))
                # Only thread the recorder through when configured, so
                # recorder-less batches keep the plain constructor call.
                if self.recorder is not None:
                    sim = Simulation(config, strategy, recorder=self.recorder)
                else:
                    sim = Simulation(config, strategy)
                slot = _Slot(index, sim)
                position = len(active)
                active.append(slot)
                if slot.dense_capable:
                    self._swap(active, position, self._n_dense)
                    self.state.load_row(self._n_dense, slot)
                    self._n_dense += 1
                return True
            return False

        while len(active) < self.batch_size and admit():
            pass

        telemetry = self.telemetry
        cycle_hist = cycle_rows = sample_every = None
        stage_hists: Optional[Tuple] = None
        cycle_index = 0
        if telemetry is not None:
            from repro.telemetry.probe import STAGE_METRIC  # local: import cycle

            cycle_hist = telemetry.metrics.histogram("perf.batch.cycle_ns")
            cycle_rows = telemetry.metrics.counter("perf.batch.cycle_rows")
            sample_every = telemetry.config.sample_every
            stage_hists = tuple(
                telemetry.metrics.histogram(STAGE_METRIC.format(name=name))
                for name in _STAGE_NAMES
            )

        completed = 0
        try:
            while active:
                if cycle_hist is not None and cycle_index % sample_every == 0:
                    start_ns = perf_counter_ns()
                    self._cycle(active, stage_hists)
                    cycle_hist.record(perf_counter_ns() - start_ns)
                    cycle_rows.inc(len(active))
                else:
                    self._cycle(active)
                cycle_index += 1
                retired = False
                for position in range(len(active) - 1, -1, -1):
                    slot = active[position]
                    slot.remaining -= 1
                    if not (slot.ctx.stop or slot.remaining <= 0):
                        continue
                    results[slot.index] = slot.sim.finalize(slot.result, slot.ctx)
                    if telemetry is not None:
                        telemetry.record_run(
                            slot.result,
                            steps=slot.world.step_count,
                            can_sent=slot.world.can_bus.sent_count,
                            can_tampered=slot.world.can_bus.tampered_count,
                        )
                    strategy = tasks[slot.index][1]
                    if strategy is not None:
                        live_strategies.discard(id(strategy))
                    self._remove(active, position)
                    retired = True
                    completed += 1
                    if progress is not None:
                        progress(completed, total)
                if retired:
                    while len(active) < self.batch_size and admit():
                        pass
        except BaseException:
            # The batch dies as a unit: give every in-flight run's black
            # box a chance to flush before the exception propagates.
            if self.recorder is not None:
                for slot in active:
                    slot.sim.flush_flight()
            raise
        return results  # type: ignore[return-value]  # every slot was filled

    # -- one lockstep cycle ------------------------------------------------

    def _cycle(self, active: List[_Slot], stage_hists: Optional[Tuple] = None) -> None:
        # Divergence scan: a dense row leaves the fast path the cycle
        # after a transformer attached, the driver intervened, or an
        # alert was raised (the flip cycle itself is still bit-exact —
        # the dense plan/physics/detect math is unaffected within it, and
        # the sense/perceive/inject/drive columns already handle mixed
        # fused/scalar rows).
        for position in range(self._n_dense - 1, -1, -1):
            slot = active[position]
            if (
                not slot.fused
                or slot.ctx.driver_engaged
                or slot.openpilot.alert_manager.raised
            ):
                self._demote(active, position)
        if len(active) < FUSED_MIN_ACTIVE:
            self._cycle_scalar(active)
            return
        if stage_hists is None:
            for column in self._columns:
                column(active)
            return
        for hist, column in zip(stage_hists, self._columns):
            start_ns = perf_counter_ns()
            column(active)
            hist.record(perf_counter_ns() - start_ns)

    def _sense_column(self, active: List[_Slot]) -> None:
        """Per-run sensor publications, batched car-state CAN."""
        powertrain = self._powertrain
        steering_sensors = self._steering_sensors
        fused = self._fused_slots
        fused.clear()
        speed_values = powertrain.values["XMISSION_SPEED"]
        accel_values = powertrain.values["ACCEL_MEASURED"]
        gas_values = powertrain.values["PEDAL_GAS"]
        brake_values = powertrain.values["BRAKE_PRESSED"]
        steer_values = steering_sensors.values["STEER_ANGLE"]
        for slot in active:
            if slot.fused and slot.world.can_bus.has_transformers:
                # A transformer was attached mid-run (e.g. a CAN-level
                # attack deployment): the codec read-back is no longer
                # sound for this run — latch it onto the scalar stages.
                slot.fused = False
            if not slot.fused:
                slot.sense_run(slot.ctx)
                continue
            world = slot.world
            slot.ctx.time = world.time
            world.publish_sensors()
            i = len(fused)
            speed, accel, pedal_gas, brake_pressed, steer, counter = (
                world.batched_car_can_inputs()
            )
            speed_values[i] = speed
            accel_values[i] = accel
            gas_values[i] = pedal_gas
            brake_values[i] = brake_pressed
            powertrain.counters[i] = counter
            steer_values[i] = steer
            steering_sensors.counters[i] = counter
            fused.append(slot)
        if fused:
            n = len(fused)
            powertrain_payloads = powertrain.encode(n)
            sensor_payloads = steering_sensors.encode(n)
            for i, slot in enumerate(fused):
                slot.world.send_car_can_frames(powertrain_payloads[i], sensor_payloads[i])

    def _perceive_column(self, active: List[_Slot]) -> None:
        """Fused read-back of the frames just encoded."""
        fused = self._fused_slots
        if fused:
            powertrain = self._powertrain
            steering_sensors = self._steering_sensors
            v_ego = powertrain.physical("XMISSION_SPEED")
            a_ego = powertrain.physical("ACCEL_MEASURED")
            steer = steering_sensors.physical("STEER_ANGLE")
            for i, slot in enumerate(fused):
                slot.world.apply_fused_car_state(
                    slot.ctx.car_state, float(v_ego[i]), float(a_ego[i]), float(steer[i])
                )
        for slot in active:
            if not slot.fused:
                slot.perceive_run(slot.ctx)

    def _plan_column(self, active: List[_Slot]) -> None:
        """Per-run perception prelude, vectorised planner arithmetic."""
        n_dense = self._n_dense
        if n_dense < DENSE_MIN_ACTIVE:
            for slot in active:
                slot.plan_run(slot.ctx)
            return
        state = self.state
        plan_v_ego = state.plan_v_ego
        plan_v_cruise = state.plan_v_cruise
        plan_steer_meas = state.plan_steer_meas
        plan_prev_steer = state.plan_prev_steer
        plan_sat_count = state.plan_sat_count
        plan_has_lead = state.plan_has_lead
        plan_d_rel = state.plan_d_rel
        plan_v_rel = state.plan_v_rel
        plan_has_model = state.plan_has_model
        plan_lat_off = state.plan_lat_off
        plan_head_err = state.plan_head_err
        plan_model_curv = state.plan_model_curv
        # Gather: the messaging round trip stays per-run (each run owns
        # its buses); dense rows are never driver-engaged (engagement
        # demotes at the cycle top, before this column).
        for j in range(n_dense):
            slot = active[j]
            ctx = slot.ctx
            openpilot = slot.openpilot
            model, radar = openpilot.plan_prelude(ctx.time, ctx.car_state, ctx.dt)
            car_state = ctx.car_state
            plan_v_ego[j] = car_state.v_ego
            plan_v_cruise[j] = car_state.cruise_speed
            plan_steer_meas[j] = car_state.steering_angle_deg
            plan_prev_steer[j] = openpilot._previous_steering_deg
            plan_sat_count[j] = openpilot.lat_planner._saturated_count
            lead = radar.lead_one if radar is not None else None
            if lead is not None and lead.status:
                plan_has_lead[j] = True
                plan_d_rel[j] = lead.d_rel
                plan_v_rel[j] = lead.v_rel
            else:
                plan_has_lead[j] = False
                plan_d_rel[j] = 0.0
                plan_v_rel[j] = 0.0
            if model is not None:
                plan_has_model[j] = True
                plan_lat_off[j] = model.lateral_offset
                plan_head_err[j] = model.heading_error
                plan_model_curv[j] = model.curvature
            else:
                plan_has_model[j] = False
                plan_lat_off[j] = 0.0
                plan_head_err[j] = 0.0
                plan_model_curv[j] = 0.0

        update_long_columns(state, n_dense)
        update_lat_columns(state, n_dense)
        apply_output_limit_columns(state, n_dense)

        # Scatter back into the per-run plan/command objects (tolist
        # converts whole columns to Python scalars in one C pass).
        accel_o = state.plan_accel[:n_dense].tolist()
        v_target_o = state.plan_v_target[:n_dense].tolist()
        has_lead_o = state.plan_has_lead[:n_dense].tolist()
        lead_dist_o = state.plan_lead_dist[:n_dense].tolist()
        lead_speed_o = state.plan_lead_speed[:n_dense].tolist()
        ttc_o = state.plan_ttc[:n_dense].tolist()
        req_decel_o = state.plan_req_decel[:n_dense].tolist()
        curvature_o = state.plan_curvature[:n_dense].tolist()
        desired_deg_o = state.plan_desired_deg[:n_dense].tolist()
        output_deg_o = state.plan_output_deg[:n_dense].tolist()
        saturated_o = state.plan_saturated[:n_dense].tolist()
        sat_count_o = state.plan_sat_count[:n_dense].tolist()
        cmd_accel_o = state.cmd_accel[:n_dense].tolist()
        cmd_brake_o = state.cmd_brake[:n_dense].tolist()
        cmd_steer_o = state.cmd_steer[:n_dense].tolist()
        for j in range(n_dense):
            slot = active[j]
            ctx = slot.ctx
            long_plan = ctx.long_plan
            long_plan.desired_accel = accel_o[j]
            long_plan.v_target = v_target_o[j]
            long_plan.has_lead = has_lead_o[j]
            long_plan.lead_distance = lead_dist_o[j]
            long_plan.lead_speed = lead_speed_o[j]
            long_plan.time_to_collision = ttc_o[j]
            long_plan.required_decel = req_decel_o[j]
            lat_plan = ctx.lat_plan
            lat_plan.desired_curvature = curvature_o[j]
            lat_plan.desired_steering_deg = desired_deg_o[j]
            lat_plan.output_steering_deg = output_deg_o[j]
            lat_plan.saturated = saturated_o[j]
            slot.openpilot.lat_planner._saturated_count = sat_count_o[j]
            pre_hook = ctx.pre_hook_command
            pre_hook.accel = cmd_accel_o[j]
            pre_hook.brake = cmd_brake_o[j]
            pre_hook.steering_angle_deg = cmd_steer_o[j]

        for j in range(n_dense, len(active)):
            slot = active[j]
            slot.plan_run(slot.ctx)

    def _inject_column(self, active: List[_Slot]) -> None:
        """Per-run hooks/alerts/publications, batched actuator CAN."""
        steering_control = self._steering_control
        acc_control = self._acc_control
        send = self._send_slots
        send.clear()
        angle_values = steering_control.values["STEER_ANGLE_CMD"]
        torque_values = steering_control.values["STEER_TORQUE"]
        accel_cmd_values = acc_control.values["ACCEL_COMMAND"]
        brake_cmd_values = acc_control.values["BRAKE_COMMAND"]
        brake_req_values = acc_control.values["BRAKE_REQUEST"]
        for slot in active:
            ctx = slot.ctx
            slot.sent = False
            if ctx.driver_engaged:
                continue
            if not slot.fused:
                slot.inject_run(ctx)
                continue
            if not slot.openpilot.emit_publish_into(ctx):
                continue
            openpilot = slot.openpilot
            if openpilot.can_bus.has_transformers:
                # An output hook just attached a transformer (within this
                # very cycle): send scalar so the transformer applies, and
                # leave `sent` False so the drive column decodes the
                # (possibly tampered) frames from the bus.
                slot.fused = False
                command = ctx.adas_command
                openpilot._send_can(ctx.time, command)
                openpilot._previous_steering_deg = command.steering_angle_deg
                continue
            i = len(send)
            command = ctx.adas_command
            angle = command.steering_angle_deg
            angle_values[i] = angle
            torque_values[i] = angle
            accel_cmd_values[i] = command.accel
            brake_cmd_values[i] = command.brake
            counter = slot.openpilot.advance_can_counter()
            steering_control.counters[i] = counter
            acc_control.counters[i] = counter
            send.append(slot)
        if send:
            n = len(send)
            # Derived signals as ufuncs over the gathered commands; the
            # div-then-min-then-max sequence is the scalar
            # ``clamp(angle / 100.0, -1.0, 1.0)`` bit-for-bit.
            torque = torque_values[:n]
            np.divide(torque, 100.0, out=torque)
            np.minimum(torque, 1.0, out=torque)
            np.maximum(torque, -1.0, out=torque)
            np.copyto(
                brake_req_values[:n],
                np.where(brake_cmd_values[:n] > 0.0, 1.0, 0.0),
            )
            steering_payloads = steering_control.encode(n)
            acc_payloads = acc_control.encode(n)
            for i, slot in enumerate(send):
                slot.openpilot.send_can_payloads(
                    slot.ctx.time,
                    steering_payloads[i],
                    acc_payloads[i],
                    slot.ctx.adas_command.steering_angle_deg,
                )
                slot.sent = True

    def _drive_column(self, active: List[_Slot]) -> None:
        """Fused read-back of the commands just sent, shared reaction."""
        send = self._send_slots
        if send:
            steering_control = self._steering_control
            acc_control = self._acc_control
            steer_cmd = steering_control.physical("STEER_ANGLE_CMD")
            accel_cmd = acc_control.physical("ACCEL_COMMAND")
            brake_cmd = acc_control.physical("BRAKE_COMMAND")
            for i, slot in enumerate(send):
                command = slot.ctx.executed_command
                accel = float(accel_cmd[i])
                brake = float(brake_cmd[i])
                command.accel = accel if accel > 0.0 else 0.0
                command.brake = brake if brake > 0.0 else 0.0
                command.steering_angle_deg = float(steer_cmd[i])
        for slot in active:
            if slot.sent:
                slot.drive_stage.react(slot.ctx)
            else:
                slot.drive_run(slot.ctx)

    def _flush_traffic_row(self, slot: _Slot, row: int) -> None:
        """Ring → object for one dense row leaving the dense region."""
        if self._traffic_stale:
            return  # the per-run objects are already authoritative
        follower = slot.follower_vehicle
        if follower is not None:
            self.state.flush_follower_ring(row, follower)

    def _flush_traffic(self, active: List[_Slot]) -> None:
        """Ring → object for every dense row, before scalar actuates.

        Mirrors ``_detect_stale``: while the batch rides the dense path
        the follower perception history lives only in the ring; any
        cycle that runs a dense row's scalar actuate stage must first
        hand the history back to the follower object, and the next dense
        cycle re-seeds the rings from the objects.
        """
        # The scalar actuates are also about to advance the per-run ego
        # objects past the physics columns.
        self.state.ph_fresh[: self._n_dense] = False
        if self._traffic_stale:
            return
        for row in range(self._n_dense):
            follower = active[row].follower_vehicle
            if follower is not None:
                self.state.flush_follower_ring(row, follower)
        self._traffic_stale = True

    def _actuate_column(self, active: List[_Slot]) -> None:
        """Vectorised ego physics + traffic columns for the dense prefix.

        The shared kinematics rows are gathered in the same pass;
        TTC/headway derivation stays on demand via ``state.derive()``.
        """
        state = self.state
        n_dense = self._n_dense
        start = 0
        if n_dense >= DENSE_MIN_ACTIVE:
            if self._traffic_stale:
                for row in range(n_dense):
                    follower = active[row].follower_vehicle
                    if follower is not None:
                        state.seed_follower_ring(row, follower)
                self._traffic_stale = False
            ex_accel = state.ex_accel
            ex_brake = state.ex_brake
            ex_steer = state.ex_steer
            ph_time = state.ph_time
            ph_s = state.ph_s
            ph_d = state.ph_d
            ph_heading = state.ph_heading
            ph_speed = state.ph_speed
            ph_accel = state.ph_accel
            ph_steer = state.ph_steer
            ld_s = state.ld_s
            ld_speed = state.ld_speed
            fl_s = state.fl_s
            fl_speed = state.fl_speed
            for j in range(n_dense):
                slot = active[j]
                command = slot.ctx.executed_command
                slot.world._last_command = command
                ex_accel[j] = command.accel
                ex_brake[j] = command.brake
                ex_steer[j] = command.steering_angle_deg
            # Physics gather, but only for rows whose columns are not
            # fresh (newly admitted, or a scalar actuate touched their
            # objects since the last dense cycle): fresh rows' columns
            # are bit-equal to the objects they were scattered into.
            for j in np.flatnonzero(~state.ph_fresh[:n_dense]):
                slot = active[j]
                world = slot.world
                ego_state = world.ego.state
                ph_time[j] = world.time
                ph_s[j] = ego_state.s
                ph_d[j] = ego_state.d
                ph_heading[j] = ego_state.heading_error
                ph_speed[j] = ego_state.speed
                ph_accel[j] = ego_state.accel
                ph_steer[j] = ego_state.steering_wheel_deg
                lead = slot.lead_vehicle
                if lead is not None:
                    lead_state = lead.state
                    ld_s[j] = lead_state.s
                    ld_speed[j] = lead_state.speed
                follower = slot.follower_vehicle
                if follower is not None:
                    follower_state = follower.state
                    fl_s[j] = follower_state.s
                    fl_speed[j] = follower_state.speed
            step_ego_columns(state, n_dense)
            self._advance_lead_columns(active, n_dense)
            self._advance_follower_columns(n_dense)
            ld_s_o = ld_s[:n_dense].tolist()
            ld_speed_o = ld_speed[:n_dense].tolist()
            ld_accel_o = state.ld_accel[:n_dense].tolist()
            fl_s_o = fl_s[:n_dense].tolist()
            fl_speed_o = fl_speed[:n_dense].tolist()
            fl_accel_o = state.fl_accel[:n_dense].tolist()
            # Vectorised observation: the ego geometry, lead observation
            # and shared kinematics rows that `observe_into`/`gather_row`
            # would recompute per run come straight from the columns
            # (same arithmetic, elementwise).  Non-traffic-vec rows are
            # overwritten per-run in the scatter loop below.
            nd = n_dense
            time_next = state.w0[:nd]
            np.add(ph_time[:nd], DT, out=time_next)
            front = state.w1[:nd]
            np.add(ph_s[:nd], state.p_ego_half_len[:nd], out=front)
            rear = state.w2[:nd]
            np.subtract(ph_s[:nd], state.p_ego_half_len[:nd], out=rear)
            ledge = state.w3[:nd]
            np.add(ph_d[:nd], state.p_ego_half_width[:nd], out=ledge)
            redge = state.w4[:nd]
            np.subtract(ph_d[:nd], state.p_ego_half_width[:nd], out=redge)
            ld_gap = state.w5[:nd]
            np.subtract(ld_s[:nd], state.p_ld_half_len[:nd], out=ld_gap)
            np.subtract(ld_gap, front, out=ld_gap)
            ld_on = state.ld_on[:nd]
            np.copyto(state.time[:nd], time_next)
            np.copyto(state.ego_s[:nd], ph_s[:nd])
            np.copyto(state.ego_d[:nd], ph_d[:nd])
            np.copyto(state.ego_speed[:nd], ph_speed[:nd])
            np.copyto(state.lead_gap[:nd], np.where(ld_on, ld_gap, np.nan))
            np.copyto(state.lead_speed[:nd], np.where(ld_on, ld_speed[:nd], np.nan))
            np.copyto(state.left_edge[:nd], ledge)
            np.copyto(state.right_edge[:nd], redge)
            np.copyto(state.lead_d[:nd], np.where(ld_on, state.p_ld_d[:nd], 0.0))
            np.copyto(state.has_lead[:nd], ld_on)
            time_o = time_next.tolist()
            front_o = front.tolist()
            rear_o = rear.tolist()
            ledge_o = ledge.tolist()
            redge_o = redge.tolist()
            ld_gap_o = ld_gap.tolist()
            s_o = ph_s[:n_dense].tolist()
            d_o = ph_d[:n_dense].tolist()
            heading_o = ph_heading[:n_dense].tolist()
            speed_o = ph_speed[:n_dense].tolist()
            accel_o = ph_accel[:n_dense].tolist()
            steer_o = ph_steer[:n_dense].tolist()
            yaw_o = state.ph_yaw[:n_dense].tolist()
            for j in range(n_dense):
                slot = active[j]
                world = slot.world
                ego_state = world.ego.state
                ego_state.s = s_o[j]
                ego_state.d = d_o[j]
                ego_state.heading_error = heading_o[j]
                ego_state.speed = speed_o[j]
                ego_state.accel = accel_o[j]
                ego_state.steering_wheel_deg = steer_o[j]
                ego_state.yaw_rate = yaw_o[j]
                if slot.traffic_vec:
                    lead = slot.lead_vehicle
                    if lead is not None:
                        lead_state = lead.state
                        lead_state.s = ld_s_o[j]
                        lead_state.speed = ld_speed_o[j]
                        lead_state.accel = ld_accel_o[j]
                    follower = slot.follower_vehicle
                    if follower is not None:
                        follower_state = follower.state
                        follower_state.s = fl_s_o[j]
                        follower_state.speed = fl_speed_o[j]
                        follower_state.accel = fl_accel_o[j]
                    world.time = time_o[j]
                    world.step_count += 1
                    # The column-computed observation: same fields, same
                    # arithmetic as World.observe_into.  ctx.lead and
                    # ctx.lead_d never change for a traffic-vec row (the
                    # lead object is static and keeps its lane), and the
                    # leadless fields stay None from run preparation.
                    ctx = slot.ctx
                    ctx.end_time = time_o[j]
                    ctx.ego_s = s_o[j]
                    ctx.ego_d = d_o[j]
                    ctx.ego_speed = speed_o[j]
                    ctx.ego_heading_error = heading_o[j]
                    ctx.ego_steering_deg = steer_o[j]
                    ctx.ego_front_s = front_o[j]
                    ctx.ego_rear_s = rear_o[j]
                    ctx.ego_left_edge = ledge_o[j]
                    ctx.ego_right_edge = redge_o[j]
                    if lead is not None:
                        ctx.lead_gap = ld_gap_o[j]
                        ctx.lead_speed = ld_speed_o[j]
                else:
                    world.advance_traffic()
                    world.observe_into(slot.ctx)
                    state.gather_row(j, slot.ctx)
            np.copyto(ph_time[:n_dense], time_next)
            state.ph_fresh[:n_dense] = True
            start = n_dense
        else:
            self._flush_traffic(active)
        gather = state.gather_row
        for j in range(start, len(active)):
            slot = active[j]
            slot.actuate_run(slot.ctx)
            gather(j, slot.ctx)
        state.n = len(active)

    def _advance_lead_columns(self, active: List[_Slot], n: int) -> None:
        """Vectorised maneuver-profile step for the scenario leads.

        Phase boundaries are rare: rows whose clock reached the mirrored
        next-phase start refresh their target/rate columns through the
        lead object's own ``_active_phase`` (keeping its phase index
        advancing monotonically, so demotion at any cycle boundary stays
        exact), then the speed update runs as masked ufuncs.  The
        comparison/clamp idioms (`np.where` on the accel sign,
        ``maximum``/``minimum`` against the target) are bit-identical to
        the scalar ``ScriptedVehicle.step`` branches for finite values;
        NaN targets make every mask False, which *is* the scalar
        ``target is None`` branch.
        """
        state = self.state
        ld_on = state.ld_on[:n]
        if not ld_on.any():
            return
        time = state.ph_time[:n]
        refresh = ld_on & (time >= state.ld_next_start[:n])
        if refresh.any():
            for j in np.flatnonzero(refresh):
                lead = active[j].lead_vehicle
                lead._active_phase(float(time[j]))
                state.load_lead_phase(j, lead)
        target = state.ld_target[:n]
        rate = state.ld_rate[:n]
        speed = state.ld_speed[:n]
        accel = state.ld_accel[:n]
        w = state.w1[:n]
        np.copyto(accel, np.where(speed > target, -rate, 0.0))
        np.copyto(accel, np.where(speed < target, rate, accel))
        np.multiply(accel, DT, out=w)
        np.add(speed, w, out=w)
        np.copyto(speed, np.where(w > 0.0, w, 0.0))
        np.copyto(speed, np.where(accel < 0.0, np.maximum(speed, target), speed))
        np.copyto(speed, np.where(accel > 0.0, np.minimum(speed, target), speed))
        np.multiply(speed, DT, out=w)
        np.add(state.ld_s[:n], w, out=state.ld_s[:n])

    def _advance_follower_columns(self, n: int) -> None:
        """Vectorised follower update with an exact perception-delay ring.

        The scalar follower appends ``(time, gap, ego_speed)`` every step
        and pops entries whose age reached the reaction delay, reacting
        to the last popped sample (or the oldest buffered one).  The ring
        replays that decision for all rows at once; ages compare the
        *stored* timestamps — never step-index arithmetic, which drifts
        from the accumulated ``world.time`` floats at the pop boundary.
        """
        state = self.state
        rows = np.flatnonzero(state.fl_on[:n])
        if rows.size == 0:
            return
        fh_t = state.fh_t
        fh_gap = state.fh_gap
        fh_v = state.fh_v
        time = state.ph_time[rows]
        ego_speed = state.ph_speed[rows]
        fl_s = state.fl_s
        fl_speed = state.fl_speed
        speed = fl_speed[rows]
        # Append this step's sample: ego rear bumper minus follower front.
        gap = (state.ph_s[rows] - state.p_ego_half_len[rows]) - (
            fl_s[rows] + state.p_fl_half_len[rows]
        )
        tail = state.fh_tail[rows] + 1
        slot_idx = (tail - 1) % FOLLOWER_RING
        fh_t[rows, slot_idx] = time
        fh_gap[rows, slot_idx] = gap
        fh_v[rows, slot_idx] = ego_speed
        state.fh_tail[rows] = tail
        # Advance heads past every sample older than the delay.
        head0 = state.fh_head[rows]
        head = head0.copy()
        delay = state.p_fl_delay[rows]
        live = np.arange(rows.size)
        while live.size:
            head_idx = head[live] % FOLLOWER_RING
            aged = (time[live] - fh_t[rows[live], head_idx]) >= delay[live]
            popped = live[aged]
            if popped.size == 0:
                break
            head[popped] += 1
            live = popped[head[popped] < tail[popped]]
        state.fh_head[rows] = head
        # React to the last popped sample, or the oldest still buffered.
        perceived = np.where(head > head0, head - 1, head) % FOLLOWER_RING
        perceived_gap = fh_gap[rows, perceived]
        perceived_v = fh_v[rows, perceived]
        desired_gap = np.maximum(state.p_fl_headway[rows] * speed, 2.0)
        accel = 0.6 * (perceived_gap - desired_gap) - 0.9 * (speed - perceived_v)
        np.minimum(accel, 1.5, out=accel)
        np.maximum(accel, -state.p_fl_decel[rows], out=accel)
        new_speed = speed + accel * DT
        new_speed = np.where(new_speed > 0.0, new_speed, 0.0)
        state.fl_accel[rows] = accel
        fl_speed[rows] = new_speed
        fl_s[rows] += new_speed * DT

    def _detect_column(self, active: List[_Slot]) -> None:
        """Cross-run vectorised detector predicates, scalar dispatch."""
        n_dense = self._n_dense
        if n_dense < DENSE_MIN_ACTIVE:
            for slot in active:
                slot.detect_run(slot.ctx)
            # Scalar detects advanced the per-run latches without
            # updating the dense mirrors.
            self._detect_stale = True
            return
        state = self.state
        if self._detect_stale:
            sync = state.sync_detect_row
            for row in range(n_dense):
                sync(row, active[row])
            self._detect_stale = False
        self._detect_dense(active, n_dense)
        for j in range(n_dense, len(active)):
            slot = active[j]
            slot.detect_run(slot.ctx)

    def _detect_dense(self, active: List[_Slot], n_dense: int) -> None:
        """Dense detect: vectorised predicates decide which rows need
        their scalar lane/collision/hazard detector dispatched.

        The predicates are exact supersets of the scalar fire conditions
        (proved per-detector in the comments below), so a row that is not
        dispatched would have been a no-op scalar call: no new events, no
        latch changes, ``ctx.collision`` None / ``ctx.new_hazards`` empty
        by the ``det_had_*`` invariants.
        """
        state = self.state
        t = state.time[:n_dense]
        d = state.ego_d[:n_dense]
        ego_speed = state.ego_speed[:n_dense]
        gap = state.lead_gap[:n_dense]
        has_lead = state.has_lead[:n_dense]
        left_edge = state.left_edge[:n_dense]
        right_edge = state.right_edge[:n_dense]

        # Lane: dispatch on any latch edge (rising OR falling invasion
        # edge, or a first out-of-lane crossing).  No edge => check_values
        # would only re-assign identical latch values.
        left_inv = left_edge > state.p_left_lane_line[:n_dense]
        right_inv = right_edge < state.p_right_lane_line[:n_dense]
        centre_out = (d > state.p_lane_left_limit[:n_dense]) | (
            d < state.p_lane_right_limit[:n_dense]
        )
        lane_need = (
            (left_inv != state.det_inv_left[:n_dense])
            | (right_inv != state.det_inv_right[:n_dense])
            | (centre_out & ~state.det_out[:n_dense])
        )
        for j in np.flatnonzero(lane_need):
            slot = active[j]
            ctx = slot.ctx
            lane = slot.lane_monitor
            lane.check_values(ctx.end_time, ctx.ego_left_edge, ctx.ego_right_edge, ctx.ego_d)
            ctx.lane_invasions = len(lane.report.invasion_events)
            state.det_inv_left[j] = lane._invading_left
            state.det_inv_right[j] = lane._invading_right
            state.det_out[j] = lane.report.out_of_lane

        # Collision: the A1-lead test fires only with a non-positive gap;
        # the roadside tests are exact; runs with scripted traffic or a
        # follower (det_coll_scalar) always dispatch; det_had_coll keeps
        # dispatching while a collision is live so ctx.collision clears
        # the cycle the overlap ends (NaN gaps compare False, warning-free).
        coll_need = (
            state.det_coll_scalar[:n_dense]
            | state.det_had_coll[:n_dense]
            | (has_lead & (gap <= 0.0))
            | (right_edge <= state.p_right_guardrail[:n_dense])
            | (left_edge >= state.p_left_road_edge[:n_dense])
        )
        for j in np.flatnonzero(coll_need):
            slot = active[j]
            ctx = slot.ctx
            ctx.collision = slot.collision_detector.check_context(ctx)
            state.det_had_coll[j] = ctx.collision is not None

        # Hazards: the fire masks replicate HazardMonitor._evaluate's
        # conditions exactly (including the pending latches det_h1..h3),
        # so dispatch happens iff check_context would return new events.
        h1_fire = (
            state.det_h1[:n_dense]
            & has_lead
            & (np.abs(state.lead_d[:n_dense] - d) < 2.0)
            & (
                gap
                < np.maximum(
                    state.p_h1_min_gap[:n_dense],
                    state.p_h1_headway[:n_dense] * ego_speed,
                )
            )
        )
        h2_fire = (
            state.det_h2[:n_dense]
            & (t >= state.p_h2_warmup[:n_dense])
            & (~has_lead | (gap > state.p_h2_clear[:n_dense]))
            & (ego_speed < state.p_h2_floor[:n_dense])
        )
        h3_fire = state.det_h3[:n_dense] & (
            (d > state.p_h3_left_limit[:n_dense]) | (d < state.p_h3_right_limit[:n_dense])
        )
        fire = h1_fire | h2_fire | h3_fire
        for j in np.flatnonzero(fire):
            slot = active[j]
            ctx = slot.ctx
            ctx.new_hazards = slot.hazard_monitor.check_context(ctx)
            events = slot.hazard_monitor.events
            state.det_h1[j] = _H1 not in events
            state.det_h2[j] = _H2 not in events
            state.det_h3[j] = _H3 not in events
            state.det_had_haz[j] = bool(ctx.new_hazards)
        # Rows that reported hazards last cycle but fire nothing now get
        # the scalar path's fresh empty list (shared, read-only).
        clear = state.det_had_haz[:n_dense] & ~fire
        for j in np.flatnonzero(clear):
            active[j].ctx.new_hazards = _NO_NEW_HAZARDS
            state.det_had_haz[j] = False

    def _record_column(self, active: List[_Slot]) -> None:
        for slot in active:
            slot.record_run(slot.ctx)

    def _cycle_scalar(self, active: List[_Slot]) -> None:
        """One lockstep cycle through the per-run scalar stages.

        Used when the batch has drained below the vectorisation
        break-even; still stage-column order, still refreshing the shared
        kinematics, bit-identical to the fused cycle.
        """
        # The scalar actuate stages below read the follower objects'
        # perception history, which dense cycles keep ring-resident.
        self._flush_traffic(active)
        for slot in active:
            slot.sense_run(slot.ctx)
        for slot in active:
            slot.perceive_run(slot.ctx)
        for slot in active:
            slot.plan_run(slot.ctx)
        for slot in active:
            slot.inject_run(slot.ctx)
        for slot in active:
            slot.drive_run(slot.ctx)
        state = self.state
        gather = state.gather_row
        for i, slot in enumerate(active):
            slot.actuate_run(slot.ctx)
            gather(i, slot.ctx)
        state.n = len(active)
        for slot in active:
            slot.detect_run(slot.ctx)
        # The scalar detects advanced latches the dense mirrors did not see.
        self._detect_stale = True
        for slot in active:
            slot.record_run(slot.ctx)


def run_batched(
    tasks: Sequence[BatchTask],
    batch_size: int = DEFAULT_BATCH_SIZE,
    progress: Optional[ProgressCallback] = None,
    telemetry: Optional["Telemetry"] = None,
    recorder: Optional["FlightRecorderConfig"] = None,
) -> List[RunResult]:
    """Run ``(SimulationConfig, strategy)`` tasks through a lockstep batch."""
    return BatchRunner(
        batch_size=batch_size, telemetry=telemetry, recorder=recorder
    ).run_tasks(tasks, progress=progress)

"""Ordered stage pipeline driving one control cycle over a StepContext.

The pipeline is deliberately tiny: a stage is any object with a ``name``
attribute and a ``run(ctx)`` method, and :meth:`StepPipeline.run_cycle`
calls each stage's ``run`` in order.  The stage methods are bound once at
construction so the 100 Hz inner loop is a flat tuple walk.

Extension point
---------------

Future batched / vectorised execution replaces or wraps individual
stages: :meth:`StepPipeline.replaced` and :meth:`StepPipeline.inserted`
derive a new pipeline with a stage swapped out or a new one spliced in
(e.g. a telemetry stage after ``detect``), without touching the
simulation loop.
"""

from typing import Iterable, Iterator, Sequence, Tuple

from repro.kernel.context import StepContext


class PipelineStage:
    """Base class for pipeline stages (subclassing is optional).

    A stage only needs a ``name`` string and a ``run(ctx)`` method; this
    base exists for documentation, isinstance-friendly typing, and the
    default batched entry point: ``run_batch(contexts)`` takes a slice of
    contexts — one per lockstep run — and by default just loops ``run``
    over them.  Vectorised stages override it to amortise the per-run
    work across the whole slice (see :mod:`repro.kernel.batch`).
    """

    __slots__ = ()

    name: str = "stage"

    def run(self, ctx: StepContext) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def run_batch(self, contexts: Sequence[StepContext]) -> None:
        """Run the stage over a slice of lockstep contexts (default: loop)."""
        run = self.run
        for ctx in contexts:
            run(ctx)


class StepPipeline:
    """An ordered, immutable sequence of pipeline stages."""

    __slots__ = ("stages", "_runs")

    def __init__(self, stages: Iterable[PipelineStage]):
        self.stages: Tuple[PipelineStage, ...] = tuple(stages)
        if not self.stages:
            raise ValueError("a pipeline needs at least one stage")
        names = [stage.name for stage in self.stages]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate stage names: {names}")
        self._runs = tuple(stage.run for stage in self.stages)

    # -- hot path ---------------------------------------------------------

    def run_cycle(self, ctx: StepContext) -> None:
        """Run every stage once, in order, over ``ctx``."""
        for run in self._runs:
            run(ctx)

    def run_cycle_batch(self, contexts: Sequence[StepContext]) -> None:
        """Run one lockstep cycle over a slice of contexts, stage by stage.

        Every stage processes the whole slice before the next stage runs —
        the batched execution order of :mod:`repro.kernel.batch`.  Only
        valid when the contexts belong to *independent* runs (each stage
        object still binds its own run's world/ADAS; this method simply
        walks the stage columns of a homogeneous batch, so it is mainly
        useful for single-run pipelines and for tests — the batch executor
        builds its columns across many pipelines instead).
        """
        for stage in self.stages:
            stage.run_batch(contexts)

    # -- introspection / extension ---------------------------------------

    @property
    def stage_names(self) -> Tuple[str, ...]:
        return tuple(stage.name for stage in self.stages)

    def __iter__(self) -> Iterator[PipelineStage]:
        return iter(self.stages)

    def __len__(self) -> int:
        return len(self.stages)

    def stage(self, name: str) -> PipelineStage:
        """Return the stage called ``name`` (KeyError if absent)."""
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(f"no stage named {name!r} (have {list(self.stage_names)})")

    def replaced(self, name: str, stage: PipelineStage) -> "StepPipeline":
        """A new pipeline with the stage called ``name`` swapped for ``stage``."""
        self.stage(name)  # raise early when absent
        return StepPipeline(
            stage if existing.name == name else existing for existing in self.stages
        )

    def inserted(self, after: str, stage: PipelineStage) -> "StepPipeline":
        """A new pipeline with ``stage`` spliced in right after ``after``."""
        self.stage(after)  # raise early when absent
        stages: list = []
        for existing in self.stages:
            stages.append(existing)
            if existing.name == after:
                stages.append(stage)
        return StepPipeline(stages)

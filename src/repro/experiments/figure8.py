"""Figure 8: attack parameter space (start time × duration) for the
Acceleration attack type.

The paper samples random (start time, duration) pairs and marks which
simulations result in hazards, showing that (1) a *critical time window*
exists — attacks started outside it never cause a hazard regardless of
duration, (2) attacks need a minimum duration, and (3) the Context-Aware
points all fall inside the critical window and all result in hazards.
"""

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resilience.supervisor import SupervisionPolicy
    from repro.service.cache import RunCache
    from repro.telemetry import Telemetry

from repro.core.attack_types import AttackType
from repro.core.strategies import ContextAwareStrategy, RandomStartDurationStrategy
from repro.injection.engine import SimulationConfig
from repro.injection.executor import run_simulations


@dataclass(frozen=True)
class ParameterSpacePoint:
    """One attack simulation in the (start time, duration) plane."""

    start_time: float
    duration: float
    hazard: bool
    strategy: str


@dataclass
class Figure8Result:
    """All sampled points plus the Context-Aware reference points."""

    points: List[ParameterSpacePoint] = field(default_factory=list)
    scenario: str = "S1"
    initial_distance: float = 70.0
    attack_type: AttackType = AttackType.ACCELERATION

    def random_points(self) -> List[ParameterSpacePoint]:
        return [point for point in self.points if point.strategy != ContextAwareStrategy.name]

    def context_aware_points(self) -> List[ParameterSpacePoint]:
        return [point for point in self.points if point.strategy == ContextAwareStrategy.name]

    def critical_window(self) -> Optional[Tuple[float, float]]:
        """Start-time range outside of which no random attack caused a hazard."""
        hazardous = [p.start_time for p in self.random_points() if p.hazard]
        if not hazardous:
            return None
        return (min(hazardous), max(hazardous))

    def context_aware_hazard_rate(self) -> float:
        points = self.context_aware_points()
        if not points:
            return 0.0
        return sum(point.hazard for point in points) / len(points)

    def format(self) -> str:
        window = self.critical_window()
        window_text = "none (no random attack caused a hazard)"
        if window is not None:
            window_text = f"[{window[0]:.1f} s, {window[1]:.1f} s]"
        random_points = self.random_points()
        hazard_rate = (
            sum(point.hazard for point in random_points) / len(random_points)
            if random_points
            else 0.0
        )
        lines = [
            f"Figure 8 — parameter space for {self.attack_type.value} attacks "
            f"({self.scenario} @ {self.initial_distance:.0f} m)",
            f"random samples: {len(random_points)} (hazard rate {100 * hazard_rate:.0f}%)",
            f"critical start-time window: {window_text}",
            f"Context-Aware samples: {len(self.context_aware_points())} "
            f"(hazard rate {100 * self.context_aware_hazard_rate():.0f}%)",
        ]
        return "\n".join(lines)


def run_figure8(
    scenario: str = "S1",
    initial_distance: float = 70.0,
    attack_type: AttackType = AttackType.ACCELERATION,
    start_times: Optional[np.ndarray] = None,
    durations: Optional[np.ndarray] = None,
    context_aware_seeds: Optional[List[int]] = None,
    seed: int = 7,
    workers: Optional[int] = None,
    batch_size: Optional[int] = None,
    supervision: Optional["SupervisionPolicy"] = None,
    checkpoint_path: Optional[str] = None,
    telemetry: Optional["Telemetry"] = None,
    cache: Optional["RunCache"] = None,
) -> Figure8Result:
    """Sweep (start time, duration) for one attack type plus Context-Aware runs.

    Args:
        scenario / initial_distance / attack_type: The grid cell to sweep.
        start_times: Start times for the grid (default 5..35 s, step 3 s).
        durations: Durations for the grid (default 0.5..2.5 s, step 0.5 s).
        context_aware_seeds: Seeds for the Context-Aware reference runs.
        seed: Base seed for the sweep runs.
        workers: Worker processes for the sweep (> 1 fans the independent
            simulations out over the parallel executor; the points are
            identical to a sequential sweep).
        batch_size: Lockstep batch width per worker (> 1 steps that many
            sweep runs through the kernel together; identical points,
            higher per-core throughput).
        supervision: Fault-tolerance policy for the sweep
            (:class:`repro.resilience.SupervisionPolicy`).
        checkpoint_path: Crash-safe checkpoint file; an interrupted sweep
            rerun with the same path pays only for unfinished points.
        telemetry: Optional :class:`~repro.telemetry.Telemetry` handle
            recording the sweep's run metrics and sampled stage timings.
        cache: Optional shared run cache
            (:class:`repro.service.RunCache`) consulted per point before
            simulating; a warm rerun of the same sweep pays for nothing.
    """
    start_times = start_times if start_times is not None else np.arange(5.0, 36.0, 3.0)
    durations = durations if durations is not None else np.arange(0.5, 2.6, 0.5)
    context_aware_seeds = context_aware_seeds if context_aware_seeds is not None else [1, 2, 3, 4]

    result = Figure8Result(
        scenario=scenario, initial_distance=initial_distance, attack_type=attack_type
    )

    grid = []
    tasks = []
    for index, start in enumerate(np.atleast_1d(start_times)):
        for jndex, duration in enumerate(np.atleast_1d(durations)):
            strategy = RandomStartDurationStrategy(
                start_range=(float(start), float(start)),
                duration_range=(float(duration), float(duration)),
            )
            config = SimulationConfig(
                scenario=scenario,
                initial_distance=initial_distance,
                seed=seed + 1000 * index + jndex,
                attack_type=attack_type,
                driver_enabled=True,
            )
            grid.append((float(start), float(duration), strategy.name))
            tasks.append((config, strategy))
    for ca_seed in context_aware_seeds:
        config = SimulationConfig(
            scenario=scenario,
            initial_distance=initial_distance,
            seed=ca_seed,
            attack_type=attack_type,
            driver_enabled=True,
        )
        tasks.append((config, ContextAwareStrategy()))

    if supervision is not None or checkpoint_path is not None:
        from repro.resilience.supervisor import run_supervised_simulations

        outcome = run_supervised_simulations(
            tasks,
            policy=supervision,
            workers=workers,
            batch_size=batch_size,
            checkpoint_path=checkpoint_path,
            telemetry=telemetry,
            cache=cache,
        )
        # Index-aligned (None where a poison task was quarantined), so the
        # grid zip below stays correct even with holes.
        runs = outcome.results
    else:
        runs = run_simulations(
            tasks, workers=workers, batch_size=batch_size, telemetry=telemetry,
            cache=cache,
        )

    for (start, duration, strategy_name), run in zip(grid, runs):
        if run is None:
            continue
        result.points.append(
            ParameterSpacePoint(
                start_time=start,
                duration=duration,
                hazard=run.hazard_occurred,
                strategy=strategy_name,
            )
        )
    for run in runs[len(grid):]:
        if run is None or run.attack_activation_time is None:
            continue
        result.points.append(
            ParameterSpacePoint(
                start_time=run.attack_activation_time,
                duration=run.attack_duration or 0.0,
                hazard=run.hazard_occurred,
                strategy=ContextAwareStrategy.name,
            )
        )
    return result

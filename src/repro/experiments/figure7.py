"""Figure 7: ego-vehicle trajectory during an attack-free simulation.

The paper uses this figure to support Observation 1: OpenPilot's ALC does
not keep the vehicle centred and lane invasions occur even without
attacks.  The experiment runs one (or a few) attack-free simulations with
trajectory recording enabled and produces the lateral-position trace, the
Cartesian path, the lane boundaries, and the lane-invasion statistics.
"""

from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.metrics import RunResult
from repro.injection.engine import SimulationConfig, run_simulation
from repro.sim.road import Road, RoadSpec
from repro.sim.world import TrajectorySample


@dataclass
class Figure7Result:
    """Trajectory data for the attack-free run(s)."""

    runs: List[RunResult] = field(default_factory=list)
    road_spec: RoadSpec = field(default_factory=RoadSpec)

    @property
    def trajectory(self) -> List[TrajectorySample]:
        """Trajectory of the first run (the figure shows a single run)."""
        return self.runs[0].trajectory if self.runs else []

    @property
    def lane_invasions_per_second(self) -> float:
        if not self.runs:
            return 0.0
        return sum(run.lane_invasions_per_second for run in self.runs) / len(self.runs)

    @property
    def max_abs_lateral_offset(self) -> float:
        return max((abs(sample.d) for sample in self.trajectory), default=0.0)

    def cartesian_path(self, resolution: float = 2.0) -> List[tuple]:
        """The (x, y) path of the first run, for plotting."""
        road = Road(self.road_spec)
        return [
            road.to_cartesian(sample.s, sample.d, ds=resolution) for sample in self.trajectory
        ]

    def series(self) -> List[tuple]:
        """(time, lateral offset) series — the essence of Figure 7."""
        return [(sample.time, sample.d) for sample in self.trajectory]

    def format(self) -> str:
        lines = [
            "Figure 7 — attack-free trajectory",
            f"runs: {len(self.runs)}",
            f"lane invasions per second: {self.lane_invasions_per_second:.2f}",
            f"max |lateral offset|: {self.max_abs_lateral_offset:.2f} m "
            f"(lane half-width {self.road_spec.lane_width / 2:.2f} m)",
            f"hazards: {sum(bool(run.hazards) for run in self.runs)}",
            f"accidents: {sum(bool(run.accidents) for run in self.runs)}",
        ]
        return "\n".join(lines)


def run_figure7(
    scenario: str = "S1",
    initial_distance: float = 70.0,
    seeds: Optional[List[int]] = None,
) -> Figure7Result:
    """Run the attack-free trajectory experiment."""
    seeds = seeds if seeds is not None else [0]
    result = Figure7Result()
    for seed in seeds:
        config = SimulationConfig(
            scenario=scenario,
            initial_distance=initial_distance,
            seed=seed,
            attack_type=None,
            driver_enabled=True,
            record_trajectory=True,
        )
        result.runs.append(run_simulation(config))
    return result

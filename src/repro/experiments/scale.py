"""Experiment scaling: paper-sized grids vs laptop-sized grids.

The paper runs 1,440 simulations per strategy (14,400 for the
Random-ST+DUR baseline).  Each simulation in this reproduction takes
tens of milliseconds to a few hundred milliseconds, so the full grid is
feasible but slow for routine benchmarking.  :class:`ExperimentScale`
captures the grid dimensions; the default is a scaled-down grid that
preserves every axis (all scenarios, all attack types, several initial
distances and repetitions) while finishing quickly.

Scenario entries may be any catalog name (see
:data:`repro.scenarios.CATALOG`) or a fully built
:class:`~repro.sim.scenarios.Scenario`; :meth:`ExperimentScale.extended`
sweeps the whole catalog instead of only the paper's S1–S4.
"""

import os
from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro.sim.scenarios import Scenario


@dataclass(frozen=True)
class ExperimentScale:
    """Grid dimensions for the experiment harness."""

    scenarios: Tuple[Union[str, Scenario], ...] = ("S1", "S2", "S3", "S4")
    initial_distances: Tuple[Optional[float], ...] = (50.0, 70.0)
    repetitions: int = 2
    random_st_dur_repetitions: int = 4   # the paper uses 10x for this baseline
    master_seed: int = 2022

    @staticmethod
    def full() -> "ExperimentScale":
        """The paper's grid (1,440 runs per strategy, 14,400 for Random-ST+DUR)."""
        return ExperimentScale(
            scenarios=("S1", "S2", "S3", "S4"),
            initial_distances=(50.0, 70.0, 100.0),
            repetitions=20,
            random_st_dur_repetitions=200,
        )

    @staticmethod
    def smoke() -> "ExperimentScale":
        """A minimal grid used by the test suite."""
        return ExperimentScale(
            scenarios=("S1",),
            initial_distances=(70.0,),
            repetitions=1,
            random_st_dur_repetitions=1,
        )

    @staticmethod
    def extended(repetitions: int = 2) -> "ExperimentScale":
        """Every catalog scenario at its own initial gap (beyond the paper).

        The ``None`` distance keeps each scenario's catalog gap, which is
        part of the scenario design for multi-actor scripts (cut-ins,
        traffic queues) where the paper's 50/70/100 m sweep makes no sense.
        """
        from repro.scenarios.catalog import CATALOG

        return ExperimentScale(
            scenarios=CATALOG.names(),
            initial_distances=(None,),
            repetitions=repetitions,
            random_st_dur_repetitions=2 * repetitions,
        )

    @staticmethod
    def from_environment(default: Optional["ExperimentScale"] = None) -> "ExperimentScale":
        """Pick the scale from the ``REPRO_FULL_SCALE`` environment variable.

        Truthy values (``1``/``true``/``yes``, case-insensitive) select the
        paper-sized grid; anything else — including unset, empty, and
        unexpected values such as ``"2"`` or ``"banana"`` — falls back to
        ``default`` (or the laptop-sized grid when ``default`` is ``None``).
        """
        if os.environ.get("REPRO_FULL_SCALE", "").lower() in ("1", "true", "yes"):
            return ExperimentScale.full()
        return default or ExperimentScale()

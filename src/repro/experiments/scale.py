"""Experiment scaling: paper-sized grids vs laptop-sized grids.

The paper runs 1,440 simulations per strategy (14,400 for the
Random-ST+DUR baseline).  Each simulation in this reproduction takes
tens of milliseconds to a few hundred milliseconds, so the full grid is
feasible but slow for routine benchmarking.  :class:`ExperimentScale`
captures the grid dimensions; the default is a scaled-down grid that
preserves every axis (all scenarios, all attack types, several initial
distances and repetitions) while finishing quickly.
"""

import os
from dataclasses import dataclass
from typing import Sequence, Tuple


@dataclass(frozen=True)
class ExperimentScale:
    """Grid dimensions for the experiment harness."""

    scenarios: Tuple[str, ...] = ("S1", "S2", "S3", "S4")
    initial_distances: Tuple[float, ...] = (50.0, 70.0)
    repetitions: int = 2
    random_st_dur_repetitions: int = 4   # the paper uses 10x for this baseline
    master_seed: int = 2022

    @staticmethod
    def full() -> "ExperimentScale":
        """The paper's grid (1,440 runs per strategy, 14,400 for Random-ST+DUR)."""
        return ExperimentScale(
            scenarios=("S1", "S2", "S3", "S4"),
            initial_distances=(50.0, 70.0, 100.0),
            repetitions=20,
            random_st_dur_repetitions=200,
        )

    @staticmethod
    def smoke() -> "ExperimentScale":
        """A minimal grid used by the test suite."""
        return ExperimentScale(
            scenarios=("S1",),
            initial_distances=(70.0,),
            repetitions=1,
            random_st_dur_repetitions=1,
        )

    @staticmethod
    def from_environment(default: "ExperimentScale" = None) -> "ExperimentScale":
        """Pick the scale from the ``REPRO_FULL_SCALE`` environment variable."""
        if os.environ.get("REPRO_FULL_SCALE", "").lower() in ("1", "true", "yes"):
            return ExperimentScale.full()
        return default or ExperimentScale()

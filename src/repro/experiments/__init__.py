"""Experiment modules: one per table/figure of the paper's evaluation.

Each module exposes a ``run_*`` function that executes the (possibly
scaled-down) experiment grid and a ``format_*``/result dataclass that
renders the same rows or series the paper reports.  The benchmark harness
in ``benchmarks/`` calls these functions; ``EXPERIMENTS.md`` records the
paper-vs-measured comparison.

Grid sizes default to a scaled-down version of the paper's grid so that a
full regeneration finishes in minutes on a laptop; pass
``ExperimentScale.full()`` (or set the ``REPRO_FULL_SCALE`` environment
variable) to run the paper-sized grid.
"""

from repro.experiments.scale import ExperimentScale
from repro.experiments.table4 import Table4Result, run_table4
from repro.experiments.table5 import Table5Result, run_table5
from repro.experiments.figure7 import Figure7Result, run_figure7
from repro.experiments.figure8 import Figure8Result, run_figure8
from repro.experiments.search_attack import SearchAttackResult, run_search_attack

__all__ = [
    "ExperimentScale",
    "Table4Result",
    "run_table4",
    "Table5Result",
    "run_table5",
    "Figure7Result",
    "run_figure7",
    "Figure8Result",
    "run_figure8",
    "SearchAttackResult",
    "run_search_attack",
]

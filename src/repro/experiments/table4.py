"""Table IV: attack strategy comparison with an alert driver.

Reproduces the paper's comparison of the four attack strategies (plus the
attack-free baseline): per strategy, the fraction of runs with ADAS
alerts, with hazards, with accidents, with hazards-but-no-alerts, the
lane-invasion rate, and the mean/std Time-To-Hazard.
"""

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.analysis.metrics import RunResult
from repro.resilience.checkpoint import checkpoint_slug

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resilience.supervisor import SupervisionPolicy
    from repro.service.cache import RunCache
    from repro.telemetry import Telemetry
from repro.analysis.results import StrategySummary, format_table_iv, summarize_strategy
from repro.core.strategies import (
    ContextAwareStrategy,
    NoAttackStrategy,
    RandomDurationStrategy,
    RandomStartDurationStrategy,
    RandomStartStrategy,
)
from repro.experiments.scale import ExperimentScale
from repro.injection.campaign import ALL_ATTACK_TYPES, Campaign, CampaignConfig

#: The strategies compared in Table IV, in the paper's row order.
TABLE4_STRATEGIES = (
    NoAttackStrategy,
    RandomStartDurationStrategy,
    RandomStartStrategy,
    RandomDurationStrategy,
    ContextAwareStrategy,
)


@dataclass
class Table4Result:
    """Aggregated Table IV rows plus the raw run results per strategy."""

    summaries: List[StrategySummary] = field(default_factory=list)
    runs: Dict[str, List[RunResult]] = field(default_factory=dict)

    def summary_for(self, strategy_name: str) -> StrategySummary:
        for summary in self.summaries:
            if summary.strategy == strategy_name:
                return summary
        raise KeyError(f"no summary for strategy {strategy_name!r}")

    def format(self) -> str:
        return format_table_iv(self.summaries)


def _campaign_for(
    strategy_cls, scale: ExperimentScale, attack_types: Sequence
) -> CampaignConfig:
    repetitions = scale.repetitions
    if strategy_cls is RandomStartDurationStrategy:
        repetitions = scale.random_st_dur_repetitions
    if strategy_cls is NoAttackStrategy:
        attack_types = ()
    return CampaignConfig(
        strategy_name=strategy_cls.name,
        scenarios=scale.scenarios,
        initial_distances=scale.initial_distances,
        attack_types=tuple(attack_types),
        repetitions=repetitions,
        driver_enabled=True,
        master_seed=scale.master_seed,
    )


def run_table4(
    scale: Optional[ExperimentScale] = None,
    strategies: Sequence = TABLE4_STRATEGIES,
    attack_types: Sequence = ALL_ATTACK_TYPES,
    workers: Optional[int] = None,
    batch_size: Optional[int] = None,
    supervision: Optional["SupervisionPolicy"] = None,
    checkpoint_dir: Optional[str] = None,
    telemetry: Optional["Telemetry"] = None,
    cache: Optional["RunCache"] = None,
) -> Table4Result:
    """Run the Table IV experiment grid and aggregate it.

    Args:
        scale: Grid dimensions (defaults to the laptop-sized grid; use
            :meth:`ExperimentScale.full` for the paper-sized grid).
        strategies: Strategy classes to compare.
        attack_types: Attack types included in the grid.
        workers: Worker processes per campaign (> 1 enables the parallel
            executor; results are identical to a sequential run).
        batch_size: Lockstep batch width per worker (> 1 steps that many
            runs through the kernel together; identical results, higher
            per-core throughput).
        supervision: Fault-tolerance policy for each campaign
            (:class:`repro.resilience.SupervisionPolicy`).
        checkpoint_dir: Directory for per-strategy crash-safe
            checkpoints; an interrupted table run resumed with the same
            directory pays only for unfinished runs.
        telemetry: Optional :class:`~repro.telemetry.Telemetry` handle;
            all per-strategy campaigns record into the same registry.
        cache: Optional shared run cache
            (:class:`repro.service.RunCache`); a warm rerun of the same
            grid pays for zero simulations and returns bit-identical
            results.
    """
    scale = scale or ExperimentScale.from_environment()
    if checkpoint_dir is not None:
        os.makedirs(checkpoint_dir, exist_ok=True)
    result = Table4Result()
    for strategy_cls in strategies:
        config = _campaign_for(strategy_cls, scale, attack_types)
        campaign = Campaign(config, strategy_factory=strategy_cls)
        checkpoint_path = None
        if checkpoint_dir is not None:
            checkpoint_path = os.path.join(
                checkpoint_dir, f"table4_{checkpoint_slug(strategy_cls.name)}.json"
            )
        runs = campaign.run(
            workers=workers,
            batch_size=batch_size,
            supervision=supervision,
            checkpoint_path=checkpoint_path,
            telemetry=telemetry,
            cache=cache,
        )
        result.runs[strategy_cls.name] = runs
        result.summaries.append(summarize_strategy(strategy_cls.name, runs))
    return result

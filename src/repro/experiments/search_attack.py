"""Strategic vs exhaustive attack-parameter search (beyond the paper).

The paper's core claim is that *strategic* attack-parameter choice finds
safety-critical outcomes orders of magnitude more efficiently than
random or exhaustive injection.  This experiment measures that claim
directly on the reproduction: for each (scenario, attack type) case it
pits the adaptive optimizers of :mod:`repro.search` against an
exhaustive product-grid sweep of the same parameter space (the search
analogue of a Table IV campaign grid) and reports the number of
simulator evaluations each method needed to find its first
hazard-inducing attack point.

Every method runs under the same budget, the same per-point seeding and
the same objective, and each generation is evaluated as one dense
lockstep batch through the kernel, so the comparison measures search
*strategy*, not executor throughput.
"""

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from repro.core.attack_types import AttackType
from repro.search.driver import SearchConfig, SearchDriver, SearchResult
from repro.search.objectives import HazardObjective, Objective
from repro.search.optimizers import GridSearch, make_optimizer, optimizer_names
from repro.search.space import attack_search_space
from repro.sim.scenarios import Scenario

#: Default cases: the paper's S1–S4 plus the multi-actor catalog traffic
#: the ROADMAP asks to compare against.
DEFAULT_SCENARIOS: Tuple[str, ...] = ("S1", "S2", "cut-in-short-gap", "cut-out-reveal")

DEFAULT_ATTACK_TYPES: Tuple[AttackType, ...] = (
    AttackType.DECELERATION,
    AttackType.ACCELERATION,
    AttackType.STEERING_RIGHT,
)


@dataclass
class SearchAttackRow:
    """One (scenario, attack type, method) cell of the comparison."""

    scenario: str
    attack_type: str
    method: str
    evaluations_to_first_hazard: Optional[int]
    evaluations_used: int
    simulations_run: int
    best_score: Optional[float]

    def as_row(self) -> List[str]:
        found = (
            str(self.evaluations_to_first_hazard)
            if self.evaluations_to_first_hazard is not None
            else f">{self.evaluations_used}"
        )
        best = "-" if self.best_score is None else f"{self.best_score:.3f}"
        return [self.scenario, self.attack_type, self.method, found, best]


@dataclass
class SearchAttackResult:
    """All rows plus the raw :class:`SearchResult` records."""

    rows: List[SearchAttackRow] = field(default_factory=list)
    searches: List[SearchResult] = field(default_factory=list)

    def row_for(self, scenario: str, attack_type: str, method: str) -> SearchAttackRow:
        for row in self.rows:
            if (row.scenario, row.attack_type, row.method) == (scenario, attack_type, method):
                return row
        raise KeyError(f"no row for {(scenario, attack_type, method)!r}")

    def format(self) -> str:
        headers = ["Scenario", "Attack Type", "Method", "Evals to 1st Hazard", "Best Score"]
        rows = [headers] + [row.as_row() for row in self.rows]
        widths = [max(len(row[col]) for row in rows) for col in range(len(headers))]
        lines = []
        for index, row in enumerate(rows):
            lines.append(" | ".join(cell.ljust(width) for cell, width in zip(row, widths)))
            if index == 0:
                lines.append("-+-".join("-" * width for width in widths))
        return "\n".join(lines)


def run_search_attack(
    scenarios: Sequence[Union[str, Scenario]] = DEFAULT_SCENARIOS,
    attack_types: Sequence[AttackType] = DEFAULT_ATTACK_TYPES,
    methods: Optional[Sequence[str]] = None,
    objective: Optional[Objective] = None,
    budget: int = 48,
    repetitions: int = 1,
    generation_size: int = 6,
    grid_steps: int = 6,
    master_seed: int = 2022,
    batch_size: Optional[int] = 8,
    workers: Optional[int] = None,
    max_steps: int = 2500,
    stop_on_hazard: bool = True,
) -> SearchAttackResult:
    """Run the strategic-vs-exhaustive comparison.

    Args:
        scenarios: Scenario names (or built specs) to attack.
        attack_types: Attack types, one search case each.
        methods: Optimizer registry names; default: random, hill-climb
            and CEM plus the ``grid`` exhaustive baseline.
        objective: Search objective (default :class:`HazardObjective`).
        budget: Unique-point evaluation budget per (case, method).
        repetitions: Simulations per point.
        generation_size: Points per optimizer generation (one lockstep
            batch each).
        grid_steps: Grid levels per continuous dimension for the
            exhaustive baseline.
        master_seed: Root seed (shared by every method, so the adaptive
            methods and the baseline see identical per-point seeds).
        batch_size / workers: Evaluation executors (see
            :class:`~repro.search.driver.SearchConfig`).
        max_steps: Steps per simulation (2500 = 25 s covers every
            pinned hazard window at half the cost of a full run).
        stop_on_hazard: Stop each search at its first hazard (the
            quantity under comparison); pass ``False`` to always spend
            the full budget and compare best scores instead.
    """
    methods = list(methods) if methods is not None else optimizer_names()
    objective = objective or HazardObjective()
    result = SearchAttackResult()
    for scenario in scenarios:
        scenario_name = scenario if isinstance(scenario, str) else scenario.name
        for attack_type in attack_types:
            space = attack_search_space(
                scenario=scenario, attack_types=(attack_type,), max_steps=max_steps
            )
            for method in methods:
                def factory(s, method=method):
                    kwargs = {"steps": grid_steps} if method == GridSearch.name else {}
                    return make_optimizer(
                        method, s, seed=master_seed,
                        generation_size=generation_size, **kwargs,
                    )

                config = SearchConfig(
                    budget=budget,
                    repetitions=repetitions,
                    master_seed=master_seed,
                    batch_size=batch_size,
                    workers=workers,
                    stop_on_hazard=stop_on_hazard,
                )
                search = SearchDriver(space, objective, factory, config).run()
                result.searches.append(search)
                result.rows.append(
                    SearchAttackRow(
                        scenario=scenario_name,
                        attack_type=attack_type.value,
                        method=method,
                        evaluations_to_first_hazard=search.first_hazard_evaluation,
                        evaluations_used=search.evaluations_used,
                        simulations_run=search.simulations_run,
                        best_score=None if search.best is None else search.best.score,
                    )
                )
    return result

"""Table V: Context-Aware attacks with and without strategic value corruption.

For every attack type the experiment runs the Context-Aware strategy in
two modes — fixed (maximum) injection values and strategic value
corruption — each both with and without the simulated driver, so that the
driver's prevented hazards, newly introduced hazards and prevented
accidents can be computed from paired runs, as the paper's Table V does.
"""

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.analysis.metrics import RunResult
from repro.resilience.checkpoint import checkpoint_slug

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resilience.supervisor import SupervisionPolicy
    from repro.service.cache import RunCache
    from repro.telemetry import Telemetry
from repro.analysis.results import AttackTypeSummary, format_table_v, summarize_by_attack_type
from repro.core.corruption import CorruptionMode
from repro.core.strategies import ContextAwareStrategy
from repro.service.fingerprint import register_strategy_fingerprint
from repro.experiments.scale import ExperimentScale
from repro.injection.campaign import ALL_ATTACK_TYPES, Campaign, CampaignConfig


class ContextAwareFixedValueStrategy(ContextAwareStrategy):
    """Context-Aware activation/duration but fixed (maximum) injected values.

    This is the "No Strategic Value Corruption" column group of Table V:
    the start time and duration are still chosen from the safety context,
    but the injected values are OpenPilot's output maxima instead of the
    strategically bounded values.
    """

    name = "Context-Aware (fixed values)"
    corruption_mode = CorruptionMode.FIXED


# Same constructor surface as the parent, but a distinct class identity —
# the run cache must never serve a fixed-value run for a strategic one.
register_strategy_fingerprint(ContextAwareFixedValueStrategy, ("max_duration", "stop_on_hazard"))


@dataclass
class Table5Result:
    """Per-attack-type summaries for both corruption modes."""

    without_corruption: Dict[str, AttackTypeSummary] = field(default_factory=dict)
    with_corruption: Dict[str, AttackTypeSummary] = field(default_factory=dict)
    runs: Dict[str, List[RunResult]] = field(default_factory=dict)

    def format(self) -> str:
        return format_table_v(self.without_corruption, self.with_corruption)


def _run_mode(
    strategy_cls,
    scale: ExperimentScale,
    driver_enabled: bool,
    workers: Optional[int] = None,
    batch_size: Optional[int] = None,
    supervision: Optional["SupervisionPolicy"] = None,
    checkpoint_path: Optional[str] = None,
    telemetry: Optional["Telemetry"] = None,
    cache: Optional["RunCache"] = None,
) -> List[RunResult]:
    config = CampaignConfig(
        strategy_name=strategy_cls.name,
        scenarios=scale.scenarios,
        initial_distances=scale.initial_distances,
        attack_types=ALL_ATTACK_TYPES,
        repetitions=scale.repetitions,
        driver_enabled=driver_enabled,
        master_seed=scale.master_seed,
    )
    return Campaign(config, strategy_factory=strategy_cls).run(
        workers=workers,
        batch_size=batch_size,
        supervision=supervision,
        checkpoint_path=checkpoint_path,
        telemetry=telemetry,
        cache=cache,
    )


def run_table5(
    scale: Optional[ExperimentScale] = None,
    workers: Optional[int] = None,
    batch_size: Optional[int] = None,
    supervision: Optional["SupervisionPolicy"] = None,
    checkpoint_dir: Optional[str] = None,
    telemetry: Optional["Telemetry"] = None,
    cache: Optional["RunCache"] = None,
) -> Table5Result:
    """Run the Table V experiment and aggregate it.

    Args:
        scale: Grid dimensions.
        workers: Worker processes per campaign (> 1 enables the parallel
            executor; results are identical to a sequential run).
        batch_size: Lockstep batch width per worker (> 1 steps that many
            runs through the kernel together; identical results, higher
            per-core throughput).
        supervision: Fault-tolerance policy for each campaign.
        checkpoint_dir: Directory for per-mode crash-safe checkpoints;
            an interrupted table resumed with the same directory pays
            only for unfinished runs.
        telemetry: Optional :class:`~repro.telemetry.Telemetry` handle;
            all four campaigns record into the same registry.
        cache: Optional shared run cache
            (:class:`repro.service.RunCache`) consulted by all four
            campaigns before simulating.
    """
    scale = scale or ExperimentScale.from_environment()
    if checkpoint_dir is not None:
        os.makedirs(checkpoint_dir, exist_ok=True)
    result = Table5Result()

    def _checkpoint(key: str, driver: str) -> Optional[str]:
        if checkpoint_dir is None:
            return None
        return os.path.join(checkpoint_dir, f"table5_{checkpoint_slug(key)}_{driver}.json")

    for key, strategy_cls in (
        ("fixed", ContextAwareFixedValueStrategy),
        ("strategic", ContextAwareStrategy),
    ):
        with_driver = _run_mode(
            strategy_cls, scale, driver_enabled=True, workers=workers,
            batch_size=batch_size, supervision=supervision,
            checkpoint_path=_checkpoint(key, "driver"), telemetry=telemetry,
            cache=cache,
        )
        without_driver = _run_mode(
            strategy_cls, scale, driver_enabled=False, workers=workers,
            batch_size=batch_size, supervision=supervision,
            checkpoint_path=_checkpoint(key, "no-driver"), telemetry=telemetry,
            cache=cache,
        )
        result.runs[f"{key}/driver"] = with_driver
        result.runs[f"{key}/no-driver"] = without_driver
        summaries = summarize_by_attack_type(with_driver, without_driver)
        if key == "fixed":
            result.without_corruption = summaries
        else:
            result.with_corruption = summaries
    return result

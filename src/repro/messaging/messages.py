"""Typed message payloads for the Cereal-substitute services.

The field names deliberately follow OpenPilot's capnp schema
(``log.capnp``) where practical, so that code written against the paper's
description of the eavesdropping step ("subscribe to gpsLocationExternal,
modelV2 and radarState") reads the same here.

Payloads are created on the 100 Hz control path (several per step), so
the dataclasses use ``slots=True`` rather than ``frozen=True`` — the
frozen ``__init__`` costs ~4x a plain one.  Payloads are shared between
every subscriber of a service: treat them as immutable.
"""

from dataclasses import dataclass, field
from typing import Optional, Tuple


@dataclass(slots=True)
class GpsLocationExternal:
    """GPS fix published by the location daemon.

    The attack reads ``speed`` from this service to learn the ego
    vehicle's current speed (paper, Section III-C, Eavesdropping).
    """

    speed: float = 0.0          # m/s, ground speed
    bearing_deg: float = 0.0    # heading, degrees
    latitude: float = 0.0
    longitude: float = 0.0
    altitude: float = 0.0
    accuracy: float = 1.0       # metres, 1-sigma horizontal accuracy
    flags: int = 1              # 1 = fix valid


@dataclass(slots=True)
class LaneLine:
    """A single lane line estimate from the perception model."""

    offset: float               # lateral offset of the line from vehicle centre, m (+left)
    probability: float = 1.0    # detection confidence in [0, 1]


@dataclass(slots=True)
class ModelV2:
    """Perception model output (lane lines and lead estimate).

    The attack reads the lane line positions from this service to compute
    the distance to the left/right lane edges (``dleft``/``dright`` in the
    safety context table).
    """

    lane_lines: Tuple[LaneLine, ...] = ()
    lane_width: float = 3.7                     # m
    lateral_offset: float = 0.0                 # vehicle centre offset from lane centre, m (+left)
    heading_error: float = 0.0                  # rad, vehicle heading relative to lane
    curvature: float = 0.0                      # 1/m, estimated path/road curvature (+ = left)
    lead_probability: float = 0.0               # model's confidence there is a lead
    lead_distance: float = 0.0                  # m, model estimate (vision)
    frame_id: int = 0


@dataclass(slots=True)
class RadarLead:
    """A single radar track of a lead vehicle."""

    d_rel: float                # relative longitudinal distance, m
    v_rel: float                # relative speed (lead - ego), m/s
    v_lead: float               # absolute lead speed, m/s
    a_lead: float = 0.0         # lead acceleration, m/s^2
    y_rel: float = 0.0          # lateral offset of the lead, m
    status: bool = True         # track is valid


@dataclass(slots=True)
class RadarState:
    """Radar daemon output: the two closest lead tracks (as in OpenPilot)."""

    lead_one: Optional[RadarLead] = None
    lead_two: Optional[RadarLead] = None
    can_error: bool = False


@dataclass(slots=True)
class CarState:
    """Vehicle state decoded from the car's CAN bus."""

    v_ego: float = 0.0               # m/s
    a_ego: float = 0.0               # m/s^2
    steering_angle_deg: float = 0.0  # steering wheel angle, degrees
    steering_rate_deg: float = 0.0   # deg/s
    steering_torque: float = 0.0     # Nm applied by the driver
    gas: float = 0.0                 # normalised [0, 1]
    brake: float = 0.0               # normalised [0, 1]
    brake_pressed: bool = False
    gas_pressed: bool = False
    cruise_enabled: bool = True
    cruise_speed: float = 0.0        # m/s, set speed
    standstill: bool = False
    left_blinker: bool = False
    right_blinker: bool = False


@dataclass(slots=True)
class Actuators:
    """Actuator commands produced by the controllers."""

    accel: float = 0.0               # m/s^2, positive = gas
    brake: float = 0.0               # m/s^2, negative = braking demand
    steering_angle_deg: float = 0.0  # commanded steering wheel angle, degrees
    steer_torque: float = 0.0        # normalised [-1, 1]


@dataclass(slots=True)
class CarControl:
    """Control command sent towards the car (pre-CAN encoding)."""

    enabled: bool = True
    actuators: Actuators = field(default_factory=Actuators)
    cruise_cancel: bool = False
    hud_visual_alert: str = "none"
    hud_audible_alert: str = "none"


@dataclass(slots=True)
class ControlsState:
    """State of the controls daemon (alerts, engagement, planner targets)."""

    enabled: bool = True
    active: bool = True
    alert_text: str = ""
    alert_type: str = ""
    alert_status: str = "normal"     # normal | userPrompt | critical
    v_cruise: float = 0.0            # m/s
    v_target: float = 0.0            # m/s planner target
    a_target: float = 0.0            # m/s^2 planner target
    curvature: float = 0.0           # commanded path curvature, 1/m
    steer_saturated: bool = False
    fcw: bool = False


@dataclass(slots=True)
class AlertEvent:
    """A single alert raised by the ADAS alert manager."""

    name: str                        # e.g. "fcw", "steerSaturated"
    severity: str                    # "warning" | "critical"
    text: str = ""
    audible: bool = True


@dataclass(slots=True)
class DriverMonitoringState:
    """Driver monitoring daemon output."""

    face_detected: bool = True
    is_distracted: bool = False
    awareness: float = 1.0           # [0, 1], decays when distracted

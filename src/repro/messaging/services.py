"""Service registry for the messaging layer.

Mirrors OpenPilot's ``services.py``: each service has a name, a nominal
publication frequency, and the payload type it carries.  Publishing a
payload of the wrong type on a service is a programming error and raises
immediately, which keeps the bus strongly typed without a schema compiler.
"""

from dataclasses import dataclass
from typing import Dict

from repro.messaging import messages as m


@dataclass(frozen=True)
class ServiceSpec:
    """Declaration of a single pub/sub service (topic)."""

    name: str
    frequency_hz: float
    payload_type: type


SERVICE_LIST: Dict[str, ServiceSpec] = {
    spec.name: spec
    for spec in (
        ServiceSpec("gpsLocationExternal", 10.0, m.GpsLocationExternal),
        ServiceSpec("modelV2", 20.0, m.ModelV2),
        ServiceSpec("radarState", 20.0, m.RadarState),
        ServiceSpec("carState", 100.0, m.CarState),
        ServiceSpec("carControl", 100.0, m.CarControl),
        ServiceSpec("controlsState", 100.0, m.ControlsState),
        ServiceSpec("alertEvent", 100.0, m.AlertEvent),
        ServiceSpec("driverMonitoringState", 10.0, m.DriverMonitoringState),
    )
}


def service_for(name: str) -> ServiceSpec:
    """Return the :class:`ServiceSpec` for ``name``.

    Raises ``KeyError`` with a helpful message if the service is unknown.
    """
    try:
        return SERVICE_LIST[name]
    except KeyError:
        known = ", ".join(sorted(SERVICE_LIST))
        raise KeyError(f"unknown service {name!r}; known services: {known}") from None


def validate_payload(name: str, payload: object) -> None:
    """Raise ``TypeError`` if ``payload`` is not valid for service ``name``."""
    spec = service_for(name)
    if not isinstance(payload, spec.payload_type):
        raise TypeError(
            f"service {name!r} expects {spec.payload_type.__name__}, "
            f"got {type(payload).__name__}"
        )

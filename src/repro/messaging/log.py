"""Message log: records every event published on a bus.

Comma.ai collects user driving data (camera, CAN, GPS, logs); the
equivalent here is a structured in-memory log that records every event
crossing the bus.  The analysis layer uses it to count alerts, reconstruct
trajectories for Figure 7, and measure time-to-hazard.
"""

from collections import defaultdict
from typing import Dict, Iterator, List, Optional

from repro.messaging.bus import MessageBus
from repro.messaging.events import Event


class MessageLog:
    """Tap-based recorder of all bus traffic.

    Attach with :meth:`attach`; afterwards every published event is stored
    and can be queried by service name or iterated in publication order.
    """

    def __init__(self, services: Optional[List[str]] = None):
        self._filter = set(services) if services is not None else None
        self._events: List[Event] = []
        self._by_service: Dict[str, List[Event]] = defaultdict(list)

    def attach(self, bus: MessageBus) -> "MessageLog":
        """Register this log as a tap on ``bus`` and return ``self``."""
        bus.add_tap(self._record)
        return self

    def _record(self, event: Event) -> None:
        if self._filter is not None and event.service not in self._filter:
            return
        self._events.append(event)
        self._by_service[event.service].append(event)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def by_service(self, service: str) -> List[Event]:
        """All recorded events for ``service``, oldest first."""
        return list(self._by_service.get(service, ()))

    def count(self, service: str) -> int:
        """Number of recorded events for ``service``."""
        return len(self._by_service.get(service, ()))

    def last(self, service: str) -> Optional[Event]:
        """Most recent recorded event for ``service``, or ``None``."""
        events = self._by_service.get(service)
        return events[-1] if events else None

    def clear(self) -> None:
        """Discard all recorded events."""
        self._events.clear()
        self._by_service.clear()

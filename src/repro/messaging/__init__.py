"""Publish/subscribe messaging substrate (Cereal substitute).

OpenPilot's internal components communicate through Cereal, a typed
publish/subscribe messaging layer.  The paper's attack eavesdrops on three
services — ``gpsLocationExternal``, ``modelV2`` and ``radarState`` — to
infer the safety context.  This package provides an in-process equivalent:
a topic-based :class:`MessageBus`, the service registry with the events the
attack needs, typed message payloads, ``PubMaster``/``SubMaster`` helpers
mirroring Cereal's API, and a message log for offline analysis.
"""

from repro.messaging.bus import MessageBus, Subscription
from repro.messaging.events import Event
from repro.messaging.messages import (
    GpsLocationExternal,
    ModelV2,
    RadarState,
    CarState,
    CarControl,
    ControlsState,
    AlertEvent,
    DriverMonitoringState,
)
from repro.messaging.services import SERVICE_LIST, ServiceSpec, service_for
from repro.messaging.pubsub import PubMaster, SubMaster
from repro.messaging.log import MessageLog

__all__ = [
    "MessageBus",
    "Subscription",
    "Event",
    "GpsLocationExternal",
    "ModelV2",
    "RadarState",
    "CarState",
    "CarControl",
    "ControlsState",
    "AlertEvent",
    "DriverMonitoringState",
    "SERVICE_LIST",
    "ServiceSpec",
    "service_for",
    "PubMaster",
    "SubMaster",
    "MessageLog",
]

"""Event envelope for messages travelling on the bus.

Every published payload is wrapped in an :class:`Event` carrying the
service name, a monotonically increasing sequence number per service, and
the logical publication time.  This mirrors Cereal's message header
(``logMonoTime`` plus the capnp union member name).
"""

from dataclasses import dataclass
from typing import Any


@dataclass(slots=True)
class Event:
    """A single message instance on the bus.

    Events are shared between every subscriber of a service and must be
    treated as immutable by consumers.  (The class is not ``frozen=True``
    because the bus itself mutates envelopes: for services whose
    subscribers are all conflated it reuses one envelope per service,
    overwriting the fields on each publish — see the hot-path note in
    :mod:`repro.messaging.bus`.  Consumers therefore must not retain an
    event of such a service across a later publish and expect the old
    field values; retain the *values* instead.  Services with a
    non-conflated subscriber always receive fresh envelopes.)

    Attributes:
        service: Name of the service (topic), e.g. ``"radarState"``.
        seq: Per-service sequence number, starting at 0.
        mono_time: Logical publication time in seconds.
        data: The typed payload (one of the dataclasses in
            :mod:`repro.messaging.messages`).
        valid: Whether the publisher considered the data valid.  Sensors
            publish ``valid=False`` during their warm-up period.
    """

    service: str
    seq: int
    mono_time: float
    data: Any
    valid: bool = True

    def age(self, now: float) -> float:
        """Return the age of this event relative to ``now`` in seconds."""
        return now - self.mono_time

"""In-process publish/subscribe message bus.

The bus is the Cereal substitute: components publish typed events on named
services and any number of subscribers — including a malicious
eavesdropper — receive them.  Delivery is synchronous and in publication
order, which matches the single-process integration OpenPilot uses when
bridged to a simulator.

Subscriptions hold a bounded queue (``conflate=True`` keeps only the most
recent message, like Cereal's conflate option) so that slow consumers
cannot grow memory without bound.

Hot-path envelope reuse
-----------------------

``publish`` runs ~4–5 times per 10 ms control step, and most of those
services have either no subscriber at all or only *conflated*
subscribers (the attack's eavesdropper), whose contract is "the latest
message" — nothing observes the previous envelope once a newer one has
been published.  For those services the bus therefore keeps **one
reusable** :class:`Event` per service and overwrites its fields in place
on every publish, instead of allocating a fresh envelope per message
(the same slots-reuse pattern as the sensor payloads).  The moment a
service gains a non-conflated subscriber — whose queue *does* hold
older envelopes until drained — or any bus tap is registered (the
message log retains every event), publishes fall back to fresh
allocation for good.  Results are bit-identical either way (pinned by
the golden-run suite); only the envelope's identity differs.
"""

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Set

from repro.messaging.events import Event
from repro.messaging.services import SERVICE_LIST, validate_payload


class Subscription:
    """A subscriber's view of one service.

    Use :meth:`latest` for conflated access (most recent message) or
    :meth:`drain` to consume every queued message in order.
    """

    def __init__(self, service: str, conflate: bool = False, maxlen: int = 1024):
        self.service = service
        self.conflate = conflate
        self._queue: Deque[Event] = deque(maxlen=1 if conflate else maxlen)
        self._latest: Optional[Event] = None
        self.updated = False

    def _deliver(self, event: Event) -> None:
        self._queue.append(event)
        self._latest = event
        self.updated = True

    @property
    def latest(self) -> Optional[Event]:
        """The most recently delivered event, or ``None`` if none yet."""
        return self._latest

    def drain(self) -> List[Event]:
        """Return and clear all queued events, oldest first."""
        events = list(self._queue)
        self._queue.clear()
        self.updated = False
        return events

    def clear_updated(self) -> None:
        """Reset the ``updated`` flag (done by :class:`SubMaster.update`)."""
        self.updated = False


class MessageBus:
    """Topic-based synchronous publish/subscribe bus.

    The bus maintains per-service sequence numbers and an optional list of
    tap callbacks, which receive every event regardless of service — used
    by the message log and by tests.
    """

    def __init__(self):
        self._subscriptions: Dict[str, List[Subscription]] = {}
        self._seq: Dict[str, int] = {}
        self._taps: List[Callable[[Event], None]] = []
        self._mono_time = 0.0
        # Envelope reuse (see the module docstring): one reusable Event
        # per service whose subscribers are all conflated; services that
        # ever gain a non-conflated subscriber latch out of the pool.
        self._pooled: Dict[str, Event] = {}
        self._unpoolable: Set[str] = set()

    def set_time(self, mono_time: float) -> None:
        """Advance the bus clock; publications are stamped with this time."""
        if mono_time < self._mono_time:
            raise ValueError(
                f"bus clock must be monotonic: {mono_time} < {self._mono_time}"
            )
        self._mono_time = mono_time

    @property
    def mono_time(self) -> float:
        return self._mono_time

    def subscribe(self, service: str, conflate: bool = False) -> Subscription:
        """Create and register a new :class:`Subscription` for ``service``."""
        sub = Subscription(service, conflate=conflate)
        self._subscriptions.setdefault(service, []).append(sub)
        if not conflate:
            # Non-conflated queues hold older envelopes until drained, so
            # this service's events can never be reused again.
            self._unpoolable.add(service)
            self._pooled.pop(service, None)
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        """Remove a subscription; unknown subscriptions are ignored."""
        subs = self._subscriptions.get(sub.service, [])
        if sub in subs:
            subs.remove(sub)

    def add_tap(self, callback: Callable[[Event], None]) -> None:
        """Register a callback invoked for every published event."""
        self._taps.append(callback)

    def publish(self, service: str, payload: object, valid: bool = True) -> Event:
        """Publish ``payload`` on ``service`` and deliver it to subscribers."""
        # Inline fast path of validate_payload (publish runs ~5 times per
        # 10 ms control step); the slow path raises the detailed error.
        spec = SERVICE_LIST.get(service)
        if spec is None or not isinstance(payload, spec.payload_type):
            validate_payload(service, payload)
        seq = self._seq.get(service, 0)
        self._seq[service] = seq + 1
        if self._taps or service in self._unpoolable:
            event = Event(
                service=service,
                seq=seq,
                mono_time=self._mono_time,
                data=payload,
                valid=valid,
            )
        else:
            # All-conflated (or unsubscribed) service: overwrite the
            # pooled envelope in place instead of allocating.
            event = self._pooled.get(service)
            if event is None:
                event = Event(
                    service=service,
                    seq=seq,
                    mono_time=self._mono_time,
                    data=payload,
                    valid=valid,
                )
                self._pooled[service] = event
            else:
                event.seq = seq
                event.mono_time = self._mono_time
                event.data = payload
                event.valid = valid
        for sub in self._subscriptions.get(service, ()):
            sub._deliver(event)
        for tap in self._taps:
            tap(event)
        return event

    def publication_count(self, service: str) -> int:
        """Number of events published on ``service`` so far."""
        return self._seq.get(service, 0)

"""``PubMaster`` / ``SubMaster`` convenience wrappers.

These mirror Cereal's messaging helpers of the same names: a ``PubMaster``
publishes on a fixed set of services, and a ``SubMaster`` conflates the
latest message of each subscribed service and exposes them as a mapping.
The attack's eavesdropper is a plain ``SubMaster`` over
``gpsLocationExternal``, ``modelV2`` and ``radarState``.
"""

from typing import Dict, Iterable, Optional

from repro.messaging.bus import MessageBus, Subscription
from repro.messaging.events import Event
from repro.messaging.services import service_for


class PubMaster:
    """Publisher bound to a fixed set of services."""

    def __init__(self, bus: MessageBus, services: Iterable[str]):
        self._bus = bus
        self._services = set(services)
        for name in self._services:
            service_for(name)  # validate early

    def send(self, service: str, payload: object, valid: bool = True) -> Event:
        """Publish ``payload`` on ``service``; the service must be bound."""
        if service not in self._services:
            raise KeyError(f"PubMaster is not bound to service {service!r}")
        return self._bus.publish(service, payload, valid=valid)


class SubMaster:
    """Conflated subscriber over multiple services.

    After :meth:`update`, ``sm["radarState"]`` returns the latest payload
    (or ``None`` if nothing has been published yet), ``sm.updated[name]``
    says whether a new message arrived since the previous update, and
    ``sm.valid[name]`` mirrors the publisher's validity flag.
    """

    def __init__(self, bus: MessageBus, services: Iterable[str]):
        self._bus = bus
        self._subs: Dict[str, Subscription] = {
            name: bus.subscribe(name, conflate=True) for name in services
        }
        self.updated: Dict[str, bool] = {name: False for name in self._subs}
        self.valid: Dict[str, bool] = {name: False for name in self._subs}
        self.last_recv_time: Dict[str, float] = {name: float("-inf") for name in self._subs}

    @property
    def services(self) -> Iterable[str]:
        return self._subs.keys()

    def update(self) -> int:
        """Refresh the ``updated``/``valid`` bookkeeping from the bus.

        Returns the number of services that received a new message since
        the previous update, so hot callers (e.g. the eavesdropper) don't
        need a second pass over ``updated`` to count arrivals.
        """
        fresh = 0
        for name, sub in self._subs.items():
            updated = sub.updated
            self.updated[name] = updated
            event = sub.latest
            if event is not None:
                self.valid[name] = event.valid
                if updated:
                    self.last_recv_time[name] = event.mono_time
            if updated:
                fresh += 1
                sub.updated = False
        return fresh

    def __getitem__(self, service: str):
        event = self._subs[service].latest
        return None if event is None else event.data

    def event(self, service: str) -> Optional[Event]:
        """Return the latest raw :class:`Event` for ``service``."""
        return self._subs[service].latest

    def all_alive(self, services: Optional[Iterable[str]] = None) -> bool:
        """True when every listed service has received at least one message."""
        names = self._subs.keys() if services is None else services
        return all(self._subs[name].latest is not None for name in names)

    def close(self) -> None:
        """Unsubscribe from every service."""
        for sub in self._subs.values():
            self._bus.unsubscribe(sub)

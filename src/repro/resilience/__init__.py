"""Fault tolerance for campaign-shaped work.

A system whose subject is fault injection should itself tolerate faults.
This package supervises the execution layer so that a hung, crashed or
lying worker process no longer kills a campaign:

* :mod:`repro.resilience.supervisor` — supervised dispatch over the
  process pool: per-chunk wall-clock timeouts, bounded seeded
  retry/backoff, dead-worker detection with pool respawn, poison-task
  quarantine (bisection down to the offending task), and graceful
  degradation (parallel → sequential, batched → scalar) with
  bit-identical results;
* :mod:`repro.resilience.checkpoint` — crash-safe campaign
  checkpointing (atomic write-rename, fingerprint-validated), so an
  interrupted campaign resumes paying only for unfinished runs;
* :mod:`repro.resilience.chaos` — a deterministic fault-injection
  harness (seeded :class:`ChaosPolicy`) that makes workers crash, hang
  or corrupt their results at chosen task indices, used by the chaos
  suite to prove every recovery path;
* :mod:`repro.resilience.errors` — task fingerprints and the
  :class:`TaskExecutionError` that carries them across the pool
  boundary.
"""

from repro.resilience.chaos import ChaosError, ChaosPolicy, FaultSpec, chaos_policy
from repro.resilience.checkpoint import (
    CampaignCheckpoint,
    CheckpointMismatch,
    atomic_write_bytes,
    atomic_write_json,
    checkpoint_slug,
    fsync_directory,
)
from repro.resilience.errors import TaskExecutionError, cell_fingerprint, task_fingerprint
from repro.resilience.supervisor import (
    ExecutionReport,
    QuarantinedTask,
    QuarantineReport,
    SupervisedExecutor,
    SupervisedOutcome,
    SupervisionPolicy,
    run_supervised_campaign,
    run_supervised_simulations,
)

__all__ = [
    "atomic_write_bytes",
    "atomic_write_json",
    "fsync_directory",
    "CampaignCheckpoint",
    "cell_fingerprint",
    "chaos_policy",
    "ChaosError",
    "ChaosPolicy",
    "checkpoint_slug",
    "CheckpointMismatch",
    "ExecutionReport",
    "FaultSpec",
    "QuarantinedTask",
    "QuarantineReport",
    "run_supervised_campaign",
    "run_supervised_simulations",
    "SupervisedExecutor",
    "SupervisedOutcome",
    "SupervisionPolicy",
    "task_fingerprint",
    "TaskExecutionError",
]

"""Crash-safe campaign checkpointing.

Generalizes the :class:`repro.search.driver.SearchDriver` JSON
checkpoint/resume-by-replay idiom into a :class:`CampaignCheckpoint`
usable by any campaign-shaped task list: the checkpoint stores every
completed :class:`~repro.analysis.metrics.RunResult` keyed by task
index, validated against a fingerprint of the full task list, and is
written with the atomic write-rename pattern — a crash at any instant
leaves either the previous checkpoint or the new one on disk, never a
torn file.  Resuming an interrupted campaign therefore pays only for
the runs that had not finished.
"""

import hashlib
import json
import os
import re
import tempfile
from typing import Dict, Iterable, Optional

from repro.analysis.metrics import RunResult

#: Campaign checkpoint format version (bumped on incompatible changes).
CAMPAIGN_CHECKPOINT_VERSION = 1


class CheckpointMismatch(ValueError):
    """The checkpoint on disk does not belong to this task list."""


def fsync_directory(path: str) -> None:
    """fsync the directory containing ``path`` (no-op where unsupported).

    ``os.replace`` makes the rename itself atomic, but the *directory
    entry* pointing at the new file is only durable once the directory's
    own metadata reaches disk — without this a crash shortly after the
    rename can lose a "committed" checkpoint or cache entry entirely.
    Platforms that reject directory file descriptors (e.g. Windows) fall
    back to a no-op: the rename atomicity still holds there, only the
    durability-after-crash window is platform-defined.
    """
    directory = os.path.dirname(os.path.abspath(path))
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Write ``data`` via write-to-temp + fsync + atomic rename + dir fsync.

    ``os.replace`` is atomic on POSIX and Windows, so a reader (or a
    resumed process after a crash) only ever observes the previous file
    or the complete new one.  The temp file is uniquely named (safe for
    concurrent writers racing on the same target — last rename wins,
    never a torn file) and lives next to the target so the rename never
    crosses a filesystem boundary.  The containing directory is fsynced
    after the rename so the committed entry survives a crash.
    """
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.remove(tmp_path)
        except OSError:
            pass
        raise
    fsync_directory(path)


def atomic_write_json(path: str, payload: dict) -> None:
    """Write ``payload`` as JSON with the :func:`atomic_write_bytes` contract."""
    data = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    atomic_write_bytes(path, data.encode())


def fingerprint_strings(parts: Iterable[str]) -> str:
    """A stable hex digest over an ordered list of identity strings."""
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part.encode())
        digest.update(b"\n")
    return digest.hexdigest()


class CampaignCheckpoint:
    """Completed-run store for one campaign-shaped task list.

    Args:
        path: Checkpoint file location.
        fingerprint: Identity of the task list (see
            :func:`fingerprint_strings`); a checkpoint written for a
            different task list refuses to load.
        total: Total number of tasks in the campaign.
    """

    def __init__(self, path: str, fingerprint: str, total: int):
        self.path = path
        self.fingerprint = fingerprint
        self.total = total
        self.loaded = 0       # results restored from disk by load()
        self.recorded = 0     # fresh results recorded this process
        self._results: Dict[int, dict] = {}
        self._dirty = False

    # -- resume --------------------------------------------------------------

    def load(self) -> Dict[int, RunResult]:
        """Load completed runs from disk (empty dict when none exist).

        Raises :class:`CheckpointMismatch` when the file belongs to a
        different task list, format version, or has a corrupt payload —
        a half-written file cannot occur (atomic rename), but a stale
        one from an edited campaign must not silently poison a resume.
        """
        try:
            with open(self.path) as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            return {}
        except ValueError as error:
            raise CheckpointMismatch(
                f"checkpoint {self.path} is not valid JSON: {error}"
            ) from error
        if payload.get("version") != CAMPAIGN_CHECKPOINT_VERSION:
            raise CheckpointMismatch(
                f"checkpoint version {payload.get('version')!r} does not match "
                f"{CAMPAIGN_CHECKPOINT_VERSION}"
            )
        if payload.get("fingerprint") != self.fingerprint:
            raise CheckpointMismatch(
                "checkpoint fingerprint does not match this campaign "
                "(the task list changed since it was written)"
            )
        if payload.get("total") != self.total:
            raise CheckpointMismatch(
                f"checkpoint covers {payload.get('total')!r} tasks, campaign has "
                f"{self.total}"
            )
        results: Dict[int, RunResult] = {}
        for key, record in payload.get("results", {}).items():
            index = int(key)
            if not 0 <= index < self.total:
                raise CheckpointMismatch(f"checkpoint result index {index} out of range")
            self._results[index] = record
            results[index] = RunResult.from_dict(record)
        self.loaded = len(results)
        return results

    # -- recording -----------------------------------------------------------

    def record(self, index: int, result: RunResult) -> None:
        """Buffer one completed run (call :meth:`flush` to persist)."""
        if index not in self._results:
            self.recorded += 1
        self._results[index] = result.to_dict()
        self._dirty = True

    def flush(self) -> None:
        """Atomically persist the buffered state (no-op when clean)."""
        if not self._dirty:
            return
        atomic_write_json(
            self.path,
            {
                "version": CAMPAIGN_CHECKPOINT_VERSION,
                "fingerprint": self.fingerprint,
                "total": self.total,
                "results": {str(index): record for index, record in self._results.items()},
            },
        )
        self._dirty = False

    @property
    def completed(self) -> int:
        return len(self._results)

    def remove(self) -> None:
        """Delete the checkpoint file (e.g. after a campaign finishes)."""
        try:
            os.remove(self.path)
        except FileNotFoundError:
            pass


def checkpoint_slug(name: str) -> str:
    """A filesystem-safe file-name fragment for a strategy/experiment name."""
    return re.sub(r"[^A-Za-z0-9._-]+", "_", name).strip("_") or "unnamed"


def checkpoint_for_fingerprints(
    path: Optional[str], fingerprints: Iterable[str]
) -> Optional[CampaignCheckpoint]:
    """Build a checkpoint for a task list identified by its fingerprints."""
    if path is None:
        return None
    fingerprints = list(fingerprints)
    return CampaignCheckpoint(path, fingerprint_strings(fingerprints), len(fingerprints))

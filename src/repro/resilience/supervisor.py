"""Supervised fault-tolerant dispatch for campaign-shaped work.

:class:`SupervisedExecutor` runs a list of independent simulation tasks
(or campaign cells) with the same bit-identical-to-sequential contract
as :mod:`repro.injection.executor`, but survives the failure modes a
plain process pool does not:

* **worker exceptions** — the failing chunk is retried with seeded
  exponential backoff + jitter (deterministic per ``(task, attempt)``);
* **dead workers** — a broken pool is detected, killed and respawned;
  in-flight chunks are requeued;
* **hangs** — chunks exceeding the per-chunk wall-clock timeout cause a
  pool kill + respawn (a hung worker cannot be cancelled politely);
* **corrupted results** — a worker payload that is short, reordered or
  not made of :class:`~repro.analysis.metrics.RunResult` records counts
  as a chunk failure and is retried;
* **poison tasks** — a chunk that keeps failing is bisected down to the
  offending task, which lands in the :class:`QuarantineReport` instead
  of aborting the campaign (partial results are never discarded);
* **graceful degradation** — after ``max_pool_respawns`` pool failures
  the remaining work runs sequentially in-process, and a failed batched
  chunk retries scalar; both fallbacks preserve bit-identical results.

Fault attribution across a broken pool is coarse: every chunk whose
future reports the break is charged one attempt (the pool cannot say
which worker died for which chunk), so quarantine decisions should be
read together with ``pool_respawns``.

The module-level :func:`run_supervised_simulations` and
:func:`run_supervised_campaign` add crash-safe checkpointing on top
(:class:`~repro.resilience.checkpoint.CampaignCheckpoint`): completed
runs are recorded as chunks finish, and a resumed call pays only for
the tasks the checkpoint does not already hold.
"""

import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.analysis.metrics import RunResult
from repro.resilience.chaos import ChaosError, ChaosPolicy
from repro.resilience.checkpoint import CampaignCheckpoint, fingerprint_strings
from repro.resilience.errors import TaskExecutionError, cell_fingerprint, task_fingerprint
from repro.sim.units import DT
from repro.telemetry import MetricsRegistry, Telemetry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.injection.campaign import Campaign
    from repro.obs.journal import EventJournal
    from repro.obs.recorder import FlightRecorderConfig
    from repro.service.cache import RunCache

ProgressCallback = Callable[[int, int], None]
ResultCallback = Callable[[int, RunResult], None]

#: Seconds between supervision sweeps (future wait timeout).
_POLL_SECONDS = 0.05

# Worker-side state, installed by the pool initializer (or inherited by
# forked workers through the fork-time module state).
_FORK_CAMPAIGN: Optional["Campaign"] = None
_WORKER_CAMPAIGN: Optional["Campaign"] = None
_WORKER_BATCH_SIZE: Optional[int] = None
_WORKER_CHAOS: Optional[ChaosPolicy] = None
_WORKER_RECORDER: Optional["FlightRecorderConfig"] = None


@dataclass(frozen=True)
class SupervisionPolicy:
    """Knobs of the supervision layer.

    Attributes:
        chunk_timeout: Wall-clock seconds one chunk attempt may take
            before the pool is declared wedged (``None`` disables).
        max_chunk_attempts: Attempts per chunk before it is bisected
            (multi-task chunks) or quarantined (single-task chunks).
        backoff_base / backoff_factor: Exponential backoff between
            attempts: ``base * factor**(attempt-1)`` seconds.
        backoff_jitter: Jitter fraction added on top, drawn
            deterministically from ``(backoff_seed, task, attempt)``.
        backoff_seed: Seed of the jitter stream.
        max_pool_respawns: Pool kills/respawns tolerated before the
            remaining work degrades to sequential in-process execution.
        degrade_to_sequential: Whether that degradation is allowed
            (when ``False`` the supervisor keeps respawning pools).
    """

    chunk_timeout: Optional[float] = None
    max_chunk_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.5
    backoff_seed: int = 2022
    max_pool_respawns: int = 2
    degrade_to_sequential: bool = True

    def __post_init__(self):
        if self.max_chunk_attempts < 1:
            raise ValueError("max_chunk_attempts must be >= 1")
        if self.max_pool_respawns < 0:
            raise ValueError("max_pool_respawns must be >= 0")

    def backoff_delay(self, anchor: int, attempt: int) -> float:
        """Deterministic backoff before retry ``attempt`` of a chunk.

        ``anchor`` is the chunk's first task index, so two chunks never
        share a jitter stream and a replayed run backs off identically.
        """
        base = self.backoff_base * (self.backoff_factor ** max(0, attempt - 1))
        if self.backoff_jitter <= 0.0 or base <= 0.0:
            return max(0.0, base)
        unit = (
            np.random.SeedSequence([self.backoff_seed, anchor, attempt]).generate_state(1)[0]
            / 2**32
        )
        return base * (1.0 + self.backoff_jitter * float(unit))


@dataclass
class QuarantinedTask:
    """One task withheld from the campaign after exhausting its retries."""

    index: int           # absolute task index in the campaign
    fingerprint: str     # (scenario, attack, seed) identity
    error: str           # last failure, stringified
    attempts: int        # failed attempts the task accumulated


@dataclass
class QuarantineReport:
    """The poison tasks a supervised run recorded instead of aborting."""

    tasks: List[QuarantinedTask] = field(default_factory=list)

    def __bool__(self) -> bool:
        return bool(self.tasks)

    @property
    def indices(self) -> List[int]:
        return [task.index for task in self.tasks]

    def summary(self) -> str:
        if not self.tasks:
            return "no tasks quarantined"
        lines = [f"{len(self.tasks)} task(s) quarantined:"]
        for task in self.tasks:
            lines.append(
                f"  #{task.index} [{task.fingerprint}] after {task.attempts} "
                f"attempt(s): {task.error}"
            )
        return "\n".join(lines)


@dataclass
class ExecutionReport:
    """What the supervisor did to get the campaign through."""

    total: int = 0                     # tasks in the campaign
    completed: int = 0                 # fresh results produced this process
    loaded_from_checkpoint: int = 0    # results restored instead of re-run
    loaded_from_cache: int = 0         # results served by the shared run cache
    retries: int = 0                   # chunk attempts after the first
    bisections: int = 0                # failing chunks split to isolate a task
    timeouts: int = 0                  # chunk attempts killed by the timeout
    pool_respawns: int = 0             # pools killed and restarted
    scalar_fallbacks: int = 0          # batched chunks retried scalar
    backoff_seconds: float = 0.0       # retry backoff time the schedule paid
    degraded_to_sequential: bool = False
    quarantine: QuarantineReport = field(default_factory=QuarantineReport)

    @property
    def sims_paid(self) -> int:
        """Simulations actually paid for by this process (fresh results)."""
        return self.completed

    def summary(self) -> str:
        """Human-readable recovery trail (what the supervisor absorbed)."""
        lines = [
            f"supervised execution: {self.completed}/{self.total} fresh"
            + (
                f", {self.loaded_from_checkpoint} from checkpoint"
                if self.loaded_from_checkpoint
                else ""
            )
            + (f", {self.loaded_from_cache} from cache" if self.loaded_from_cache else ""),
            f"  retries={self.retries} bisections={self.bisections} "
            f"timeouts={self.timeouts} pool_respawns={self.pool_respawns} "
            f"scalar_fallbacks={self.scalar_fallbacks} "
            f"backoff={self.backoff_seconds:.2f}s"
            + (" degraded-to-sequential" if self.degraded_to_sequential else ""),
            f"  {self.quarantine.summary()}",
        ]
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.summary()

    def metrics_snapshot(self) -> dict:
        """The report as a mergeable metrics snapshot (``supervisor.*``).

        Merge it into a campaign-level registry with
        :meth:`~repro.telemetry.MetricsRegistry.merge` — the supervised
        entry points do this automatically when given a telemetry handle.
        """
        registry = MetricsRegistry()
        registry.counter("supervisor.tasks").inc(self.total)
        registry.counter("supervisor.completed").inc(self.completed)
        registry.counter("supervisor.loaded_from_checkpoint").inc(
            self.loaded_from_checkpoint
        )
        registry.counter("supervisor.loaded_from_cache").inc(self.loaded_from_cache)
        registry.counter("supervisor.retries").inc(self.retries)
        registry.counter("supervisor.bisections").inc(self.bisections)
        registry.counter("supervisor.timeouts").inc(self.timeouts)
        registry.counter("supervisor.pool_respawns").inc(self.pool_respawns)
        registry.counter("supervisor.scalar_fallbacks").inc(self.scalar_fallbacks)
        registry.counter("supervisor.quarantined").inc(len(self.quarantine.tasks))
        if self.degraded_to_sequential:
            registry.counter("supervisor.degraded_to_sequential").inc()
        registry.gauge("perf.supervisor.backoff_s").set(self.backoff_seconds)
        return registry.snapshot()


@dataclass
class SupervisedOutcome:
    """Results (aligned to the input task list) plus the supervision trail."""

    results: List[Optional[RunResult]]
    report: ExecutionReport

    @property
    def completed_results(self) -> List[RunResult]:
        """The completed runs, in task order (quarantined slots dropped)."""
        return [result for result in self.results if result is not None]

    def require_complete(self) -> List[RunResult]:
        """All results, raising when any task was quarantined."""
        if self.report.quarantine:
            raise TaskExecutionError(self.report.quarantine.summary())
        return self.completed_results


class _ChunkWork:
    """One chunk of tasks plus its retry bookkeeping."""

    __slots__ = ("entries", "attempts", "last_error")

    def __init__(self, entries: List[Tuple[int, Any]]):
        self.entries = entries          # [(absolute index, item), ...]
        self.attempts = 0
        self.last_error: Optional[BaseException] = None

    @property
    def anchor(self) -> int:
        return self.entries[0][0]


# -- worker side --------------------------------------------------------------


def _init_supervised_worker(
    campaign: Optional["Campaign"],
    batch_size: Optional[int],
    chaos: Optional[ChaosPolicy],
    recorder: Optional["FlightRecorderConfig"] = None,
) -> None:
    """Pool initializer: install campaign, batch width and chaos policy."""
    global _WORKER_CAMPAIGN, _WORKER_BATCH_SIZE, _WORKER_CHAOS, _WORKER_RECORDER
    _WORKER_CAMPAIGN = campaign if campaign is not None else _FORK_CAMPAIGN
    _WORKER_BATCH_SIZE = batch_size
    _WORKER_CHAOS = chaos
    _WORKER_RECORDER = recorder


def _run_supervised_chunk(payload):
    """Worker body: run one chunk, consulting the installed chaos policy.

    ``payload`` is ``(mode, use_batch, entries)`` with ``entries`` a list
    of ``(absolute task index, item)``; returns ``[(index, RunResult)]``
    in submission order (unless a chaos fault mangles it).
    """
    from repro.injection.engine import run_simulation

    mode, use_batch, entries = payload
    chaos = _WORKER_CHAOS
    recorder = _WORKER_RECORDER
    campaign = _WORKER_CAMPAIGN if _WORKER_CAMPAIGN is not None else _FORK_CAMPAIGN

    tasks = []
    for index, item in entries:
        if mode == "cells":
            if campaign is None:  # pragma: no cover - defensive
                raise RuntimeError("worker has no campaign installed")
            config, strategy = campaign.cell_task(item)
        else:
            config, strategy = item
        tasks.append((index, config, strategy))

    results: List[Tuple[int, RunResult]] = []
    if use_batch is not None and use_batch > 1 and len(tasks) > 1:
        from repro.kernel.batch import run_batched

        if chaos is not None:
            for index, config, strategy in tasks:
                chaos.before_task(index, task_fingerprint(config, strategy))
        try:
            outputs = run_batched(
                [(config, strategy) for _, config, strategy in tasks],
                batch_size=use_batch,
                recorder=recorder,
            )
        except Exception as error:
            raise TaskExecutionError.wrap_batch(
                [task_fingerprint(config, strategy) for _, config, strategy in tasks],
                error,
            ) from error
        results = [(index, output) for (index, _, _), output in zip(tasks, outputs)]
    else:
        for index, config, strategy in tasks:
            try:
                if chaos is not None:
                    chaos.before_task(index, task_fingerprint(config, strategy))
                results.append(
                    (index, run_simulation(config, strategy, recorder=recorder))
                )
            except TaskExecutionError:
                raise
            except Exception as error:
                raise TaskExecutionError.wrap(
                    task_fingerprint(config, strategy), error
                ) from error

    if chaos is not None:
        results = chaos.after_chunk(results)
    return results


# -- the supervisor -----------------------------------------------------------


class SupervisedExecutor:
    """Runs campaign-shaped work under the supervision policy.

    One executor instance runs one dispatch at a time (it keeps per-run
    state on ``self``); results are bit-identical to a plain sequential
    run of the same tasks whatever faults the supervisor had to absorb.
    """

    def __init__(
        self,
        policy: Optional[SupervisionPolicy] = None,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        batch_size: Optional[int] = None,
        chaos: Optional[ChaosPolicy] = None,
        telemetry: Optional[Telemetry] = None,
        recorder: Optional["FlightRecorderConfig"] = None,
        journal: Optional["EventJournal"] = None,
    ):
        self.policy = policy or SupervisionPolicy()
        self.workers = max(1, workers if workers is not None else 1)
        self.chunk_size = chunk_size
        self.batch_size = batch_size
        self.chaos = chaos
        # The flight-recorder config ships to the workers (picklable);
        # the journal stays parent-side: causal events (retry, respawn,
        # bisection, quarantine) are emitted from the supervision loop,
        # which is exactly where the facts are decided.
        self.recorder = recorder
        self.journal = journal
        # Telemetry on the supervised path is parent-side only: the
        # worker payload protocol doubles as the corruption-detection
        # surface (see _validate) and stays untouched.  Run metrics are
        # derived from the returned results (steps from the recorded
        # duration; per-run CAN frame counts are not available here), and
        # retry/bisection/quarantine markers land in the trace.
        self.telemetry = telemetry
        self._mode = "tasks"
        self._campaign: Optional["Campaign"] = None

    def _journal_emit(self, kind: str, level: str = "info", **fields) -> None:
        if self.journal is not None:
            self.journal.emit(kind, level=level, **fields)

    def resolve_chunk_size(self, total: int) -> int:
        """~4 chunks per worker unless pinned (same rule as the plain pool)."""
        if self.chunk_size is not None:
            return max(1, self.chunk_size)
        return max(1, -(-total // (self.workers * 4)))

    # -- public entry points -------------------------------------------------

    def run_tasks(
        self,
        tasks: Sequence[Tuple],
        indices: Optional[Sequence[int]] = None,
        progress: Optional[ProgressCallback] = None,
        on_result: Optional[ResultCallback] = None,
    ) -> SupervisedOutcome:
        """Run ``(SimulationConfig, strategy)`` pairs under supervision."""
        return self._run("tasks", None, list(tasks), indices, progress, on_result)

    def run_cells(
        self,
        campaign: "Campaign",
        cells: Sequence,
        indices: Optional[Sequence[int]] = None,
        progress: Optional[ProgressCallback] = None,
        on_result: Optional[ResultCallback] = None,
    ) -> SupervisedOutcome:
        """Run campaign cells under supervision (strategy factory stays
        campaign-side, so closure factories work on fork platforms)."""
        return self._run("cells", campaign, list(cells), indices, progress, on_result)

    # -- internals -----------------------------------------------------------

    def _fingerprint_item(self, item) -> str:
        try:
            if self._mode == "cells":
                assert self._campaign is not None
                return cell_fingerprint(item, self._campaign.config.strategy_name)
            config, strategy = item
            return task_fingerprint(config, strategy)
        except Exception:  # pragma: no cover - fingerprinting must not fail
            return repr(item)

    def _run(
        self,
        mode: str,
        campaign: Optional["Campaign"],
        items: List,
        indices: Optional[Sequence[int]],
        progress: Optional[ProgressCallback],
        on_result: Optional[ResultCallback],
    ) -> SupervisedOutcome:
        global _FORK_CAMPAIGN
        self._mode = mode
        self._campaign = campaign
        if indices is None:
            indices = list(range(len(items)))
        if len(indices) != len(items):
            raise ValueError("indices must align with the task list")
        report = ExecutionReport(total=len(items))
        results: Dict[int, RunResult] = {}
        if not items:
            return SupervisedOutcome(results=[], report=report)

        entries = list(zip(indices, items))
        chunk = self.resolve_chunk_size(len(entries))
        pending: Deque[_ChunkWork] = deque(
            _ChunkWork(entries[i: i + chunk]) for i in range(0, len(entries), chunk)
        )
        delayed: List[Tuple[float, _ChunkWork]] = []
        inflight: Dict[Any, _ChunkWork] = {}
        deadlines: Dict[Any, Optional[float]] = {}
        pool: Optional[ProcessPoolExecutor] = None
        use_pool = self.workers > 1 and len(entries) > 1
        respawns = 0

        try:
            while pending or delayed or inflight:
                now = time.monotonic()
                still_delayed = []
                for ready_at, work in delayed:
                    if ready_at <= now:
                        pending.append(work)
                    else:
                        still_delayed.append((ready_at, work))
                delayed = still_delayed

                if not use_pool:
                    if pending:
                        self._execute_inline(
                            pending.popleft(), pending, delayed, results, report,
                            progress, on_result,
                        )
                    elif delayed:
                        time.sleep(max(0.0, min(at for at, _ in delayed) - now))
                    continue

                if pool is None and pending:
                    pool = self._spawn_pool()
                while pending and pool is not None:
                    work = pending.popleft()
                    use_batch = (
                        self.batch_size
                        if (
                            self.batch_size is not None
                            and self.batch_size > 1
                            and len(work.entries) > 1
                            and work.attempts == 0
                        )
                        else None
                    )
                    future = pool.submit(
                        _run_supervised_chunk, (mode, use_batch, work.entries)
                    )
                    inflight[future] = work
                    deadlines[future] = (
                        None
                        if self.policy.chunk_timeout is None
                        else time.monotonic() + self.policy.chunk_timeout
                    )
                if not inflight:
                    if delayed:
                        time.sleep(
                            max(0.0, min(at for at, _ in delayed) - time.monotonic())
                        )
                    continue

                done, _ = wait(
                    set(inflight), timeout=_POLL_SECONDS, return_when=FIRST_COMPLETED
                )
                pool_broken = False
                for future in done:
                    work = inflight.pop(future)
                    deadlines.pop(future)
                    try:
                        payload = future.result()
                    except BrokenProcessPool as error:
                        pool_broken = True
                        self._fail_attempt(work, error, pending, delayed, report)
                    except (TaskExecutionError, ChaosError, Exception) as error:
                        self._fail_attempt(work, error, pending, delayed, report)
                    else:
                        problem = self._validate(work, payload)
                        if problem is None:
                            self._record(payload, results, report, progress, on_result)
                        else:
                            self._fail_attempt(
                                work, TaskExecutionError(problem), pending, delayed, report
                            )

                now = time.monotonic()
                timed_out = [
                    future
                    for future, deadline in deadlines.items()
                    if deadline is not None and now > deadline and future in inflight
                ]
                if timed_out:
                    report.timeouts += len(timed_out)
                    for future in timed_out:
                        work = inflight.pop(future)
                        deadlines.pop(future)
                        self._journal_emit(
                            "supervisor.timeout",
                            level="warning",
                            anchor=work.anchor,
                            tasks=len(work.entries),
                            timeout_s=self.policy.chunk_timeout,
                        )
                        self._fail_attempt(
                            work,
                            TimeoutError(
                                f"chunk exceeded the {self.policy.chunk_timeout}s "
                                "wall-clock timeout"
                            ),
                            pending,
                            delayed,
                            report,
                        )
                    pool_broken = True  # a hung worker can only be killed

                if pool_broken:
                    # Requeue the innocent in-flight chunks free of charge.
                    for work in inflight.values():
                        pending.append(work)
                    inflight.clear()
                    deadlines.clear()
                    if pool is not None:
                        _kill_pool(pool)
                        pool = None
                    respawns += 1
                    report.pool_respawns = respawns
                    self._journal_emit(
                        "supervisor.respawn", level="warning", respawns=respawns
                    )
                    if (
                        respawns > self.policy.max_pool_respawns
                        and self.policy.degrade_to_sequential
                    ):
                        use_pool = False
                        report.degraded_to_sequential = True
                        self._journal_emit(
                            "supervisor.degraded", level="warning", respawns=respawns
                        )
        finally:
            if pool is not None:
                _kill_pool(pool)
            _FORK_CAMPAIGN = None
            self._campaign = None

        ordered: List[Optional[RunResult]] = [results.get(index) for index in indices]
        return SupervisedOutcome(results=ordered, report=report)

    def _spawn_pool(self) -> ProcessPoolExecutor:
        global _FORK_CAMPAIGN
        from repro.injection.executor import _pool_context

        context, forked = _pool_context()
        campaign = self._campaign
        if self._mode == "cells" and forked:
            # Forked workers inherit the campaign object (works for any
            # strategy factory, including closures); non-fork platforms
            # pickle it through the initializer instead.
            _FORK_CAMPAIGN = campaign
            init_campaign = None
        else:
            init_campaign = campaign
        return ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=context,
            initializer=_init_supervised_worker,
            initargs=(init_campaign, self.batch_size, self.chaos, self.recorder),
        )

    def _resolve_task(self, item) -> Tuple:
        if self._mode == "cells":
            assert self._campaign is not None
            return self._campaign.cell_task(item)
        return item

    def _execute_inline(
        self,
        work: _ChunkWork,
        pending: Deque[_ChunkWork],
        delayed: List[Tuple[float, _ChunkWork]],
        results: Dict[int, RunResult],
        report: ExecutionReport,
        progress: Optional[ProgressCallback],
        on_result: Optional[ResultCallback],
    ) -> None:
        """Run one chunk in-process (sequential mode, or after degradation).

        The chaos policy deliberately does not apply here: it models
        *worker* faults, and the in-process path is the clean fallback.
        A chunk whose batched attempt failed retries scalar.
        """
        from repro.injection.engine import run_simulation

        tasks = [(index, *self._resolve_task(item)) for index, item in work.entries]
        use_batch = (
            self.batch_size
            if (
                self.batch_size is not None
                and self.batch_size > 1
                and len(tasks) > 1
                and work.attempts == 0
            )
            else None
        )
        try:
            if use_batch is not None:
                from repro.kernel.batch import run_batched

                try:
                    outputs = run_batched(
                        [(config, strategy) for _, config, strategy in tasks],
                        batch_size=use_batch,
                        recorder=self.recorder,
                    )
                except Exception as error:
                    raise TaskExecutionError.wrap_batch(
                        [task_fingerprint(config, strategy) for _, config, strategy in tasks],
                        error,
                    ) from error
                payload = [(index, output) for (index, _, _), output in zip(tasks, outputs)]
            else:
                payload = []
                for index, config, strategy in tasks:
                    try:
                        payload.append(
                            (
                                index,
                                run_simulation(config, strategy, recorder=self.recorder),
                            )
                        )
                    except Exception as error:
                        raise TaskExecutionError.wrap(
                            task_fingerprint(config, strategy), error
                        ) from error
        except TaskExecutionError as error:
            self._fail_attempt(work, error, pending, delayed, report)
            return
        self._record(payload, results, report, progress, on_result)

    def _validate(self, work: _ChunkWork, payload) -> Optional[str]:
        """Reject short, reordered or type-corrupted worker payloads."""
        expected = [index for index, _ in work.entries]
        if not isinstance(payload, list):
            return f"worker returned {type(payload).__name__}, expected a result list"
        got = [
            entry[0] if isinstance(entry, tuple) and len(entry) == 2 else None
            for entry in payload
        ]
        if got != expected:
            return (
                f"worker returned results for indices {got}, expected {expected} "
                "(short or corrupted payload)"
            )
        for index, result in payload:
            if not isinstance(result, RunResult):
                return (
                    f"task {index} returned {type(result).__name__}, "
                    "not a RunResult (corrupted payload)"
                )
        return None

    def _record(
        self,
        payload: List[Tuple[int, RunResult]],
        results: Dict[int, RunResult],
        report: ExecutionReport,
        progress: Optional[ProgressCallback],
        on_result: Optional[ResultCallback],
    ) -> None:
        telemetry = self.telemetry
        for index, result in payload:
            results[index] = result
            report.completed += 1
            if telemetry is not None:
                telemetry.record_run(result, steps=int(round(result.duration / DT)))
            if on_result is not None:
                on_result(index, result)
        if progress is not None:
            progress(report.completed, report.total)

    def _fail_attempt(
        self,
        work: _ChunkWork,
        error: BaseException,
        pending: Deque[_ChunkWork],
        delayed: List[Tuple[float, _ChunkWork]],
        report: ExecutionReport,
    ) -> None:
        work.attempts += 1
        work.last_error = error
        tracer = self.telemetry.tracer if self.telemetry is not None else None
        if work.attempts >= self.policy.max_chunk_attempts:
            if len(work.entries) > 1:
                # Bisect: isolate the poison task instead of retrying the
                # whole chunk forever. Each half starts with a clean slate.
                report.bisections += 1
                mid = len(work.entries) // 2
                pending.append(_ChunkWork(work.entries[:mid]))
                pending.append(_ChunkWork(work.entries[mid:]))
                if tracer is not None:
                    tracer.instant(
                        "supervisor.bisect", anchor=work.anchor, tasks=len(work.entries)
                    )
                self._journal_emit(
                    "supervisor.bisect",
                    anchor=work.anchor,
                    tasks=len(work.entries),
                    error=str(error),
                )
            else:
                index, item = work.entries[0]
                fingerprint = getattr(error, "fingerprint", "") or self._fingerprint_item(
                    item
                )
                report.quarantine.tasks.append(
                    QuarantinedTask(
                        index=index,
                        fingerprint=fingerprint,
                        error=str(error),
                        attempts=work.attempts,
                    )
                )
                if tracer is not None:
                    tracer.instant("supervisor.quarantine", task=index)
                self._journal_emit(
                    "supervisor.quarantine",
                    level="warning",
                    task=index,
                    fingerprint=fingerprint,
                    attempt=work.attempts,
                    error=str(error),
                )
            return
        report.retries += 1
        if (
            self.batch_size is not None
            and self.batch_size > 1
            and len(work.entries) > 1
            and work.attempts == 1
        ):
            report.scalar_fallbacks += 1  # the retry below runs scalar
        delay = self.policy.backoff_delay(work.anchor, work.attempts)
        report.backoff_seconds += delay
        if tracer is not None:
            tracer.instant(
                "supervisor.retry",
                anchor=work.anchor,
                attempt=work.attempts,
                backoff_s=round(delay, 4),
            )
        self._journal_emit(
            "supervisor.retry",
            anchor=work.anchor,
            attempt=work.attempts,
            backoff_s=round(delay, 4),
            error=str(error),
        )
        delayed.append((time.monotonic() + delay, work))


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down even when its workers are hung or dead."""
    for process in list(getattr(pool, "_processes", {}).values()):
        try:
            process.terminate()
        except Exception:  # pragma: no cover - already-reaped process
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - defensive
        pass


# -- checkpointed entry points ------------------------------------------------


def _run_with_checkpoint(
    mode: str,
    campaign: Optional["Campaign"],
    items: List,
    fingerprints: List[str],
    identity_extras: List[str],
    policy: Optional[SupervisionPolicy],
    workers: Optional[int],
    chunk_size: Optional[int],
    batch_size: Optional[int],
    progress: Optional[ProgressCallback],
    chaos: Optional[ChaosPolicy],
    checkpoint_path: Optional[str],
    on_result: Optional[ResultCallback],
    telemetry: Optional[Telemetry] = None,
    cache: Optional["RunCache"] = None,
    recorder: Optional["FlightRecorderConfig"] = None,
    journal: Optional["EventJournal"] = None,
) -> SupervisedOutcome:
    total = len(items)
    checkpoint: Optional[CampaignCheckpoint] = None
    done: Dict[int, RunResult] = {}
    if checkpoint_path is not None:
        checkpoint = CampaignCheckpoint(
            checkpoint_path,
            fingerprint_strings(fingerprints + identity_extras),
            total,
        )
        done = checkpoint.load()
        if journal is not None:
            journal.emit(
                "checkpoint.loaded", path=checkpoint_path, restored=len(done), total=total
            )
    loaded_from_checkpoint = len(done)

    def task_of(index: int) -> Tuple:
        if mode == "cells":
            assert campaign is not None
            return campaign.cell_task(items[index])
        return items[index]

    # The shared run cache answers before any simulation is paid for:
    # every task not already restored by the checkpoint is looked up by
    # content fingerprint, and the hits join `done` exactly as checkpoint
    # results do.  Fresh results are stored back from the result hook, so
    # resume-by-replay degenerates to cache lookup on the next run.
    cache_keys: Dict[int, str] = {}
    loaded_from_cache = 0
    if cache is not None:
        for index in range(total):
            if index in done:
                continue
            config, strategy = task_of(index)
            key = cache.fingerprint(config, strategy)
            if key is None:
                continue
            cache_keys[index] = key
            hit = cache.get(key)
            if hit is not None:
                done[index] = hit
                loaded_from_cache += 1

    pending_indices = [index for index in range(total) if index not in done]
    executor = SupervisedExecutor(
        policy=policy,
        workers=workers,
        chunk_size=chunk_size,
        batch_size=batch_size,
        chaos=chaos,
        telemetry=telemetry,
        recorder=recorder,
        journal=journal,
    )
    loaded = len(done)
    flush_every = executor.resolve_chunk_size(max(1, len(pending_indices)))
    fresh_since_flush = 0

    def hook(index: int, result: RunResult) -> None:
        nonlocal fresh_since_flush
        if checkpoint is not None:
            checkpoint.record(index, result)
            fresh_since_flush += 1
            if fresh_since_flush >= flush_every:
                checkpoint.flush()
                fresh_since_flush = 0
                if journal is not None:
                    journal.emit("checkpoint.flush", path=checkpoint_path)
        if cache is not None and index in cache_keys:
            cache.put(cache_keys[index], result)
        if on_result is not None:
            on_result(index, result)

    wrapped_progress: Optional[ProgressCallback] = None
    if progress is not None:
        wrapped_progress = lambda completed, _total: progress(loaded + completed, total)  # noqa: E731

    if mode == "cells":
        assert campaign is not None
        outcome = executor.run_cells(
            campaign,
            [items[index] for index in pending_indices],
            indices=pending_indices,
            progress=wrapped_progress,
            on_result=hook,
        )
    else:
        outcome = executor.run_tasks(
            [items[index] for index in pending_indices],
            indices=pending_indices,
            progress=wrapped_progress,
            on_result=hook,
        )
    if checkpoint is not None:
        checkpoint.flush()
        if journal is not None:
            journal.emit("checkpoint.flush", path=checkpoint_path, final=True)

    merged: List[Optional[RunResult]] = [None] * total
    for index, result in done.items():
        merged[index] = result
    for position, index in enumerate(pending_indices):
        merged[index] = outcome.results[position]
    outcome.results = merged
    outcome.report.total = total
    outcome.report.loaded_from_checkpoint = loaded_from_checkpoint
    outcome.report.loaded_from_cache = loaded_from_cache
    if telemetry is not None:
        # Merged last so loaded_from_checkpoint is final; run metrics were
        # recorded per result as chunks completed.
        telemetry.merge(outcome.report.metrics_snapshot())
    return outcome


def run_supervised_simulations(
    tasks: Sequence[Tuple],
    policy: Optional[SupervisionPolicy] = None,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    batch_size: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
    chaos: Optional[ChaosPolicy] = None,
    checkpoint_path: Optional[str] = None,
    on_result: Optional[ResultCallback] = None,
    telemetry: Optional[Telemetry] = None,
    cache: Optional["RunCache"] = None,
    recorder: Optional["FlightRecorderConfig"] = None,
    journal: Optional["EventJournal"] = None,
) -> SupervisedOutcome:
    """Supervised (and optionally checkpointed) :func:`run_simulations`.

    Results are bit-identical to a plain sequential run; with
    ``checkpoint_path`` a resumed call pays only for unfinished tasks,
    and with ``cache`` (:class:`repro.service.RunCache`) only for tasks
    the shared content-addressed cache cannot serve.  ``recorder`` arms
    the per-run flight recorder in the workers; ``journal`` receives the
    supervision and checkpoint events (parent-side only).
    """
    tasks = list(tasks)
    fingerprints = [task_fingerprint(config, strategy) for config, strategy in tasks]
    return _run_with_checkpoint(
        "tasks", None, tasks, fingerprints, [], policy, workers, chunk_size,
        batch_size, progress, chaos, checkpoint_path, on_result, telemetry,
        cache, recorder, journal,
    )


def run_supervised_campaign(
    campaign: "Campaign",
    policy: Optional[SupervisionPolicy] = None,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    batch_size: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
    chaos: Optional[ChaosPolicy] = None,
    checkpoint_path: Optional[str] = None,
    on_result: Optional[ResultCallback] = None,
    telemetry: Optional[Telemetry] = None,
    cache: Optional["RunCache"] = None,
    recorder: Optional["FlightRecorderConfig"] = None,
    journal: Optional["EventJournal"] = None,
) -> SupervisedOutcome:
    """Supervised (and optionally checkpointed) :meth:`Campaign.run`.

    The checkpoint fingerprint covers every cell's ``(scenario, attack,
    seed, distance, repetition)`` plus the campaign's strategy name,
    driver flag and step budget, so a stale checkpoint from an edited
    campaign refuses to load.
    """
    config = campaign.config
    cells = list(campaign.cells())
    fingerprints = [cell_fingerprint(cell, config.strategy_name) for cell in cells]
    identity = [
        f"strategy={config.strategy_name}",
        f"driver={config.driver_enabled}",
        f"max_steps={config.max_steps}",
    ]
    return _run_with_checkpoint(
        "cells", campaign, cells, fingerprints, identity, policy, workers,
        chunk_size, batch_size, progress, chaos, checkpoint_path, on_result,
        telemetry, cache, recorder, journal,
    )

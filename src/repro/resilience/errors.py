"""Task fingerprints and the error type that carries them.

A worker-side failure used to surface as a bare pool traceback with no
indication of *which* simulation died.  Every execution path now tags
failures with the task's ``(scenario, attack, seed)`` fingerprint so an
operator (or the quarantine report) can re-run the offending simulation
in isolation.
"""

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.core.strategies import AttackStrategy
    from repro.injection.campaign import CampaignCell
    from repro.injection.engine import SimulationConfig


def _scenario_name(scenario) -> str:
    if isinstance(scenario, str):
        return scenario
    return getattr(scenario, "name", repr(scenario))


def task_fingerprint(
    config: "SimulationConfig", strategy: Optional["AttackStrategy"] = None
) -> str:
    """The ``(scenario, attack, seed)`` identity of one simulation task."""
    attack = config.attack_type.value if config.attack_type is not None else "none"
    strategy_name = getattr(strategy, "name", "none") if strategy is not None else "none"
    return (
        f"scenario={_scenario_name(config.scenario)} attack={attack} "
        f"seed={config.seed} distance={config.initial_distance} "
        f"strategy={strategy_name}"
    )


def cell_fingerprint(cell: "CampaignCell", strategy_name: str = "") -> str:
    """The fingerprint of one campaign grid cell (no strategy build needed)."""
    attack = cell.attack_type.value if cell.attack_type is not None else "none"
    suffix = f" strategy={strategy_name}" if strategy_name else ""
    return (
        f"scenario={_scenario_name(cell.scenario)} attack={attack} "
        f"seed={cell.seed} distance={cell.initial_distance} "
        f"repetition={cell.repetition}{suffix}"
    )


class TaskExecutionError(RuntimeError):
    """A simulation task failed; the message names the task's fingerprint.

    Raised in pool workers and unpickled in the parent, so it must
    round-trip through ``__reduce__`` with its ``fingerprint`` and
    ``fingerprints`` attributes intact.
    """

    def __init__(self, message: str, fingerprint: str = "", fingerprints=()):
        super().__init__(message)
        self.fingerprint = fingerprint
        #: Every candidate fingerprint of a batched failure (empty for
        #: single-task failures).  Quarantine reports and the journal
        #: cross-reference these, so none may be dropped.
        self.fingerprints = tuple(fingerprints)

    def __reduce__(self):
        return (TaskExecutionError, (self.args[0], self.fingerprint, self.fingerprints))

    @classmethod
    def wrap(cls, fingerprint: str, error: BaseException) -> "TaskExecutionError":
        return cls(
            f"simulation task [{fingerprint}] failed: "
            f"{type(error).__name__}: {error}",
            fingerprint,
        )

    @classmethod
    def wrap_batch(cls, fingerprints, error: BaseException) -> "TaskExecutionError":
        """A batched chunk failed; name every candidate task.

        The full fingerprint list stays in the message (and in
        :attr:`fingerprints`): quarantined tasks are exactly what the
        event journal must cross-reference, so truncating to "the first
        few" would hide the one that matters.
        """
        fingerprints = list(fingerprints)
        shown = "; ".join(fingerprints)
        return cls(
            f"batched chunk of {len(fingerprints)} tasks failed "
            f"[{shown}]: {type(error).__name__}: {error}",
            fingerprints[0] if fingerprints else "",
            fingerprints,
        )

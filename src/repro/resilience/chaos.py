"""Deterministic fault injection for the execution layer itself.

A :class:`ChaosPolicy` is installed in pool workers (through the worker
initializer, next to the campaign and batch width) and fires
:class:`FaultSpec` faults at chosen absolute task indices:

* ``error`` — raise :class:`ChaosError` before running the task;
* ``crash`` — hard-kill the worker process (``os._exit``), which the
  parent observes as a broken pool;
* ``hang`` — sleep past the supervisor's chunk timeout;
* ``corrupt`` — replace the task's result with a non-``RunResult``
  payload after the chunk ran;
* ``drop`` — drop the task's result from the chunk payload (a short
  read).

Determinism across retries and pool respawns: every fault fires at most
``times`` times, accounted in a filesystem ledger (``state_dir``) with
atomically created marker files — worker processes die mid-fault, so
in-memory counters cannot work.  A supervised run with a chaos policy of
finite ``times`` therefore converges to the exact same results as an
undisturbed run: the fault fires, the supervisor recovers, the retry is
clean.  ``times=-1`` (always fire) exercises the quarantine path.
"""

import os
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

#: Fault kinds that fire before the task runs.
_BEFORE_KINDS = ("error", "crash", "hang")
#: Fault kinds that mangle the chunk's result payload.
_AFTER_KINDS = ("corrupt", "drop")
VALID_KINDS = _BEFORE_KINDS + _AFTER_KINDS


class ChaosError(RuntimeError):
    """The injected worker-side failure (picklable across the pool)."""


@dataclass(frozen=True)
class FaultSpec:
    """One fault: what to inject, where, and how many times.

    Attributes:
        kind: One of ``error | crash | hang | corrupt | drop``.
        task_index: Absolute task index the fault fires on.
        times: Firings before the fault goes quiet (``-1`` = always).
        hang_seconds: Sleep length for ``hang`` faults.
    """

    kind: str
    task_index: int
    times: int = 1
    hang_seconds: float = 30.0

    def __post_init__(self):
        if self.kind not in VALID_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} (use one of {VALID_KINDS})")


@dataclass(frozen=True)
class ChaosPolicy:
    """A seeded, replayable set of faults with a filesystem firing ledger."""

    faults: Tuple[FaultSpec, ...]
    state_dir: str
    seed: int = 0

    def __post_init__(self):
        os.makedirs(self.state_dir, exist_ok=True)

    # -- ledger --------------------------------------------------------------

    def _claim(self, fault: FaultSpec) -> bool:
        """Atomically claim one firing of ``fault`` (False when spent)."""
        if fault.times < 0:
            return True
        for firing in range(fault.times):
            marker = os.path.join(
                self.state_dir, f"fault-{fault.task_index}-{fault.kind}-{firing}"
            )
            try:
                handle = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            os.close(handle)
            return True
        return False

    def firings(self, fault: FaultSpec) -> int:
        """How many times ``fault`` has fired so far (ledger inspection)."""
        if fault.times < 0:
            raise ValueError("always-on faults keep no ledger")
        count = 0
        for firing in range(fault.times):
            marker = os.path.join(
                self.state_dir, f"fault-{fault.task_index}-{fault.kind}-{firing}"
            )
            if os.path.exists(marker):
                count += 1
        return count

    # -- worker-side hooks ---------------------------------------------------

    def before_task(self, index: int, fingerprint: str = "") -> None:
        """Fire any pre-run fault registered for task ``index``."""
        for fault in self.faults:
            if fault.task_index != index or fault.kind not in _BEFORE_KINDS:
                continue
            if not self._claim(fault):
                continue
            if fault.kind == "crash":
                os._exit(86)
            if fault.kind == "hang":
                time.sleep(fault.hang_seconds)
                continue  # after the nap the task proceeds normally
            raise ChaosError(
                f"chaos: injected error at task {index}"
                + (f" [{fingerprint}]" if fingerprint else "")
            )

    def after_chunk(self, results: List[Tuple[int, object]]) -> List[Tuple[int, object]]:
        """Mangle a chunk's ``(index, result)`` payload per the result faults."""
        mangled = list(results)
        for fault in self.faults:
            if fault.kind not in _AFTER_KINDS:
                continue
            for position, (index, _result) in enumerate(mangled):
                if index != fault.task_index:
                    continue
                if not self._claim(fault):
                    break
                if fault.kind == "corrupt":
                    mangled[position] = (index, "chaos: corrupted payload")
                else:  # drop
                    mangled = mangled[:position] + mangled[position + 1:]
                break
        return mangled


def chaos_policy(
    faults: List[FaultSpec], state_dir: str, seed: int = 0
) -> Optional[ChaosPolicy]:
    """Convenience builder (``None`` for an empty fault list)."""
    if not faults:
        return None
    return ChaosPolicy(faults=tuple(faults), state_dir=state_dir, seed=seed)

"""Parametric scenario families and the seeded scenario sampler.

A :class:`ScenarioFamily` is a scenario *template* with named uniform
parameter ranges; :class:`ScenarioSampler` draws concrete
:class:`~repro.sim.scenarios.ScenarioSpec` variants from the families.

Determinism contract (mirrors the campaign executor's): variant ``index``
under ``master_seed`` is produced from ``SeedSequence([master_seed,
index])`` alone — never from sampler call order — so any variant can be
regenerated in isolation and a sampled campaign run through the parallel
executor is bit-identical to its sequential run.
"""

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Mapping, Sequence, Tuple

import numpy as np

from repro.sim.actors import IdmParams, LaneChange, ManeuverPhase
from repro.sim.road import RoadSpec
from repro.sim.scenarios import ActorSpec, ScenarioSpec
from repro.sim.units import mph_to_ms


@dataclass(frozen=True)
class ParamRange:
    """A closed uniform sampling range for one scenario parameter."""

    low: float
    high: float

    def __post_init__(self):
        if self.high < self.low:
            raise ValueError("ParamRange requires high >= low")


#: A family builder maps (variant name, drawn parameters) to a spec.
FamilyBuilder = Callable[[str, Dict[str, float]], ScenarioSpec]


@dataclass(frozen=True)
class ScenarioFamily:
    """A parametric scenario template.

    Attributes:
        name: Family name; variants are named ``"<name>[<index>]"``.
        description: Human-readable summary of the family.
        parameters: Parameter name -> uniform range.  Parameters are drawn
            in sorted-name order, so the mapping's insertion order does not
            affect determinism.
        build: Builder producing the concrete spec from drawn parameters.
    """

    name: str
    description: str
    parameters: Mapping[str, ParamRange]
    build: FamilyBuilder


_EGO_SPEED = mph_to_ms(60.0)


def _build_hard_brake(name: str, p: Dict[str, float]) -> ScenarioSpec:
    return ScenarioSpec(
        name=name,
        description=(
            f"Lead brakes from {p['lead_mph']:.0f} mph to {p['floor_mph']:.0f} mph "
            f"at {p['rate']:.1f} m/s^2 (gap {p['gap']:.0f} m)"
        ),
        ego_initial_speed=_EGO_SPEED,
        cruise_speed=_EGO_SPEED,
        lead_initial_speed=mph_to_ms(p["lead_mph"]),
        lead_profile=(
            ManeuverPhase(
                start_time=p["start"],
                target_speed=mph_to_ms(p["floor_mph"]),
                rate=p["rate"],
            ),
        ),
        initial_distance=p["gap"],
        family="hard-brake",
        tags=("sampled", "longitudinal"),
    )


def _build_cut_in(name: str, p: Dict[str, float]) -> ScenarioSpec:
    return ScenarioSpec(
        name=name,
        description=(
            f"Cut-in {p['merge_gap']:.0f} m ahead at t={p['merge_time']:.1f} s "
            f"({p['speed_delta_mph']:+.1f} mph vs ego)"
        ),
        ego_initial_speed=_EGO_SPEED,
        cruise_speed=_EGO_SPEED,
        # The scenario lead pulls away at 70 mph, so the merging vehicle
        # (<= 66 mph) never reaches it; scripted actors do not interact.
        lead_initial_speed=mph_to_ms(70.0),
        initial_distance=120.0,
        actors=(
            ActorSpec(
                kind="cut_in",
                initial_gap=p["merge_gap"],
                initial_speed=mph_to_ms(60.0 + p["speed_delta_mph"]),
                lane=1,
                lane_change=LaneChange(
                    start_time=p["merge_time"],
                    target_d=0.0,
                    duration=p["duration"],
                ),
            ),
        ),
        family="cut-in",
        tags=("sampled", "multi-actor", "cut-in"),
    )


def _build_curve(name: str, p: Dict[str, float]) -> ScenarioSpec:
    return ScenarioSpec(
        name=name,
        description=(
            f"Lead cruises at {p['lead_mph']:.0f} mph; curve k={p['curvature']:.4f}/m "
            f"from s={p['curve_start']:.0f} m"
        ),
        ego_initial_speed=_EGO_SPEED,
        cruise_speed=_EGO_SPEED,
        lead_initial_speed=mph_to_ms(p["lead_mph"]),
        road=RoadSpec(
            curve_start=p["curve_start"],
            curve_transition=p["transition"],
            curvature_max=p["curvature"],
        ),
        family="curved-road",
        tags=("sampled", "road-geometry"),
    )


def _build_oscillating(name: str, p: Dict[str, float]) -> ScenarioSpec:
    low = mph_to_ms(p["base_mph"] - p["amplitude_mph"])
    high = mph_to_ms(p["base_mph"] + p["amplitude_mph"])
    period = p["period"]
    phases = tuple(
        ManeuverPhase(
            start_time=6.0 + cycle * period,
            target_speed=low if cycle % 2 == 0 else high,
            rate=p["rate"],
        )
        for cycle in range(4)
    )
    return ScenarioSpec(
        name=name,
        description=(
            f"Lead oscillates {p['base_mph']:.0f}±{p['amplitude_mph']:.0f} mph "
            f"every {period:.1f} s"
        ),
        ego_initial_speed=_EGO_SPEED,
        cruise_speed=_EGO_SPEED,
        lead_initial_speed=mph_to_ms(p["base_mph"]),
        lead_profile=phases,
        initial_distance=85.0,
        family="oscillating-lead",
        tags=("sampled", "longitudinal"),
    )


def _wave_phases(p: Dict[str, float]) -> Tuple[ManeuverPhase, ...]:
    """Alternating crawl/recover phases of a stop-and-go wave.

    The *duty cycle* is the fraction of each period the lead spends
    heading for (or holding) the crawl speed; the remainder of the
    period recovers towards the base speed.  Three full periods start at
    ``start`` and fit comfortably inside the 50 s simulation horizon.
    """
    base = mph_to_ms(p["base_mph"])
    crawl = mph_to_ms(p["crawl_mph"])
    period = p["period"]
    duty = p["duty"]
    phases = []
    for cycle in range(3):
        begin = p["start"] + cycle * period
        phases.append(ManeuverPhase(start_time=begin, target_speed=crawl, rate=p["rate"]))
        phases.append(
            ManeuverPhase(start_time=begin + duty * period, target_speed=base, rate=p["rate"])
        )
    return tuple(phases)


def _build_stop_and_go_wave(name: str, p: Dict[str, float]) -> ScenarioSpec:
    return ScenarioSpec(
        name=name,
        description=(
            f"Lead waves {p['base_mph']:.0f}->{p['crawl_mph']:.0f} mph every "
            f"{p['period']:.1f} s (duty {p['duty']:.2f}, gap {p['gap']:.0f} m)"
        ),
        ego_initial_speed=_EGO_SPEED,
        cruise_speed=_EGO_SPEED,
        lead_initial_speed=mph_to_ms(p["base_mph"]),
        lead_profile=_wave_phases(p),
        initial_distance=p["gap"],
        family="stop-and-go-wave",
        tags=("sampled", "longitudinal", "traffic-wave"),
    )


def _build_stop_and_go_wave_idm(name: str, p: Dict[str, float]) -> ScenarioSpec:
    # Dense variant: the scripted wave runs on the *furthest* vehicle and
    # propagates back to the ego through two IDM car-followers in the ego
    # lane (the nearest of which the ACC tracks as its lead), so the wave
    # the ego sees is traffic dynamics, not a script.
    base = mph_to_ms(p["base_mph"])
    gap = p["gap"]
    return ScenarioSpec(
        name=name,
        description=(
            f"IDM-dense wave: scripted {p['base_mph']:.0f}->{p['crawl_mph']:.0f} mph "
            f"every {p['period']:.1f} s propagates through 2 IDM followers"
        ),
        ego_initial_speed=_EGO_SPEED,
        cruise_speed=_EGO_SPEED,
        lead_initial_speed=base,
        lead_profile=_wave_phases(p),
        initial_distance=gap + 70.0,
        actors=(
            ActorSpec(
                kind="queue",
                initial_gap=gap + 35.0,
                initial_speed=base,
                lane=0,
                idm=IdmParams(),
            ),
            ActorSpec(
                kind="queue",
                initial_gap=gap,
                initial_speed=base,
                lane=0,
                idm=IdmParams(),
            ),
        ),
        family="stop-and-go-wave-idm",
        tags=("sampled", "multi-actor", "traffic-wave", "idm"),
    )


#: Shared parameter ranges of the two stop-and-go wave families.
_WAVE_PARAMETERS: Dict[str, ParamRange] = {
    "gap": ParamRange(75.0, 115.0),
    "base_mph": ParamRange(30.0, 42.0),
    "crawl_mph": ParamRange(3.0, 10.0),
    "period": ParamRange(10.0, 16.0),
    "duty": ParamRange(0.25, 0.55),
    "rate": ParamRange(1.5, 2.5),
    "start": ParamRange(7.0, 12.0),
}


DEFAULT_FAMILIES: Tuple[ScenarioFamily, ...] = (
    ScenarioFamily(
        name="hard-brake",
        description="Lead decelerates sharply to a configurable floor speed",
        parameters={
            "gap": ParamRange(55.0, 110.0),
            "lead_mph": ParamRange(38.0, 58.0),
            "floor_mph": ParamRange(0.0, 12.0),
            "rate": ParamRange(2.0, 4.5),
            "start": ParamRange(8.0, 16.0),
        },
        build=_build_hard_brake,
    ),
    ScenarioFamily(
        name="cut-in",
        description="Vehicle merges from the left lane inside the ACC gap",
        parameters={
            "merge_gap": ParamRange(26.0, 45.0),
            "merge_time": ParamRange(6.0, 12.0),
            "speed_delta_mph": ParamRange(0.0, 6.0),
            "duration": ParamRange(2.5, 4.0),
        },
        build=_build_cut_in,
    ),
    ScenarioFamily(
        name="curved-road",
        description="Curve onset/radius sweep with a cruising lead",
        parameters={
            "curve_start": ParamRange(50.0, 180.0),
            "curvature": ParamRange(0.0015, 0.004),
            "transition": ParamRange(90.0, 220.0),
            "lead_mph": ParamRange(40.0, 55.0),
        },
        build=_build_curve,
    ),
    ScenarioFamily(
        name="oscillating-lead",
        description="Lead speed oscillation amplitude/period sweep",
        parameters={
            "base_mph": ParamRange(40.0, 48.0),
            "amplitude_mph": ParamRange(4.0, 9.0),
            "period": ParamRange(8.0, 14.0),
            "rate": ParamRange(1.0, 2.0),
        },
        build=_build_oscillating,
    ),
    ScenarioFamily(
        name="stop-and-go-wave",
        description="Lead cycles to a crawl and back with a sampled duty cycle",
        parameters=_WAVE_PARAMETERS,
        build=_build_stop_and_go_wave,
    ),
    ScenarioFamily(
        name="stop-and-go-wave-idm",
        description="Stop-and-go wave propagated through IDM car-followers",
        parameters=_WAVE_PARAMETERS,
        build=_build_stop_and_go_wave_idm,
    ),
)


class ScenarioSampler:
    """Draws parametric scenario variants deterministically.

    Variant ``index`` uses family ``index % len(families)`` and draws its
    parameters from ``SeedSequence([master_seed, index])``, so samples are
    independent of call order and safe to regenerate anywhere (including
    inside parallel-campaign worker processes).
    """

    def __init__(
        self,
        families: Sequence[ScenarioFamily] = DEFAULT_FAMILIES,
        master_seed: int = 2022,
    ):
        if not families:
            raise ValueError("ScenarioSampler needs at least one family")
        self.families = tuple(families)
        self.master_seed = master_seed

    def sample(self, index: int) -> ScenarioSpec:
        """Build the ``index``-th variant (stable under the master seed)."""
        if index < 0:
            raise ValueError("sample index must be non-negative")
        family = self.families[index % len(self.families)]
        rng = np.random.default_rng(np.random.SeedSequence([self.master_seed, index]))
        params = {
            key: float(rng.uniform(bounds.low, bounds.high))
            for key, bounds in sorted(family.parameters.items())
        }
        return family.build(f"{family.name}[{index}]", params)

    def take(self, count: int, start: int = 0) -> List[ScenarioSpec]:
        """Build variants ``start .. start + count - 1``."""
        return [self.sample(index) for index in range(start, start + count)]

    def __iter__(self) -> Iterator[ScenarioSpec]:
        """Yield variants 0, 1, 2, ... without bound."""
        index = 0
        while True:
            yield self.sample(index)
            index += 1

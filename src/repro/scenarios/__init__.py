"""Scenario catalog and parametric scenario generation.

The paper evaluates on four fixed scenarios (S1–S4); this package opens
that axis:

* :mod:`repro.scenarios.catalog` — a registry of named, fully specified
  scenarios: the paper's S1–S4 plus cut-ins, cut-outs, hard brakes,
  stop-and-go traffic, curved-road variants and more.  Any catalog name
  can be used wherever ``"S1"`` is accepted (``SimulationConfig``,
  ``CampaignConfig``, the experiment harnesses).
* :mod:`repro.scenarios.sampler` — parametric scenario *families* and a
  seeded :class:`ScenarioSampler` that draws unbounded variants
  deterministically from ``(master_seed, index)``, so sampled campaigns
  stay bit-reproducible under the parallel executor.

The declarative building blocks (:class:`ScenarioSpec`,
:class:`ActorSpec`, :class:`ManeuverPhase`, :class:`LaneChange`) are
defined next to the simulator and re-exported here.
"""

from repro.sim.actors import LaneChange, ManeuverPhase
from repro.sim.scenarios import ActorSpec, Scenario, ScenarioSpec, build_scenario
from repro.scenarios.catalog import CATALOG, PAPER_SCENARIOS, ScenarioCatalog
from repro.scenarios.sampler import (
    DEFAULT_FAMILIES,
    ParamRange,
    ScenarioFamily,
    ScenarioSampler,
)

__all__ = [
    "ActorSpec",
    "CATALOG",
    "DEFAULT_FAMILIES",
    "LaneChange",
    "ManeuverPhase",
    "PAPER_SCENARIOS",
    "ParamRange",
    "Scenario",
    "ScenarioCatalog",
    "ScenarioFamily",
    "ScenarioSampler",
    "ScenarioSpec",
    "build_scenario",
]

"""The named scenario catalog.

Preloads the paper's S1–S4 plus a set of richer multi-actor and
road-geometry scenarios.  Every catalog scenario is designed to run
attack-free to completion with **no hazard flagged** (pinned by
``tests/integration/test_scenario_catalog_runs.py``), so that hazards
observed in attack campaigns are attributable to the attack, not the
traffic script.

Catalog names resolve everywhere a scenario name is accepted::

    run_simulation(SimulationConfig(scenario="cut-in-short-gap"))
    CampaignConfig(scenarios=("S1", "lead-hard-brake", "cut-out-reveal"),
                   initial_distances=(None,))   # None = each scenario's own gap

The hazard-free guarantee holds at each scenario's *own* gap (multi-actor
scripts are tuned to it); sweeping ``initial_distances`` over catalog
scenarios deliberately changes the scenario design.
"""

from typing import Dict, Iterator, List, Optional, Tuple

from repro.sim.actors import LaneChange, ManeuverPhase
from repro.sim.road import RoadSpec
from repro.sim.scenarios import SCENARIOS, ActorSpec, ScenarioSpec
from repro.sim.units import mph_to_ms


class ScenarioCatalog:
    """Registry of named scenarios.

    Scenarios register under their ``spec.name``; lookups are exact.
    Iteration preserves registration order (paper scenarios first).
    """

    def __init__(self):
        self._specs: Dict[str, ScenarioSpec] = {}

    def register(self, spec: ScenarioSpec, replace_existing: bool = False) -> ScenarioSpec:
        """Add ``spec`` to the catalog and return it."""
        if not replace_existing and spec.name in self._specs:
            raise ValueError(f"scenario {spec.name!r} is already registered")
        self._specs[spec.name] = spec
        return spec

    def get(self, name: str) -> ScenarioSpec:
        """Look up a scenario by exact name."""
        try:
            return self._specs[name]
        except KeyError:
            known = ", ".join(sorted(self._specs))
            raise KeyError(
                f"unknown scenario {name!r}; known scenarios: {known}"
            ) from None

    def build(self, name: str, initial_distance: Optional[float] = None) -> ScenarioSpec:
        """Look up ``name``, optionally overriding the initial lead gap."""
        spec = self.get(name)
        if initial_distance is None:
            return spec
        return spec.with_initial_distance(initial_distance)

    def names(self) -> Tuple[str, ...]:
        return tuple(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __iter__(self) -> Iterator[ScenarioSpec]:
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)

    def table_rows(self) -> List[Tuple[str, str, str, str]]:
        """(name, actors, maneuver, road) rows for the README catalog table."""
        rows = []
        for spec in self:
            actors = ", ".join(spec.actor_kinds()) or "none"
            road = spec.road
            if road.curvature_max == 0.0:
                geometry = "straight"
            else:
                geometry = (
                    f"left curve k={road.curvature_max:g}/m from s={road.curve_start:g} m"
                )
            rows.append((spec.name, actors, spec.description, geometry))
        return rows


_EGO_SPEED = mph_to_ms(60.0)


def _default_catalog() -> ScenarioCatalog:
    catalog = ScenarioCatalog()
    for spec in SCENARIOS.values():
        catalog.register(spec)

    catalog.register(
        ScenarioSpec(
            name="lead-hard-brake",
            description="Lead brakes hard from 50 mph to a crawl (clear rear)",
            ego_initial_speed=_EGO_SPEED,
            cruise_speed=_EGO_SPEED,
            lead_initial_speed=mph_to_ms(50.0),
            lead_profile=(ManeuverPhase(start_time=12.0, target_speed=2.0, rate=4.0),),
            initial_distance=110.0,
            with_follower=False,
            tags=("longitudinal", "emergency"),
        )
    )
    catalog.register(
        ScenarioSpec(
            name="stop-and-go",
            description="Lead cycles between 35 mph and a crawl (traffic wave)",
            ego_initial_speed=_EGO_SPEED,
            cruise_speed=_EGO_SPEED,
            lead_initial_speed=mph_to_ms(35.0),
            lead_profile=(
                ManeuverPhase(start_time=8.0, target_speed=1.5, rate=2.0),
                ManeuverPhase(start_time=20.0, target_speed=mph_to_ms(35.0), rate=1.5),
                ManeuverPhase(start_time=32.0, target_speed=1.5, rate=2.0),
                ManeuverPhase(start_time=44.0, target_speed=mph_to_ms(35.0), rate=1.5),
            ),
            initial_distance=80.0,
            tags=("longitudinal", "traffic-wave"),
        )
    )
    catalog.register(
        ScenarioSpec(
            name="cut-in-short-gap",
            description="Vehicle cuts in 30 m ahead, then slows to 55 mph",
            ego_initial_speed=_EGO_SPEED,
            cruise_speed=_EGO_SPEED,
            lead_initial_speed=mph_to_ms(65.0),
            initial_distance=110.0,
            actors=(
                ActorSpec(
                    kind="cut_in",
                    initial_gap=30.0,
                    initial_speed=mph_to_ms(63.0),
                    lane=1,
                    profile=(
                        ManeuverPhase(start_time=14.0, target_speed=mph_to_ms(55.0), rate=1.0),
                    ),
                    lane_change=LaneChange(start_time=8.0, target_d=0.0, duration=3.0),
                ),
            ),
            tags=("multi-actor", "cut-in"),
        )
    )
    catalog.register(
        ScenarioSpec(
            name="cut-out-reveal",
            description="Lead cuts out to the left lane, revealing a slower vehicle",
            ego_initial_speed=_EGO_SPEED,
            cruise_speed=_EGO_SPEED,
            lead_initial_speed=mph_to_ms(58.0),
            lead_lane_change=LaneChange(start_time=8.0, target_d=3.6, duration=3.0),
            initial_distance=45.0,
            actors=(
                ActorSpec(
                    kind="slow_traffic",
                    initial_gap=150.0,
                    initial_speed=mph_to_ms(45.0),
                    lane=0,
                ),
            ),
            tags=("multi-actor", "cut-out"),
        )
    )
    catalog.register(
        ScenarioSpec(
            name="curved-road-cruise",
            description="Lead cruises at 50 mph on an early, sharper left curve",
            ego_initial_speed=_EGO_SPEED,
            cruise_speed=_EGO_SPEED,
            lead_initial_speed=mph_to_ms(50.0),
            road=RoadSpec(curve_start=60.0, curve_transition=140.0, curvature_max=0.0035),
            tags=("road-geometry",),
        )
    )
    catalog.register(
        ScenarioSpec(
            name="oscillating-lead",
            description="Lead oscillates between 35 mph and 55 mph",
            ego_initial_speed=_EGO_SPEED,
            cruise_speed=_EGO_SPEED,
            lead_initial_speed=mph_to_ms(45.0),
            lead_profile=(
                ManeuverPhase(start_time=6.0, target_speed=mph_to_ms(35.0), rate=1.2),
                ManeuverPhase(start_time=16.0, target_speed=mph_to_ms(55.0), rate=1.2),
                ManeuverPhase(start_time=26.0, target_speed=mph_to_ms(35.0), rate=1.2),
                ManeuverPhase(start_time=36.0, target_speed=mph_to_ms(55.0), rate=1.2),
            ),
            initial_distance=85.0,
            tags=("longitudinal",),
        )
    )
    catalog.register(
        ScenarioSpec(
            name="tailgating-follower",
            description="Lead slows 50 to 35 mph while a tailgater sits 12 m behind",
            ego_initial_speed=_EGO_SPEED,
            cruise_speed=_EGO_SPEED,
            lead_initial_speed=mph_to_ms(50.0),
            lead_profile=(
                ManeuverPhase(start_time=12.0, target_speed=mph_to_ms(35.0), rate=1.0),
            ),
            follower_gap=12.0,
            follower_speed=_EGO_SPEED,
            follower_headway=0.6,
            follower_reaction_delay=0.8,
            tags=("multi-actor", "tailgater"),
        )
    )
    catalog.register(
        ScenarioSpec(
            name="traffic-jam-approach",
            description="Ego approaches a creeping traffic queue from 60 mph",
            ego_initial_speed=_EGO_SPEED,
            cruise_speed=_EGO_SPEED,
            lead_initial_speed=mph_to_ms(15.0),
            lead_profile=(ManeuverPhase(start_time=14.0, target_speed=2.0, rate=1.0),),
            initial_distance=130.0,
            actors=(
                ActorSpec(
                    kind="queue",
                    initial_gap=180.0,
                    initial_speed=mph_to_ms(10.0),
                    lane=0,
                ),
            ),
            tags=("multi-actor", "traffic-wave"),
        )
    )
    catalog.register(
        ScenarioSpec(
            name="curve-hard-brake",
            description="Lead brakes from 50 mph to 10 mph inside the curve",
            ego_initial_speed=_EGO_SPEED,
            cruise_speed=_EGO_SPEED,
            lead_initial_speed=mph_to_ms(50.0),
            lead_profile=(
                ManeuverPhase(start_time=14.0, target_speed=mph_to_ms(10.0), rate=3.0),
            ),
            initial_distance=95.0,
            road=RoadSpec(curve_start=80.0, curve_transition=160.0, curvature_max=0.003),
            tags=("road-geometry", "emergency"),
        )
    )
    catalog.register(
        ScenarioSpec(
            name="aggressive-lead",
            description="Lead speeds up to 60 mph, brakes to 30 mph, recovers to 50 mph",
            ego_initial_speed=_EGO_SPEED,
            cruise_speed=_EGO_SPEED,
            lead_initial_speed=mph_to_ms(40.0),
            lead_profile=(
                ManeuverPhase(start_time=8.0, target_speed=mph_to_ms(60.0), rate=1.5),
                ManeuverPhase(start_time=20.0, target_speed=mph_to_ms(30.0), rate=3.0),
                ManeuverPhase(start_time=32.0, target_speed=mph_to_ms(50.0), rate=1.5),
            ),
            initial_distance=75.0,
            tags=("longitudinal",),
        )
    )
    catalog.register(
        ScenarioSpec(
            name="open-road-cruise",
            description="No lead vehicle: pure lane keeping through the curve",
            ego_initial_speed=_EGO_SPEED,
            cruise_speed=_EGO_SPEED,
            with_lead=False,
            tags=("no-lead", "road-geometry"),
        )
    )
    return catalog


#: The process-wide default catalog.
CATALOG = _default_catalog()

#: The paper's fixed evaluation scenarios (Section IV-A).
PAPER_SCENARIOS: Tuple[str, ...] = ("S1", "S2", "S3", "S4")

"""The asyncio campaign service: queued jobs over the cached back-end.

:class:`CampaignService` is the serving layer of the platform — an
asyncio front-end that accepts queued jobs (campaign grids, search
budgets), executes them over the existing pool/batch/supervised
back-end, and answers from the shared content-addressed
:class:`~repro.service.cache.RunCache` before paying for any simulation.

Execution model: ``concurrency`` consumer coroutines drain one shared
job queue.  A campaign job is sharded into service-level chunks; each
chunk is one blocking
:func:`~repro.injection.executor.run_simulations` call (itself pooled /
batched / supervised per the job spec, and cache-aware) pushed off the
event loop with ``loop.run_in_executor``, so the loop stays responsive
and concurrent jobs interleave chunk by chunk.  A search job runs a
:class:`~repro.search.driver.SearchDriver` (sharing the same cache) in
the executor, streaming one progress event per completed generation via
``call_soon_threadsafe``.

Every job streams :class:`~repro.service.jobs.JobEvent` records —
``queued``, ``started``, per-chunk/per-generation ``progress`` (with
partial results accumulating on the :class:`~repro.service.jobs.Job`
handle), then ``completed`` or ``failed``.  Results are bit-identical
to direct uncached execution; the cache only changes what is *paid*.
"""

import asyncio
from typing import TYPE_CHECKING, Any, AsyncIterator, List, Optional, Sequence, Union

from repro.analysis.metrics import RunResult
from repro.injection.campaign import Campaign
from repro.service.cache import RunCache, SimulationTask
from repro.service.jobs import (
    EVENT_COMPLETED,
    EVENT_FAILED,
    EVENT_PROGRESS,
    EVENT_QUEUED,
    EVENT_STARTED,
    CampaignJobSpec,
    Job,
    JobEvent,
    JobStatus,
    SearchJobSpec,
    next_event_seq,
)
from repro.telemetry import Telemetry

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.obs.journal import EventJournal

JobSpec = Union[CampaignJobSpec, SearchJobSpec]

#: Service-level chunks per campaign job when the spec does not pin
#: ``chunk_runs`` — enough for observable streaming without flooding the
#: event queue.
_DEFAULT_CHUNKS_PER_JOB = 4


class CampaignService:
    """Queued campaign/search execution behind the shared run cache.

    Args:
        cache: The shared :class:`RunCache` consulted before any
            simulation (``None`` runs everything uncached).
        concurrency: Number of jobs processed at once (each still fans
            out internally per its spec).
        telemetry: Optional telemetry handle shared by all jobs
            (``service.*`` counters, plus whatever the back-end records).
        journal: Optional :class:`~repro.obs.journal.EventJournal`; every
            :class:`JobEvent` is mirrored into it as a ``job.*`` record,
            chunk dispatches bind ``job_id``/``chunk_id`` correlation
            fields into the supervised back-end's events, and a reader
            can rebuild every job's state after process death via
            :func:`repro.obs.journal.replay_jobs`.

    Usage::

        service = CampaignService(cache=RunCache("/var/cache/repro"))
        await service.start()
        job = await service.submit(CampaignJobSpec(config=grid))
        async for event in service.events(job):
            ...
        results = await service.result(job)
        await service.stop()
    """

    def __init__(
        self,
        cache: Optional[RunCache] = None,
        concurrency: int = 1,
        telemetry: Optional[Telemetry] = None,
        journal: Optional["EventJournal"] = None,
    ):
        if concurrency < 1:
            raise ValueError(f"concurrency must be positive, got {concurrency}")
        self.cache = cache
        self.concurrency = concurrency
        self.telemetry = telemetry
        self.journal = journal
        if cache is not None and journal is not None and cache.journal is None:
            cache.journal = journal
        self._queue: Optional["asyncio.Queue[Optional[Job]]"] = None
        self._consumers: List["asyncio.Task"] = []
        self._jobs: List[Job] = []
        self._done: dict = {}

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Spawn the consumer coroutines (idempotent)."""
        if self._consumers:
            return
        self._queue = asyncio.Queue()
        for index in range(self.concurrency):
            self._consumers.append(
                asyncio.create_task(self._consume(), name=f"campaign-service-{index}")
            )

    async def stop(self) -> None:
        """Drain the queue, then stop the consumers."""
        if not self._consumers:
            return
        assert self._queue is not None
        for _ in self._consumers:
            await self._queue.put(None)
        await asyncio.gather(*self._consumers)
        self._consumers = []
        self._queue = None

    # -- submission & observation --------------------------------------------

    async def submit(self, spec: JobSpec) -> Job:
        """Queue one job; returns its handle immediately."""
        if self._queue is None:
            raise RuntimeError("service is not started (call start() first)")
        job = Job(len(self._jobs), spec, asyncio.Queue())
        self._jobs.append(job)
        self._done[job.id] = asyncio.get_running_loop().create_future()
        self._emit(job, EVENT_QUEUED)
        self._count("service.jobs_submitted")
        await self._queue.put(job)
        return job

    async def events(self, job: Job) -> AsyncIterator[JobEvent]:
        """Stream the job's events until it completes or fails."""
        while True:
            event = await job.events.get()
            yield event
            if event.kind in (EVENT_COMPLETED, EVENT_FAILED):
                return

    async def result(self, job: Job) -> Any:
        """Wait for the job and return its result (raises on failure)."""
        await self._done[job.id]
        if job.status is JobStatus.FAILED:
            raise RuntimeError(f"job {job.id} failed: {job.error}")
        return job.result

    # -- execution -----------------------------------------------------------

    async def _consume(self) -> None:
        assert self._queue is not None
        while True:
            job = await self._queue.get()
            if job is None:
                return
            job.status = JobStatus.RUNNING
            self._emit(job, EVENT_STARTED)
            try:
                if isinstance(job.spec, CampaignJobSpec):
                    result = await self._run_campaign_job(job)
                elif isinstance(job.spec, SearchJobSpec):
                    result = await self._run_search_job(job)
                else:
                    raise TypeError(f"unknown job spec {type(job.spec).__name__}")
            except Exception as error:
                job.status = JobStatus.FAILED
                job.error = str(error)
                self._emit(job, EVENT_FAILED, error=job.error)
                self._count("service.jobs_failed")
            else:
                job.status = JobStatus.COMPLETED
                job.result = result
                self._emit(job, EVENT_COMPLETED)
                self._count("service.jobs_completed")
            finally:
                self._done[job.id].set_result(None)

    async def _run_campaign_job(self, job: Job) -> List[RunResult]:
        spec = job.spec
        assert isinstance(spec, CampaignJobSpec)
        campaign = Campaign(spec.config, strategy_factory=spec.strategy_factory)
        tasks: List[SimulationTask] = [
            campaign.cell_task(cell) for cell in campaign.cells()
        ]
        total = len(tasks)
        chunk_runs = spec.chunk_runs
        if chunk_runs is None:
            chunk_runs = max(1, -(-total // _DEFAULT_CHUNKS_PER_JOB))
        loop = asyncio.get_running_loop()
        results: List[RunResult] = []
        for chunk_id, offset in enumerate(range(0, total, chunk_runs)):
            chunk = tasks[offset : offset + chunk_runs]
            chunk_results = await loop.run_in_executor(
                None, self._run_chunk, spec, chunk, job.id, chunk_id
            )
            results.extend(chunk_results)
            job.partial_results.extend(chunk_results)
            self._emit(
                job,
                EVENT_PROGRESS,
                completed=len(results),
                total=total,
                chunk_runs=len(chunk_results),
            )
            self._count("service.runs_served", len(chunk_results))
        return results

    def _run_chunk(
        self,
        spec: CampaignJobSpec,
        chunk: Sequence[SimulationTask],
        job_id: int,
        chunk_id: int,
    ) -> List[RunResult]:
        """One blocking chunk dispatch (executor thread)."""
        from repro.injection.executor import run_simulations

        journal = None
        if self.journal is not None:
            # Supervised back-end events inherit the job/chunk identity,
            # completing the job_id → chunk_id → fingerprint causal chain.
            journal = self.journal.bind(job_id=job_id, chunk_id=chunk_id)
        return run_simulations(
            chunk,
            workers=spec.workers,
            batch_size=spec.batch_size,
            supervision=spec.supervision,
            telemetry=self.telemetry,
            cache=self.cache,
            recorder=spec.recorder,
            journal=journal,
        )

    async def _run_search_job(self, job: Job):
        spec = job.spec
        assert isinstance(spec, SearchJobSpec)
        from repro.search.driver import SearchDriver

        loop = asyncio.get_running_loop()

        def on_generation(partial) -> None:
            # Runs in the executor thread; hop to the loop to emit.
            loop.call_soon_threadsafe(
                self._emit,
                job,
                EVENT_PROGRESS,
                {
                    "generations": len(partial.trail),
                    "evaluations": partial.evaluations_used,
                    "simulations": partial.simulations_run,
                },
            )

        journal = None
        if self.journal is not None:
            journal = self.journal.bind(job_id=job.id)
        driver = SearchDriver(
            spec.space,
            spec.objective,
            spec.optimizer_factory,
            config=spec.config,
            telemetry=self.telemetry,
            run_cache=self.cache,
            on_generation=on_generation,
            journal=journal,
        )
        return await loop.run_in_executor(None, driver.run)

    # -- internals -----------------------------------------------------------

    def _emit(self, job: Job, kind: str, payload: Optional[dict] = None, **extra) -> None:
        data = dict(payload or {})
        data.update(extra)
        job.events.put_nowait(
            JobEvent(job_id=job.id, kind=kind, seq=next_event_seq(), payload=data)
        )
        if self.journal is not None:
            fields = dict(data)
            if kind == EVENT_QUEUED:
                fields["total"] = job.total_runs
            level = "error" if kind == EVENT_FAILED else "info"
            self.journal.emit(f"job.{kind}", level=level, job_id=job.id, **fields)

    def _count(self, name: str, amount: int = 1) -> None:
        if self.telemetry is not None:
            self.telemetry.metrics.counter(name).inc(amount)
